#!/usr/bin/env python3
"""The §3.1 survey, live: what each container implementation in active or
potential use for HPC can and cannot do.

Docker (Type I), rootless Podman (Type II), Singularity (Type II
"fakeroot", definition files only), Shifter/Sarus (Type I, run-only),
Enroot (Type III, run-only), Charliecloud (Type III, builds Dockerfiles).

Run:  python examples/hpc_survey.py
"""

from repro.cluster import make_machine, make_world
from repro.containers import (
    DockerDaemon,
    Enroot,
    HpcRuntimeError,
    Podman,
    ShifterGateway,
    Singularity,
    SingularityError,
)
from repro.core import ChImage

DOCKERFILE = "FROM centos:7\nRUN yum install -y openssh\n"

DEFINITION = """\
Bootstrap: docker
From: centos:7

%post
    yum install -y openssh
"""


def main() -> None:
    world = make_world(arches=("x86_64",))
    m = make_machine("login1", network=world.network)
    alice = m.login("alice")
    rows = []

    docker = DockerDaemon(m, docker_group={1000})
    r = docker.build(alice, DOCKERFILE, "d1")
    rows.append(("Docker", "I", "daemon, root-equivalent",
                 "Dockerfile", "ok" if r.success else "FAILED"))

    podman = Podman(m, alice)
    r = podman.build(DOCKERFILE, "p1")
    rows.append(("rootless Podman", "II", "setcap helpers + /etc/subuid",
                 "Dockerfile", "ok" if r.success else "FAILED"))

    sing = Singularity(m, alice)
    sing.build("/home/alice/s.sif", DEFINITION)
    try:
        sing.build("/home/alice/x.sif", DOCKERFILE)
        dockerfile_support = "ok"
    except SingularityError:
        dockerfile_support = "definition files only"
    rows.append(("Singularity", "I/II", "fakeroot brand (subuid)",
                 dockerfile_support, "ok"))

    shifter = ShifterGateway(m)
    shifter.pull("centos:7")
    try:
        shifter.build()
        build = "ok"
    except HpcRuntimeError:
        build = "no build (run-only)"
    rows.append(("Shifter/Sarus", "I", "root image gateway", build, "n/a"))

    enroot = Enroot(m, alice)
    enroot.import_image("centos:7")
    try:
        enroot.build()
        build = "ok"
    except HpcRuntimeError:
        build = "no build (converts images)"
    rows.append(("Enroot", "III", "none (fully unprivileged)", build, "n/a"))

    ch = ChImage(m, alice)
    r = ch.build(tag="c1", dockerfile=DOCKERFILE, force=True)
    rows.append(("Charliecloud", "III", "none (fakeroot injection)",
                 "Dockerfile", "ok" if r.success else "FAILED"))

    headers = ("implementation", "type", "privilege model",
               "build input", "Fig.2 build")
    widths = [max(len(h), *(len(str(row[i])) for row in rows))
              for i, h in enumerate(headers)]
    print(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


if __name__ == "__main__":
    main()
