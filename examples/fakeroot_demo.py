#!/usr/bin/env python3
"""fakeroot(1) in action — paper §5.1, Figure 7.

A script chowns a file to nobody and creates a device node, both privileged
operations.  Under fakeroot they "succeed"; an unwrapped ls exposes the
lies.  Then the three implementations of Table 1 are compared.

Run:  python examples/fakeroot_demo.py
"""

from repro.cluster import make_machine, make_world
from repro.distro import populate_userland
from repro.fakeroot import ENGINES
from repro.kernel import Syscalls
from repro.shell import ExecContext, OutputSink, run_shell
from repro.shell.install import install_binary, install_script

FAKEROOT_SH = """\
set -x
touch test.file
chown nobody test.file
mknod test.dev c 1 1
ls -lh test.dev test.file
"""


def main() -> None:
    world = make_world(arches=("x86_64",))
    ws = make_machine("workstation", network=world.network)
    root = ws.root_sys()
    populate_userland(root, "x86_64")  # a workstation with real userland
    install_binary(root, "/usr/bin/fakeroot", "fakeroot.classic")
    install_script(root, "/home/alice/fakeroot.sh", FAKEROOT_SH)

    alice = ws.login("alice")
    ctx = ExecContext(alice, Syscalls(alice),
                      env={"PATH": "/usr/bin:/bin", "HOME": "/home/alice"})
    ctx.sys.chdir("/home/alice")

    def sh(cmd: str) -> str:
        child = ctx.child(stdout=OutputSink(), stderr=OutputSink())
        run_shell(child, cmd)
        return child.stdout.text() + child.stderr.text()

    print("$ fakeroot ./fakeroot.sh")
    print(sh("fakeroot /home/alice/fakeroot.sh"), end="")
    print("$ ls -lh test*")
    print(sh("ls -lh test.dev test.file"), end="")
    print()
    print("Within the fakeroot context ls shows a device file and a")
    print("nobody-owned file; the unwrapped ls exposes the lies (Fig. 7).")

    print()
    print("Table 1 — fakeroot implementations:")
    cols = ["implementation", "initial release", "latest version",
            "approach", "architectures", "daemon?", "persistency"]
    rows = [e.table_row() for e in ENGINES.values()]
    widths = {c: max(len(c), *(len(r[c]) for r in rows)) for c in cols}
    print("  " + " | ".join(c.ljust(widths[c]) for c in cols))
    print("  " + "-+-".join("-" * widths[c] for c in cols))
    for r in rows:
        print("  " + " | ".join(r[c].ljust(widths[c]) for c in cols))


if __name__ == "__main__":
    main()
