#!/usr/bin/env python3
"""The three container privilege types of paper §2.2, side by side.

Runs the same Figure 2 Dockerfile under:

* Type I  (Docker): mount namespace only — works, but the builder is root
  and any docker-group user can own the host;
* Type II (rootless Podman): privileged user namespace via shadow-utils
  helpers — works, files get real subordinate IDs;
* Type III (Charliecloud): unprivileged user namespace — fails plainly,
  works with --force fakeroot injection, ownership squashed.

Run:  python examples/privilege_models.py
"""

from repro.cluster import make_machine, make_world
from repro.containers import DockerDaemon, Podman
from repro.core import ChImage
from repro.kernel import Syscalls

DOCKERFILE = """\
FROM centos:7
RUN echo hello
RUN yum install -y openssh
"""

KEYSIGN = "/usr/libexec/openssh/ssh-keysign"


def main() -> None:
    world = make_world(arches=("x86_64",))
    machine = make_machine("login1", network=world.network)
    alice = machine.login("alice")

    print("── Type I: Docker ─────────────────────────────────────────────")
    docker = DockerDaemon(machine, docker_group={1000})
    res = docker.build(alice, DOCKERFILE, "t1")
    tree = docker.images["t1"].tree_path
    st = Syscalls(docker.daemon_proc).stat(f"{tree}{KEYSIGN}")
    print(f"build: {'ok' if res.success else 'FAILED'}")
    print(f"{KEYSIGN}: kernel uid:gid = {st.kuid}:{st.kgid} "
          f"(real root-owned files on the host!)")
    print("cost: the daemon runs as root; docker-group membership is "
          "root-equivalent (§3.1)")

    print()
    print("── Type II: rootless Podman ──────────────────────────────────")
    podman = Podman(machine, alice)
    print("uid_map (cf. paper Figure 4):")
    print(podman.uid_map_text(), end="")
    res = podman.build(DOCKERFILE, "t2")
    tree = podman.buildah.image_tree("t2")
    st = podman.buildah.driver.sys.stat(f"{tree}{KEYSIGN}")
    print(f"build: {'ok' if res.success else 'FAILED'}")
    print(f"{KEYSIGN}: container view {st.st_uid}:{st.st_gid}, "
          f"kernel {st.kuid}:{st.kgid} (subordinate IDs, correct in-image "
          f"ownership)")
    print("cost: trusts setcap'd newuidmap/newgidmap and the sysadmin's "
          "/etc/subuid (§4.1)")

    print()
    print("── Type III: Charliecloud ────────────────────────────────────")
    ch = ChImage(machine, alice)
    plain = ch.build(tag="t3", dockerfile=DOCKERFILE)
    print(f"plain build: {'ok' if plain.success else 'FAILED'} "
          f"({plain.error})")
    forced = ch.build(tag="t3", dockerfile=DOCKERFILE, force=True)
    st = ch.sys.stat(f"{ch.storage.path_of('t3')}{KEYSIGN}")
    print(f"--force build: {'ok' if forced.success else 'FAILED'} "
          f"(modified {forced.modified_runs} RUN instructions)")
    print(f"{KEYSIGN}: kernel uid:gid = {st.kuid}:{st.kgid} "
          f"(squashed to alice — fine for HPC apps, §5.2)")
    print("cost: fakeroot indirection; no privileged code anywhere "
          "(§6.1)")


if __name__ == "__main__":
    main()
