#!/usr/bin/env python3
"""Quickstart: build a container image with NO privilege at all.

This is the paper's headline capability (§5): an unprivileged user on an
HPC login node builds a CentOS 7 + OpenSSH image from an *unmodified*
Dockerfile using ch-image --force, then runs it with ch-run.

Run:  python examples/quickstart.py
"""

from repro.cluster import make_machine, make_world
from repro.core import ChImage, ChRun

DOCKERFILE = """\
FROM centos:7
RUN echo hello
RUN yum install -y openssh
"""


def main() -> None:
    # The outside world: docker.io with base images, distro package repos.
    world = make_world(arches=("x86_64",))

    # An HPC login node.  alice is a normal user: no root, no sudo, no
    # setuid helpers needed for anything that follows.
    login = make_machine("hpc-login1", network=world.network)
    alice = login.login("alice")
    ch = ChImage(login, alice)

    print("=" * 70)
    print("1. Plain unprivileged build — fails exactly like paper Figure 2")
    print("=" * 70)
    result = ch.build(tag="foo", dockerfile=DOCKERFILE)
    print(result.text)
    assert not result.success

    print()
    print("=" * 70)
    print("2. ch-image --force — fakeroot auto-injection (paper Figure 10)")
    print("=" * 70)
    result = ch.build(tag="foo", dockerfile=DOCKERFILE, force=True)
    print(result.text)
    assert result.success

    print()
    print("=" * 70)
    print("3. Run the image with ch-run (Type III, fully unprivileged)")
    print("=" * 70)
    image = ch.storage.path_of("foo")
    run = ChRun(login, alice)
    for cmd in (["cat", "/etc/redhat-release"],
                ["ls", "-lh", "/usr/bin/ssh"],
                ["id"]):
        res = run.run(image, cmd)
        print(f"$ ch-run foo -- {' '.join(cmd)}")
        print(res.output, end="")
    print()
    print("Note: 'root' above is an alias for alice's own UID — on the host")
    print("(i.e., in reality) every container process is just alice.")


if __name__ == "__main__":
    main()
