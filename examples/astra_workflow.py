#!/usr/bin/env python3
"""The Astra container DevOps workflow (paper §4.2, Figure 6).

Astra is aarch64; images built on x86-64 laptops do not run there.  This
example shows:

1. the failing "build on your laptop" anti-pattern, and
2. the Figure 6 workflow: rootless podman build on Astra's login node →
   push to the site GitLab registry → parallel deployment on compute nodes
   with Charliecloud under the resource manager.

Run:  python examples/astra_workflow.py
"""

from repro.cluster import (
    astra_build_workflow,
    laptop_build_workflow,
    make_astra,
    make_world,
)

ATSE_DOCKERFILE = """\
FROM centos:7
RUN yum install -y gcc
RUN yum install -y openmpi hdf5
RUN yum install -y atse
"""


def main() -> None:
    world = make_world()  # multi-arch hub: x86_64 + aarch64 base images
    astra = make_astra(world, n_compute=4)

    print("=" * 70)
    print("Anti-pattern: build the ATSE stack on an x86-64 laptop")
    print("=" * 70)
    report = laptop_build_workflow(astra, world, "alice", ATSE_DOCKERFILE,
                                   "atse-laptop", n_nodes=2)
    for phase in report.phases:
        print(f"  {phase}")
    print(f"  first rank output: "
          f"{report.deploy.rank_outputs[0].strip()}")
    assert not report.success

    print()
    print("=" * 70)
    print("Figure 6 workflow: build ON Astra, push, deploy in parallel")
    print("=" * 70)
    report = astra_build_workflow(astra, "alice", ATSE_DOCKERFILE, "atse",
                                  n_nodes=4)
    for phase in report.phases:
        print(f"  {phase}")
    print()
    print("podman build transcript (tail):")
    for line in report.build_transcript.splitlines()[-6:]:
        print(f"    {line}")
    print()
    print("parallel application output:")
    print(report.deploy.output, end="")
    assert report.success

    print()
    print(f"registry now serves: "
          f"{world.site_registry.repositories()} "
          f"(persistent manifests: "
          f"{len(world.site_registry.history('alice/atse'))})")


if __name__ == "__main__":
    main()
