#!/usr/bin/env python3
"""The §5.3.3 production CI pattern: three chained Dockerfiles, built and
validated on supercomputer compute nodes as normal jobs, coordinated by a
GitLab-like server.

Dockerfile 1: OpenMPI in a CentOS base.
Dockerfile 2: the complex Spack environment on top of it.
Dockerfile 3: the application itself.

All builds use ch-image --force on a compute node; the validation stage
pulls the final image and runs smoke tests on two nodes.

Run:  python examples/ci_pipeline.py
"""

from repro.cluster import CiJob, CiServer, make_astra, make_world
from repro.core import ChImage, ChRun, push_image

REGISTRY = "gitlab.example.gov"

DOCKERFILE_MPI = """\
FROM centos:7
RUN yum install -y gcc
RUN yum install -y openmpi
"""

DOCKERFILE_ENV = f"""\
FROM {REGISTRY}/app/openmpi:latest
RUN yum install -y spack
RUN spack install hdf5
"""

DOCKERFILE_APP = f"""\
FROM {REGISTRY}/app/env:latest
RUN yum install -y atse
"""


def main() -> None:
    world = make_world()
    astra = make_astra(world, n_compute=4)
    server = CiServer("gitlab")
    pipe = server.new_pipeline("hpc-app")

    def build_stage(dockerfile: str, tag: str):
        def job():
            # builds run on a compute node via a normal scheduler job
            def build(node, rank, login):
                ch = ChImage(node, login)
                result = ch.build(tag=tag, dockerfile=dockerfile, force=True)
                if not result.success:
                    return 1, result.text
                push_image(ch.storage, tag, f"{REGISTRY}/app/{tag}:latest")
                return 0, f"built and pushed app/{tag}:latest\n"
            res = astra.scheduler.srun("alice", 1, build)
            return (0 if res.success else 1), res.output
        return job

    build = pipe.stage("build")
    build.jobs.append(CiJob("openmpi-base",
                            build_stage(DOCKERFILE_MPI, "openmpi")))
    env = pipe.stage("environment")
    env.jobs.append(CiJob("app-env", build_stage(DOCKERFILE_ENV, "env")))
    app = pipe.stage("application")
    app.jobs.append(CiJob("app-image", build_stage(DOCKERFILE_APP, "final")))

    def validate_job():
        def smoke(node, rank, login):
            ch = ChImage(node, login)
            path = ch.pull(f"{REGISTRY}/app/final:latest")
            res = ChRun(node, login).run(
                path, ["/opt/atse/bin/atse-info"],
                env={"OMPI_COMM_WORLD_RANK": str(rank)})
            return res.status, res.output
        result = astra.scheduler.srun("alice", 2, smoke)
        return (0 if result.success else 1), result.output

    pipe.stage("validate").jobs.append(CiJob("smoke-test", validate_job))

    result = server.trigger(pipe)
    print(result.report())
    print()
    print("validation output:")
    print(pipe.stages[-1].jobs[0].output, end="")
    print()
    print(f"registry repositories: {world.site_registry.repositories()}")
    assert result.passed


if __name__ == "__main__":
    main()
