"""A GitLab-like CI substrate.

Paper §5.3.3: a production application "has integrated Charliecloud
container build into its CI pipeline using a sequence of three Dockerfiles
... Build and validate both run on supercomputer compute nodes using normal
jobs, and the pipeline is coordinated by a separate GitLab server."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ReproError, SupplyPolicyError
from ..obs.trace import maybe_span

__all__ = ["CiJob", "CiStage", "CiPipeline", "CiServer", "CiError",
           "BuildFarm", "FarmImage", "FarmReport", "farm_build_stage",
           "policy_gate_stage", "warm_cache_stage"]


class CiError(ReproError):
    """Pipeline definition or execution failure."""


@dataclass
class CiJob:
    """One CI job: a callable returning (status, output)."""

    name: str
    run: Callable[[], tuple[int, str]]
    status: Optional[int] = None
    output: str = ""

    @property
    def passed(self) -> bool:
        return self.status == 0


@dataclass
class CiStage:
    """One pipeline stage; all jobs must pass before the next stage runs."""

    name: str
    jobs: list[CiJob] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(j.passed for j in self.jobs)


@dataclass
class PipelineResult:
    pipeline: "CiPipeline"
    passed: bool
    failed_stage: Optional[str] = None

    def report(self) -> str:
        lines = [f"pipeline {self.pipeline.name}: "
                 f"{'passed' if self.passed else 'FAILED'}"]
        for stage in self.pipeline.stages:
            for job in stage.jobs:
                mark = {True: "ok", False: "FAIL", None: "skipped"}[
                    job.passed if job.status is not None else None]
                lines.append(f"  [{stage.name}] {job.name}: {mark}")
        return "\n".join(lines)


@dataclass
class CiPipeline:
    """An ordered sequence of stages.

    ``tracer`` is an optional :class:`~repro.obs.SyscallTracer`; when set,
    the run is recorded as pipeline/stage/job spans (the deploy phases of
    the §4.2 Astra workflow show up in the same trace as the build)."""

    name: str
    stages: list[CiStage] = field(default_factory=list)
    tracer: Optional[object] = None

    def stage(self, name: str) -> CiStage:
        s = CiStage(name)
        self.stages.append(s)
        return s

    def run(self) -> PipelineResult:
        with maybe_span(self.tracer, f"pipeline {self.name}",
                        "pipeline") as psp:
            for stage in self.stages:
                if not stage.jobs:
                    raise CiError(f"stage {stage.name!r} has no jobs")
                with maybe_span(self.tracer, f"stage {stage.name}",
                                "stage") as ssp:
                    for job in stage.jobs:
                        with maybe_span(self.tracer, f"job {job.name}",
                                        "job") as jsp:
                            job.status, job.output = job.run()
                            if jsp is not None and not job.passed:
                                jsp.fail(f"exited with {job.status}")
                    if ssp is not None and not stage.passed:
                        ssp.fail("stage failed")
                if not stage.passed:
                    if psp is not None:
                        psp.fail(f"failed at stage {stage.name}")
                    return PipelineResult(self, False,
                                          failed_stage=stage.name)
            return PipelineResult(self, True)


def warm_cache_stage(pipeline: CiPipeline, builders, registry, ref, *,
                     name: str = "warm-cache") -> CiStage:
    """Add a stage that pre-seeds every builder's build cache from a
    registry cache export (the BuildKit ``cache-from`` pattern).

    Each *builder* is a :class:`~repro.core.ChImage` with its cache
    enabled; one job per builder imports the manifest pushed under *ref*,
    so the build jobs of later stages hit on every unchanged instruction
    instead of re-running it on the worker."""
    stage = pipeline.stage(name)
    for builder in builders:
        host = builder.machine.hostname

        def run(builder=builder, host=host):
            if builder.cache is None:
                return 1, f"{host}: build cache disabled"
            try:
                n = builder.cache.import_from_registry(registry, ref)
            except ReproError as err:
                return 1, f"{host}: cache import failed: {err}"
            return 0, f"{host}: imported {n} cache records"

        stage.jobs.append(CiJob(f"{name} {host}", run))
    return stage


@dataclass
class FarmImage:
    """One image submitted to a :class:`BuildFarm`."""

    tag: str
    dockerfile: str
    force: bool = False
    priority: Optional[int] = None   # FIFO tie-break (default: submit order)
    result: Optional[object] = None  # ChBuildResult, set by run()
    deduped: bool = False
    #: this image's own slice of the farm cache counters (a
    #: :class:`~repro.cas.BuildCacheStats` delta): hits/misses/stores are
    #: what *this* build did against the shared cache, and
    #: ``inflight_hits`` is 1 when it parked behind an identical in-flight
    #: build — the per-cell attribution a matrix amplification report needs
    cache_stats: Optional[object] = None

    @property
    def success(self) -> bool:
        return self.result is not None and self.result.success


@dataclass
class FarmReport:
    """What one :meth:`BuildFarm.run` produced."""

    images: list[FarmImage]
    schedule: object                   # core.build_graph.ScheduleReport
    cache_stats: object                # cas.BuildCacheStats (aggregated)

    @property
    def success(self) -> bool:
        return all(img.success for img in self.images)

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def inflight_hits(self) -> int:
        return self.schedule.inflight_hits

    @property
    def worker_crashes(self) -> int:
        return getattr(self.schedule, "worker_crashes", 0)

    @property
    def requeues(self) -> int:
        return getattr(self.schedule, "requeues", 0)

    @property
    def attempts(self) -> int:
        """Total task execution attempts (requeues included)."""
        return sum(getattr(t, "attempts", 1) for t in self.schedule.tasks)

    @property
    def degraded(self) -> bool:
        """True when the farm lost a worker mid-run."""
        return self.worker_crashes > 0

    def per_image_stats(self) -> dict[str, dict]:
        """Cache hit/miss/store/inflight attribution per submitted image
        (tag -> counter dict).  The aggregate handle stats answer "how
        warm was the farm"; this answers "which image paid for it" —
        e.g. which matrix cell amplified the cache and which one filled
        it."""
        out: dict[str, dict] = {}
        for img in self.images:
            stats = img.cache_stats
            out[img.tag] = (stats.as_dict() if stats is not None
                            else {})
        return out


class BuildFarm:
    """A ``parallelism=N`` build farm: whole images as concurrent tasks.

    The CI analogue of ``ch-image build --parallel``: every submitted
    image is a task on one
    :class:`~repro.core.build_graph.BuildGraphScheduler`, so independent
    images overlap on the sim clock while sharing ONE machine-wide
    :class:`~repro.cas.ContentStore`-backed build cache.  Two submissions
    with the same Dockerfile text and force mode collide on their Merkle
    plan key and **single-flight**: the second blocks behind the first's
    in-flight execution, then replays warm (all cache hits) — the
    ``inflight_hits`` the §6.1 re-execution-cost story wants collapsed.
    """

    def __init__(self, machine, user_proc, *, parallelism: int = 2,
                 engine=None, build_cache=None,
                 force_mode: str = "fakeroot", storage_dir=None,
                 fault_plan=None, retry_budget: int = 8):
        from ..cas.cache import BuildCache
        from ..core.builder import ChImage
        self.machine = machine
        self.parallelism = parallelism
        self.engine = engine
        #: optional :class:`~repro.sim.FaultPlan`: worker crashes fire on
        #: the farm's sim clock; crashed workers' images are requeued and
        #: single-flight waiters are promoted rather than deadlocked
        self.fault_plan = fault_plan
        self.retry_budget = retry_budget
        #: one cache for the whole farm, its layer diffs deduplicated in
        #: the machine's content store (shared with image pulls)
        self.cache = build_cache if build_cache is not None else \
            BuildCache(store=machine.content_store)
        self.builder = ChImage(machine, user_proc, storage_dir,
                               build_cache=self.cache,
                               force_mode=force_mode)
        self.pending: list[FarmImage] = []
        self.report: Optional[FarmReport] = None

    def submit(self, *, tag: str, dockerfile: str, force: bool = False,
               priority: Optional[int] = None) -> FarmImage:
        """Queue one image build; call :meth:`run` to execute the batch.
        *priority* breaks FIFO ties among equally-ready images (lower
        first; default submission order) — a matrix orchestrator uses it
        to front-load the cells that fill the shared cache."""
        if self.report is not None:
            raise CiError("build farm already ran")
        spec = FarmImage(tag=tag, dockerfile=dockerfile, force=force,
                         priority=priority)
        self.pending.append(spec)
        return spec

    def run(self) -> FarmReport:
        """Build everything submitted; idempotent (returns the first
        report on re-entry, so CI jobs can all poke it)."""
        if self.report is not None:
            return self.report
        from ..core.build_graph import BuildGraphScheduler, plan_flight_key
        kernel = self.machine.kernel
        scheduler = BuildGraphScheduler(
            engine=self.engine, parallelism=self.parallelism,
            ticks=lambda: kernel.ticks, cache=self.builder.cache,
            kernel=kernel, fail_fast=False, fault_plan=self.fault_plan,
            retry_budget=self.retry_budget)

        def make_fn(spec: FarmImage):
            def build():
                # builds execute synchronously at dispatch, so snapshotting
                # the shared handle's counters around the call attributes
                # exactly this image's cache traffic (re-run on a crash
                # requeue, so the surviving attempt's slice wins)
                before = self.builder.cache.stats.copy() \
                    if self.builder.cache is not None else None
                spec.result = self.builder.build(
                    tag=spec.tag, dockerfile=spec.dockerfile,
                    force=spec.force)
                if before is not None:
                    spec.cache_stats = \
                        self.builder.cache.stats.delta(before)
                return spec.result
            return build

        for spec in self.pending:
            scheduler.add_task(
                spec.tag, make_fn(spec),
                flight_key=plan_flight_key(
                    spec.dockerfile, force=spec.force,
                    force_mode=self.builder.force_mode),
                ok=lambda r: r.success,
                priority=spec.priority)
        schedule = scheduler.run()
        for spec, task in zip(self.pending, schedule.tasks):
            spec.deduped = task.deduped
            if task.deduped and spec.cache_stats is not None:
                # the in-flight wait is booked on the scheduler's cache
                # handle before the warm replay runs; mirror it onto the
                # image's own slice so per-cell attribution sees the park
                spec.cache_stats.inflight_hits = 1
            if not task.ok and spec.result is not None \
                    and spec.result.success:
                # the worker died before this build's completion landed:
                # the host-side result exists, but the virtual build never
                # finished and the retry budget is spent — not a success
                spec.result = None
        self.report = FarmReport(images=list(self.pending),
                                 schedule=schedule,
                                 cache_stats=self.cache.aggregate_stats())
        return self.report


def farm_build_stage(pipeline: CiPipeline, farm: BuildFarm, *,
                     name: str = "build-farm") -> CiStage:
    """Add a stage whose jobs are the farm's images: the first job to run
    executes the whole batch (images still build concurrently on the sim
    clock inside the farm); each job then reports its own image."""
    if not farm.pending:
        raise CiError("build farm has no submitted images")
    stage = pipeline.stage(name)
    for index, spec in enumerate(farm.pending):

        def run(index=index, spec=spec):
            report = farm.run()
            task = report.schedule.tasks[index]
            if not spec.success:
                detail = spec.result.error if spec.result is not None \
                    else task.error
                return 1, f"{spec.tag}: FAILED: {detail}"
            note = " [single-flight: warm replay]" if spec.deduped else ""
            return 0, (f"{spec.tag}: ok on worker {task.worker} "
                       f"({task.finish - task.start:.6f}s virtual, "
                       f"queue wait {task.queue_wait:.6f}s){note}")

        stage.jobs.append(CiJob(f"build {spec.tag}", run))
    return stage


def policy_gate_stage(pipeline: CiPipeline, gate, registry, refs, *,
                      name: str = "policy-gate") -> CiStage:
    """Add a stage that runs the supply-chain
    :class:`~repro.supply.PolicyGate` over every pushed *ref* — one job
    per image, so the pipeline report names exactly which image failed
    which policy.  Placed between push and deploy, a failing gate stops
    the pipeline before any broadcast traffic is scheduled."""
    stage = pipeline.stage(name)
    for ref in refs:

        def run(ref=ref):
            try:
                report = gate.check(registry, ref)
            except SupplyPolicyError as err:
                return 1, f"{ref}: REJECTED: " + "; ".join(err.violations)
            except ReproError as err:
                return 1, f"{ref}: audit failed: {err}"
            worst = report.worst_severity or "clean"
            return 0, (f"{ref}: pass (signed by {report.signature_key}, "
                       f"{report.package_count} packages, "
                       f"{len(report.findings)} findings, worst {worst})")

        stage.jobs.append(CiJob(f"audit {ref}", run))
    return stage


class CiServer:
    """The coordinating server: holds pipelines and their history.

    An attached ``tracer`` propagates to pipelines created through
    :meth:`new_pipeline` (and to untraced pipelines at trigger time)."""

    def __init__(self, name: str = "gitlab"):
        self.name = name
        self.history: list[PipelineResult] = []
        self.tracer = None

    def new_pipeline(self, name: str) -> CiPipeline:
        return CiPipeline(name, tracer=self.tracer)

    def trigger(self, pipeline: CiPipeline) -> PipelineResult:
        if pipeline.tracer is None:
            pipeline.tracer = self.tracer
        result = pipeline.run()
        self.history.append(result)
        return result
