"""A GitLab-like CI substrate.

Paper §5.3.3: a production application "has integrated Charliecloud
container build into its CI pipeline using a sequence of three Dockerfiles
... Build and validate both run on supercomputer compute nodes using normal
jobs, and the pipeline is coordinated by a separate GitLab server."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ReproError
from ..obs.trace import maybe_span

__all__ = ["CiJob", "CiStage", "CiPipeline", "CiServer", "CiError",
           "warm_cache_stage"]


class CiError(ReproError):
    """Pipeline definition or execution failure."""


@dataclass
class CiJob:
    """One CI job: a callable returning (status, output)."""

    name: str
    run: Callable[[], tuple[int, str]]
    status: Optional[int] = None
    output: str = ""

    @property
    def passed(self) -> bool:
        return self.status == 0


@dataclass
class CiStage:
    """One pipeline stage; all jobs must pass before the next stage runs."""

    name: str
    jobs: list[CiJob] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(j.passed for j in self.jobs)


@dataclass
class PipelineResult:
    pipeline: "CiPipeline"
    passed: bool
    failed_stage: Optional[str] = None

    def report(self) -> str:
        lines = [f"pipeline {self.pipeline.name}: "
                 f"{'passed' if self.passed else 'FAILED'}"]
        for stage in self.pipeline.stages:
            for job in stage.jobs:
                mark = {True: "ok", False: "FAIL", None: "skipped"}[
                    job.passed if job.status is not None else None]
                lines.append(f"  [{stage.name}] {job.name}: {mark}")
        return "\n".join(lines)


@dataclass
class CiPipeline:
    """An ordered sequence of stages.

    ``tracer`` is an optional :class:`~repro.obs.SyscallTracer`; when set,
    the run is recorded as pipeline/stage/job spans (the deploy phases of
    the §4.2 Astra workflow show up in the same trace as the build)."""

    name: str
    stages: list[CiStage] = field(default_factory=list)
    tracer: Optional[object] = None

    def stage(self, name: str) -> CiStage:
        s = CiStage(name)
        self.stages.append(s)
        return s

    def run(self) -> PipelineResult:
        with maybe_span(self.tracer, f"pipeline {self.name}",
                        "pipeline") as psp:
            for stage in self.stages:
                if not stage.jobs:
                    raise CiError(f"stage {stage.name!r} has no jobs")
                with maybe_span(self.tracer, f"stage {stage.name}",
                                "stage") as ssp:
                    for job in stage.jobs:
                        with maybe_span(self.tracer, f"job {job.name}",
                                        "job") as jsp:
                            job.status, job.output = job.run()
                            if jsp is not None and not job.passed:
                                jsp.fail(f"exited with {job.status}")
                    if ssp is not None and not stage.passed:
                        ssp.fail("stage failed")
                if not stage.passed:
                    if psp is not None:
                        psp.fail(f"failed at stage {stage.name}")
                    return PipelineResult(self, False,
                                          failed_stage=stage.name)
            return PipelineResult(self, True)


def warm_cache_stage(pipeline: CiPipeline, builders, registry, ref, *,
                     name: str = "warm-cache") -> CiStage:
    """Add a stage that pre-seeds every builder's build cache from a
    registry cache export (the BuildKit ``cache-from`` pattern).

    Each *builder* is a :class:`~repro.core.ChImage` with its cache
    enabled; one job per builder imports the manifest pushed under *ref*,
    so the build jobs of later stages hit on every unchanged instruction
    instead of re-running it on the worker."""
    stage = pipeline.stage(name)
    for builder in builders:
        host = builder.machine.hostname

        def run(builder=builder, host=host):
            if builder.cache is None:
                return 1, f"{host}: build cache disabled"
            try:
                n = builder.cache.import_from_registry(registry, ref)
            except ReproError as err:
                return 1, f"{host}: cache import failed: {err}"
            return 0, f"{host}: imported {n} cache records"

        stage.jobs.append(CiJob(f"{name} {host}", run))
    return stage


class CiServer:
    """The coordinating server: holds pipelines and their history.

    An attached ``tracer`` propagates to pipelines created through
    :meth:`new_pipeline` (and to untraced pipelines at trigger time)."""

    def __init__(self, name: str = "gitlab"):
        self.name = name
        self.history: list[PipelineResult] = []
        self.tracer = None

    def new_pipeline(self, name: str) -> CiPipeline:
        return CiPipeline(name, tracer=self.tracer)

    def trigger(self, pipeline: CiPipeline) -> PipelineResult:
        if pipeline.tracer is None:
            pipeline.tracer = self.tracer
        result = pipeline.run()
        self.history.append(result)
        return result
