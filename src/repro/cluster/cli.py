"""An srun-flavoured deploy front end for the Astra workflow.

``astra_deploy_cli(cluster, argv)`` mirrors what a site wrapper script
around ``podman build && podman push && srun ch-run ...`` looks like, with
the distribution strategy exposed the way the paper's §6.3 impact story
needs it benchmarked::

    astra-deploy [--deploy-strategy {registry,tree,off}] [--nodes N]
                 [--runtime {charliecloud,singularity}] [--cached]
                 [--parallelism N] -t TAG -f DOCKERFILE USER

Returns ``(exit_status, output_text)`` like the other CLI shims.
"""

from __future__ import annotations

from ..errors import KernelError, ReproError
from ..kernel import Syscalls
from .astra import (
    AstraCluster,
    astra_build_workflow,
    astra_cached_build_workflow,
)
from .broadcast import DEPLOY_STRATEGIES

__all__ = ["astra_deploy_cli"]

_USAGE = ("usage: astra-deploy [--deploy-strategy {registry,tree,off}] "
          "[--nodes N] [--runtime RT] [--cached] [--parallelism N] "
          "-t TAG -f DOCKERFILE USER")


def astra_deploy_cli(cluster: AstraCluster, argv: list[str]
                     ) -> tuple[int, str]:
    strategy: str | None = "tree"
    n_nodes = 2
    runtime = "charliecloud"
    cached = False
    parallelism = 1
    tag = ""
    dockerfile_path = ""
    user = ""
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--deploy-strategy":
            i += 1
            if i >= len(argv):
                return 1, "astra-deploy: --deploy-strategy needs a value"
            strategy = argv[i]
        elif a.startswith("--deploy-strategy="):
            strategy = a.split("=", 1)[1]
        elif a == "--nodes":
            i += 1
            if i >= len(argv):
                return 1, "astra-deploy: --nodes needs a value"
            try:
                n_nodes = int(argv[i])
            except ValueError:
                return 1, f"astra-deploy: bad node count {argv[i]!r}"
        elif a == "--runtime":
            i += 1
            if i >= len(argv):
                return 1, "astra-deploy: --runtime needs a value"
            runtime = argv[i]
        elif a == "--cached":
            cached = True
        elif a == "--parallelism" or a.startswith("--parallelism="):
            if a == "--parallelism":
                i += 1
                value = argv[i] if i < len(argv) else ""
            else:
                value = a.split("=", 1)[1]
            if not value.isdigit() or int(value) < 1:
                return 1, f"astra-deploy: bad --parallelism value {value!r}"
            parallelism = int(value)
        elif a == "-t":
            i += 1
            tag = argv[i] if i < len(argv) else ""
        elif a == "-f":
            i += 1
            dockerfile_path = argv[i] if i < len(argv) else ""
        elif a.startswith("-"):
            return 1, f"astra-deploy: unknown option {a!r}\n{_USAGE}"
        else:
            user = a
        i += 1
    if not (tag and dockerfile_path and user):
        return 1, _USAGE
    if strategy == "off":
        strategy = None
    elif strategy not in DEPLOY_STRATEGIES:
        return 1, (f"astra-deploy: unknown strategy {strategy!r} "
                   f"(choose from {', '.join(DEPLOY_STRATEGIES)}, off)")
    if user not in cluster.login.users:
        return 1, f"astra-deploy: no account {user!r} on the login node"

    login_proc = cluster.login.login(user)
    try:
        dockerfile = Syscalls(login_proc).read_file(dockerfile_path).decode()
    except KernelError as err:
        return 1, (f"astra-deploy: can't read {dockerfile_path}: "
                   f"{err.strerror}")

    if parallelism > 1 and not cached:
        return 1, ("astra-deploy: --parallelism needs --cached "
                   "(the podman path has no parallel build engine)")
    workflow = astra_cached_build_workflow if cached \
        else astra_build_workflow
    kwargs = {"build_parallelism": parallelism} if cached \
        else {"runtime": runtime}
    try:
        report = workflow(cluster, user, dockerfile, tag,
                          n_nodes=n_nodes, deploy_strategy=strategy,
                          **kwargs)
    except ReproError as err:
        return 1, f"astra-deploy: {err}"

    lines = list(report.phases)
    if report.build_parallelism > 1:
        lines.append(
            f"build makespan: {report.build_makespan * 1e3:.3f} ms on "
            f"{report.build_parallelism} workers (critical path "
            f"{report.build_critical_path * 1e3:.3f} ms)")
    if report.distribution is not None:
        d = report.distribution.as_dict()
        lines.append(
            f"distribution [{d['strategy']}]: "
            f"{d['registry_blobs_pulled']} registry pulls "
            f"({d['registry_egress_bytes']} B egress), "
            f"{d['peer_sends']} peer sends ({d['peer_bytes']} B), "
            f"{d['blobs_skipped']} dedup skips")
        lines.append(f"makespan: {report.deploy_makespan * 1e3:.1f} ms")
        busiest = max(
            report.link_utilization.items(),
            key=lambda kv: kv[1]["busy_tx_seconds"], default=None)
        if busiest is not None:
            name, stats = busiest
            lines.append(
                f"busiest link: {name} "
                f"(tx {stats['bytes_tx']} B, "
                f"busy {stats['busy_tx_seconds'] * 1e3:.1f} ms, "
                f"{stats['byte_seconds']:.3f} B·s)")
    return (0 if report.success else 1), "\n".join(lines)
