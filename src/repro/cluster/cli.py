"""An srun-flavoured deploy front end for the Astra workflow.

``astra_deploy_cli(cluster, argv)`` mirrors what a site wrapper script
around ``podman build && podman push && srun ch-run ...`` looks like, with
the distribution strategy exposed the way the paper's §6.3 impact story
needs it benchmarked::

    astra-deploy [--deploy-strategy {registry,tree,off}] [--nodes N]
                 [--runtime {charliecloud,singularity}] [--cached]
                 [--parallelism N] [--fault-plan SPEC] [--retries N]
                 [--registry-shards N] [--replicas R]
                 -t TAG -f DOCKERFILE USER

``--fault-plan`` takes a :meth:`repro.sim.FaultPlan.parse` spec (e.g.
``seed=7,link-loss=0.1,flake=0:0.05``); ``--retries`` caps the retry
budget per transient failure.  Returns ``(exit_status, output_text)``
like the other CLI shims.

Whole image *families* go through ``astra-matrix`` instead
(:func:`~repro.matrix.cli.astra_matrix_cli`, re-exported here): a
build-matrix spec file in place of ``-t``/``-f``, the same
``--parallelism`` / ``--registry-shards`` / ``--fault-plan`` knobs.
"""

from __future__ import annotations

from ..errors import KernelError, ReproError
from ..kernel import Syscalls
from ..matrix.cli import astra_matrix_cli
from ..sim import FaultPlan, FaultPlanError, RetryPolicy
from .astra import (
    AstraCluster,
    astra_build_workflow,
    astra_cached_build_workflow,
)
from .broadcast import DEPLOY_STRATEGIES

__all__ = ["astra_deploy_cli", "astra_matrix_cli"]

_USAGE = ("usage: astra-deploy [--deploy-strategy {registry,tree,off}] "
          "[--nodes N] [--runtime RT] [--cached] [--parallelism N] "
          "[--fault-plan SPEC] [--retries N] [--registry-shards N] "
          "[--replicas R] -t TAG -f DOCKERFILE USER")


def astra_deploy_cli(cluster: AstraCluster, argv: list[str]
                     ) -> tuple[int, str]:
    strategy: str | None = "tree"
    n_nodes = 2
    runtime = "charliecloud"
    cached = False
    parallelism = 1
    fault_spec: str | None = None
    retries: int | None = None
    registry_shards = 1
    replicas = 1
    tag = ""
    dockerfile_path = ""
    user = ""
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--deploy-strategy":
            i += 1
            if i >= len(argv):
                return 1, "astra-deploy: --deploy-strategy needs a value"
            strategy = argv[i]
        elif a.startswith("--deploy-strategy="):
            strategy = a.split("=", 1)[1]
        elif a == "--nodes":
            i += 1
            if i >= len(argv):
                return 1, "astra-deploy: --nodes needs a value"
            try:
                n_nodes = int(argv[i])
            except ValueError:
                return 1, f"astra-deploy: bad node count {argv[i]!r}"
        elif a == "--runtime":
            i += 1
            if i >= len(argv):
                return 1, "astra-deploy: --runtime needs a value"
            runtime = argv[i]
        elif a == "--cached":
            cached = True
        elif a == "--parallelism" or a.startswith("--parallelism="):
            if a == "--parallelism":
                i += 1
                value = argv[i] if i < len(argv) else ""
            else:
                value = a.split("=", 1)[1]
            if not value.isdigit() or int(value) < 1:
                return 1, f"astra-deploy: bad --parallelism value {value!r}"
            parallelism = int(value)
        elif a == "--fault-plan" or a.startswith("--fault-plan="):
            if a == "--fault-plan":
                i += 1
                if i >= len(argv):
                    return 1, "astra-deploy: --fault-plan needs a value"
                fault_spec = argv[i]
            else:
                fault_spec = a.split("=", 1)[1]
        elif a == "--retries" or a.startswith("--retries="):
            if a == "--retries":
                i += 1
                value = argv[i] if i < len(argv) else ""
            else:
                value = a.split("=", 1)[1]
            if not value.isdigit():
                return 1, f"astra-deploy: bad --retries value {value!r}"
            retries = int(value)
        elif a == "--registry-shards" or a.startswith("--registry-shards="):
            if a == "--registry-shards":
                i += 1
                value = argv[i] if i < len(argv) else ""
            else:
                value = a.split("=", 1)[1]
            if not value.isdigit() or int(value) < 1:
                return 1, (f"astra-deploy: bad --registry-shards value "
                           f"{value!r}")
            registry_shards = int(value)
        elif a == "--replicas" or a.startswith("--replicas="):
            if a == "--replicas":
                i += 1
                value = argv[i] if i < len(argv) else ""
            else:
                value = a.split("=", 1)[1]
            if not value.isdigit() or int(value) < 1:
                return 1, f"astra-deploy: bad --replicas value {value!r}"
            replicas = int(value)
        elif a == "-t":
            i += 1
            tag = argv[i] if i < len(argv) else ""
        elif a == "-f":
            i += 1
            dockerfile_path = argv[i] if i < len(argv) else ""
        elif a.startswith("-"):
            return 1, f"astra-deploy: unknown option {a!r}\n{_USAGE}"
        else:
            user = a
        i += 1
    if not (tag and dockerfile_path and user):
        return 1, _USAGE
    if strategy == "off":
        strategy = None
    elif strategy not in DEPLOY_STRATEGIES:
        return 1, (f"astra-deploy: unknown strategy {strategy!r} "
                   f"(choose from {', '.join(DEPLOY_STRATEGIES)}, off)")
    if replicas > registry_shards:
        return 1, (f"astra-deploy: --replicas {replicas} exceeds "
                   f"--registry-shards {registry_shards}")
    if user not in cluster.login.users:
        return 1, f"astra-deploy: no account {user!r} on the login node"
    fault_plan = None
    retry_policy = None
    if fault_spec is not None:
        try:
            fault_plan = FaultPlan.parse(fault_spec)
        except FaultPlanError as err:
            return 1, f"astra-deploy: {err}"
    if retries is not None:
        retry_policy = RetryPolicy(
            budget=retries,
            seed=fault_plan.seed if fault_plan is not None else 0)

    login_proc = cluster.login.login(user)
    try:
        dockerfile = Syscalls(login_proc).read_file(dockerfile_path).decode()
    except KernelError as err:
        return 1, (f"astra-deploy: can't read {dockerfile_path}: "
                   f"{err.strerror}")

    if parallelism > 1 and not cached:
        return 1, ("astra-deploy: --parallelism needs --cached "
                   "(the podman path has no parallel build engine)")
    workflow = astra_cached_build_workflow if cached \
        else astra_build_workflow
    kwargs = {"build_parallelism": parallelism} if cached \
        else {"runtime": runtime}
    try:
        report = workflow(cluster, user, dockerfile, tag,
                          n_nodes=n_nodes, deploy_strategy=strategy,
                          registry_shards=registry_shards,
                          registry_replicas=replicas,
                          fault_plan=fault_plan, retry_policy=retry_policy,
                          **kwargs)
    except ReproError as err:
        return 1, f"astra-deploy: {err}"

    lines = list(report.phases)
    fleet = cluster.world.site_registry
    if report.registry_shards > 1 and hasattr(fleet, "report"):
        f = fleet.report()
        lines.append(
            f"fleet: {f['shards']} shards x {f['replicas']} replicas, "
            f"hit ratio {f['hit_ratio']:.3f}, "
            f"rebalance {f['rebalance_bytes']} B")
    if report.build_parallelism > 1:
        lines.append(
            f"build makespan: {report.build_makespan * 1e3:.3f} ms on "
            f"{report.build_parallelism} workers (critical path "
            f"{report.build_critical_path * 1e3:.3f} ms)")
    if report.distribution is not None:
        d = report.distribution.as_dict()
        lines.append(
            f"distribution [{d['strategy']}]: "
            f"{d['registry_blobs_pulled']} registry pulls "
            f"({d['registry_egress_bytes']} B egress), "
            f"{d['peer_sends']} peer sends ({d['peer_bytes']} B), "
            f"{d['blobs_skipped']} dedup skips")
        lines.append(f"makespan: {report.deploy_makespan * 1e3:.1f} ms")
        if report.faults_injected or report.degraded:
            lines.append(
                f"faults: {report.faults_injected} injected, "
                f"{report.retries} retries "
                f"({report.backoff_seconds * 1e3:.1f} ms backoff), "
                f"{d['reparented_subtrees']} reparented subtrees")
            if report.degraded_nodes:
                lines.append("degraded nodes: "
                             + ", ".join(report.degraded_nodes))
        busiest = max(
            report.link_utilization.items(),
            key=lambda kv: kv[1]["busy_tx_seconds"], default=None)
        if busiest is not None:
            name, stats = busiest
            lines.append(
                f"busiest link: {name} "
                f"(tx {stats['bytes_tx']} B, "
                f"busy {stats['busy_tx_seconds'] * 1e3:.1f} ms, "
                f"{stats['byte_seconds']:.3f} B·s)")
    return (0 if report.success else 1), "\n".join(lines)
