"""Sandboxed build systems (paper §3.2, option 1).

"One way to work around increased privileges is to create an isolated
environment specifically for image builds ... most commonly virtual
machines or bare-metal systems with no shared resources such as production
filesystems" — e.g. the Sylabs Enterprise Remote Builder.

The sandbox VM runs a privileged (Type I) builder safely: it is ephemeral,
single-user, and shares nothing.  Its *limitation* is connectivity:
"isolated build environments may not be able to access needed resources,
such as private code or licenses" — modelled by blocking site-internal
repositories from the VM's network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..archive import TarArchive
from ..containers.buildah import BuildResult
from ..containers.docker import DockerDaemon
from ..containers.oci import ImageConfig
from ..errors import ReproError
from ..net import Network
from .machines import Machine, make_machine
from .world import HUB, World

__all__ = ["EphemeralVmBuilder", "SandboxBuild", "SandboxError"]

_vm_ids = itertools.count(1)


class SandboxError(ReproError):
    """Sandbox provisioning or build failure."""


@dataclass
class SandboxBuild:
    """Outcome of one sandboxed build."""

    result: BuildResult
    config: Optional[ImageConfig] = None
    layers: list[TarArchive] = field(default_factory=list)
    vm_hostname: str = ""

    @property
    def success(self) -> bool:
        return self.result.success


class EphemeralVmBuilder:
    """A remote-builder service: per-build throwaway VMs on the public
    network."""

    def __init__(self, world: World, *, arch: str = "x86_64"):
        self.world = world
        self.arch = arch
        self.vms_provisioned = 0

    def _provision(self) -> Machine:
        """Boot a fresh single-user VM with public connectivity only."""
        self.vms_provisioned += 1
        network = Network(
            universe=self.world.network.universe,
            registries={HUB: self.world.hub},
            blocked_repo_prefixes=("site/",),
        )
        return make_machine(f"buildvm{next(_vm_ids)}", arch=self.arch,
                            network=network, users={"builder": 1000})

    def build(self, dockerfile: str, tag: str) -> SandboxBuild:
        """Build in a fresh VM with a root builder (safe: nothing shared),
        returning the image for the caller to push wherever they can."""
        vm = self._provision()
        # Privileged build is a "reasonable choice" here (§2): the VM is
        # isolated, so Type I does not endanger shared resources.
        daemon = DockerDaemon(vm, docker_group={1000})
        builder = vm.login("builder")
        result = daemon.build(builder, dockerfile, tag)
        build = SandboxBuild(result=result, vm_hostname=vm.hostname)
        if result.success:
            image = daemon.images[tag]
            build.config = image.config
            build.layers = list(image.layers)
        # the VM is discarded here — ephemeral by construction
        return build
