"""A Slurm-like resource manager over a set of compute nodes.

Jobs are Python callables run per-node (simulated parallelism: the
scheduler executes ranks sequentially but tracks allocation, accounting,
and per-node results).  The paper's deployment story needs exactly this:
"the container image built on the supercomputer can be deployed in
parallel using the local resource management tool and an HPC container
runtime" (§4.2), and jobs must be *children of the shell*, not of a daemon
(§3.1) — which the scheduler asserts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import ReproError
from ..kernel import Process
from .machines import Machine

__all__ = ["Job", "JobResult", "Scheduler", "SchedulerError"]


class SchedulerError(ReproError):
    """Allocation or submission failure."""


@dataclass
class JobResult:
    """Per-job outcome."""

    job_id: int
    nodes: list[str]
    rank_outputs: list[str]
    rank_statuses: list[int]

    @property
    def success(self) -> bool:
        return all(s == 0 for s in self.rank_statuses)

    @property
    def output(self) -> str:
        return "".join(self.rank_outputs)


@dataclass
class Job:
    """A submitted job: *fn(node_machine, rank, user_proc) -> (status, out)*."""

    job_id: int
    user: str
    nodes_wanted: int
    fn: Callable[[Machine, int, Process], tuple[int, str]]


class Scheduler:
    """FIFO scheduler over homogeneous compute nodes."""

    def __init__(self, compute_nodes: Sequence[Machine]):
        if not compute_nodes:
            raise SchedulerError("no compute nodes")
        self.nodes = list(compute_nodes)
        self._job_ids = itertools.count(1)
        self.completed: list[JobResult] = []

    def srun(
        self,
        user: str,
        nodes: int,
        fn: Callable[[Machine, int, Process], tuple[int, str]],
    ) -> JobResult:
        """Allocate *nodes* nodes and run *fn* once per node (one rank per
        node).  The job processes are children of the user's login process
        on each node — no daemon in the chain."""
        if nodes > len(self.nodes):
            raise SchedulerError(
                f"requested {nodes} nodes but only {len(self.nodes)} exist")
        job = Job(next(self._job_ids), user, nodes, fn)
        allocated = self.nodes[:nodes]
        outputs: list[str] = []
        statuses: list[int] = []
        for rank, node in enumerate(allocated):
            if user not in node.users:
                raise SchedulerError(f"user {user!r} has no account on "
                                     f"{node.hostname}")
            login = node.login(user)
            status, out = fn(node, rank, login)
            # §3.1 property: the job is a descendant of the login shell.
            assert any(p.ppid == login.pid or p.pid == login.pid
                       for p in node.kernel.processes.values()), \
                "job must descend from the user shell"
            outputs.append(out)
            statuses.append(status)
        result = JobResult(job.job_id, [n.hostname for n in allocated],
                           outputs, statuses)
        self.completed.append(result)
        return result
