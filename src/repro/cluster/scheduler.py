"""A Slurm-like resource manager over a set of compute nodes.

Jobs are Python callables run per-node (one rank per node).  The paper's
deployment story needs exactly this: "the container image built on the
supercomputer can be deployed in parallel using the local resource
management tool and an HPC container runtime" (§4.2), and jobs must be
*children of the shell*, not of a daemon (§3.1) — which the scheduler
**enforces** (raises, never a bare ``assert`` — the invariant must
survive ``python -O``).

Two execution modes:

* ``sequential`` (default) — ranks run one after another, exactly the
  original semantics.  Build paths and all golden transcripts use this.
* ``simulated`` — ranks still execute deterministically one at a time in
  Python, but their *events* are interleaved on a shared
  :class:`~repro.sim.SimEngine`: each rank starts at its readiness time
  (e.g. when the broadcast distributor delivered its blobs), its compute
  cost is its node-kernel tick delta scaled by ``tick_seconds``, and the
  job reports a **makespan** — the §6.3 quantity a for-loop cannot show.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

from ..errors import ReproError
from ..kernel import Process
from ..sim import FaultPlan, SimEngine
from .machines import Machine

__all__ = ["DEFAULT_TICK_SECONDS", "Job", "JobResult", "Scheduler",
           "SchedulerError"]

#: One simulated kernel tick of per-rank compute, in virtual seconds.
#: Deliberately small next to default link transfer times so deploy
#: makespans are transfer-dominated (the §4.2 regime of interest).
DEFAULT_TICK_SECONDS = 1e-7


class SchedulerError(ReproError):
    """Allocation, submission, or job-invariant failure."""


@dataclass
class JobResult:
    """Per-job outcome and accounting.

    ``rank_starts`` / ``rank_finishes`` are virtual times (simulated mode
    only); ``error`` is set when the job aborted mid-run — the partial
    result is still recorded so the allocation is accounted for.
    ``skipped`` lists allocated nodes whose rank never launched (crashed
    or dropped by a degraded distribution): the job is *degraded* but can
    still succeed on the survivors.
    """

    job_id: int
    nodes: list[str]
    rank_outputs: list[str]
    rank_statuses: list[int]
    mode: str = "sequential"
    rank_starts: list[float] = field(default_factory=list)
    rank_finishes: list[float] = field(default_factory=list)
    error: str = ""
    skipped: list[str] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return (not self.error
                and len(self.rank_statuses)
                == len(self.nodes) - len(self.skipped)
                and all(s == 0 for s in self.rank_statuses))

    @property
    def degraded(self) -> bool:
        """True when any allocated node's rank never ran."""
        return bool(self.skipped)

    @property
    def output(self) -> str:
        return "".join(self.rank_outputs)

    @property
    def makespan(self) -> Optional[float]:
        """Last rank finish minus first rank start (simulated mode)."""
        if not self.rank_finishes:
            return None
        return max(self.rank_finishes) - min(self.rank_starts)


@dataclass
class Job:
    """A submitted job: *fn(node_machine, rank, user_proc) -> (status, out)*."""

    job_id: int
    user: str
    nodes_wanted: int
    fn: Callable[[Machine, int, Process], tuple[int, str]]


class Scheduler:
    """FIFO scheduler over homogeneous compute nodes."""

    def __init__(self, compute_nodes: Sequence[Machine]):
        if not compute_nodes:
            raise SchedulerError("no compute nodes")
        self.nodes = list(compute_nodes)
        self._job_ids = itertools.count(1)
        self.completed: list[JobResult] = []
        self._busy: set[str] = set()

    def free_nodes(self) -> list[str]:
        """Hostnames with no allocation in flight."""
        return [n.hostname for n in self.nodes
                if n.hostname not in self._busy]

    # -- the §3.1 invariant -------------------------------------------------------

    @staticmethod
    def _check_descends_from_shell(node: Machine, login: Process) -> None:
        """§3.1: the job must be a descendant of the user's login shell —
        no daemon may appear in the process chain.  A real error, not an
        ``assert``, so the check survives ``python -O``."""
        if not any(p.ppid == login.pid or p.pid == login.pid
                   for p in node.kernel.processes.values()):
            raise SchedulerError(
                f"§3.1 violation on {node.hostname}: job processes must "
                f"descend from the user shell (pid {login.pid}), not from "
                f"a daemon")

    # -- submission ---------------------------------------------------------------

    def srun(
        self,
        user: str,
        nodes: int,
        fn: Callable[[Machine, int, Process], tuple[int, str]],
        *,
        mode: str = "sequential",
        sim: Optional[SimEngine] = None,
        rank_ready: Union[Sequence[float], Mapping[str, float], None] = None,
        tick_seconds: float = DEFAULT_TICK_SECONDS,
        fault_plan: Optional[FaultPlan] = None,
    ) -> JobResult:
        """Allocate *nodes* nodes and run *fn* once per node (one rank per
        node).  The job processes are children of the user's login process
        on each node — no daemon in the chain.

        ``mode="simulated"`` interleaves rank events on *sim* (a
        :class:`~repro.sim.SimEngine`, created if absent): rank *k* starts
        at ``rank_ready[k]`` (or its hostname's entry; 0.0 by default) and
        finishes after its kernel-tick compute cost.  Outputs, statuses,
        and the §3.1 check are identical in both modes.

        With a *fault_plan*, a node the plan has crashed before its start
        time is **skipped** (listed in ``JobResult.skipped``) rather than
        run, as is a node a Mapping *rank_ready* omits — a degraded
        distribution drops crashed nodes from ``node_ready``, and silently
        launching them at t=0 would run ranks on data that never arrived.
        A node crashing *mid-rank* reports status 137 (killed).
        """
        if mode not in ("sequential", "simulated"):
            raise SchedulerError(f"unknown scheduling mode {mode!r}")
        if nodes > len(self.nodes):
            raise SchedulerError(
                f"requested {nodes} nodes but only {len(self.nodes)} exist")
        job = Job(next(self._job_ids), user, nodes, fn)
        allocated = self.nodes[:nodes]
        outputs: list[Optional[str]] = [None] * nodes
        statuses: list[Optional[int]] = [None] * nodes
        starts: list[float] = []
        finishes: list[float] = []
        skipped: list[str] = []
        self._busy.update(n.hostname for n in allocated)

        def run_rank(rank: int, node: Machine, start: float) -> None:
            if fault_plan is not None \
                    and fault_plan.crashed_by(node.hostname, start):
                skipped.append(node.hostname)
                return
            if user not in node.users:
                raise SchedulerError(f"user {user!r} has no account on "
                                     f"{node.hostname}")
            login = node.login(user)
            ticks_before = node.kernel.ticks
            status, out = fn(node, rank, login)
            self._check_descends_from_shell(node, login)
            if mode == "simulated":
                cost = (node.kernel.ticks - ticks_before) * tick_seconds
                crash_t = (fault_plan.crash_time(node.hostname)
                           if fault_plan is not None else None)
                if crash_t is not None and start < crash_t < start + cost:
                    # the node died under the rank: killed, partial time
                    status = 137
                    out += f"[rank {rank} killed at t={crash_t:.6f}]\n"
                    starts.append(start)
                    finishes.append(crash_t)
                else:
                    starts.append(start)
                    finishes.append(start + cost)
            outputs[rank] = out
            statuses[rank] = status

        try:
            if mode == "sequential":
                for rank, node in enumerate(allocated):
                    run_rank(rank, node, 0.0)
            else:
                engine = sim if sim is not None else SimEngine()
                for rank, node in enumerate(allocated):
                    if isinstance(rank_ready, Mapping):
                        if node.hostname not in rank_ready \
                                and fault_plan is not None:
                            # a degraded distribution dropped this node:
                            # its data never arrived, so its rank cannot
                            # launch
                            skipped.append(node.hostname)
                            continue
                        start = rank_ready.get(node.hostname, 0.0)
                    elif rank_ready is not None:
                        start = rank_ready[rank]
                    else:
                        start = 0.0
                    engine.at(start, run_rank, rank, node, start)
                engine.run()
        except Exception as err:
            # the partial result is still accounting: which ranks ran,
            # what they printed, and that the allocation existed at all
            partial = JobResult(
                job.job_id, [n.hostname for n in allocated],
                [o for o in outputs if o is not None],
                [s for s in statuses if s is not None],
                mode=mode, rank_starts=starts, rank_finishes=finishes,
                error=str(err), skipped=sorted(skipped))
            self.completed.append(partial)
            raise
        finally:
            self._busy.difference_update(n.hostname for n in allocated)

        result = JobResult(job.job_id, [n.hostname for n in allocated],
                           [o for o in outputs if o is not None],
                           [s for s in statuses if s is not None],
                           mode=mode, rank_starts=starts,
                           rank_finishes=finishes, skipped=sorted(skipped))
        self.completed.append(result)
        return result
