"""Daemonless blob distribution for parallel deploy (§4.2 / §6.3).

Two strategies for getting a pushed image's blobs onto N compute nodes:

* ``registry`` — every node pulls every blob straight from the site
  registry.  Egress is O(N·image) and, since the registry has one uplink,
  makespan is O(N): the canonical fan-out bottleneck.
* ``tree`` — a **binomial-tree broadcast**: nodes that already hold a
  blob root their own trees (a forest — every pre-existing holder serves
  round 0); if nobody holds it, rank 0 pulls it from the registry *once*.
  Holders re-serve chunks to peers over node-to-node links, doubling the
  holder set every round.  Registry egress drops to O(image) and makespan
  to O(log N) at fixed link bandwidth.  Transfers are chunked and
  pipelined — a relay re-serves chunks while still receiving the tail of
  the blob — and every hop dedups against the receiving node's
  :class:`~repro.cas.ContentStore`.

Both strategies are **fault-tolerant** when given a
:class:`~repro.sim.FaultPlan`: transient failures (link-down windows,
registry flakes, slow links tripping the attempt timeout) are retried
with the :class:`~repro.sim.RetryPolicy`'s capped exponential backoff; a
relay that crashes has its unserved subtree **re-parented** onto the
earliest-ready surviving holder (tree repair); a node whose tree is
exhausted falls back to pulling straight from the registry.  The
invariant the fault tests pin down: with any plan that leaves the
registry reachable, surviving nodes converge to stores digest-identical
to the fault-free run — only the makespan degrades.

No daemon appears anywhere in the chain (§3.1): the "peers" are the
user's own job ranks re-serving bytes they already hold, exactly like the
MPI broadcast the application itself will run a moment later.  Nothing
here runs as root, persists beyond the job, or accepts work from anyone
but the job's own ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from ..containers.oci import ImageRef
from ..containers.registry import Registry
from ..errors import RegistryError, ReproError, TransientError
from ..obs.trace import maybe_span
from ..sim import (FaultPlan, RetryPolicy, SimEngine, Topology,
                   faulty_transmit, link_restore, link_snapshot)
from ..sim import opts as sim_opts
from .machines import Machine

__all__ = ["BroadcastError", "BroadcastReport", "DEPLOY_STRATEGIES",
           "TransferRecord", "binomial_children", "distribute_blobs",
           "distribute_cache", "distribute_image", "make_deploy_topology"]

DEPLOY_STRATEGIES = ("registry", "tree")


class BroadcastError(ReproError):
    """Bad strategy or missing distribution preconditions."""


def make_deploy_topology(registry: Registry, nodes: Sequence[Machine],
                         **kwargs) -> Topology:
    """A star fabric for one deployment: one uplink per endpoint, the
    registry and every node attached (``obj.netlink`` set on each).  A
    sharded fleet (anything exposing ``.shards``) gets one uplink per
    shard — there is no single origin link in a fleet."""
    topo = Topology(**kwargs)
    for endpoint in getattr(registry, "shards", None) or (registry,):
        topo.attach(endpoint)
    for node in nodes:
        topo.attach(node)
    return topo


def binomial_children(n: int) -> dict[int, list[int]]:
    """Children of each position in a binomial broadcast over *n*
    positions (0 is the root).  In round *r*, every current holder *i*
    (< 2^r) sends to *i + 2^r*; a node's children are listed in the round
    order it serves them."""
    children: dict[int, list[int]] = {i: [] for i in range(n)}
    step = 1
    while step < n:
        for i in range(step):
            if i + step < n:
                children[i].append(i + step)
        step *= 2
    return children


@dataclass
class TransferRecord:
    """One blob moving over one hop."""

    digest: str
    size: int
    src: str
    dst: str
    start: float
    end: float

    def as_dict(self) -> dict:
        return {"digest": self.digest[:19], "size": self.size,
                "src": self.src, "dst": self.dst,
                "start": round(self.start, 9), "end": round(self.end, 9)}


@dataclass
class BroadcastReport:
    """What one distribution did, and when everything landed."""

    strategy: str
    blobs: int = 0
    image_bytes: int = 0             # Σ blob sizes (one copy)
    registry_egress_bytes: int = 0   # bytes that left the registry
    registry_blobs_pulled: int = 0
    peer_bytes: int = 0              # bytes moved node-to-node
    peer_sends: int = 0
    blobs_skipped: int = 0           # (node, blob) pairs already local
    node_ready: dict[str, float] = field(default_factory=dict)
    transfers: list[TransferRecord] = field(default_factory=list)
    started_at: float = 0.0
    # fault-path accounting (all zero on a clean run)
    attempts: int = 0                # transfer/pull attempts incl. retries
    retries: int = 0
    backoff_seconds: float = 0.0     # virtual seconds spent backing off
    faults_injected: int = 0         # faults this distribution observed
    reparented_subtrees: int = 0     # children moved off a dead relay
    registry_fallbacks: int = 0      # nodes whose tree was exhausted
    crashed: list[str] = field(default_factory=list)
    degraded: list[str] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Virtual seconds from distribution start until the last node
        held every blob."""
        if not self.node_ready:
            return 0.0
        return max(self.node_ready.values()) - self.started_at

    @property
    def clean(self) -> bool:
        """True when no fault touched this distribution."""
        return not (self.faults_injected or self.crashed or self.degraded)

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "blobs": self.blobs,
            "image_bytes": self.image_bytes,
            "registry_egress_bytes": self.registry_egress_bytes,
            "registry_blobs_pulled": self.registry_blobs_pulled,
            "peer_bytes": self.peer_bytes,
            "peer_sends": self.peer_sends,
            "blobs_skipped": self.blobs_skipped,
            "makespan": round(self.makespan, 9),
            "node_ready": {h: round(t, 9)
                           for h, t in sorted(self.node_ready.items())},
            "transfers": len(self.transfers),
            "attempts": self.attempts,
            "retries": self.retries,
            "backoff_seconds": round(self.backoff_seconds, 9),
            "faults_injected": self.faults_injected,
            "reparented_subtrees": self.reparented_subtrees,
            "registry_fallbacks": self.registry_fallbacks,
            "crashed": list(self.crashed),
            "degraded": list(self.degraded),
        }


class _CastContext:
    """Everything the per-blob casts share for one distribution."""

    def __init__(self, registry, nodes, topology, reg_link, chunk, engine,
                 report, tracer, plan, policy):
        self.registry = registry
        self.nodes = nodes
        self.topology = topology
        self.reg_link = reg_link
        self.chunk = chunk
        self.engine = engine
        self.report = report
        self.tracer = tracer
        self.plan = plan
        self.policy = policy
        self.crashed: set[str] = set()    # hostnames whose crash manifested
        self.degraded: set[str] = set()   # gave up: no path to the blob
        # Event coalescing is only sound when the cast's tree cannot be
        # rewired mid-flight: under a live fault plan a leaf may later be
        # promoted to a relay (re-parenting) or probed for crashes by its
        # serve event, so every transfer keeps its chunk schedule there.
        self.coalesce = ((plan is None or plan.empty)
                         and sim_opts.ENABLED)

    def blob_source(self, digest: str) -> tuple[str, object]:
        """``(name, link)`` of the endpoint serving *digest*.

        A sharded fleet routes each digest to the nearest live holder on
        its ring; a plain registry is the single origin.  Raises
        :class:`~repro.errors.RegistryError` when no live shard holds the
        blob, and :class:`BroadcastError` when a single registry was never
        attached to the topology."""
        route = getattr(self.registry, "route_blob", None)
        if route is not None:
            shard = route(digest)
            return shard.hostname, self.topology.link(shard.hostname)
        if self.reg_link is None:
            raise BroadcastError(
                f"registry {self.registry.name!r} is not attached to the "
                f"deploy topology")
        return self.registry.name, self.reg_link

    def crashed_by(self, hostname: str, t: float) -> bool:
        return self.plan is not None and self.plan.crashed_by(hostname, t)

    def mark_crashed(self, hostname: str) -> None:
        if hostname not in self.crashed:
            self.crashed.add(hostname)
            self.report.faults_injected += 1


class _BlobCast:
    """One blob's journey to every node, as events on the engine.

    Fault-free this produces exactly the timings of the straight-line
    implementation (the same ``transmit`` calls in the same order); under
    a fault plan it retries, repairs the tree, and falls back to the
    registry, all deterministically.
    """

    def __init__(self, ctx: _CastContext, digest: str, size: int,
                 strategy: str):
        self.ctx = ctx
        self.digest = digest
        self.size = size
        self.strategy = strategy
        self.blob: Optional[bytes] = None
        # hostname -> machines it still owes the blob to (mutable: repair
        # re-parents subtrees by moving entries between these lists)
        self.children: dict[str, list[Machine]] = {}
        # hostname -> per-chunk arrival times (a pipelined relay) or a
        # single float (every chunk available at once: a pre-existing
        # holder, or a node whose transfer was coalesced)
        self.chunk_avail: dict[str, Union[float, list[float]]] = {}
        self.done: set[str] = set()           # hold the complete blob
        self.dead: set[str] = set()           # crashed, as seen by this cast
        self.ready_at: dict[str, float] = {}  # when the blob landed

    # -- helpers -----------------------------------------------------------

    @property
    def _r(self):
        return self.ctx.report

    def _link(self, hostname: str):
        return self.ctx.topology.link(hostname)

    def _retry_key(self, kind: str, hostname: str) -> str:
        return f"{self.digest[:19]}|{kind}|{hostname}"

    def _mark_dead(self, hostname: str) -> None:
        self.dead.add(hostname)
        self.ctx.mark_crashed(hostname)

    def _observed(self, hostname: str) -> bool:
        """Does anyone observe *hostname*'s mid-flight chunks?  A relay's
        chunk arrivals seed its children's pipelined sends; a leaf's are
        observed by nobody, so its transfer coalesces into one completion
        event (unless a fault plan could still rewire the tree)."""
        return bool(self.children.get(hostname)) or not self.ctx.coalesce

    # -- entry point -------------------------------------------------------

    def start(self) -> None:
        """Event at distribution start: plan the cast and kick it off."""
        ctx, t0 = self.ctx, self.ctx.engine.now
        live: list[Machine] = []
        for node in ctx.nodes:
            if ctx.crashed_by(node.hostname, t0):
                self._mark_dead(node.hostname)
            else:
                live.append(node)
        holders = [n for n in live if n.content_store.has(self.digest)]
        needy = [n for n in live if not n.content_store.has(self.digest)]
        self._r.blobs_skipped += len(holders)
        if not needy or self.size <= 0:
            return

        if self.strategy == "registry":
            # one pull event per node, all at t0: the §4.2 pull storm is
            # a same-timestamp flood, and the EventQueue bucket fast path
            # absorbs it without heap churn.  FIFO within the bucket
            # keeps the registry link's FIFO reservations in the same
            # order a synchronous loop would produce.
            for node in needy:
                ctx.engine.at(t0, self.pull, node, 0)
            return

        if holders:
            # per-blob dedup: every node already holding the blob roots
            # its own tree — a forest with the needy nodes interleaved
            # round-robin — and the registry is never touched for it
            self.blob = holders[0].content_store.get(self.digest)
            for k, holder in enumerate(holders):
                self.done.add(holder.hostname)
                self.ready_at[holder.hostname] = t0
                self.chunk_avail[holder.hostname] = t0
                order = [holder] + needy[k::len(holders)]
                self._plant_tree(order)
                ctx.engine.at(t0, self.serve, holder)
        else:
            # rank 0 pulls from the registry exactly once
            self._plant_tree(needy)
            self.pull(needy[0], 0)

    def _plant_tree(self, order: Sequence[Machine]) -> None:
        tree = binomial_children(len(order))
        for i, machine in enumerate(order):
            kids = [order[j] for j in tree[i]]
            if kids:
                self.children.setdefault(machine.hostname, []).extend(kids)

    # -- registry pulls (tree root, fallback, and the direct strategy) -----

    def pull(self, node: Machine, attempt: int) -> None:
        """Event: *node* pulls the blob straight from the registry."""
        ctx, host = self.ctx, node.hostname
        if host in self.done or host in self.dead:
            return
        now = ctx.engine.now
        if ctx.crashed_by(host, now):
            self._mark_dead(host)
            self._orphan(host)
            return
        try:
            src_name, src_link = self.ctx.blob_source(self.digest)
        except TransientError as exc:
            self._r.attempts += 1
            self._transient("pull", node, attempt, exc)
            return
        except RegistryError:
            # no live shard holds this blob: nothing to retry against
            ctx.degraded.add(host)
            return
        self._r.attempts += 1
        timeout = ctx.policy.attempt_timeout if ctx.plan is not None else None
        dst = self._link(host)
        snap_src, snap_dst = link_snapshot(src_link), link_snapshot(dst)
        try:
            # transmit first, fetch second: a flake during the transfer
            # must not leave the pull counted in the source's stats
            timing = faulty_transmit(
                ctx.plan, src_link, dst, self.size,
                chunk_size=ctx.chunk, available=now, now=now,
                attempt_timeout=timeout,
                record_arrivals=self._observed(host))
            blob = ctx.registry.fetch_blob(self.digest)
        except TransientError as exc:
            link_restore(src_link, snap_src)
            link_restore(dst, snap_dst)
            self._transient("pull", node, attempt, exc)
            return
        if self.blob is None:
            self.blob = blob
        self._r.registry_egress_bytes += self.size
        self._r.registry_blobs_pulled += 1
        node.content_store.put(blob)
        self._landed(node, timing, src=src_name)

    # -- peer serving ------------------------------------------------------

    def serve(self, sender: Machine) -> None:
        """Event: *sender* holds (the head of) the blob; re-serve it to
        each child, pipelining chunks as they arrived."""
        host = sender.hostname
        if host in self.dead:
            return
        if self.ctx.crashed_by(host, self.ctx.engine.now):
            self._mark_dead(host)
            self._orphan(host)
            return
        for child in list(self.children.get(host, ())):
            self.send(sender, child, 0)

    def send(self, sender: Machine, child: Machine, attempt: int) -> None:
        """One hop (possibly a retry) from *sender* to *child*."""
        ctx = self.ctx
        shost, chost = sender.hostname, child.hostname
        if chost in self.done or chost in self.dead:
            return
        now = ctx.engine.now
        if shost in self.dead or ctx.crashed_by(shost, now):
            if shost not in self.dead:
                self._mark_dead(shost)
            self._orphan(shost)
            return
        if ctx.crashed_by(chost, now):
            # the child is gone: absorb its subtree — the sender serves
            # the grandchildren directly
            self._mark_dead(chost)
            for grandchild in self._disinherit(chost):
                self.children.setdefault(shost, []).append(grandchild)
                self._r.reparented_subtrees += 1
                ctx.engine.at(now, self.send, sender, grandchild, 0)
            return
        self._r.attempts += 1
        src, dst = self._link(shost), self._link(chost)
        snap_src, snap_dst = link_snapshot(src), link_snapshot(dst)
        timeout = ctx.policy.attempt_timeout if ctx.plan is not None else None
        try:
            timing = faulty_transmit(
                ctx.plan, src, dst, self.size, chunk_size=ctx.chunk,
                available=self.chunk_avail[shost], now=now,
                attempt_timeout=timeout,
                record_arrivals=self._observed(chost))
        except TransientError as exc:
            self._transient("send", child, attempt, exc, sender=sender)
            return
        crash_t = ctx.plan.crash_time(shost) if ctx.plan is not None else None
        if crash_t is not None and now < crash_t < timing.end:
            # the sender dies mid-transfer: the chunks never complete, so
            # roll the reservations and stats back and repair the tree
            link_restore(src, snap_src)
            link_restore(dst, snap_dst)
            self._mark_dead(shost)
            self._orphan(shost)
            return
        self._landed(child, timing, src=shost, peer=True)

    def _landed(self, node: Machine, timing, *, src: str,
                peer: bool = False) -> None:
        """The blob (all chunks) reached *node*."""
        host = node.hostname
        self.done.add(host)
        if peer:
            node.content_store.put(self.blob)
            self._r.peer_bytes += self.size
            self._r.peer_sends += 1
        # a coalesced transfer (chunk_arrivals is None) means the node is
        # a leaf: it holds everything at timing.end, and should it ever
        # serve after all (it can't — coalescing is off under fault
        # plans), scalar availability gives the identical schedule
        arrivals = timing.chunk_arrivals
        self.chunk_avail[host] = arrivals if arrivals is not None \
            else timing.end
        self.ready_at[host] = timing.end
        self._r.node_ready[host] = max(
            self._r.node_ready.get(host, self._r.started_at), timing.end)
        self._r.transfers.append(TransferRecord(
            self.digest, self.size, src, host, timing.start, timing.end))
        if self.strategy == "tree" and self._observed(host):
            # the node becomes a server as soon as its first chunk lands;
            # childless nodes on a clean run never serve, so their
            # no-op serve events coalesce away entirely
            self.ctx.engine.at(timing.first_arrival, self.serve, node)

    # -- repair ------------------------------------------------------------

    def _disinherit(self, hostname: str) -> list[Machine]:
        """Remove and return *hostname*'s unserved children."""
        orphans = [c for c in self.children.pop(hostname, [])
                   if c.hostname not in self.done
                   and c.hostname not in self.dead]
        return orphans

    def _orphan(self, hostname: str) -> None:
        """Re-parent a dead relay's unserved subtree onto the
        earliest-ready surviving holder, or fall back to the registry."""
        orphans = self._disinherit(hostname)
        if not orphans:
            return
        now = self.ctx.engine.now
        survivors = [h for h in self.done
                     if h not in self.dead and h != hostname]
        parent_host = min(survivors, key=lambda h: (self.ready_at[h], h),
                          default=None)
        parent = None
        if parent_host is not None:
            parent = next(n for n in self.ctx.nodes
                          if n.hostname == parent_host)
        for child in orphans:
            self._r.reparented_subtrees += 1
            if parent is not None:
                self.children.setdefault(parent_host, []).append(child)
                self.ctx.engine.at(now, self.send, parent, child, 0)
            else:
                # tree exhausted for this child: go straight to the source
                self._r.registry_fallbacks += 1
                self.ctx.engine.at(now, self.pull, child, 0)

    # -- retries -----------------------------------------------------------

    def _transient(self, kind: str, node: Machine, attempt: int,
                   exc: TransientError, *,
                   sender: Optional[Machine] = None) -> None:
        ctx, now = self.ctx, self.ctx.engine.now
        self._r.faults_injected += 1
        if attempt < ctx.policy.budget:
            delay = ctx.policy.backoff(
                attempt, self._retry_key(kind, node.hostname))
            at = max(now + delay, exc.retry_at)
            self._r.retries += 1
            self._r.backoff_seconds += at - now
            with maybe_span(ctx.tracer, f"retry {kind} -> {node.hostname}",
                            "retry", attempt=attempt + 1,
                            backoff=round(at - now, 9), at=round(at, 9)):
                pass
            if kind == "send":
                ctx.engine.at(at, self.send, sender, node, attempt + 1)
            else:
                ctx.engine.at(at, self.pull, node, attempt + 1)
        elif kind == "send":
            # this branch of the tree is exhausted — fall back to the
            # registry rather than deadlocking the subtree
            self._r.registry_fallbacks += 1
            ctx.engine.at(now, self.pull, node, 0)
        else:
            # even the registry path is out of budget: degraded node
            ctx.degraded.add(node.hostname)


def distribute_blobs(
    registry: Registry,
    digests: Iterable[str],
    nodes: Sequence[Machine],
    topology: Topology,
    *,
    strategy: str = "tree",
    engine: Optional[SimEngine] = None,
    tracer=None,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> BroadcastReport:
    """Place every blob in *digests* into every node's ContentStore,
    timing the transfers on *topology*; returns the distribution report.

    The actual byte movement is real (each node's store ends up holding
    the blobs, digest-verified by the store itself); the timing is the
    simulated-network cost of that movement.  With a *fault_plan*, the
    plan's faults fire on the engine's clock and transfers are retried
    per *retry_policy* (default: ``RetryPolicy(seed=plan.seed)``).
    """
    if strategy not in DEPLOY_STRATEGIES:
        raise BroadcastError(
            f"unknown deploy strategy {strategy!r} "
            f"(choose from {DEPLOY_STRATEGIES})")
    engine = engine if engine is not None else SimEngine()
    digests = list(digests)
    report = BroadcastReport(strategy=strategy, blobs=len(digests),
                             started_at=engine.now)
    reg_link = (topology.link(registry.name)
                if topology.has(registry.name) else None)
    for node in nodes:
        report.node_ready[node.hostname] = engine.now

    plan = fault_plan
    if plan is not None:
        plan.bind(n.hostname for n in nodes)
        plan.bind_registry(registry.name)
    if retry_policy is None:
        retry_policy = RetryPolicy(seed=plan.seed if plan is not None else 0)
    ctx = _CastContext(registry, list(nodes), topology, reg_link,
                       topology.chunk_size, engine, report, tracer, plan,
                       retry_policy)
    installed = plan is not None and registry.fault_injector is None
    if installed:
        registry.fault_injector = plan.injector(engine.clock)
    try:
        with maybe_span(tracer, f"distribute [{strategy}]", "broadcast",
                        strategy=strategy, registry=registry.name,
                        nodes=len(nodes), blobs=len(digests)) as span:
            for digest in digests:
                size = registry.blob_size(digest)
                report.image_bytes += size
                cast = _BlobCast(ctx, digest, size, strategy)
                engine.at(engine.now, cast.start)
            engine.run()
            for host in sorted(ctx.crashed | ctx.degraded):
                report.node_ready.pop(host, None)
            report.crashed = sorted(ctx.crashed)
            report.degraded = sorted(ctx.degraded - ctx.crashed)
            if span is not None:
                span.meta["makespan"] = round(report.makespan, 9)
                span.meta["registry_egress_bytes"] = \
                    report.registry_egress_bytes
                span.meta["peer_bytes"] = report.peer_bytes
                if not report.clean:
                    span.meta["faults_injected"] = report.faults_injected
                    span.meta["retries"] = report.retries
                    span.meta["crashed"] = len(report.crashed)
    finally:
        if installed:
            registry.fault_injector = None
    _count_metrics(tracer, report)
    return report


def _count_metrics(tracer, report: BroadcastReport) -> None:
    """Link-utilization and egress counters on the tracer's metrics."""
    if tracer is None:
        return
    m = tracer.metrics
    m.count_net("deploy_distributions", 1)
    m.count_net("deploy_registry_egress_bytes",
                report.registry_egress_bytes)
    m.count_net("deploy_peer_bytes", report.peer_bytes)
    m.count_net("deploy_peer_sends", report.peer_sends)
    m.count_net("deploy_blobs_skipped", report.blobs_skipped)
    m.count_net("deploy_makespan_usec", int(report.makespan * 1e6))
    if report.faults_injected:
        m.count_net("deploy_faults_injected", report.faults_injected)
    if report.retries:
        m.count_net("deploy_retries", report.retries)
    if report.backoff_seconds:
        m.count_net("deploy_backoff_usec",
                    int(report.backoff_seconds * 1e6))
    if report.reparented_subtrees:
        m.count_net("deploy_reparented_subtrees",
                    report.reparented_subtrees)
    if report.registry_fallbacks:
        m.count_net("deploy_registry_fallbacks", report.registry_fallbacks)


def distribute_image(
    registry: Registry,
    ref: ImageRef | str,
    nodes: Sequence[Machine],
    topology: Topology,
    *,
    arch: Optional[str] = None,
    strategy: str = "tree",
    engine: Optional[SimEngine] = None,
    tracer=None,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> BroadcastReport:
    """Distribute an image's layer blobs to *nodes* ahead of deploy."""
    digests = registry.image_blob_digests(ref, arch=arch)
    return distribute_blobs(registry, digests, nodes, topology,
                            strategy=strategy, engine=engine, tracer=tracer,
                            fault_plan=fault_plan, retry_policy=retry_policy)


def distribute_cache(
    registry: Registry,
    ref: ImageRef | str,
    nodes: Sequence[Machine],
    topology: Topology,
    *,
    strategy: str = "tree",
    engine: Optional[SimEngine] = None,
    tracer=None,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> BroadcastReport:
    """Distribute a build-cache export's blobs (diffs + manifest) so each
    node's cache import is served from its local store."""
    digests = registry.cache_blob_digests(ref)
    return distribute_blobs(registry, digests, nodes, topology,
                            strategy=strategy, engine=engine, tracer=tracer,
                            fault_plan=fault_plan, retry_policy=retry_policy)
