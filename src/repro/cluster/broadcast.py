"""Daemonless blob distribution for parallel deploy (§4.2 / §6.3).

Two strategies for getting a pushed image's blobs onto N compute nodes:

* ``registry`` — every node pulls every blob straight from the site
  registry.  Egress is O(N·image) and, since the registry has one uplink,
  makespan is O(N): the canonical fan-out bottleneck.
* ``tree`` — a **binomial-tree broadcast**: rank 0 pulls each missing
  blob from the registry *once*, then nodes that hold chunks re-serve
  them to peers over node-to-node links, doubling the set of holders
  every round.  Registry egress drops to O(image) and makespan to
  O(log N) at fixed link bandwidth.  Transfers are chunked and
  pipelined — a relay re-serves chunks while still receiving the tail of
  the blob — and every hop dedups against the receiving node's
  :class:`~repro.cas.ContentStore`.

No daemon appears anywhere in the chain (§3.1): the "peers" are the
user's own job ranks re-serving bytes they already hold, exactly like the
MPI broadcast the application itself will run a moment later.  Nothing
here runs as root, persists beyond the job, or accepts work from anyone
but the job's own ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..containers.oci import ImageRef
from ..containers.registry import Registry
from ..errors import ReproError
from ..obs.trace import maybe_span
from ..sim import SimEngine, Topology, chunk_sizes, transmit
from .machines import Machine

__all__ = ["BroadcastError", "BroadcastReport", "DEPLOY_STRATEGIES",
           "TransferRecord", "binomial_children", "distribute_blobs",
           "distribute_cache", "distribute_image", "make_deploy_topology"]

DEPLOY_STRATEGIES = ("registry", "tree")


class BroadcastError(ReproError):
    """Bad strategy or missing distribution preconditions."""


def make_deploy_topology(registry: Registry, nodes: Sequence[Machine],
                         **kwargs) -> Topology:
    """A star fabric for one deployment: one uplink per endpoint, the
    registry and every node attached (``obj.netlink`` set on each)."""
    topo = Topology(**kwargs)
    topo.attach(registry)
    for node in nodes:
        topo.attach(node)
    return topo


def binomial_children(n: int) -> dict[int, list[int]]:
    """Children of each position in a binomial broadcast over *n*
    positions (0 is the root).  In round *r*, every current holder *i*
    (< 2^r) sends to *i + 2^r*; a node's children are listed in the round
    order it serves them."""
    children: dict[int, list[int]] = {i: [] for i in range(n)}
    step = 1
    while step < n:
        for i in range(step):
            if i + step < n:
                children[i].append(i + step)
        step *= 2
    return children


@dataclass
class TransferRecord:
    """One blob moving over one hop."""

    digest: str
    size: int
    src: str
    dst: str
    start: float
    end: float

    def as_dict(self) -> dict:
        return {"digest": self.digest[:19], "size": self.size,
                "src": self.src, "dst": self.dst,
                "start": round(self.start, 9), "end": round(self.end, 9)}


@dataclass
class BroadcastReport:
    """What one distribution did, and when everything landed."""

    strategy: str
    blobs: int = 0
    image_bytes: int = 0             # Σ blob sizes (one copy)
    registry_egress_bytes: int = 0   # bytes that left the registry
    registry_blobs_pulled: int = 0
    peer_bytes: int = 0              # bytes moved node-to-node
    peer_sends: int = 0
    blobs_skipped: int = 0           # (node, blob) pairs already local
    node_ready: dict[str, float] = field(default_factory=dict)
    transfers: list[TransferRecord] = field(default_factory=list)
    started_at: float = 0.0

    @property
    def makespan(self) -> float:
        """Virtual seconds from distribution start until the last node
        held every blob."""
        if not self.node_ready:
            return 0.0
        return max(self.node_ready.values()) - self.started_at

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "blobs": self.blobs,
            "image_bytes": self.image_bytes,
            "registry_egress_bytes": self.registry_egress_bytes,
            "registry_blobs_pulled": self.registry_blobs_pulled,
            "peer_bytes": self.peer_bytes,
            "peer_sends": self.peer_sends,
            "blobs_skipped": self.blobs_skipped,
            "makespan": round(self.makespan, 9),
            "node_ready": {h: round(t, 9)
                           for h, t in sorted(self.node_ready.items())},
            "transfers": len(self.transfers),
        }


def distribute_blobs(
    registry: Registry,
    digests: Iterable[str],
    nodes: Sequence[Machine],
    topology: Topology,
    *,
    strategy: str = "tree",
    engine: Optional[SimEngine] = None,
    tracer=None,
) -> BroadcastReport:
    """Place every blob in *digests* into every node's ContentStore,
    timing the transfers on *topology*; returns the distribution report.

    The actual byte movement is real (each node's store ends up holding
    the blobs, digest-verified by the store itself); the timing is the
    simulated-network cost of that movement.
    """
    if strategy not in DEPLOY_STRATEGIES:
        raise BroadcastError(
            f"unknown deploy strategy {strategy!r} "
            f"(choose from {DEPLOY_STRATEGIES})")
    engine = engine if engine is not None else SimEngine()
    digests = list(digests)
    report = BroadcastReport(strategy=strategy, blobs=len(digests),
                             started_at=engine.now)
    reg_link = topology.link(registry.name)
    for node in nodes:
        report.node_ready[node.hostname] = engine.now
    chunk = topology.chunk_size

    with maybe_span(tracer, f"distribute [{strategy}]", "broadcast",
                    strategy=strategy, registry=registry.name,
                    nodes=len(nodes), blobs=len(digests)) as span:
        for digest in digests:
            size = registry.blob_size(digest)
            report.image_bytes += size
            if strategy == "registry":
                _registry_direct(registry, digest, size, nodes, topology,
                                 reg_link, chunk, report, tracer)
            else:
                _tree_broadcast(registry, digest, size, nodes, topology,
                                reg_link, chunk, engine, report, tracer)
        engine.run()
        if span is not None:
            span.meta["makespan"] = round(report.makespan, 9)
            span.meta["registry_egress_bytes"] = report.registry_egress_bytes
            span.meta["peer_bytes"] = report.peer_bytes
    _count_metrics(tracer, report)
    return report


def _registry_direct(registry, digest, size, nodes, topology, reg_link,
                     chunk, report, tracer) -> None:
    """O(N) fan-out: every needy node pulls from the registry uplink."""
    t0 = report.started_at
    for node in nodes:
        if node.content_store.has(digest):
            report.blobs_skipped += 1
            continue
        blob = registry.fetch_blob(digest)
        report.registry_egress_bytes += size
        report.registry_blobs_pulled += 1
        timing = transmit(reg_link, topology.link(node.hostname), size,
                          chunk_size=chunk, available=t0)
        node.content_store.put(blob)
        report.node_ready[node.hostname] = max(
            report.node_ready[node.hostname], timing.end)
        report.transfers.append(TransferRecord(
            digest, size, registry.name, node.hostname,
            timing.start, timing.end))


def _tree_broadcast(registry, digest, size, nodes, topology, reg_link,
                    chunk, engine, report, tracer) -> None:
    """O(log N) binomial broadcast with chunk-pipelined relaying."""
    holders = [n for n in nodes if n.content_store.has(digest)]
    needy = [n for n in nodes if not n.content_store.has(digest)]
    report.blobs_skipped += len(holders)
    if not needy or size <= 0:
        return
    t0 = report.started_at
    # chunk availability times at each participant, filled as blobs land
    chunk_avail: dict[str, list[float]] = {}

    if holders:
        # per-blob dedup: a node already holding the blob roots its tree —
        # the registry is never touched for this blob
        order = [holders[0]] + needy
        root = holders[0]
        chunk_avail[root.hostname] = [t0] * len(chunk_sizes(size, chunk))
        blob = root.content_store.get(digest)
    else:
        # rank 0 pulls from the registry exactly once
        root = needy[0]
        order = needy
        blob = registry.fetch_blob(digest)
        report.registry_egress_bytes += size
        report.registry_blobs_pulled += 1
        timing = transmit(reg_link, topology.link(root.hostname), size,
                          chunk_size=chunk, available=t0)
        root.content_store.put(blob)
        chunk_avail[root.hostname] = timing.chunk_arrivals
        report.node_ready[root.hostname] = max(
            report.node_ready[root.hostname], timing.end)
        report.transfers.append(TransferRecord(
            digest, size, registry.name, root.hostname,
            timing.start, timing.end))

    children = binomial_children(len(order))
    by_pos = {i: n for i, n in enumerate(order)}
    pos_of = {n.hostname: i for i, n in enumerate(order)}

    def serve(sender: Machine) -> None:
        """Event: *sender* now holds (the head of) the blob; re-serve it
        to each binomial child, pipelining chunks as they arrived."""
        avail = chunk_avail[sender.hostname]
        for child_pos in children[pos_of[sender.hostname]]:
            dst = by_pos[child_pos]
            timing = transmit(topology.link(sender.hostname),
                              topology.link(dst.hostname), size,
                              chunk_size=chunk, available=avail)
            dst.content_store.put(blob)
            chunk_avail[dst.hostname] = timing.chunk_arrivals
            report.node_ready[dst.hostname] = max(
                report.node_ready[dst.hostname], timing.end)
            report.peer_bytes += size
            report.peer_sends += 1
            report.transfers.append(TransferRecord(
                digest, size, sender.hostname, dst.hostname,
                timing.start, timing.end))
            # the child becomes a server as soon as its first chunk lands
            engine.at(timing.chunk_arrivals[0], serve, dst)

    engine.at(chunk_avail[root.hostname][0], serve, root)


def _count_metrics(tracer, report: BroadcastReport) -> None:
    """Link-utilization and egress counters on the tracer's metrics."""
    if tracer is None:
        return
    m = tracer.metrics
    m.count_net("deploy_distributions", 1)
    m.count_net("deploy_registry_egress_bytes",
                report.registry_egress_bytes)
    m.count_net("deploy_peer_bytes", report.peer_bytes)
    m.count_net("deploy_peer_sends", report.peer_sends)
    m.count_net("deploy_blobs_skipped", report.blobs_skipped)
    m.count_net("deploy_makespan_usec", int(report.makespan * 1e6))


def distribute_image(
    registry: Registry,
    ref: ImageRef | str,
    nodes: Sequence[Machine],
    topology: Topology,
    *,
    arch: Optional[str] = None,
    strategy: str = "tree",
    engine: Optional[SimEngine] = None,
    tracer=None,
) -> BroadcastReport:
    """Distribute an image's layer blobs to *nodes* ahead of deploy."""
    digests = registry.image_blob_digests(ref, arch=arch)
    return distribute_blobs(registry, digests, nodes, topology,
                            strategy=strategy, engine=engine, tracer=tracer)


def distribute_cache(
    registry: Registry,
    ref: ImageRef | str,
    nodes: Sequence[Machine],
    topology: Topology,
    *,
    strategy: str = "tree",
    engine: Optional[SimEngine] = None,
    tracer=None,
) -> BroadcastReport:
    """Distribute a build-cache export's blobs (diffs + manifest) so each
    node's cache import is served from its local store."""
    digests = registry.cache_blob_digests(ref)
    return distribute_blobs(registry, digests, nodes, topology,
                            strategy=strategy, engine=engine, tracer=tracer)
