"""The Astra container DevOps workflow (paper §4.2, Figure 6).

Astra was the first Arm supercomputer on the Top500; x86-64 images simply
do not execute there, so images must be built *on the machine*.  The
workflow: ``podman build`` on a login node → push to the site GitLab
container registry → parallel deployment on compute nodes with an HPC
runtime (Charliecloud here, Singularity originally).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..containers.podman import Podman
from ..core.builder import ChImage
from ..core.runtime import ChRun
from ..errors import ReproError
from ..sim import FaultPlan, RetryPolicy, SimEngine, Topology, retry_call
from .broadcast import (
    DEPLOY_STRATEGIES,
    BroadcastReport,
    distribute_cache,
    distribute_image,
    make_deploy_topology,
)
from .machines import Machine, make_machine
from .scheduler import JobResult, Scheduler
from .world import SITE_REGISTRY, World

__all__ = ["AstraCluster", "WorkflowReport", "make_astra",
           "astra_build_workflow", "astra_cached_build_workflow",
           "laptop_build_workflow"]


class WorkflowError(ReproError):
    """A workflow phase failed."""


@dataclass
class AstraCluster:
    """Login node + compute partition + scheduler."""

    login: Machine
    compute: list[Machine]
    scheduler: Scheduler
    world: World

    @property
    def arch(self) -> str:
        return self.login.arch


def make_astra(world: World, *, n_compute: int = 4, arch: str = "aarch64",
               users: Optional[dict[str, int]] = None) -> AstraCluster:
    """Boot an Astra-like machine (aarch64 Thunder X2 by default)."""
    users = users or {"alice": 1000, "bob": 1001}
    login = make_machine("astra-login1", arch=arch, network=world.network,
                         users=users)
    compute = [
        make_machine(f"astra-cn{i:03d}", arch=arch, network=world.network,
                     users=users)
        for i in range(1, n_compute + 1)
    ]
    return AstraCluster(login, compute, Scheduler(compute), world)


@dataclass
class WorkflowReport:
    """What happened in each Figure 6 phase."""

    build_ok: bool = False
    build_transcript: str = ""
    push_ok: bool = False
    pushed_ref: str = ""
    layer_count: int = 0
    deploy: Optional[JobResult] = None
    phases: list[str] = field(default_factory=list)
    cache_records: int = 0             # records exported with the image
    warm_hits: list[int] = field(default_factory=list)  # per-node hits
    deploy_strategy: str = ""          # "" = legacy untimed deploy
    distribution: Optional[BroadcastReport] = None
    link_utilization: dict = field(default_factory=dict)
    build_parallelism: int = 1         # workers the login build used
    registry_shards: int = 1           # fleet size (1 = single registry)
    build_makespan: float = 0.0        # virtual s (parallel builds only)
    build_critical_path: float = 0.0   # DAG floor of the build (virtual s)
    push_attempts: int = 1             # push-phase tries (retries + 1)
    faults_injected: int = 0           # transient faults seen end to end
    retries: int = 0                   # retried operations (push + deploy)
    backoff_seconds: float = 0.0       # virtual seconds spent backing off
    degraded_nodes: list = field(default_factory=list)  # crashed/dropped

    @property
    def success(self) -> bool:
        return (self.build_ok and self.push_ok
                and self.deploy is not None and self.deploy.success)

    @property
    def degraded(self) -> bool:
        """True when fault injection cost the deploy at least one node."""
        return bool(self.degraded_nodes) or (
            self.deploy is not None and self.deploy.degraded)

    @property
    def deploy_makespan(self) -> Optional[float]:
        """Virtual seconds from distribution start until the last rank
        finished (simulated deploys only)."""
        if self.deploy is None or not self.deploy.rank_finishes:
            return None
        return max(self.deploy.rank_finishes)


def _prepare_deploy(
    cluster: AstraCluster,
    strategy: Optional[str],
    n_nodes: int,
    sim: Optional[SimEngine],
    topology: Optional[Topology],
) -> tuple[Optional[SimEngine], Optional[Topology], list[Machine]]:
    """Validate the deploy strategy and set up the timed fabric for it.

    Returns ``(engine, topology, target_nodes)``; engine/topology are
    None when *strategy* is None (legacy untimed sequential deploy).
    """
    if strategy is None:
        return None, None, []
    if strategy not in DEPLOY_STRATEGIES:
        raise WorkflowError(
            f"unsupported deploy strategy {strategy!r} "
            f"(choose from {DEPLOY_STRATEGIES} or None)")
    registry = cluster.world.site_registry
    targets = cluster.scheduler.nodes[:n_nodes]
    engine = sim if sim is not None else SimEngine()
    if topology is None:
        topology = make_deploy_topology(registry, targets)
    else:
        for endpoint in getattr(registry, "shards", None) or (registry,):
            topology.attach(endpoint)
        for node in targets:
            topology.attach(node)
    return engine, topology, targets


def _prepare_registry(cluster: AstraCluster, report: "WorkflowReport",
                      shards: int, replicas: int) -> None:
    """Swap the world's site registry for a fleet when asked.

    Must run before :func:`_prepare_deploy` so the deploy topology gets
    one uplink per shard instead of a single origin link."""
    report.registry_shards = max(shards, 1)
    if shards <= 1 and replicas <= 1:
        return
    from .fleet import deploy_fleet
    fleet = deploy_fleet(cluster.world, n_shards=max(shards, 1),
                         replicas=replicas)
    report.registry_shards = len(fleet.shards)
    report.phases.append(
        f"registry fleet: {len(fleet.shards)} shards x "
        f"{fleet.replicas} replicas")


def _retried_push(report: WorkflowReport, registry, engine,
                  fault_plan: Optional[FaultPlan],
                  policy: RetryPolicy, key: str, fn):
    """Run one push-phase registry operation under the fault injector,
    retrying transient 5xx-style flakes per *policy* on the engine clock.

    Faults need simulated time to schedule against, so with no engine (the
    legacy untimed path) or no plan this is just ``fn()``.
    """
    if engine is None or fault_plan is None or fault_plan.empty:
        return fn()
    fault_plan.bind_registry(registry.name)
    installed = registry.fault_injector is None
    if installed:
        registry.fault_injector = fault_plan.injector(engine.clock)

    def on_retry(attempt, delay, exc):
        report.faults_injected += 1
        report.retries += 1
        report.push_attempts += 1
        report.backoff_seconds += delay

    try:
        return retry_call(lambda attempt: fn(), policy=policy,
                          clock=engine.clock, key=key, on_retry=on_retry)
    finally:
        if installed:
            registry.fault_injector = None


def _fold_distribution_faults(report: WorkflowReport) -> None:
    """Roll the broadcast's fault accounting up into the workflow report."""
    dist = report.distribution
    if dist is None:
        return
    report.faults_injected += dist.faults_injected
    report.retries += dist.retries
    report.backoff_seconds += dist.backoff_seconds
    report.degraded_nodes = sorted(set(dist.crashed) | set(dist.degraded))


def astra_build_workflow(
    cluster: AstraCluster,
    user: str,
    dockerfile: str,
    tag: str,
    *,
    n_nodes: int = 2,
    app_argv: Optional[list[str]] = None,
    runtime: str = "charliecloud",
    deploy_strategy: Optional[str] = "tree",
    registry_shards: int = 1,
    registry_replicas: int = 1,
    sim: Optional[SimEngine] = None,
    topology: Optional[Topology] = None,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> WorkflowReport:
    """The full Figure 6 loop on the supercomputer itself.

    1. ``podman build`` on the login node (invoked by the user, rootless);
    2. ``podman push`` to the site GitLab container registry;
    3. parallel launch on compute nodes with an HPC runtime — "this was
       originally demonstrated with Singularity, however any HPC container
       runtime such as Charliecloud or Shifter could also be used" (§4.2):
       pass ``runtime`` = ``charliecloud`` (default) or ``singularity``.

    Deployment is distributed and timed per *deploy_strategy*: ``"tree"``
    (default) broadcasts blobs peer-to-peer after one registry pull,
    ``"registry"`` lets every node pull from the registry (the O(N) pull
    storm), and ``None`` is the legacy untimed sequential deploy.  Either
    way the build phases stay strictly sequential and every job process
    descends from the user's shell (§3.1).

    A *fault_plan* (timed deploys only) injects its scheduled faults into
    the push and distribution phases; transient failures are retried per
    *retry_policy* and crashed nodes are skipped, so the workflow degrades
    instead of aborting.
    """
    if runtime not in ("charliecloud", "singularity"):
        raise WorkflowError(f"unsupported HPC runtime {runtime!r}")
    report = WorkflowReport()
    _prepare_registry(cluster, report, registry_shards, registry_replicas)
    engine, topo, targets = _prepare_deploy(
        cluster, deploy_strategy, n_nodes, sim, topology)
    if retry_policy is None:
        retry_policy = RetryPolicy(
            seed=fault_plan.seed if fault_plan is not None else 0)
    registry_ref = f"{SITE_REGISTRY}/{user}/{tag}:latest"
    app_argv = app_argv or ["/opt/atse/bin/atse-info"]

    # Phase 1: rootless build on the login node.  Container storage must be
    # node-local ("either /tmp or local disk can be used", §4.2).
    login_proc = cluster.login.login(user)
    podman = Podman(cluster.login, login_proc,
                    storage_dir=f"/tmp/{user}-containers")
    result = podman.build(dockerfile, tag)
    report.build_ok = result.success
    report.build_transcript = result.text
    report.phases.append(
        f"build on {cluster.login.hostname} ({cluster.login.arch}): "
        f"{'ok' if result.success else 'FAILED'}")
    if not result.success:
        return report

    # Phase 2: push to the site registry (multi-layer OCI).
    manifest = _retried_push(
        report, cluster.world.site_registry, engine, fault_plan,
        retry_policy, "push", lambda: podman.push(tag, registry_ref))
    report.push_ok = True
    report.pushed_ref = registry_ref
    report.layer_count = manifest.layer_count
    report.phases.append(
        f"push {registry_ref}: {manifest.layer_count} layers")

    # Phase 3: parallel deployment via the resource manager + HPC runtime.
    def deploy(node: Machine, rank: int, login) -> tuple[int, str]:
        env = {"OMPI_COMM_WORLD_RANK": str(rank),
               "PATH": "/opt/atse/bin:/usr/bin:/bin"}
        if runtime == "singularity":
            from ..containers.singularity import Singularity
            from ..containers.oci import ImageRef
            ref = ImageRef.parse(registry_ref)
            _, layers = node.kernel.network.registry(ref.registry).pull(
                ref, arch=node.arch, local_store=node.content_store)
            sing = Singularity(node, login)
            sif = sing.build_from_docker_archive(
                f"/home/{user}/{tag}.sif", layers)
            status, output = sing.run(sif, app_argv, env=env)
            return status, output
        ch = ChImage(node, login)
        path = ch.pull(registry_ref)
        run = ChRun(node, login)
        res = run.run(path, app_argv, env=env)
        return res.status, res.output

    if engine is None:
        report.deploy = cluster.scheduler.srun(user, n_nodes, deploy)
        report.phases.append(
            f"deploy on {n_nodes} nodes: "
            f"{'ok' if report.deploy.success else 'FAILED'}")
        return report

    # Timed deploy: distribute blobs first (tree broadcast or registry
    # fan-out), then interleave rank events from each node's ready time.
    registry = cluster.world.site_registry
    report.deploy_strategy = deploy_strategy
    report.distribution = distribute_image(
        registry, registry_ref, targets, topo,
        arch=cluster.arch, strategy=deploy_strategy, engine=engine,
        tracer=cluster.login.kernel.tracer,
        fault_plan=fault_plan, retry_policy=retry_policy)
    _fold_distribution_faults(report)
    report.deploy = cluster.scheduler.srun(
        user, n_nodes, deploy, mode="simulated", sim=engine,
        rank_ready=report.distribution.node_ready, fault_plan=fault_plan)
    report.link_utilization = topo.utilization()
    makespan = report.deploy_makespan or 0.0
    faults = ""
    if report.faults_injected or report.deploy.skipped:
        faults = (f", {report.faults_injected} faults / "
                  f"{report.retries} retries"
                  + (f", skipped {len(report.deploy.skipped)} node(s)"
                     if report.deploy.skipped else ""))
    report.phases.append(
        f"deploy on {n_nodes} nodes [{deploy_strategy}]: "
        f"{'ok' if report.deploy.success else 'FAILED'} "
        f"(makespan {makespan * 1e3:.1f} ms, registry egress "
        f"{report.distribution.registry_egress_bytes} B{faults})")
    return report


def astra_cached_build_workflow(
    cluster: AstraCluster,
    user: str,
    dockerfile: str,
    tag: str,
    *,
    n_nodes: int = 2,
    app_argv: Optional[list[str]] = None,
    force: bool = True,
    build_parallelism: int = 1,
    deploy_strategy: Optional[str] = "tree",
    registry_shards: int = 1,
    registry_replicas: int = 1,
    sim: Optional[SimEngine] = None,
    topology: Optional[Topology] = None,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> WorkflowReport:
    """Figure 6 with the §6.2.2 build cache in the loop.

    ch-image builds on the login node, then pushes *two* artifacts to the
    site registry: the image, and a BuildKit-style export of its
    instruction cache.  Every compute node pre-seeds its own cache from
    that export before rebuilding locally — so the per-node rebuild hits
    on every unchanged instruction instead of re-running it (the
    re-execution cost §6.1 calls out as Charliecloud's missing cache).

    With a *deploy_strategy* ("tree" default, "registry", or None for the
    legacy untimed path), the cache export's blobs are what gets
    distributed — tree mode pulls them from the registry once and
    re-serves them peer-to-peer, so the O(N) cache-import storm
    disappears the same way the image-pull storm does.
    """
    report = WorkflowReport()
    _prepare_registry(cluster, report, registry_shards, registry_replicas)
    engine, topo, targets = _prepare_deploy(
        cluster, deploy_strategy, n_nodes, sim, topology)
    if retry_policy is None:
        retry_policy = RetryPolicy(
            seed=fault_plan.seed if fault_plan is not None else 0)
    registry_ref = f"{SITE_REGISTRY}/{user}/{tag}:latest"
    cache_ref = f"{SITE_REGISTRY}/{user}/{tag}-cache:latest"
    app_argv = app_argv or ["/opt/atse/bin/atse-info"]

    # Phase 1: fully unprivileged build on the login node, cache on.
    # With build_parallelism > 1, independent Dockerfile stages build
    # concurrently on the sim clock (core.build_graph); image bytes are
    # identical either way, only the makespan changes.
    login_proc = cluster.login.login(user)
    ch = ChImage(cluster.login, login_proc, cache=True)
    result = ch.build(tag=tag, dockerfile=dockerfile, force=force,
                      parallel=build_parallelism)
    report.build_ok = result.success
    report.build_transcript = result.text
    report.build_parallelism = build_parallelism
    report.build_makespan = result.makespan
    report.build_critical_path = result.critical_path
    timing = ""
    if build_parallelism > 1:
        timing = (f" [parallel {build_parallelism}: makespan "
                  f"{result.makespan * 1e3:.3f} ms, critical path "
                  f"{result.critical_path * 1e3:.3f} ms]")
    report.phases.append(
        f"ch-image build on {cluster.login.hostname} "
        f"({cluster.login.arch}): {'ok' if result.success else 'FAILED'}"
        f"{timing}")
    if not result.success:
        return report

    # Phase 2: push the image and export the cache beside it.
    from ..core.push import push_image
    registry = cluster.login.kernel.network.registry(SITE_REGISTRY)
    manifest = _retried_push(
        report, registry, engine, fault_plan, retry_policy, "push",
        lambda: push_image(ch.storage, tag, registry_ref))
    _retried_push(
        report, registry, engine, fault_plan, retry_policy, "cache-export",
        lambda: ch.cache.export_to_registry(registry, cache_ref))
    report.push_ok = True
    report.pushed_ref = registry_ref
    report.layer_count = manifest.layer_count
    report.cache_records = len(ch.cache.records)
    report.phases.append(
        f"push {registry_ref} + cache export "
        f"({report.cache_records} records)")

    # Phase 3: compute nodes pre-seed their caches, rebuild (warm), run.
    def deploy(node: Machine, rank: int, login) -> tuple[int, str]:
        env = {"OMPI_COMM_WORLD_RANK": str(rank),
               "PATH": "/opt/atse/bin:/usr/bin:/bin"}
        nch = ChImage(node, login, cache=True)
        node_registry = node.kernel.network.registry(SITE_REGISTRY)
        nch.cache.import_from_registry(node_registry, cache_ref,
                                       local_store=node.content_store)
        res = nch.build(tag=tag, dockerfile=dockerfile, force=force)
        if not res.success:
            return 1, res.text
        report.warm_hits.append(res.cache_hits)
        run = ChRun(node, login)
        r = run.run(nch.storage.path_of(tag), app_argv, env=env)
        return r.status, r.output

    if engine is None:
        report.deploy = cluster.scheduler.srun(user, n_nodes, deploy)
        report.phases.append(
            f"warm rebuild + run on {n_nodes} nodes: "
            f"{'ok' if report.deploy.success else 'FAILED'}")
        return report

    report.deploy_strategy = deploy_strategy
    report.distribution = distribute_cache(
        registry, cache_ref, targets, topo,
        strategy=deploy_strategy, engine=engine,
        tracer=cluster.login.kernel.tracer,
        fault_plan=fault_plan, retry_policy=retry_policy)
    _fold_distribution_faults(report)
    report.deploy = cluster.scheduler.srun(
        user, n_nodes, deploy, mode="simulated", sim=engine,
        rank_ready=report.distribution.node_ready, fault_plan=fault_plan)
    report.link_utilization = topo.utilization()
    makespan = report.deploy_makespan or 0.0
    faults = ""
    if report.faults_injected or report.deploy.skipped:
        faults = (f", {report.faults_injected} faults / "
                  f"{report.retries} retries"
                  + (f", skipped {len(report.deploy.skipped)} node(s)"
                     if report.deploy.skipped else ""))
    report.phases.append(
        f"warm rebuild + run on {n_nodes} nodes [{deploy_strategy}]: "
        f"{'ok' if report.deploy.success else 'FAILED'} "
        f"(makespan {makespan * 1e3:.1f} ms, registry egress "
        f"{report.distribution.registry_egress_bytes} B{faults})")
    return report


def laptop_build_workflow(
    cluster: AstraCluster,
    world: World,
    user: str,
    dockerfile: str,
    tag: str,
    *,
    n_nodes: int = 2,
    app_argv: Optional[list[str]] = None,
) -> WorkflowReport:
    """The §2 'build on your x86 laptop' anti-pattern, for contrast: the
    image builds fine but its binaries are ENOEXEC on Astra's aarch64."""
    report = WorkflowReport()
    registry_ref = f"{SITE_REGISTRY}/{user}/{tag}:latest"
    app_argv = app_argv or ["/opt/atse/bin/atse-info"]

    laptop = make_machine("laptop", arch="x86_64", network=world.network,
                          users={user: 1000})
    lp = laptop.login(user)
    podman = Podman(laptop, lp)
    result = podman.build(dockerfile, tag)
    report.build_ok = result.success
    report.build_transcript = result.text
    report.phases.append(f"build on laptop (x86_64): "
                         f"{'ok' if result.success else 'FAILED'}")
    if not result.success:
        return report
    podman.push(tag, registry_ref)
    report.push_ok = True
    report.pushed_ref = registry_ref

    def deploy(node: Machine, rank: int, login) -> tuple[int, str]:
        ch = ChImage(node, login)
        path = ch.pull(registry_ref)
        run = ChRun(node, login)
        res = run.run(path, app_argv)
        return res.status, res.output

    report.deploy = cluster.scheduler.srun(user, n_nodes, deploy)
    report.phases.append(
        f"deploy x86_64 image on {cluster.arch}: "
        f"{'ok' if report.deploy.success else 'FAILED (exec format error)'}")
    return report
