"""HPC substrate: machines, scheduler, CI, and the Astra workflow."""

from .astra import (
    AstraCluster,
    WorkflowReport,
    astra_build_workflow,
    astra_cached_build_workflow,
    laptop_build_workflow,
    make_astra,
)
from .broadcast import (
    DEPLOY_STRATEGIES,
    BroadcastError,
    BroadcastReport,
    binomial_children,
    distribute_blobs,
    distribute_cache,
    distribute_image,
    make_deploy_topology,
)
from .cli import astra_deploy_cli
from .ci import (
    BuildFarm,
    CiError,
    CiJob,
    CiPipeline,
    CiServer,
    CiStage,
    FarmImage,
    FarmReport,
    farm_build_stage,
    warm_cache_stage,
)
from .machines import Machine, make_machine
from .sandbox import EphemeralVmBuilder, SandboxBuild, SandboxError
from .scheduler import Job, JobResult, Scheduler, SchedulerError
from .world import HUB, SITE_REGISTRY, World, make_world

__all__ = [
    "AstraCluster",
    "WorkflowReport",
    "astra_build_workflow",
    "astra_cached_build_workflow",
    "laptop_build_workflow",
    "make_astra",
    "DEPLOY_STRATEGIES",
    "BroadcastError",
    "BroadcastReport",
    "binomial_children",
    "distribute_blobs",
    "distribute_cache",
    "distribute_image",
    "make_deploy_topology",
    "astra_deploy_cli",
    "BuildFarm",
    "CiError",
    "CiJob",
    "CiPipeline",
    "CiServer",
    "CiStage",
    "FarmImage",
    "FarmReport",
    "farm_build_stage",
    "warm_cache_stage",
    "Machine",
    "make_machine",
    "EphemeralVmBuilder",
    "SandboxBuild",
    "SandboxError",
    "Job",
    "JobResult",
    "Scheduler",
    "SchedulerError",
    "HUB",
    "SITE_REGISTRY",
    "World",
    "make_world",
]
