"""A ready-made world: the public hub with base images, the package
universe, and an (initially empty) site registry.

Every example and benchmark starts from here, so the environment is
identical across them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..containers.oci import ImageConfig
from ..containers.registry import Registry
from ..distro import make_centos7_archive, make_debian10_archive, make_universe
from ..net import Network

__all__ = ["World", "make_world", "HUB", "SITE_REGISTRY"]

HUB = "docker.io"
SITE_REGISTRY = "gitlab.example.gov"


@dataclass
class World:
    """The shared outside world."""

    network: Network
    hub: Registry
    site_registry: Registry


def make_world(*, arches: tuple[str, ...] = ("x86_64", "aarch64")) -> World:
    """Build the universe + hub with per-arch centos:7 and debian:buster."""
    universe = make_universe()
    hub = Registry(HUB)
    site = Registry(SITE_REGISTRY)
    for arch in arches:
        hub.push("centos:7", ImageConfig(arch=arch),
                 [make_centos7_archive(arch)])
        hub.push("debian:buster", ImageConfig(arch=arch),
                 [make_debian10_archive(arch)])
    network = Network(universe=universe,
                      registries={HUB: hub, SITE_REGISTRY: site})
    return World(network=network, hub=hub, site_registry=site)
