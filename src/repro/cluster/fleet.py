"""A multi-tenant sharded registry fleet (the ROADMAP's scale-out story).

One :class:`~repro.containers.registry.Registry` per world is the §4.2
seed ("a dedicated login node with a docker registry on networked
storage"); production means millions of users hammering push/pull.  This
module grows that seed into a *fleet*:

* **Consistent-hash placement** — blobs land on shards via a
  :class:`HashRing` of sha256 virtual nodes.  Placement is a pure
  function of (digest, shard names, vnodes): two worlds with the same
  fleet shape place every blob identically, and adding a shard relocates
  only ~K/N keys (the minimal-movement property the ring tests pin).
* **Replication with read fan-out** — every blob is written to R
  distinct shards clockwise from its hash point; reads go to the
  *nearest live* holder (least queue depth, ring order as tie-break), so
  a shard crash just re-routes to the replicas.
* **Peer-to-peer shard fill** — replicas and rebalance targets are
  filled shard-to-shard with the existing binomial-tree broadcast
  (:func:`~repro.cluster.broadcast.distribute_blobs`), not with origin
  re-uploads; the moved bytes are accounted as ``rebalance_bytes``, never
  as client push/pull traffic (the zero-double-counting invariant).
* **Per-tenant namespaces, quotas, and token auth** — repositories are
  namespaced ``tenant/repo:tag``.  A registered tenant's repos are
  private: pushes and pulls must present the tenant's token; pushes
  beyond the byte quota are rejected with a *retryable* error (quota can
  free up).  Per-tenant stats are computed only from that tenant's own
  repositories and never name another tenant's blob digests.
* **Admission control with backpressure** — each shard is a FIFO server
  on the sim clock with a bounded queue; an arrival that would exceed
  the bound gets a 503-style :class:`FleetOverloadError` carrying
  ``retry_at``, which composes with the PR-6
  :class:`~repro.sim.RetryPolicy` exactly like a registry flake.

The fleet is a drop-in :class:`Registry` facade: it exposes the same
push/pull/fetch_blob/manifest surface, so Podman pushes, ch-image pulls,
and the tree-broadcast deploy path all work unchanged when
:func:`deploy_fleet` swaps it in as the world's site registry.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..cas.store import blob_digest
from ..containers.oci import ImageConfig, ImageRef, Manifest
from ..containers.registry import Registry, TransferStats
from ..errors import RegistryError, TransientError
from ..obs.trace import maybe_span

__all__ = [
    "FleetError",
    "FleetAuthError",
    "FleetQuotaError",
    "FleetOverloadError",
    "HashRing",
    "RegistryShard",
    "RegistryFleet",
    "Tenant",
    "deploy_fleet",
]


class FleetError(RegistryError):
    """A fleet-level registry operation failed."""


class FleetAuthError(FleetError):
    """Missing or wrong tenant token (the 401/403 of this world)."""


class FleetQuotaError(TransientError, FleetError):
    """Push rejected: tenant byte quota exhausted.  Retryable — quota
    frees up when the tenant deletes images or is re-provisioned."""


class FleetOverloadError(TransientError, FleetError):
    """Shard admission queue full (the 503 of this world).  ``retry_at``
    is the earliest virtual time a queue slot can free up."""


# --------------------------------------------------------------------------
# Consistent-hash ring


def _ring_hash(key: str) -> int:
    """Deterministic 64-bit ring position (sha256 prefix — no process
    randomization, so placement agrees across worlds and runs)."""
    return int.from_bytes(
        hashlib.sha256(key.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Each shard contributes ``vnodes`` points at
    ``sha256(f"{shard}#{i}")``; a key is owned by the first ``n``
    *distinct* shards clockwise from ``sha256(key)``.  Determinism and
    the minimal-movement property both follow from the points being a
    pure function of the shard name.
    """

    def __init__(self, shards: Iterable[str] = (), *, vnodes: int = 64):
        if vnodes <= 0:
            raise FleetError(f"vnodes must be positive: {vnodes}")
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []  # sorted (hash, shard)
        self._shards: set[str] = set()
        for name in shards:
            self.add(name)

    @property
    def shards(self) -> list[str]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    def _vnode_points(self, name: str) -> list[tuple[int, str]]:
        return [(_ring_hash(f"{name}#{i}"), name)
                for i in range(self.vnodes)]

    def add(self, name: str) -> None:
        if name in self._shards:
            return
        self._shards.add(name)
        for point in self._vnode_points(name):
            insort(self._points, point)

    def remove(self, name: str) -> None:
        if name not in self._shards:
            return
        self._shards.discard(name)
        dead = set(self._vnode_points(name))
        self._points = [p for p in self._points if p not in dead]

    def holders(self, key: str, n: int = 1) -> list[str]:
        """The first *n* distinct shards clockwise from *key*'s point,
        primary first.  ``n`` is clamped to the shard count."""
        if not self._shards:
            raise FleetError("hash ring has no shards")
        n = min(n, len(self._shards))
        start = bisect_right(self._points, (_ring_hash(key), "￿"))
        found: list[str] = []
        for i in range(len(self._points)):
            _, shard = self._points[(start + i) % len(self._points)]
            if shard not in found:
                found.append(shard)
                if len(found) == n:
                    break
        return found

    def placement(self, keys: Iterable[str], n: int = 1
                  ) -> dict[str, list[str]]:
        """``{key: holders}`` for many keys at once (test/rebalance aid)."""
        return {key: self.holders(key, n) for key in keys}


# --------------------------------------------------------------------------
# Shards


@dataclass
class ShardStats:
    """Admission + service accounting for one shard (JSON-friendly)."""

    admitted: int = 0
    rejected: int = 0                # overload 503s returned
    served_blobs: int = 0
    served_bytes: int = 0
    queue_depth_max: int = 0
    busy_seconds: float = 0.0        # virtual service time reserved

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "served_blobs": self.served_blobs,
            "served_bytes": self.served_bytes,
            "queue_depth_max": self.queue_depth_max,
            "busy_seconds": round(self.busy_seconds, 9),
        }


class RegistryShard:
    """One registry service of the fleet: a :class:`Registry` plus a
    bounded FIFO admission queue on the sim clock.

    The shard quacks like a broadcast endpoint too (``hostname`` +
    ``content_store``), so :func:`~repro.cluster.broadcast.
    distribute_blobs` can fill it peer-to-peer like a compute node.
    """

    def __init__(self, name: str, *, queue_limit: Optional[int] = None,
                 service_bandwidth: float = 256 * 1024,
                 service_latency: float = 1e-4):
        if queue_limit is not None and queue_limit <= 0:
            raise FleetError(f"queue_limit must be positive: {queue_limit}")
        self.name = name
        self.registry = Registry(name)
        self.alive = True
        self.queue_limit = queue_limit
        self.service_bandwidth = service_bandwidth
        self.service_latency = service_latency
        self.stats = ShardStats()
        self._busy_until = 0.0
        self._completions: list[float] = []  # in-flight op end times

    # -- broadcast-endpoint duck type -------------------------------------

    @property
    def hostname(self) -> str:
        return self.name

    @property
    def content_store(self):
        return self.registry.store

    # -- admission queue ---------------------------------------------------

    def queue_depth(self, now: float) -> int:
        """Operations queued or in service at virtual time *now*."""
        self._completions = [t for t in self._completions if t > now]
        return len(self._completions)

    def retry_hint(self, now: float) -> float:
        """Earliest time a queue slot can free up."""
        pending = [t for t in self._completions if t > now]
        return min(pending) if pending else now

    def check_admission(self, now: float, extra: int = 0) -> None:
        """Raise :class:`FleetOverloadError` if one more operation (plus
        *extra* already planned in this request) would exceed the bound.
        Does not reserve — callers reserve with :meth:`reserve` once the
        whole request is admissible."""
        if self.queue_limit is None:
            return
        if self.queue_depth(now) + extra >= self.queue_limit:
            self.stats.rejected += 1
            raise FleetOverloadError(
                f"{self.name}: admission queue full "
                f"({self.queue_limit} deep at t={now:.3f})",
                retry_at=self.retry_hint(now))

    def reserve(self, now: float, nbytes: int) -> float:
        """Reserve FIFO service for *nbytes*; returns the completion
        time.  Callers must have passed :meth:`check_admission`."""
        start = max(now, self._busy_until)
        service = self.service_latency + nbytes / self.service_bandwidth
        end = start + service
        self._busy_until = end
        self._completions.append(end)
        self.stats.admitted += 1
        self.stats.busy_seconds += service
        self.stats.queue_depth_max = max(self.stats.queue_depth_max,
                                         self.queue_depth(now))
        return end

    def as_dict(self) -> dict:
        d = self.stats.as_dict()
        d.update(self.registry.stats.as_dict())
        d["alive"] = self.alive
        d["storage_bytes"] = self.registry.storage_bytes()
        return d


# --------------------------------------------------------------------------
# Tenancy


@dataclass
class Tenant:
    """One namespace: auth token, quota, and private per-tenant stats."""

    name: str
    token: Optional[str] = None
    quota_bytes: Optional[int] = None
    public: bool = False             # anyone may pull (pushes stay gated)
    digests: set[str] = field(default_factory=set)
    bytes_used: int = 0              # unique blob bytes under this tenant
    pushes: int = 0
    pulls: int = 0
    quota_rejections: int = 0
    auth_rejections: int = 0

    def stats(self) -> dict:
        """This tenant's view only — never names another tenant's blobs."""
        return {
            "tenant": self.name,
            "bytes_used": self.bytes_used,
            "quota_bytes": self.quota_bytes,
            "blobs": len(self.digests),
            "digests": sorted(self.digests),
            "pushes": self.pushes,
            "pulls": self.pulls,
            "quota_rejections": self.quota_rejections,
            "auth_rejections": self.auth_rejections,
        }


# --------------------------------------------------------------------------
# The fleet


class RegistryFleet:
    """N registry shards behind one consistent-hash front door.

    Implements the :class:`Registry` surface (push / pull / fetch_blob /
    manifest / cache export-import), so every existing client — Podman
    push, ch-image pull, the tree-broadcast distributor — works against a
    fleet unchanged.  Blob *bytes* are sharded and replicated; manifests
    (tiny metadata) are mirrored to every shard, the way production
    registries back metadata with a shared database.
    """

    def __init__(self, name: str, *, n_shards: int, replicas: int = 1,
                 vnodes: int = 64, queue_limit: Optional[int] = None,
                 service_bandwidth: float = 256 * 1024,
                 service_latency: float = 1e-4,
                 clock=None, tracer=None):
        if n_shards <= 0:
            raise FleetError(f"n_shards must be positive: {n_shards}")
        if not 1 <= replicas <= n_shards:
            raise FleetError(
                f"replicas must be in [1, {n_shards}]: {replicas}")
        self.name = name
        self.replicas = replicas
        self.shards: list[RegistryShard] = [
            RegistryShard(f"{name}.s{i:02d}", queue_limit=queue_limit,
                          service_bandwidth=service_bandwidth,
                          service_latency=service_latency)
            for i in range(n_shards)
        ]
        self._by_name = {s.name: s for s in self.shards}
        self.ring = HashRing((s.name for s in self.shards), vnodes=vnodes)
        self.tenants: dict[str, Tenant] = {}
        self.stats = TransferStats()     # front-door accounting
        self.rebalance_bytes = 0         # shard-to-shard fill traffic
        self.rebalance_blobs = 0
        #: Optional sim clock; admission control needs time to queue
        #: against, so backpressure is active only when a clock is bound.
        self.clock = clock
        self.tracer = tracer
        #: Same contract as :attr:`Registry.fault_injector` — the
        #: broadcast installs a plan injector here; its plan additionally
        #: drives shard liveness (crash ⇒ ring re-route to replicas).
        self.fault_injector = None
        # every blob digest the fleet has accepted, for rebalancing
        self._known: dict[str, int] = {}  # digest -> size
        #: Optional :class:`~repro.supply.Signer` — when set, every push
        #: records a signature over the manifest digest on all live
        #: shards (sign-on-push).
        self.signer = None
        #: Optional :class:`~repro.supply.PolicyGate` — when set, pulls
        #: verify the served manifest's signature and raise
        #: :class:`~repro.errors.SupplyPolicyError` on failure.
        self.policy_gate = None

    # -- time / liveness ---------------------------------------------------

    def _now(self) -> float:
        if self.clock is not None:
            return self.clock.now
        if self.fault_injector is not None:
            return self.fault_injector.clock.now
        return 0.0

    def _plan(self):
        return None if self.fault_injector is None \
            else self.fault_injector.plan

    def _is_live(self, shard: RegistryShard, now: float) -> bool:
        if not shard.alive:
            return False
        plan = self._plan()
        return plan is None or not plan.crashed_by(shard.name, now)

    def live_shards(self) -> list[RegistryShard]:
        now = self._now()
        return [s for s in self.shards if self._is_live(s, now)]

    # -- placement / routing -----------------------------------------------

    def blob_holders(self, digest: str) -> list[str]:
        """Shard names that must hold *digest* (primary first)."""
        return self.ring.holders(digest, self.replicas)

    def route_blob(self, digest: str) -> RegistryShard:
        """The nearest live holder of *digest*: least queue depth wins,
        ring order breaks ties.  This is the read fan-out — and the hook
        :func:`~repro.cluster.broadcast.distribute_blobs` uses to route
        per-blob registry pulls instead of assuming one origin."""
        now = self._now()
        holders = self.blob_holders(digest)
        live = [self._by_name[h] for h in holders
                if self._is_live(self._by_name[h], now)]
        live = [s for s in live if s.registry.has_blob(digest)]
        if not live:
            raise FleetError(
                f"{self.name}: no live shard holds {digest[:19]}... "
                f"(placement: {holders})")
        order = {h: i for i, h in enumerate(holders)}
        return min(live, key=lambda s: (s.queue_depth(now), order[s.name]))

    def _manifest_shard(self) -> RegistryShard:
        """Any live shard can answer metadata (manifests are mirrored)."""
        live = self.live_shards()
        if not live:
            raise FleetError(f"{self.name}: no live shards")
        return live[0]

    # -- tenancy -----------------------------------------------------------

    def add_tenant(self, name: str, *, token: Optional[str] = None,
                   quota_bytes: Optional[int] = None,
                   public: bool = False) -> Tenant:
        if "/" in name:
            raise FleetError(f"tenant names are single path segments: "
                             f"{name!r}")
        tenant = Tenant(name, token=token, quota_bytes=quota_bytes,
                        public=public)
        self.tenants[name] = tenant
        return tenant

    def tenant_stats(self, name: str) -> dict:
        try:
            return self.tenants[name].stats()
        except KeyError:
            raise FleetError(f"{self.name}: unknown tenant {name!r}")

    def _tenant_of(self, repository: str) -> Optional[Tenant]:
        head = repository.split("/", 1)[0]
        return self.tenants.get(head)

    def _authorize(self, tenant: Optional[Tenant], token: Optional[str],
                   op: str) -> None:
        if tenant is None:
            return                       # unregistered namespace: open
        if op == "pull" and tenant.public:
            return
        if token != tenant.token or tenant.token is None:
            tenant.auth_rejections += 1
            raise FleetAuthError(
                f"{self.name}: {op} to tenant {tenant.name!r} denied "
                f"(bad or missing token)")

    def _reserve_quota(self, tenant: Optional[Tenant],
                       blobs: Sequence[bytes]) -> dict[str, int]:
        """Check the quota without mutating the ledger; returns the
        not-yet-charged digests (digest -> size) for :meth:`_commit_quota`.

        Charging is transactional: the ledger moves only after every
        blob of the request is placed, so a mid-request failure (no live
        shard, injected push fault) leaves ``bytes_used``/``digests``
        exactly as they were — the ledger always equals stored bytes."""
        if tenant is None:
            return {}
        new = {}
        for blob in blobs:
            d = blob_digest(blob)
            if d not in tenant.digests:
                new[d] = len(blob)
        added = sum(new.values())
        if tenant.quota_bytes is not None \
                and tenant.bytes_used + added > tenant.quota_bytes:
            tenant.quota_rejections += 1
            raise FleetQuotaError(
                f"{self.name}: tenant {tenant.name!r} quota exhausted "
                f"({tenant.bytes_used} + {added} > {tenant.quota_bytes} B)",
                retry_at=self._now())
        return new

    def _commit_quota(self, tenant: Optional[Tenant],
                      new: dict[str, int]) -> None:
        if tenant is None:
            return
        tenant.digests.update(new)
        tenant.bytes_used += sum(new.values())

    # -- blob plane --------------------------------------------------------

    def _place_blob(self, blob: bytes,
                    txn: Optional[list[tuple[str, int]]] = None) -> str:
        """Write *blob* to its primary holder and fill the replicas
        shard-to-shard; returns the digest.  With *txn*, blobs the fleet
        did not previously know are recorded so a failed multi-blob
        request can roll them back with :meth:`_unplace`."""
        digest = blob_digest(blob)
        now = self._now()
        holders = [self._by_name[h] for h in self.blob_holders(digest)]
        live = [s for s in holders if self._is_live(s, now)]
        if not live:
            raise FleetError(
                f"{self.name}: no live shard to place {digest[:19]}...")
        fresh = digest not in self._known
        primary = live[0]
        primary.registry.put_blob(blob)
        self.stats.blobs_pushed += 1
        self.stats.bytes_pushed += len(blob)
        self._known[digest] = len(blob)
        if txn is not None and fresh:
            txn.append((digest, len(blob)))
        fill = [s for s in live[1:] if not s.registry.has_blob(digest)]
        if fill:
            self._fill(primary, [digest], fill)
        return digest

    def _unplace(self, txn: list[tuple[str, int]]) -> None:
        """Roll back the placements of a failed request: every blob the
        fleet first learned of in this request is dropped from all
        shards, forgotten, and its bytes removed from the front-door
        push counters — so accepted bytes always equal stored bytes.
        Blobs that pre-existed the request are left alone (another image
        or tenant legitimately references them)."""
        for digest, size in reversed(txn):
            if digest not in self._known:
                continue
            for shard in self.shards:
                shard.registry.drop_blob(digest)
            del self._known[digest]
            self.stats.blobs_pushed -= 1
            self.stats.bytes_pushed -= size

    def _fill(self, origin: RegistryShard, digests: Sequence[str],
              targets: Sequence[RegistryShard]) -> None:
        """Peer-to-peer shard fill: re-use the binomial-tree broadcast to
        move *digests* from *origin* to *targets*, shard links only —
        the origin is hit once per blob, peers re-serve.  The moved bytes
        are accounted as rebalance traffic, not client traffic."""
        from .broadcast import distribute_blobs, make_deploy_topology
        snap = _transfer_snapshot(origin.registry.stats)
        topo = make_deploy_topology(origin.registry, targets)
        rep = distribute_blobs(origin.registry, list(digests), targets,
                               topo, strategy="tree")
        # internal fill must not masquerade as client pulls on the origin
        _transfer_restore(origin.registry.stats, snap)
        self.rebalance_bytes += rep.registry_egress_bytes + rep.peer_bytes
        self.rebalance_blobs += rep.blobs * len(targets)
        for shard in targets:
            for digest in digests:
                shard.registry.adopt_blob(digest)
        if self.tracer is not None:
            self.tracer.metrics.count_net(
                "fleet_rebalance_bytes",
                rep.registry_egress_bytes + rep.peer_bytes)

    def has_blob(self, digest: str) -> bool:
        return any(s.registry.has_blob(digest) for s in self.shards)

    def blob_size(self, digest: str) -> int:
        for name in self.blob_holders(digest):
            shard = self._by_name[name]
            if shard.registry.has_blob(digest):
                return shard.registry.blob_size(digest)
        raise FleetError(f"{self.name}: no blob {digest[:19]}...")

    def fetch_blob(self, digest: str, *, local_store=None) -> bytes:
        """Pull one blob through the front door: local CAS short-circuit,
        flake injection, ring routing, admission, then the shard serves."""
        if local_store is not None and local_store.has(digest):
            blob = local_store.get(digest)
            self.stats.blobs_pull_skipped += 1
            self.stats.bytes_pull_skipped += len(blob)
            return blob
        if self.fault_injector is not None:
            self.fault_injector.check("fetch_blob")
        shard = self.route_blob(digest)
        now = self._now()
        if self.clock is not None:
            shard.check_admission(now)
            shard.reserve(now, shard.registry.blob_size(digest))
        blob = shard.registry.fetch_blob(digest)
        shard.stats.served_blobs += 1
        shard.stats.served_bytes += len(blob)
        self.stats.blobs_pulled += 1
        self.stats.bytes_pulled += len(blob)
        if local_store is not None:
            local_store.put(blob)
        return blob

    # -- push / pull -------------------------------------------------------

    def push(self, ref: ImageRef | str, config: ImageConfig,
             layers: Iterable[object], *,
             token: Optional[str] = None,
             attestations: Optional[dict[str, bytes]] = None) -> Manifest:
        """Push an image; with *attestations* (kind -> statement bytes),
        the statements are placed as content-addressed blobs, charged to
        the tenant's quota with the layers, and recorded on every live
        shard.  Placement and charging are all-or-nothing."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        layers = list(layers)
        tenant = self._tenant_of(ref.repository)
        att_blobs = dict(sorted(attestations.items())) if attestations \
            else {}
        with maybe_span(self.tracer,
                        f"fleet-push {ref.repository}:{ref.tag}", "push",
                        fleet=self.name, layers=len(layers)):
            if self.fault_injector is not None:
                self.fault_injector.check("push")
            self._authorize(tenant, token, "push")
            serialized = [layer.serialize() for layer in layers]
            if not serialized:
                raise FleetError("cannot push an image with no layers")
            new = self._reserve_quota(
                tenant, serialized + list(att_blobs.values()))
            txn: list[tuple[str, int]] = []
            try:
                digests = tuple(self._place_blob(blob, txn=txn)
                                for blob in serialized)
                att_digests = {kind: self._place_blob(blob, txn=txn)
                               for kind, blob in att_blobs.items()}
            except Exception:
                self._unplace(txn)
                raise
            self._commit_quota(tenant, new)
            manifest = Manifest(config=config, layers=digests)
            signature = (self.signer.sign(manifest.digest())
                         if self.signer is not None else None)
            now = self._now()
            for shard in self.shards:
                if self._is_live(shard, now):
                    shard.registry.put_manifest(ref, manifest)
                    if att_digests:
                        shard.registry.record_attestations(ref, att_digests)
                    if signature is not None:
                        shard.registry.record_signature(ref, signature)
            if signature is not None:
                self._count_supply("signed")
            if att_digests:
                self._count_supply("attested")
            if tenant is not None:
                tenant.pushes += 1
        return manifest

    def pull(self, ref: ImageRef | str, *, arch: Optional[str] = None,
             local_store=None, token: Optional[str] = None):
        from ..archive import TarArchive
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        tenant = self._tenant_of(ref.repository)
        with maybe_span(self.tracer,
                        f"fleet-pull {ref.repository}:{ref.tag}", "pull",
                        fleet=self.name):
            self._authorize(tenant, token, "pull")
            manifest = self.manifest(ref, arch=arch)
            self._verify_served(ref, manifest)
            layers = [TarArchive.deserialize(
                          self.fetch_blob(d, local_store=local_store))
                      for d in manifest.layers]
            if tenant is not None:
                tenant.pulls += 1
        return manifest.config, layers

    def timed_pull(self, ref: ImageRef | str, *,
                   now: Optional[float] = None, arch: Optional[str] = None,
                   local_store=None, token: Optional[str] = None) -> float:
        """One workload-generator pull: route and *admission-check every
        layer first* (all-or-nothing, so a rejected request reserves no
        service and no bytes are double-counted on retry), then reserve
        and serve; returns the virtual completion time."""
        from ..archive import TarArchive
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        now = self._now() if now is None else now
        tenant = self._tenant_of(ref.repository)
        self._authorize(tenant, token, "pull")
        if self.fault_injector is not None:
            self.fault_injector.check("fetch_blob")
        manifest = self.manifest(ref, arch=arch)
        self._verify_served(ref, manifest)
        planned: list[tuple[RegistryShard, str, int]] = []
        pending: dict[str, int] = {}
        for digest in manifest.layers:
            if local_store is not None and local_store.has(digest):
                continue
            shard = self.route_blob(digest)
            shard.check_admission(now, extra=pending.get(shard.name, 0))
            pending[shard.name] = pending.get(shard.name, 0) + 1
            planned.append((shard, digest,
                            shard.registry.blob_size(digest)))
        end = now
        for shard, digest, size in planned:
            end = max(end, shard.reserve(now, size))
            blob = shard.registry.fetch_blob(digest)
            shard.stats.served_blobs += 1
            shard.stats.served_bytes += len(blob)
            self.stats.blobs_pulled += 1
            self.stats.bytes_pulled += len(blob)
            if local_store is not None:
                local_store.put(blob)
                TarArchive.deserialize(blob)  # digest-checked decode
        skipped = len(manifest.layers) - len(planned)
        if skipped:
            self.stats.blobs_pull_skipped += skipped
        if tenant is not None:
            tenant.pulls += 1
        return end

    # -- metadata plane ----------------------------------------------------

    def manifest(self, ref: ImageRef | str, *,
                 arch: Optional[str] = None) -> Manifest:
        return self._manifest_shard().registry.manifest(ref, arch=arch)

    # -- supply-chain metadata (mirrored like manifests) -------------------

    def signatures_of(self, ref: ImageRef | str) -> list:
        return self._manifest_shard().registry.signatures_of(ref)

    def record_signature(self, ref: ImageRef | str, signature) -> None:
        now = self._now()
        for shard in self.shards:
            if self._is_live(shard, now):
                shard.registry.record_signature(ref, signature)

    def attestation_digests(self, ref: ImageRef | str) -> dict[str, str]:
        return self._manifest_shard().registry.attestation_digests(ref)

    def fetch_attestation(self, ref: ImageRef | str, kind: str) -> bytes:
        """One attestation statement, read at rest (audits run fleet-
        side, before any broadcast — no client transfer is counted)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        digests = self.attestation_digests(ref)
        if kind not in digests:
            raise FleetError(
                f"{self.name}: no {kind} attestation for "
                f"{ref.repository}:{ref.tag}")
        return self.blob_at_rest(digests[kind])

    def blob_at_rest(self, digest: str) -> bytes:
        """One blob's bytes from any shard holding them, at rest."""
        for name in self.blob_holders(digest):
            shard = self._by_name[name]
            if shard.registry.has_blob(digest):
                return shard.registry.blob_at_rest(digest)
        for shard in self.shards:
            if shard.registry.has_blob(digest):
                return shard.registry.blob_at_rest(digest)
        raise FleetError(f"{self.name}: no blob {digest[:19]}...")

    def _count_supply(self, event: str) -> None:
        if self.tracer is not None:
            self.tracer.metrics.count_supply(event)

    def _verify_served(self, ref: ImageRef, manifest: Manifest) -> None:
        """The pull-time supply check (see Registry._verify_served)."""
        if not self.signatures_of(ref):
            self._count_supply("unsigned_pull")
        if self.policy_gate is not None:
            self.policy_gate.verify_pull(self, ref, manifest)

    def image_blob_digests(self, ref: ImageRef | str, *,
                           arch: Optional[str] = None) -> list[str]:
        return list(self.manifest(ref, arch=arch).layers)

    def has(self, ref: ImageRef | str) -> bool:
        return self._manifest_shard().registry.has(ref)

    def tags(self, repository: str) -> list[str]:
        return self._manifest_shard().registry.tags(repository)

    def repositories(self) -> list[str]:
        return self._manifest_shard().registry.repositories()

    def history(self, repository: str) -> list[str]:
        return self._manifest_shard().registry.history(repository)

    def storage_bytes(self) -> int:
        """Bytes at rest across all shards (replication included)."""
        return sum(s.registry.storage_bytes() for s in self.shards)

    # -- build-cache artifacts (the cached Astra workflow) -----------------

    def push_cache(self, ref: ImageRef | str, manifest: bytes,
                   blobs: Iterable[bytes], *,
                   token: Optional[str] = None) -> str:
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        tenant = self._tenant_of(ref.repository)
        self._authorize(tenant, token, "push")
        blobs = list(blobs)
        new = self._reserve_quota(tenant, blobs + [manifest])
        txn: list[tuple[str, int]] = []
        try:
            for blob in blobs:
                self._place_blob(blob, txn=txn)
            digest = self._place_blob(manifest, txn=txn)
        except Exception:
            self._unplace(txn)
            raise
        self._commit_quota(tenant, new)
        now = self._now()
        for shard in self.shards:
            if self._is_live(shard, now):
                shard.registry.put_cache_manifest(ref, digest)
        return digest

    def pull_cache(self, ref: ImageRef | str, *, local_store=None,
                   token: Optional[str] = None
                   ) -> tuple[bytes, Callable[[str], bytes]]:
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        tenant = self._tenant_of(ref.repository)
        self._authorize(tenant, token, "pull")
        digest = self._manifest_shard().registry.cache_manifest_digest(ref)
        manifest = self.fetch_blob(digest, local_store=local_store)

        def fetch(d: str) -> bytes:
            return self.fetch_blob(d, local_store=local_store)

        return manifest, fetch

    def cache_blob_digests(self, ref: ImageRef | str) -> list[str]:
        return self._manifest_shard().registry.cache_blob_digests(ref)

    def has_cache(self, ref: ImageRef | str) -> bool:
        return self._manifest_shard().registry.has_cache(ref)

    # -- fleet operations --------------------------------------------------

    def crash_shard(self, name: str) -> None:
        """Mark a shard dead (tests / explicit ops; fault plans do this
        on the clock instead).  Reads re-route to the replicas."""
        self._by_name[name].alive = False

    def restore_shard(self, name: str) -> None:
        shard = self._by_name[name]
        shard.alive = True
        self.repair()

    def add_shard(self, *, queue_limit: Optional[int] = None) -> RegistryShard:
        """Grow the fleet by one shard and rebalance: only the ~K/N keys
        the ring moves are filled (peer-to-peer), and shards that are no
        longer holders release their copies."""
        shard = RegistryShard(
            f"{self.name}.s{len(self.shards):02d}",
            queue_limit=(queue_limit if queue_limit is not None
                         else self.shards[0].queue_limit),
            service_bandwidth=self.shards[0].service_bandwidth,
            service_latency=self.shards[0].service_latency)
        # mirror metadata before the shard serves anything
        donor = self._manifest_shard().registry
        shard.registry.mirror_metadata_from(donor)
        self.shards.append(shard)
        self._by_name[shard.name] = shard
        old_ring = self.ring
        self.ring = HashRing((s.name for s in self.shards),
                             vnodes=old_ring.vnodes)
        self.rebalance()
        return shard

    def _sync_metadata(self) -> None:
        """Metadata anti-entropy.  Any live shard may answer manifest
        lookups, so a shard that was down while pushes happened must
        backfill manifests, cache pointers, signatures, and attestation
        records when it returns — blob placement only moves bytes, and
        without this a restored shard would serve blobs it cannot name."""
        live = self.live_shards()
        for shard in live:
            for donor in live:
                if donor is not shard:
                    shard.registry.mirror_metadata_from(donor.registry)

    def rebalance(self) -> int:
        """Converge every known blob onto its current holder set: fill
        missing replicas shard-to-shard (grouped by origin so the tree
        broadcast batches), release copies on ex-holders, and backfill
        metadata onto shards that missed pushes while down.  Returns the
        number of blob movements."""
        self._sync_metadata()
        now = self._now()
        moved = 0
        fills: dict[str, dict[str, list[str]]] = {}  # origin -> target -> d
        for digest in sorted(self._known):
            holders = self.blob_holders(digest)
            holder_set = set(holders)
            current = [s for s in self.shards
                       if s.registry.has_blob(digest)]
            sources = [s for s in current if self._is_live(s, now)]
            if not sources:
                continue
            origin = sources[0].name
            for name in holders:
                shard = self._by_name[name]
                if self._is_live(shard, now) \
                        and not shard.registry.has_blob(digest):
                    fills.setdefault(origin, {}).setdefault(
                        name, []).append(digest)
                    moved += 1
            for shard in current:
                if shard.name not in holder_set:
                    shard.registry.drop_blob(digest)
        for origin, by_target in sorted(fills.items()):
            # batch: all targets missing the same digest set fill in one
            # tree; otherwise per-target
            by_digests: dict[tuple, list[RegistryShard]] = {}
            for target, digests in sorted(by_target.items()):
                by_digests.setdefault(tuple(digests), []).append(
                    self._by_name[target])
            for digests, targets in by_digests.items():
                self._fill(self._by_name[origin], list(digests), targets)
        return moved

    def repair(self) -> int:
        """Re-fill replicas after a shard returns (alias of rebalance)."""
        return self.rebalance()

    # -- reporting ---------------------------------------------------------

    def hit_ratio(self) -> float:
        """Front-door pull hit ratio: fraction of requested blobs served
        from the caller's local CAS instead of shard egress."""
        served = self.stats.blobs_pulled + self.stats.blobs_pull_skipped
        return self.stats.blobs_pull_skipped / served if served else 0.0

    def report(self) -> dict:
        return {
            "fleet": self.name,
            "shards": len(self.shards),
            "replicas": self.replicas,
            "tenants": sorted(self.tenants),
            "stats": self.stats.as_dict(),
            "hit_ratio": round(self.hit_ratio(), 6),
            "rebalance_bytes": self.rebalance_bytes,
            "rebalance_blobs": self.rebalance_blobs,
            "per_shard": {s.name: s.as_dict() for s in self.shards},
        }


def _transfer_snapshot(stats: TransferStats) -> dict:
    return dict(stats.__dict__)


def _transfer_restore(stats: TransferStats, snap: dict) -> None:
    stats.__dict__.update(snap)


def deploy_fleet(world, *, n_shards: int, replicas: int = 1,
                 name: Optional[str] = None, **kwargs) -> RegistryFleet:
    """Replace *world*'s site registry with a fleet of *n_shards*.

    Existing site-registry content is re-pushed through fleet placement
    so already-published images stay pullable; the network entry and
    ``world.site_registry`` both point at the fleet afterwards, so every
    workflow (Podman push, ch-image pull, tree broadcast) routes through
    it transparently.
    """
    old = world.site_registry
    if isinstance(old, RegistryFleet):
        return old
    fleet = RegistryFleet(name or old.name, n_shards=n_shards,
                          replicas=replicas, **kwargs)
    from ..archive import TarArchive
    for repository in old.repositories():
        for tag in old.tags(repository):
            ref = ImageRef(repository=repository, tag=tag)
            # re-place every arch variant through the ring
            for _, manifest in sorted(old.manifest_variants(ref).items()):
                layers = [TarArchive.deserialize(old.fetch_blob(d))
                          for d in manifest.layers]
                fleet.push(ref, manifest.config, layers)
    world.network.registries[fleet.name] = fleet
    world.site_registry = fleet
    return fleet
