"""Machines: booted kernels with users, /dev, and optional shared filesystems.

A :class:`Machine` is one node — a laptop, a login node, or a compute node.
Cluster classes compose several machines over shared filesystems and a
common network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cas.store import ContentStore
from ..helpers import ShadowUtils
from ..kernel import (
    FileType,
    Filesystem,
    Kernel,
    Process,
    Syscalls,
    make_ext4,
    make_tmpfs,
)
from ..net import Network

__all__ = ["Machine", "make_machine"]


@dataclass
class Machine:
    """One booted node."""

    kernel: Kernel
    shadow: ShadowUtils
    dev_fs: Filesystem
    users: dict[str, int] = field(default_factory=dict)
    #: Node-local CAS shared by every builder and storage driver on this
    #: machine — identical layers land once per node, not once per user.
    content_store: ContentStore = field(default_factory=ContentStore)

    @property
    def hostname(self) -> str:
        return self.kernel.hostname

    @property
    def arch(self) -> str:
        return self.kernel.arch

    def root_sys(self) -> Syscalls:
        return Syscalls(self.kernel.init_process)

    def login(self, username: str) -> Process:
        """A login shell for a configured user."""
        uid = self.users[username]
        return self.kernel.login(uid, uid, user=username,
                                 home=f"/home/{username}")

    def mount_shared(self, mountpoint: str, fs: Filesystem) -> None:
        """Attach a shared filesystem (NFS home, Lustre scratch, ...)."""
        sys0 = self.root_sys()
        sys0.mkdir_p(mountpoint)
        self.kernel.init_process.mnt_ns.add_mount(mountpoint, fs)


def make_machine(
    hostname: str,
    *,
    arch: str = "x86_64",
    network: Optional[Network] = None,
    users: Optional[dict[str, int]] = None,
    subids: bool = True,
    kernel_version: tuple[int, int] = (5, 10),
    userns_enabled: bool = True,
) -> Machine:
    """Boot a node: root fs layout, /dev nodes, user accounts, subid grants."""
    kernel = Kernel(make_ext4(f"{hostname}-root"), arch=arch,
                    hostname=hostname, kernel_version=kernel_version,
                    userns_enabled=userns_enabled)
    kernel.network = network
    sys0 = Syscalls(kernel.init_process)
    for d in ("/etc", "/home", "/tmp", "/var/tmp", "/root", "/dev", "/proc",
              "/sys", "/usr/bin", "/opt"):
        sys0.mkdir_p(d)
    sys0.chmod("/tmp", 0o1777)
    sys0.chmod("/var/tmp", 0o1777)

    # /dev lives on a tmpfs with real device nodes (host root may mknod);
    # container runtimes bind-mount this into containers, since creating
    # device nodes inside a user namespace is impossible.
    dev_fs = make_tmpfs(f"{hostname}-dev", root_mode=0o755)
    kernel.init_process.mnt_ns.add_mount("/dev", dev_fs)
    for name, rdev in (("null", (1, 3)), ("zero", (1, 5)),
                       ("urandom", (1, 9)), ("tty", (5, 0))):
        sys0.mknod(f"/dev/{name}", FileType.CHR, 0o666, rdev=rdev)
        sys0.chmod(f"/dev/{name}", 0o666)  # mknod applied the umask

    users = dict(users or {"alice": 1000, "bob": 1001})
    shadow = ShadowUtils(kernel, users=users)
    passwd_lines = [
        "root:x:0:0:root:/root:/bin/sh",
        "nobody:x:65534:65534:nobody:/:/sbin/nologin",
    ]
    group_lines = ["root:x:0:", "nogroup:x:65534:"]
    for name, uid in users.items():
        sys0.mkdir_p(f"/home/{name}")
        sys0.chown(f"/home/{name}", uid, uid)
        sys0.chmod(f"/home/{name}", 0o755)
        passwd_lines.append(f"{name}:x:{uid}:{uid}::/home/{name}:/bin/sh")
        group_lines.append(f"{name}:x:{uid}:")
        if subids:
            shadow.useradd(name, uid)
    sys0.write_file("/etc/passwd", ("\n".join(passwd_lines) + "\n").encode())
    sys0.write_file("/etc/group", ("\n".join(group_lines) + "\n").encode())
    return Machine(kernel, shadow, dev_fs, users)
