"""A Spack-like from-source package manager (paper §5.3.3).

The production CI pipeline's second Dockerfile "installs the complex Spack
environment needed by the application".  Spack matters to the paper's
argument for a reason worth demonstrating: *source builds need no privilege
at all* — they compile and install under a user-owned prefix.  The
privilege problem is specific to **distribution** packages (chown to
package owners, setuid bits); a Spack stack builds fine in a plain Type III
container with no fakeroot anywhere, as the tests show.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KernelError
from ..shell import ExecContext
from ..shell.executor import find_program
from ..shell.registry import binary

__all__ = ["SpackSpec", "SPACK_REPO", "SPACK_PREFIX"]

SPACK_PREFIX = "/opt/spack"
SPACK_DB = f"{SPACK_PREFIX}/.spack-db"


@dataclass(frozen=True)
class SpackSpec:
    """One buildable source package."""

    name: str
    version: str
    depends: tuple[str, ...] = ()
    #: files created by `make install`, relative to the spec's prefix
    artifacts: tuple[tuple[str, bytes], ...] = ()
    #: executable artifacts: (relpath, impl)
    binaries: tuple[tuple[str, str], ...] = ()
    needs_mpi: bool = False

    @property
    def prefix(self) -> str:
        return f"{SPACK_PREFIX}/{self.name}-{self.version}"


SPACK_REPO: dict[str, SpackSpec] = {
    spec.name: spec
    for spec in (
        SpackSpec(
            name="zlib", version="1.2.11",
            artifacts=(("lib/libz.a", b"zlib static archive"),
                       ("include/zlib.h", b"/* zlib */")),
        ),
        SpackSpec(
            name="openmpi", version="4.0.5",
            artifacts=(("lib/libmpi.so", b"spack-built mpi"),),
            binaries=(("bin/mpirun", "app.mpirun"),),
        ),
        SpackSpec(
            name="hdf5", version="1.10.7",
            depends=("zlib", "openmpi"),
            artifacts=(("lib/libhdf5.so", b"spack-built hdf5"),),
            needs_mpi=True,
        ),
        SpackSpec(
            name="lammps", version="2021.05",
            depends=("openmpi", "hdf5"),
            artifacts=(("share/lammps/potentials.dat", b"eam/alloy table"),),
            binaries=(("bin/lmp", "app.lammps"),),
            needs_mpi=True,
        ),
    )
}


def _installed(ctx: ExecContext) -> dict[str, str]:
    try:
        raw = ctx.sys.read_file(SPACK_DB).decode()
    except KernelError:
        return {}
    out = {}
    for line in raw.splitlines():
        name, _, version = line.partition("|")
        if name:
            out[name] = version
    return out


def _record(ctx: ExecContext, spec: SpackSpec) -> None:
    db = _installed(ctx)
    db[spec.name] = spec.version
    ctx.sys.mkdir_p(SPACK_PREFIX)
    ctx.sys.write_file(SPACK_DB,
                       "".join(f"{n}|{v}\n" for n, v in sorted(db.items())))


def _install_one(ctx: ExecContext, spec: SpackSpec) -> None:
    """configure && make && make install — all as the invoking user."""
    from ..shell.install import install_binary
    ctx.sys.mkdir_p(spec.prefix)
    for rel, content in spec.artifacts:
        full = f"{spec.prefix}/{rel}"
        ctx.sys.mkdir_p(full.rsplit("/", 1)[0])
        ctx.sys.write_file(full, content)
    for rel, impl in spec.binaries:
        install_binary(ctx.sys, f"{spec.prefix}/{rel}", impl,
                       arch=ctx.kernel.arch)
        # convenience symlink onto the default PATH
        link = f"/usr/bin/{rel.rsplit('/', 1)[-1]}"
        if not ctx.sys.exists(link):
            ctx.sys.symlink(f"{spec.prefix}/{rel}", link)
    _record(ctx, spec)


@binary("pkg.spack")
def _spack(ctx: ExecContext, argv: list[str]) -> int:
    """spack install SPEC... | spack find"""
    args = [a for a in argv[1:] if not a.startswith("-")]
    if not args:
        ctx.stderr.writeline("usage: spack {install|find} [spec...]")
        return 1
    command, *names = args

    if command == "find":
        for name, version in sorted(_installed(ctx).items()):
            ctx.stdout.writeline(f"{name}@{version}")
        return 0

    if command != "install":
        ctx.stderr.writeline(f"spack: unknown command {command!r}")
        return 1
    if not names:
        ctx.stderr.writeline("spack install: no specs given")
        return 1

    # source builds need a compiler toolchain in the image
    if find_program(ctx, "gcc") is None:
        ctx.stderr.writeline(
            "Error: No compilers available: install gcc first")
        return 1

    installed = _installed(ctx)
    order: list[SpackSpec] = []

    def visit(name: str) -> bool:
        base = name.split("@", 1)[0]
        if base in installed or any(s.name == base for s in order):
            return True
        spec = SPACK_REPO.get(base)
        if spec is None:
            ctx.stderr.writeline(f"Error: unknown package: {base}")
            return False
        for dep in spec.depends:
            if not visit(dep):
                return False
        order.append(spec)
        return True

    for name in names:
        if not visit(name):
            return 1
    for spec in order:
        ctx.stdout.writeline(f"==> Installing {spec.name}@{spec.version}")
        ctx.stdout.writeline(f"==> {spec.name}: Executing phase: "
                             "'configure' 'build' 'install'")
        try:
            _install_one(ctx, spec)
        except KernelError as err:
            ctx.stderr.writeline(f"Error: {spec.name}: {err.strerror}")
            return 1
        ctx.stdout.writeline(
            f"[+] {spec.prefix}")
    return 0


@binary("app.lammps")
def _lammps(ctx: ExecContext, argv: list[str]) -> int:
    """A token MPI application built by spack."""
    rank = ctx.env.get("OMPI_COMM_WORLD_RANK", "0")
    size = ctx.env.get("OMPI_COMM_WORLD_SIZE", "1")
    ctx.stdout.writeline(
        f"LAMMPS (2021.05) rank {rank}/{size} on {ctx.sys.gethostname()}: "
        "run complete")
    return 0
