"""Base image construction: centos:7 and debian:buster as layer archives.

Each base image is built in a scratch kernel and packed into a
:class:`~repro.archive.TarArchive` with distribution-intended ownership
(root:root), ready to be pushed into a registry.  Images are arch-specific —
pulling an x86-64 image onto an aarch64 machine yields binaries that fail
to exec, which is the Astra motivation (paper §4.2).
"""

from __future__ import annotations

from ..archive import TarArchive
from ..kernel import Kernel, Syscalls, make_ext4
from ..shell.install import install_binary
from ..userdb import GroupEntry, PasswdEntry, UserDb

__all__ = ["CORE_UTILS", "make_centos7_archive", "make_debian10_archive",
           "populate_userland"]

#: command name -> registered implementation, for the common userland
CORE_UTILS: dict[str, str] = {
    "echo": "coreutils.echo", "cat": "coreutils.cat",
    "touch": "coreutils.touch", "ls": "coreutils.ls",
    "chown": "coreutils.chown", "chgrp": "coreutils.chgrp",
    "chmod": "coreutils.chmod", "mknod": "coreutils.mknod",
    "rm": "coreutils.rm", "mkdir": "coreutils.mkdir", "mv": "coreutils.mv",
    "cp": "coreutils.cp", "ln": "coreutils.ln", "id": "coreutils.id",
    "whoami": "coreutils.whoami", "uname": "coreutils.uname",
    "hostname": "coreutils.hostname", "env": "coreutils.env",
    "stat": "coreutils.stat", "grep": "grep.grep", "egrep": "grep.egrep",
    "fgrep": "grep.fgrep", "tar": "tar.tar", "sh": "sh.posix",
    "true": "coreutils.true", "false": "coreutils.false",
    "ps": "procps.ps",
    "useradd": "shadow.useradd", "groupadd": "shadow.groupadd",
    "setcap": "caps.setcap",
}


def populate_userland(sys: Syscalls, arch: str) -> None:
    """Install the common userland into the tree rooted at /."""
    for name, impl in CORE_UTILS.items():
        # sh stays noarch (scripts must run everywhere the interpreter does);
        # everything else is a compiled binary of the image's architecture.
        bin_arch = "noarch" if impl == "sh.posix" else arch
        install_binary(sys, f"/usr/bin/{name}", impl, arch=bin_arch)
    sys.mkdir_p("/bin")
    sys.symlink("/usr/bin/sh", "/bin/sh")
    for d in ("/etc", "/var/log", "/usr/sbin", "/root", "/home", "/opt",
              "/dev", "/proc", "/sys"):
        sys.mkdir_p(d)
    sys.mkdir_p("/tmp")
    sys.chmod("/tmp", 0o1777)
    # Bulk data so image sizes behave realistically (locale archives and
    # shared libraries dominate real base images).
    sys.mkdir_p("/usr/lib/locale")
    sys.write_file("/usr/lib/locale/locale-archive",
                   b"\x00locale" * 8192)  # ~56 KiB
    sys.write_file("/usr/lib/libc.so.6", b"\x7fELF libc " + b"\x90" * 4096)


def _scratch(arch: str) -> tuple[Kernel, Syscalls]:
    k = Kernel(make_ext4("image-build"), arch=arch, hostname="builder")
    return k, Syscalls(k.init_process)


def make_centos7_archive(arch: str = "x86_64") -> TarArchive:
    """Build the centos:7 base image."""
    _, sys = _scratch(arch)
    populate_userland(sys, arch)
    install_binary(sys, "/usr/bin/yum", "pkg.yum", arch=arch)
    install_binary(sys, "/usr/bin/dnf", "pkg.yum", arch=arch)
    install_binary(sys, "/usr/bin/yum-config-manager",
                   "pkg.yum_config_manager", arch=arch)
    install_binary(sys, "/usr/bin/rpm", "pkg.rpm", arch=arch)

    sys.write_file("/etc/redhat-release",
                   b"CentOS Linux release 7.9.2009 (Core)\n")
    sys.write_file("/etc/os-release",
                   b'NAME="CentOS Linux"\nVERSION="7 (Core)"\nID="centos"\n'
                   b'VERSION_ID="7"\n')
    sys.write_file("/etc/yum.conf",
                   b"[main]\ncachedir=/var/cache/yum\nkeepcache=0\n")
    sys.mkdir_p("/etc/yum.repos.d")
    sys.write_file(
        "/etc/yum.repos.d/base.repo",
        (
            "[base]\n"
            "name=CentOS-7 - Base\n"
            f"baseurl=repo://centos7/base-{arch}\n"
            "enabled=1\n"
        ).encode(),
    )

    db = UserDb(
        [
            PasswdEntry("root", 0, 0, "root", "/root", "/bin/sh"),
            PasswdEntry("bin", 1, 1, "bin", "/bin", "/sbin/nologin"),
            PasswdEntry("daemon", 2, 2, "daemon", "/sbin", "/sbin/nologin"),
            PasswdEntry("nobody", 65534, 65534, "Nobody", "/",
                        "/sbin/nologin"),
        ],
        [
            GroupEntry("root", 0), GroupEntry("bin", 1),
            GroupEntry("daemon", 2), GroupEntry("adm", 4),
            GroupEntry("nobody", 65534),
        ],
    )
    db.store(sys)
    sys.mkdir_p("/var/lib/rpm")
    sys.write_file("/var/lib/rpm/packages",
                   b"bash|4.2.46\ncoreutils|8.22\ngrep|2.20\ntar|1.26\n"
                   b"yum|3.4.3\nrpm|4.11.3\n")
    return TarArchive.pack(sys, "/")


def make_debian10_archive(arch: str = "x86_64") -> TarArchive:
    """Build the debian:buster base image.  Ships *no* package indexes —
    "the base image contains none, so no packages can be installed without
    apt-get update" (paper §5.2)."""
    _, sys = _scratch(arch)
    populate_userland(sys, arch)
    install_binary(sys, "/usr/bin/apt-get", "pkg.apt_get", arch=arch)
    install_binary(sys, "/usr/bin/apt", "pkg.apt_get", arch=arch)
    install_binary(sys, "/usr/bin/apt-config", "pkg.apt_config", arch=arch)
    install_binary(sys, "/usr/bin/dpkg", "pkg.dpkg", arch=arch)

    sys.write_file(
        "/etc/os-release",
        b'PRETTY_NAME="Debian GNU/Linux 10 (buster)"\n'
        b'NAME="Debian GNU/Linux"\nVERSION_ID="10"\nVERSION="10 (buster)"\n'
        b'VERSION_CODENAME=buster\nID=debian\n',
    )
    sys.write_file("/etc/debian_version", b"10.9\n")
    sys.mkdir_p("/etc/apt/apt.conf.d")
    sys.write_file("/etc/apt/sources.list",
                   f"deb repo://debian10/main-{arch} buster main\n".encode())
    sys.mkdir_p("/var/lib/apt/lists")
    sys.mkdir_p("/var/log/apt")

    db = UserDb(
        [
            PasswdEntry("root", 0, 0, "root", "/root", "/bin/sh"),
            PasswdEntry("daemon", 1, 1, "daemon", "/usr/sbin",
                        "/usr/sbin/nologin"),
            # the APT sandbox user whose seteuid(100) fails in Figure 3
            PasswdEntry("_apt", 100, 65534, "", "/nonexistent",
                        "/usr/sbin/nologin"),
            PasswdEntry("nobody", 65534, 65534, "nobody", "/nonexistent",
                        "/usr/sbin/nologin"),
        ],
        [
            GroupEntry("root", 0), GroupEntry("daemon", 1),
            GroupEntry("adm", 4), GroupEntry("staff", 50),
            GroupEntry("nogroup", 65534),
        ],
    )
    db.store(sys)
    sys.mkdir_p("/var/lib/dpkg")
    sys.write_file("/var/lib/dpkg/status",
                   b"base-files|10.3\nbash|5.0\ncoreutils|8.30\n"
                   b"grep|3.3\ntar|1.30\napt|1.8.2\ndpkg|1.19.7\n"
                   b"libc-bin|2.28-10\n")
    return TarArchive.pack(sys, "/")
