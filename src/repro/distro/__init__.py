"""Distribution substrate: packages, repositories, yum/rpm, apt/dpkg, and
the centos:7 / debian:buster base images."""

from . import appbins, apt, spack, yum  # noqa: F401  (registers pkg tool binaries)
from .baseimages import (
    CORE_UTILS,
    make_centos7_archive,
    make_debian10_archive,
    populate_userland,
)
from .catalog import (
    ARCHES,
    centos_base_packages,
    centos_epel_packages,
    debian_main_packages,
    make_universe,
)
from .packages import Package, PackageDb, PackageFile, resolve_dependencies
from .repository import PackageUniverse, Repository
from .rpm import CpioError, RPM_DB_PATH, ScriptletError, rpm_install, unpack_package

__all__ = [
    "CORE_UTILS",
    "make_centos7_archive",
    "make_debian10_archive",
    "populate_userland",
    "ARCHES",
    "centos_base_packages",
    "centos_epel_packages",
    "debian_main_packages",
    "make_universe",
    "Package",
    "PackageDb",
    "PackageFile",
    "resolve_dependencies",
    "PackageUniverse",
    "Repository",
    "CpioError",
    "RPM_DB_PATH",
    "ScriptletError",
    "rpm_install",
    "unpack_package",
]
