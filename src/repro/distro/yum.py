"""yum(8) and yum-config-manager, reading real config files in the image.

ch-image's rhel7 workaround greps /etc/yum.conf and /etc/yum.repos.d/*
directly "rather than using yum repolist, because the latter has side
effects, e.g. refreshing caches from the internet" (§5.3.1) — so the repo
configuration must live in actual files, which these tools read and edit.
"""

from __future__ import annotations

from ..errors import KernelError, PackageError
from ..kernel import Syscalls
from ..shell import ExecContext
from ..shell.registry import binary
from .ini import format_ini, parse_ini
from .packages import Package, PackageDb, resolve_dependencies
from .rpm import RPM_DB_PATH, CpioError, ScriptletError, rpm_install

__all__ = ["read_repo_config", "enabled_repo_urls"]

_YUM_CONF = "/etc/yum.conf"
_REPO_DIR = "/etc/yum.repos.d"


def _repo_files(sys: Syscalls) -> list[str]:
    files = []
    if sys.exists(_YUM_CONF):
        files.append(_YUM_CONF)
    try:
        for entry in sys.readdir(_REPO_DIR):
            if entry.name.endswith(".repo"):
                files.append(f"{_REPO_DIR}/{entry.name}")
    except KernelError:
        pass
    return files


def read_repo_config(sys: Syscalls) -> dict[str, dict[str, str]]:
    """Merge all repo sections from yum.conf + *.repo ([main] excluded)."""
    merged: dict[str, dict[str, str]] = {}
    for path in _repo_files(sys):
        sections = parse_ini(sys.read_file(path).decode())
        for name, body in sections.items():
            if name == "main":
                continue
            entry = dict(body)
            entry["_file"] = path
            merged[name] = entry
    return merged


def enabled_repo_urls(sys: Syscalls, *, enable: set[str] = frozenset(),
                      disable: set[str] = frozenset()) -> dict[str, str]:
    """repo id -> baseurl for repos enabled after CLI overrides."""
    out = {}
    for rid, body in read_repo_config(sys).items():
        enabled = body.get("enabled", "1") != "0"
        if rid in enable:
            enabled = True
        if rid in disable:
            enabled = False
        if enabled and "baseurl" in body:
            out[rid] = body["baseurl"]
    return out


@binary("pkg.yum")
def _yum(ctx: ExecContext, argv: list[str]) -> int:
    args = argv[1:]
    assume_yes = False
    enable: set[str] = set()
    disable: set[str] = set()
    positional: list[str] = []
    for a in args:
        if a == "-y":
            assume_yes = True
        elif a.startswith("--enablerepo="):
            enable.add(a.split("=", 1)[1])
        elif a.startswith("--disablerepo="):
            disable.add(a.split("=", 1)[1])
        elif a.startswith("-"):
            continue
        else:
            positional.append(a)
    if not positional:
        ctx.stderr.writeline("yum: no command given")
        return 1
    command, *names = positional

    if command == "repolist":
        for rid, url in sorted(enabled_repo_urls(ctx.sys).items()):
            ctx.stdout.writeline(f"{rid:<16} {url}")
        return 0

    if command != "install":
        ctx.stderr.writeline(f"yum: unsupported command {command!r}")
        return 1
    if not names:
        ctx.stderr.writeline("yum: install needs package names")
        return 1
    if not assume_yes:
        ctx.stderr.writeline("yum: refusing to install without -y "
                             "(non-interactive build)")
        return 1

    net = ctx.network
    if net is None or not net.online:
        ctx.stderr.writeline("Could not resolve host (network unreachable)")
        return 1

    # Collect available packages from enabled repos.
    available: dict[str, Package] = {}
    repo_of: dict[str, str] = {}
    for rid, url in enabled_repo_urls(ctx.sys, enable=enable,
                                      disable=disable).items():
        try:
            repo = net.repo(url)
        except PackageError as err:
            ctx.stderr.writeline(f"yum: {err}")
            return 1
        for pkg in repo.packages.values():
            available.setdefault(pkg.name, pkg)
            repo_of.setdefault(pkg.name, rid)

    db = PackageDb(ctx.sys, RPM_DB_PATH)
    installed = db.installed()
    missing = [n for n in names if n not in installed]
    if not missing:
        for n in names:
            ctx.stdout.writeline(
                f"Package {n} already installed and latest version")
        ctx.stdout.writeline("Nothing to do")
        return 0

    try:
        transaction = resolve_dependencies(missing, available, installed)
    except PackageError as err:
        ctx.stderr.writeline(f"No package matching request: {err}")
        return 1

    ctx.stdout.writeline("Resolving Dependencies")
    ctx.stdout.writeline("Dependencies Resolved")
    for pkg in transaction:
        ctx.stdout.writeline(f" Installing: {pkg.nevra}")
    for pkg in transaction:
        net.repo(enabled_repo_urls(ctx.sys, enable=enable,
                                   disable=disable)[repo_of[pkg.name]]
                 ).fetch(pkg.name)
        try:
            rpm_install(ctx, pkg)
        except CpioError as err:
            ctx.stdout.writeline(f"Error unpacking rpm package {pkg.nevra}")
            ctx.stdout.writeline(f"error: {err}")
            return 1
        except ScriptletError as err:
            ctx.stdout.writeline(f"error: %post({pkg.nevra}) scriptlet "
                                 f"failed, exit status {err.status}")
            return 1
    ctx.stdout.writeline("Complete!")
    return 0


@binary("pkg.rpm")
def _rpm(ctx: ExecContext, argv: list[str]) -> int:
    """rpm query front end: -q NAME, -qa; installs go through yum."""
    args = argv[1:]
    db = PackageDb(ctx.sys, RPM_DB_PATH)
    if args[:1] == ["-qa"]:
        for name, version in sorted(db.installed().items()):
            ctx.stdout.writeline(f"{name}-{version}")
        return 0
    if args[:1] == ["-q"]:
        status = 0
        for name in args[1:]:
            version = db.installed().get(name)
            if version is None:
                ctx.stdout.writeline(f"package {name} is not installed")
                status = 1
            else:
                ctx.stdout.writeline(f"{name}-{version}")
        return status
    ctx.stderr.writeline("rpm: only -q/-qa supported; use yum to install")
    return 1


@binary("pkg.yum_config_manager")
def _yum_config_manager(ctx: ExecContext, argv: list[str]) -> int:
    args = argv[1:]
    action = None
    repos: list[str] = []
    for a in args:
        if a == "--disable":
            action = "0"
        elif a == "--enable":
            action = "1"
        elif not a.startswith("-"):
            repos.append(a)
    if action is None or not repos:
        ctx.stderr.writeline("yum-config-manager: need --enable/--disable "
                             "and repo ids")
        return 1
    config = read_repo_config(ctx.sys)
    touched = 0
    for rid in repos:
        body = config.get(rid)
        if body is None:
            continue
        path = body["_file"]
        sections = parse_ini(ctx.sys.read_file(path).decode())
        if rid in sections:
            sections[rid]["enabled"] = action
            ctx.sys.write_file(path, format_ini(sections).encode())
            touched += 1
    if touched == 0:
        ctx.stderr.writeline(f"yum-config-manager: no such repos: "
                             f"{' '.join(repos)}")
        return 1
    return 0
