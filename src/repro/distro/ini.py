"""Tiny INI parser for yum configuration files."""

from __future__ import annotations

__all__ = ["parse_ini", "format_ini"]


def parse_ini(text: str) -> dict[str, dict[str, str]]:
    """Parse ``[section]`` / ``key=value`` structure (yum.conf/.repo style)."""
    sections: dict[str, dict[str, str]] = {}
    current: dict[str, str] | None = None
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith(("#", ";")):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            current = sections.setdefault(name, {})
            continue
        if current is None:
            continue
        key, _, value = line.partition("=")
        current[key.strip()] = value.strip()
    return sections


def format_ini(sections: dict[str, dict[str, str]]) -> str:
    out = []
    for name, body in sections.items():
        out.append(f"[{name}]")
        for key, value in body.items():
            out.append(f"{key}={value}")
        out.append("")
    return "\n".join(out)
