"""The package catalog: what the simulated repositories serve.

Packages are chosen to exercise each privilege failure mode the paper
documents:

* ``openssh`` (CentOS): payload owned ``root:ssh_keys`` — the Figure 2
  ``cpio: chown`` failure in Type III.
* ``openssh-client`` (Debian): payload group ``_ssh`` plus a postinst that
  runs setcap — fails in plain Type III, fails under classic fakeroot (no
  xattr interception), succeeds under pseudo/fakeroot-ng.  "The OpenSSH
  client ... is problematic across distributions" (Figure 2 caption).
* ``openssh-server``: postinst writes /proc/sys — fails wherever /proc is
  owned by (unmapped) nobody, i.e. any rootless container (Figure 5).
* ``iputils``: file capabilities on ping — the "packages that fakeroot
  cannot install but fakeroot-ng and pseudo can" case (§5.1).
* ``sash``: postinst runs a *statically linked* chown — the LD_PRELOAD
  blind spot; only ptrace-based fakeroot-ng survives it (§5.1, Table 1).
* ``epel-release``, ``fakeroot``, ``pseudo``: all root:root, installable
  with no privilege at all (why Figure 8 steps 1-2 need no wrapper).
* an ATSE-ish HPC stack (gcc/openmpi/hdf5/atse) for the Astra workflow.
"""

from __future__ import annotations

from .packages import Package, PackageFile
from .repository import PackageUniverse, Repository

__all__ = ["centos_base_packages", "centos_epel_packages",
           "debian_main_packages", "make_universe", "ARCHES"]

ARCHES = ("x86_64", "aarch64")


def _bin(path: str, impl: str | None, arch: str, *, mode: int = 0o755,
         owner: str = "root", group: str = "root", static: bool = False,
         caps: str | None = None, content: bytes = b"\x7fELF") -> PackageFile:
    return PackageFile(path=path, ftype="f", mode=mode, owner=owner,
                       group=group, content=content, exe_impl=impl,
                       exe_arch=arch if impl else "noarch",
                       exe_static=static, caps=caps)


def centos_base_packages(arch: str) -> list[Package]:
    return [
        Package(
            name="openssh",
            version="7.4p1", release="21.el7", arch=arch,
            summary="An open source implementation of SSH protocol "
                    "versions 1 and 2",
            pre_script="groupadd -r ssh_keys",
            files=(
                _bin("/usr/bin/ssh", None, arch),
                _bin("/usr/bin/ssh-keygen", None, arch),
                # setgid ssh_keys binary: THE chown that kills Figure 2
                _bin("/usr/libexec/openssh/ssh-keysign", None, arch,
                     mode=0o2755, group="ssh_keys"),
                PackageFile("/etc/ssh", ftype="d", mode=0o755),
                PackageFile("/etc/ssh/moduli", mode=0o644,
                            content=b"# SSH moduli\n"),
            ),
        ),
        Package(
            name="openssh-server",
            version="7.4p1", release="21.el7", arch=arch,
            summary="An open source SSH server daemon",
            requires=("openssh",),
            pre_script="useradd -r -d /var/empty/sshd -s /sbin/nologin sshd",
            post_script=(
                # a real root install may tune /proc; nobody-owned /proc
                # in rootless containers makes this fail (Figure 5)
                "echo 1 > /proc/sys/net/ipv4/ip_forward"
            ),
            files=(
                _bin("/usr/sbin/sshd", None, arch),
                PackageFile("/var/empty/sshd", ftype="d", mode=0o711,
                            owner="root", group="root"),
                PackageFile("/etc/ssh/sshd_config", mode=0o600,
                            content=b"PermitRootLogin no\n"),
            ),
        ),
        Package(
            name="epel-release",
            version="7", release="14", arch="noarch",
            summary="Extra Packages for Enterprise Linux repository "
                    "configuration",
            files=(
                PackageFile(
                    "/etc/yum.repos.d/epel.repo", mode=0o644,
                    content=(
                        "[epel]\n"
                        "name=Extra Packages for Enterprise Linux 7\n"
                        f"baseurl=repo://centos7/epel-{arch}\n"
                        "enabled=1\n"
                    ).encode(),
                ),
            ),
        ),
        Package(
            name="sash",
            version="3.8", release="5.el7", arch=arch,
            summary="A statically linked shell including standalone tools",
            post_script="/usr/sbin/sln-fixup nobody /opt/sash/sash.dat",
            files=(
                # statically linked fixup helper: LD_PRELOAD cannot wrap it
                _bin("/usr/sbin/sln-fixup", "coreutils.chown", arch,
                     static=True),
                PackageFile("/opt/sash/sash.dat", mode=0o644,
                            content=b"standalone shell data\n"),
            ),
        ),
        Package(
            name="iputils",
            version="20160308", release="10.el7", arch=arch,
            summary="Network monitoring tools including ping",
            files=(
                # file capabilities: applied via security.capability xattr,
                # which classic fakeroot does not intercept
                _bin("/usr/bin/ping", None, arch, caps="cap_net_raw+ep"),
            ),
        ),
        Package(
            name="spack",
            version="0.16.2", release="1", arch="noarch",
            summary="A flexible package manager for HPC software stacks",
            files=(
                _bin("/usr/bin/spack", "pkg.spack", arch),
                PackageFile("/opt/spack", ftype="d", mode=0o755),
            ),
        ),
        Package(
            name="gcc",
            version="4.8.5", release="44.el7", arch=arch,
            summary="The GNU Compiler Collection",
            files=(_bin("/usr/bin/gcc", None, arch),
                   _bin("/usr/bin/g++", None, arch)),
        ),
        Package(
            name="openmpi",
            version="3.1.6", release="1.el7", arch=arch,
            summary="Open Message Passing Interface",
            requires=("gcc",),
            files=(
                _bin("/usr/lib64/openmpi/bin/mpirun", "app.mpirun", arch),
                _bin("/usr/lib64/openmpi/bin/mpicc", None, arch),
                PackageFile("/usr/lib64/openmpi/lib/libmpi.so", mode=0o755,
                            content=b"\x7fELF libmpi"),
            ),
        ),
        Package(
            name="hdf5",
            version="1.8.12", release="13.el7", arch=arch,
            summary="A general purpose library for storing scientific data",
            requires=("openmpi",),
            files=(PackageFile("/usr/lib64/libhdf5.so", mode=0o755,
                               content=b"\x7fELF libhdf5"),),
        ),
        Package(
            name="atse",
            version="1.2.5", release="1", arch=arch,
            summary="Advanced Tri-lab Software Environment meta-package",
            requires=("openmpi", "hdf5"),
            files=(
                _bin("/opt/atse/bin/atse-info", "app.atse_info", arch),
                PackageFile("/opt/atse/etc/atse.conf", mode=0o644,
                            content=b"stack=atse-1.2.5\n"),
            ),
        ),
    ]


def centos_epel_packages(arch: str) -> list[Package]:
    return [
        Package(
            name="fakeroot",
            version="1.25.3", release="1.el7", arch=arch,
            summary="Gives a fake root environment",
            files=(
                _bin("/usr/bin/fakeroot", "fakeroot.classic", arch),
                _bin("/usr/bin/faked", None, arch),
            ),
        ),
        Package(
            name="fakeroot-ng",
            version="0.18", release="1.el7", arch=arch,
            summary="Fake root environment by means of ptrace",
            files=(_bin("/usr/bin/fakeroot-ng", "fakeroot.ng", arch),),
        ),
    ]


def debian_main_packages(arch: str) -> list[Package]:
    return [
        Package(
            name="openssh-client",
            version="1:7.9p1-10+deb10u2", arch=arch,
            summary="secure shell (SSH) client",
            requires=("libxext6", "xauth"),
            pre_script="groupadd -r _ssh",
            post_script=(
                "chown root:_ssh /usr/bin/ssh-agent && "
                "chmod 2755 /usr/bin/ssh-agent && "
                "setcap cap_net_bind_service+ep /usr/lib/openssh/ssh-keysign"
            ),
            files=(
                _bin("/usr/bin/ssh", None, arch),
                _bin("/usr/bin/ssh-agent", None, arch),
                _bin("/usr/lib/openssh/ssh-keysign", None, arch),
            ),
        ),
        Package(
            name="libxext6",
            version="2:1.3.3-1+b2", arch=arch,
            summary="X11 miscellaneous extension library",
            files=(PackageFile("/usr/lib/libXext.so.6", mode=0o644,
                               content=b"\x7fELF libXext"),),
        ),
        Package(
            name="xauth",
            version="1:1.0.10-1", arch=arch,
            summary="X authentication utility",
            files=(_bin("/usr/bin/xauth", None, arch),),
        ),
        Package(
            name="pseudo",
            version="1.9.0+git20180920-1", arch=arch,
            summary="advanced tool for simulating superuser privileges",
            files=(
                _bin("/usr/bin/pseudo", "fakeroot.pseudo", arch),
                # pseudo ships a fakeroot-compatible entry point here, so
                # injected 'fakeroot' commands find it (Figures 9/11)
                _bin("/usr/bin/fakeroot", "fakeroot.pseudo", arch),
            ),
        ),
        Package(
            name="fakeroot",
            version="1.23-1", arch=arch,
            summary="tool for simulating superuser privileges",
            files=(_bin("/usr/bin/fakeroot", "fakeroot.classic", arch),),
        ),
        Package(
            name="fakeroot-ng",
            version="0.18-4", arch=arch,
            summary="Gives a fake root environment, ptrace version",
            files=(_bin("/usr/bin/fakeroot-ng", "fakeroot.ng", arch),),
        ),
        Package(
            name="openmpi-bin",
            version="3.1.3-11", arch=arch,
            summary="high performance message passing library -- binaries",
            files=(_bin("/usr/bin/mpirun", "app.mpirun", arch),),
        ),
    ]


def site_licensed_packages(arch: str) -> list[Package]:
    """A site-internal repository: the licensed vendor compiler only
    reachable from the site network (the §2/§3.2 'resources available only
    on specific networks' scenario)."""
    return [
        Package(
            name="vendor-compiler",
            version="22.1", release="lic", arch=arch,
            summary="Proprietary vendor compiler (license-server gated)",
            files=(
                _bin("/opt/vendor/bin/vcc", None, arch),
                PackageFile("/opt/vendor/etc/license.conf", mode=0o644,
                            content=b"license-server=lic.example.gov:27000\n"),
            ),
        ),
        Package(
            name="vendor-mpi",
            version="4.0", release="lic", arch=arch,
            summary="Vendor-tuned MPI",
            requires=("vendor-compiler",),
            files=(_bin("/opt/vendor/bin/vmpirun", "app.mpirun", arch),),
        ),
    ]


def make_universe() -> PackageUniverse:
    """Build the full 'internet': per-arch CentOS base/EPEL and Debian main."""
    universe = PackageUniverse()
    for arch in ARCHES:
        universe.add_repo(
            Repository(f"centos7/base-{arch}", "CentOS-7 - Base")
            .add(*centos_base_packages(arch)))
        universe.add_repo(
            Repository(f"centos7/epel-{arch}",
                       "Extra Packages for Enterprise Linux 7")
            .add(*centos_epel_packages(arch)))
        universe.add_repo(
            Repository(f"debian10/main-{arch}", "Debian 10 (buster) main")
            .add(*debian_main_packages(arch)))
        universe.add_repo(
            Repository(f"site/licensed-{arch}", "Site licensed software")
            .add(*site_licensed_packages(arch)))
    return universe
