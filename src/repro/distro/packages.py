"""Distribution package model.

A package is payload files (with *named* owners, resolved against the
image's /etc/passwd at install time, like rpm/dpkg do) plus maintainer
scripts.  The privileged operations packages perform during install —
chown(2) to package users, setuid bits, device nodes, file capabilities —
are exactly what makes unprivileged container build hard (paper §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import KernelError, PackageError
from ..kernel import Syscalls

__all__ = ["PackageFile", "Package", "PackageDb"]


@dataclass(frozen=True)
class PackageFile:
    """One payload entry.

    ``owner``/``group`` are names (resolved in-image).  ``caps`` models file
    capabilities (applied via the ``security.capability`` xattr).  ``exe_*``
    wire executables to registered userland impls; ``exe_static`` marks
    statically linked binaries (the LD_PRELOAD blind spot, §5.1).
    """

    path: str  # absolute in-image path
    ftype: str = "f"  # f, d, l
    mode: int = 0o644
    owner: str = "root"
    group: str = "root"
    content: bytes = b""
    target: str = ""  # symlink target
    exe_impl: Optional[str] = None
    exe_arch: str = "noarch"
    exe_static: bool = False
    caps: Optional[str] = None


#: Characters that would corrupt the ``name|version`` line format of
#: :class:`PackageDb` — ``|`` splits the fields, newlines split records.
_DB_UNSAFE = ("|", "\n", "\r")


@dataclass(frozen=True)
class Package:
    """One installable package."""

    name: str
    version: str
    release: str = "1"
    arch: str = "x86_64"
    summary: str = ""
    files: tuple[PackageFile, ...] = ()
    requires: tuple[str, ...] = ()
    pre_script: Optional[str] = None  # %pre / preinst
    post_script: Optional[str] = None  # %post / postinst

    def __post_init__(self):
        # the database is line-oriented ``name|version`` — a name or
        # version carrying the delimiters would round-trip as a
        # *different* installed set (and poison any SBOM built from it),
        # so reject at construction instead of corrupting silently
        for label in ("name", "version"):
            value = getattr(self, label)
            if not value:
                raise PackageError(f"package {label} must be non-empty")
            bad = [c for c in _DB_UNSAFE if c in value]
            if bad:
                raise PackageError(
                    f"package {label} {value!r} contains characters "
                    f"unrepresentable in the package database: {bad!r}")

    @property
    def nevra(self) -> str:
        """name-version-release.arch, the rpm transcript form."""
        return f"{self.name}-{self.version}-{self.release}.{self.arch}"

    @property
    def deb_version(self) -> str:
        return self.version

    def size_bytes(self) -> int:
        return sum(len(f.content) for f in self.files)


class PackageDb:
    """The installed-packages database of one image tree.

    One simple line-oriented file serves for both rpmdb
    (/var/lib/rpm/packages) and dpkg status (/var/lib/dpkg/status).
    """

    def __init__(self, sys: Syscalls, path: str):
        self.sys = sys
        self.path = path

    def _read(self) -> dict[str, str]:
        try:
            raw = self.sys.read_file(self.path).decode()
        except KernelError:
            return {}
        out = {}
        for line in raw.splitlines():
            if not line.strip():
                continue
            name, _, version = line.partition("|")
            out[name] = version
        return out

    def installed(self) -> dict[str, str]:
        """name -> version of everything installed."""
        return self._read()

    def is_installed(self, name: str) -> bool:
        return name in self._read()

    def add(self, pkg: Package) -> None:
        entries = self._read()
        entries[pkg.name] = pkg.version
        self._store(entries)

    def remove(self, name: str) -> None:
        entries = self._read()
        entries.pop(name, None)
        self._store(entries)

    def _store(self, entries: dict[str, str]) -> None:
        parent = self.path.rsplit("/", 1)[0]
        self.sys.mkdir_p(parent)
        body = "".join(f"{n}|{v}\n" for n, v in sorted(entries.items()))
        self.sys.write_file(self.path, body.encode())


def resolve_dependencies(
    wanted: list[str],
    available: dict[str, Package],
    installed: dict[str, str],
) -> list[Package]:
    """Topologically ordered install transaction (dependencies first).

    Raises :class:`PackageError` for unknown packages or dependency cycles.
    """
    order: list[Package] = []
    seen: set[str] = set(installed)
    visiting: set[str] = set()

    def visit(name: str) -> None:
        if name in seen:
            return
        if name in visiting:
            raise PackageError(f"dependency cycle involving {name!r}")
        if name not in available:
            raise PackageError(f"no package {name!r} available")
        visiting.add(name)
        for dep in available[name].requires:
            visit(dep)
        visiting.discard(name)
        seen.add(name)
        order.append(available[name])

    for name in wanted:
        visit(name)
    return order
