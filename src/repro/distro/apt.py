"""APT and dpkg.

The paper's Figure 3 failure mode lives here: apt-get "tries to drop
privileges and change to user _apt (UID 100) to sandbox downloading and
external dependency solving", which in a Type III container yields
``setgroups`` EPERM and ``seteuid`` EINVAL.  The escape hatch is the
``APT::Sandbox::User "root";`` configuration (Figure 9's no-sandbox file).
"""

from __future__ import annotations

from ..errors import KernelError, PackageError
from ..kernel import Syscalls
from ..shell import ExecContext, run_shell
from ..shell.registry import binary
from ..userdb import UserDb
from .packages import Package, PackageDb, resolve_dependencies
from .rpm import CpioError, unpack_package

__all__ = ["DPKG_DB_PATH", "APT_LISTS_DIR", "APT_CONF_DIR", "sandbox_drop"]

DPKG_DB_PATH = "/var/lib/dpkg/status"
APT_LISTS_DIR = "/var/lib/apt/lists"
APT_CONF_DIR = "/etc/apt/apt.conf.d"
SOURCES_LIST = "/etc/apt/sources.list"


def _apt_config_text(sys: Syscalls) -> str:
    chunks = []
    try:
        for entry in sys.readdir(APT_CONF_DIR):
            try:
                chunks.append(
                    sys.read_file(f"{APT_CONF_DIR}/{entry.name}").decode())
            except KernelError:
                pass
    except KernelError:
        pass
    return "\n".join(chunks)


def sandbox_drop(ctx: ExecContext) -> list[str]:
    """Attempt APT's privilege drop to _apt; returns error lines (empty on
    success or when sandboxing is configured off)."""
    if 'APT::Sandbox::User "root"' in _apt_config_text(ctx.sys):
        return []
    db = UserDb.load(ctx.sys)
    apt_user = db.user_by_name("_apt")
    if apt_user is None:
        return []
    errors: list[str] = []
    # The drop happens in a forked worker, which *inherits* whatever syscall
    # interposition the parent had (seccomp filters propagate; LD_PRELOAD
    # fakeroot does too, but it does not intercept set*id — paper §5.2 —
    # so only runtime-level interception like §6.2.2(3) changes the outcome).
    worker = ctx.proc.fork(comm="apt-worker")
    wsys = ctx.sys.clone_for(worker)
    try:
        try:
            wsys.setgroups([65534])
        except KernelError as err:
            errors.append(
                f"E: setgroups 65534 failed - setgroups "
                f"({int(err.errno)}: {err.strerror})")
        for _ in range(2):  # apt retries the euid transition
            try:
                wsys.seteuid(apt_user.uid)
                break
            except KernelError as err:
                errors.append(
                    f"E: seteuid {apt_user.uid} failed - seteuid "
                    f"({int(err.errno)}: {err.strerror})")
    finally:
        worker.exit(0)
    return errors


def _sources(sys: Syscalls) -> list[str]:
    try:
        raw = sys.read_file(SOURCES_LIST).decode()
    except KernelError:
        return []
    urls = []
    for line in raw.splitlines():
        parts = line.split()
        if len(parts) >= 2 and parts[0] == "deb":
            urls.append(parts[1])
    return urls


def _index_path(url: str) -> str:
    mangled = url.replace("://", "_").replace("/", "_")
    return f"{APT_LISTS_DIR}/{mangled}_Packages"


def _read_indexes(sys: Syscalls) -> dict[str, str]:
    """name -> source repo url, from downloaded package indexes."""
    out: dict[str, str] = {}
    try:
        entries = sys.readdir(APT_LISTS_DIR)
    except KernelError:
        return out
    for entry in entries:
        if not entry.name.endswith("_Packages"):
            continue
        raw = sys.read_file(f"{APT_LISTS_DIR}/{entry.name}").decode()
        lines = raw.splitlines()
        if not lines:
            continue
        url = lines[0]
        for line in lines[1:]:
            name = line.partition("|")[0]
            if name:
                out.setdefault(name, url)
    return out


def _log_term(ctx: ExecContext) -> str | None:
    """Write apt's term.log and try the root:adm chown; returns the warning
    line on failure (Figure 9 line 21)."""
    sys = ctx.sys
    try:
        sys.mkdir_p("/var/log/apt")
        sys.write_file("/var/log/apt/term.log", b"log\n", append=True)
        db = UserDb.load(sys)
        adm = db.group_by_name("adm")
        adm_gid = adm.gid if adm is not None else 4
        sys.chown("/var/log/apt/term.log", 0, adm_gid)
    except KernelError:
        return "W: chown to root:adm of file /var/log/apt/term.log failed"
    return None


@binary("pkg.apt_config")
def _apt_config(ctx: ExecContext, argv: list[str]) -> int:
    if len(argv) > 1 and argv[1] == "dump":
        text = _apt_config_text(ctx.sys)
        if text:
            ctx.stdout.write(text if text.endswith("\n") else text + "\n")
        return 0
    ctx.stderr.writeline("apt-config: only 'dump' supported")
    return 1


@binary("pkg.apt_get")
def _apt_get(ctx: ExecContext, argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "-y" and not a.startswith("-o")]
    assume_yes = "-y" in argv
    if not args:
        ctx.stderr.writeline("apt-get: no command")
        return 1
    command, *names = args

    errors = sandbox_drop(ctx)
    if errors:
        for line in errors:
            ctx.stderr.writeline(line)
        return 100

    net = ctx.network
    if command == "update":
        if net is None or not net.online:
            ctx.stderr.writeline("E: network unreachable")
            return 100
        ctx.sys.mkdir_p(APT_LISTS_DIR)
        total_kb = 0
        for i, url in enumerate(_sources(ctx.sys), 1):
            try:
                repo = net.repo(url)
            except PackageError as err:
                ctx.stderr.writeline(f"E: {err}")
                return 100
            body = [url]
            body += [f"{p.name}|{p.version}"
                     for p in sorted(repo.packages.values(),
                                     key=lambda p: p.name)]
            ctx.sys.write_file(_index_path(url), "\n".join(body).encode())
            kb = repo.index_bytes() // 1024 + 1
            total_kb += kb
            ctx.stdout.writeline(f"Get:{i} {url} buster InRelease [{kb} kB]")
        ctx.stdout.writeline(f"Fetched {total_kb * 1024 // 1000} kB in 7s "
                             f"({total_kb * 146} B/s)")
        ctx.stdout.writeline("Reading package lists...")
        return 0

    if command != "install":
        ctx.stderr.writeline(f"apt-get: unsupported command {command!r}")
        return 1
    if not names:
        ctx.stderr.writeline("apt-get: install needs package names")
        return 1
    if not assume_yes:
        ctx.stderr.writeline("apt-get: would prompt; use -y in builds")
        return 1

    ctx.stdout.writeline("Reading package lists...")
    index = _read_indexes(ctx.sys)
    if not index:
        for n in names:
            ctx.stderr.writeline(f"E: Unable to locate package {n}")
        return 100

    db = PackageDb(ctx.sys, DPKG_DB_PATH)
    installed = db.installed()

    available: dict[str, Package] = {}
    for name, url in index.items():
        try:
            repo = net.repo(url)
        except PackageError as err:
            ctx.stderr.writeline(f"E: {err}")
            return 100
        if repo.has(name):
            available[name] = repo.get(name)

    missing = [n for n in names if n not in installed]
    if not missing:
        ctx.stdout.writeline("0 upgraded, 0 newly installed, 0 to remove")
        return 0
    try:
        transaction = resolve_dependencies(missing, available, installed)
    except PackageError:
        for n in missing:
            if n not in available:
                ctx.stderr.writeline(f"E: Unable to locate package {n}")
        return 100

    ctx.stdout.writeline("The following NEW packages will be installed:")
    ctx.stdout.writeline("  " + " ".join(p.name for p in transaction))

    for pkg in transaction:
        net.repo(index[pkg.name]).fetch(pkg.name)

    # Unpack phase (dpkg --unpack), then configure phase (postinst).
    for pkg in transaction:
        if pkg.pre_script:
            status = run_shell(ctx.child(), pkg.pre_script)
            if status != 0:
                ctx.stderr.writeline(
                    f"dpkg: error processing archive {pkg.name} (--unpack):")
                ctx.stderr.writeline(
                    f" new {pkg.name} package pre-installation script "
                    f"subprocess returned error exit status {status}")
                ctx.stderr.writeline(
                    "E: Sub-process /usr/bin/dpkg returned an error code (1)")
                return 100
        ctx.stdout.writeline(f"Unpacking {pkg.name} ({pkg.version}) ...")
        try:
            unpack_package(ctx, pkg)
        except CpioError as err:
            ctx.stderr.writeline(
                f"dpkg: error processing archive {pkg.name} (--unpack):")
            ctx.stderr.writeline(
                f" error setting ownership of '.{err.path}': "
                f"{err.err.strerror}")
            ctx.stderr.writeline(
                "E: Sub-process /usr/bin/dpkg returned an error code (1)")
            return 100

    for pkg in transaction:
        ctx.stdout.writeline(f"Setting up {pkg.name} ({pkg.version}) ...")
        if pkg.post_script:
            status = run_shell(ctx.child(), pkg.post_script)
            if status != 0:
                ctx.stderr.writeline(
                    f"dpkg: error processing package {pkg.name} "
                    f"(--configure):")
                ctx.stderr.writeline(
                    f" installed {pkg.name} package post-installation script "
                    f"subprocess returned error exit status {status}")
                ctx.stderr.writeline(
                    "E: Sub-process /usr/bin/dpkg returned an error code (1)")
                return 100
        db.add(pkg)

    warning = _log_term(ctx)
    if warning is not None:
        ctx.stderr.writeline(warning)
    ctx.stdout.writeline("Processing triggers for libc-bin (2.28-10) ...")
    return 0


@binary("pkg.dpkg")
def _dpkg(ctx: ExecContext, argv: list[str]) -> int:
    if len(argv) > 1 and argv[1] == "-l":
        db = PackageDb(ctx.sys, DPKG_DB_PATH)
        for name, version in sorted(db.installed().items()):
            ctx.stdout.writeline(f"ii  {name:<24} {version}")
        return 0
    ctx.stderr.writeline("dpkg: only -l supported directly; use apt-get")
    return 1
