"""Application/tool binaries shipped by catalog packages."""

from __future__ import annotations

from ..errors import KernelError
from ..shell import ExecContext
from ..shell.executor import execute
from ..shell.registry import binary

__all__ = []


@binary("caps.setcap")
def _setcap(ctx: ExecContext, argv: list[str]) -> int:
    """setcap CAP_STRING FILE — applies file capabilities via the
    security.capability xattr (what dpkg postinst scripts call)."""
    args = [a for a in argv[1:] if not a.startswith("-")]
    if len(args) != 2:
        ctx.stderr.writeline("usage: setcap <caps> <file>")
        return 2
    caps, path = args
    try:
        ctx.sys.setxattr(path, "security.capability", caps.encode())
        return 0
    except KernelError as err:
        ctx.stderr.writeline(
            f"Failed to set capabilities on file `{path}' ({err.strerror})")
        return 1


@binary("app.mpirun")
def _mpirun(ctx: ExecContext, argv: list[str]) -> int:
    """mpirun -np N CMD [ARGS] — run CMD once per simulated rank."""
    args = argv[1:]
    nprocs = 1
    i = 0
    while i < len(args) and args[i].startswith("-"):
        if args[i] in ("-np", "-n"):
            i += 1
            nprocs = int(args[i])
        i += 1
    cmd = args[i:]
    if not cmd:
        ctx.stderr.writeline("mpirun: no executable given")
        return 1
    status = 0
    for rank in range(nprocs):
        child = ctx.child()
        child.env["OMPI_COMM_WORLD_RANK"] = str(rank)
        child.env["OMPI_COMM_WORLD_SIZE"] = str(nprocs)
        status = execute(child, list(cmd))
        if status != 0:
            ctx.stderr.writeline(
                f"mpirun: rank {rank} exited with status {status}")
            return status
    return status


@binary("app.atse_info")
def _atse_info(ctx: ExecContext, argv: list[str]) -> int:
    """Report the ATSE stack installed in this image (the validation step of
    the Figure 6 workflow)."""
    try:
        conf = ctx.sys.read_file("/opt/atse/etc/atse.conf").decode()
    except KernelError:
        ctx.stderr.writeline("atse-info: ATSE not installed")
        return 1
    rank = ctx.env.get("OMPI_COMM_WORLD_RANK")
    prefix = f"[rank {rank}] " if rank is not None else ""
    ctx.stdout.writeline(f"{prefix}ATSE on {ctx.kernel.hostname} "
                         f"({ctx.kernel.arch}): {conf.strip()}")
    return 0
