"""RPM: the payload-unpack engine whose ``chown(2)`` is Figure 2's failure.

rpm unpacks the cpio payload *as the calling user believes itself to be*:
every file is chowned to its packaged owner.  In a Type II container those
IDs are mapped, so the calls succeed; in a plain Type III container any
non-root owner is unmapped and chown fails — ``cpio: chown`` — unless a
fakeroot wrapper is interposed.
"""

from __future__ import annotations


from ..errors import KernelError, PackageError
from ..shell import ExecContext, run_shell
from ..userdb import UserDb
from .packages import Package, PackageDb, PackageFile

__all__ = ["CpioError", "ScriptletError", "RPM_DB_PATH", "unpack_package",
           "rpm_install"]

RPM_DB_PATH = "/var/lib/rpm/packages"


class CpioError(PackageError):
    """Payload unpack failed — carries the offending file and operation."""

    def __init__(self, pkg: Package, path: str, op: str, err: KernelError):
        self.pkg = pkg
        self.path = path
        self.op = op
        self.err = err
        super().__init__(
            f"unpacking of archive failed on file {path}: cpio: {op}"
        )


class ScriptletError(PackageError):
    """A %pre/%post scriptlet exited non-zero."""

    def __init__(self, pkg: Package, which: str, status: int):
        self.pkg = pkg
        self.which = which
        self.status = status
        super().__init__(f"{pkg.name}: {which} scriptlet failed, exit status "
                         f"{status}")


def _run_scriptlet(ctx: ExecContext, pkg: Package, script: str | None,
                   which: str) -> None:
    if not script:
        return
    status = run_shell(ctx.child(), script)
    if status != 0:
        raise ScriptletError(pkg, which, status)


def _install_one_file(ctx: ExecContext, f: PackageFile, db: UserDb) -> None:
    sys = ctx.sys
    parent = f.path.rsplit("/", 1)[0] or "/"
    sys.mkdir_p(parent)
    if f.ftype == "d":
        if not sys.exists(f.path):
            sys.mkdir(f.path, 0o755)
    elif f.ftype == "l":
        if not sys.exists(f.path):
            sys.symlink(f.target, f.path)
        return  # symlinks: no chown/chmod in this model
    else:
        sys.write_file(f.path, f.content)
        res = sys.mnt_ns.resolve(f.path, sys.cred, cwd=sys.getcwd())
        res.inode.exe_impl = f.exe_impl
        res.inode.exe_arch = f.exe_arch
        res.inode.exe_static = f.exe_static
        res.fs.touch(res.inode)

    user = db.user_by_name(f.owner)
    group = db.group_by_name(f.group)
    uid = user.uid if user is not None else 0
    gid = group.gid if group is not None else 0
    # cpio always restores ownership — this is THE failing call of Figure 2.
    sys.chown(f.path, uid, gid)
    sys.chmod(f.path, f.mode)
    if f.caps is not None:
        sys.setxattr(f.path, "security.capability", f.caps.encode())


def unpack_package(ctx: ExecContext, pkg: Package) -> None:
    """Unpack one package's payload, raising :class:`CpioError` with the
    same operation names rpm's cpio reports."""
    db = UserDb.load(ctx.sys)
    for f in sorted(pkg.files, key=lambda x: x.path):
        try:
            _install_one_file(ctx, f, db)
        except KernelError as err:
            op = {"chown": "chown", "setxattr": "cap_set_file",
                  "chmod": "chmod", "mknod": "mknod"}.get(err.syscall, "write")
            raise CpioError(pkg, f.path, op, err) from err


def rpm_install(ctx: ExecContext, pkg: Package, *, run_scripts: bool = True
                ) -> None:
    """The full rpm install transaction for one package."""
    if run_scripts:
        _run_scriptlet(ctx, pkg, pkg.pre_script, "%pre")
    unpack_package(ctx, pkg)
    if run_scripts:
        _run_scriptlet(ctx, pkg, pkg.post_script, "%post")
    PackageDb(ctx.sys, RPM_DB_PATH).add(pkg)
