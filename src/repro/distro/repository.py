"""Package repositories and the package universe (the 'internet').

Repositories are addressed by ``repo://<distro>/<id>`` URLs from inside
images (yum ``baseurl=``, apt ``sources.list``); the universe resolves them.
Access only works when the machine's network is online — the substrate for
the paper's point that isolated build environments "may not be able to
access needed resources" (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PackageError
from .packages import Package

__all__ = ["Repository", "PackageUniverse", "REPO_SCHEME"]

REPO_SCHEME = "repo://"


@dataclass
class Repository:
    """One package repository."""

    repo_id: str  # e.g. "centos7/base"
    name: str
    packages: dict[str, Package] = field(default_factory=dict)
    #: bytes served per package fetch, for the benches' transfer accounting
    fetch_log: list[str] = field(default_factory=list)

    def add(self, *pkgs: Package) -> "Repository":
        for p in pkgs:
            self.packages[p.name] = p
        return self

    def get(self, name: str) -> Package:
        try:
            return self.packages[name]
        except KeyError:
            raise PackageError(f"repository {self.repo_id}: no package "
                               f"{name!r}")

    def has(self, name: str) -> bool:
        return name in self.packages

    def fetch(self, name: str) -> Package:
        """Download a package (logged, so tests can assert on traffic)."""
        pkg = self.get(name)
        self.fetch_log.append(name)
        return pkg

    def index_bytes(self) -> int:
        """Size of the metadata index (what apt-get update transfers)."""
        return sum(
            64 + len(p.name) + len(p.summary) + 16 * len(p.files)
            for p in self.packages.values()
        )


class PackageUniverse:
    """All repositories that exist 'on the internet'."""

    def __init__(self):
        self._repos: dict[str, Repository] = {}

    def add_repo(self, repo: Repository) -> Repository:
        self._repos[repo.repo_id] = repo
        return repo

    def repo(self, repo_id: str) -> Repository:
        rid = repo_id
        if rid.startswith(REPO_SCHEME):
            rid = rid[len(REPO_SCHEME):]
        try:
            return self._repos[rid]
        except KeyError:
            raise PackageError(f"cannot reach repository {repo_id!r}")

    def has_repo(self, repo_id: str) -> bool:
        rid = repo_id
        if rid.startswith(REPO_SCHEME):
            rid = rid[len(REPO_SCHEME):]
        return rid in self._repos

    def repo_ids(self) -> list[str]:
        return sorted(self._repos)
