"""/etc/passwd and /etc/group parsing.

"The kernel is concerned only with IDs ... translation to username and group
names is a user-space operation and may differ between host and container
even for the same ID" (paper §2.1, footnote 4).  This module IS that
user-space operation: it reads the passwd/group files of whatever filesystem
tree it is pointed at, so the same kernel ID can render differently inside
and outside a container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .errors import KernelError, ReproError
from .kernel import Syscalls

__all__ = ["PasswdEntry", "GroupEntry", "UserDb", "UserDbError"]


class UserDbError(ReproError):
    """Malformed passwd/group data."""


@dataclass(frozen=True)
class PasswdEntry:
    name: str
    uid: int
    gid: int
    gecos: str = ""
    home: str = "/"
    shell: str = "/bin/sh"

    def format(self) -> str:
        return f"{self.name}:x:{self.uid}:{self.gid}:{self.gecos}:{self.home}:{self.shell}"


@dataclass(frozen=True)
class GroupEntry:
    name: str
    gid: int
    members: tuple[str, ...] = ()

    def format(self) -> str:
        return f"{self.name}:x:{self.gid}:{','.join(self.members)}"


class UserDb:
    """A view of one tree's /etc/passwd + /etc/group."""

    def __init__(self, passwd: list[PasswdEntry], groups: list[GroupEntry]):
        self.passwd = passwd
        self.groups = groups

    # -- loading -------------------------------------------------------------------

    @classmethod
    def load(cls, sys: Syscalls, root: str = "") -> "UserDb":
        """Read from *root*/etc/{passwd,group}; missing files = empty db."""
        prefix = root.rstrip("/")
        passwd, groups = [], []
        try:
            passwd = cls.parse_passwd(
                sys.read_file(f"{prefix}/etc/passwd").decode())
        except KernelError:
            pass
        try:
            groups = cls.parse_group(
                sys.read_file(f"{prefix}/etc/group").decode())
        except KernelError:
            pass
        return cls(passwd, groups)

    def store(self, sys: Syscalls, root: str = "") -> None:
        prefix = root.rstrip("/")
        sys.write_file(f"{prefix}/etc/passwd",
                       "".join(e.format() + "\n" for e in self.passwd).encode())
        sys.write_file(f"{prefix}/etc/group",
                       "".join(e.format() + "\n" for e in self.groups).encode())

    @staticmethod
    def parse_passwd(text: str) -> list[PasswdEntry]:
        entries = []
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":")
            if len(parts) != 7:
                raise UserDbError(f"passwd line {lineno}: need 7 fields")
            try:
                entries.append(PasswdEntry(
                    parts[0], int(parts[2]), int(parts[3]), parts[4],
                    parts[5], parts[6]))
            except ValueError as exc:
                raise UserDbError(f"passwd line {lineno}: {exc}") from exc
        return entries

    @staticmethod
    def parse_group(text: str) -> list[GroupEntry]:
        entries = []
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":")
            if len(parts) != 4:
                raise UserDbError(f"group line {lineno}: need 4 fields")
            try:
                members = tuple(m for m in parts[3].split(",") if m)
                entries.append(GroupEntry(parts[0], int(parts[2]), members))
            except ValueError as exc:
                raise UserDbError(f"group line {lineno}: {exc}") from exc
        return entries

    # -- queries --------------------------------------------------------------------

    def user_by_name(self, name: str) -> Optional[PasswdEntry]:
        for e in self.passwd:
            if e.name == name:
                return e
        return None

    def user_by_uid(self, uid: int) -> Optional[PasswdEntry]:
        for e in self.passwd:
            if e.uid == uid:
                return e
        return None

    def group_by_name(self, name: str) -> Optional[GroupEntry]:
        for g in self.groups:
            if g.name == name:
                return g
        return None

    def group_by_gid(self, gid: int) -> Optional[GroupEntry]:
        for g in self.groups:
            if g.gid == gid:
                return g
        return None

    def username(self, uid: int, *, default: Optional[str] = None) -> str:
        e = self.user_by_uid(uid)
        if e is not None:
            return e.name
        return default if default is not None else str(uid)

    def groupname(self, gid: int, *, default: Optional[str] = None) -> str:
        g = self.group_by_gid(gid)
        if g is not None:
            return g.name
        return default if default is not None else str(gid)

    def resolve_owner(self, owner: str) -> int:
        """Name-or-number to UID."""
        if owner.isdigit():
            return int(owner)
        e = self.user_by_name(owner)
        if e is None:
            raise UserDbError(f"invalid user: {owner!r}")
        return e.uid

    def resolve_group(self, group: str) -> int:
        if group.isdigit():
            return int(group)
        g = self.group_by_name(group)
        if g is None:
            raise UserDbError(f"invalid group: {group!r}")
        return g.gid

    # -- mutation (useradd/groupadd semantics) ------------------------------------------

    def next_system_uid(self) -> int:
        used = {e.uid for e in self.passwd}
        for uid in range(999, 200, -1):  # system accounts count down from 999
            if uid not in used:
                return uid
        raise UserDbError("no free system UIDs")

    def next_system_gid(self) -> int:
        used = {g.gid for g in self.groups}
        for gid in range(999, 200, -1):
            if gid not in used:
                return gid
        raise UserDbError("no free system GIDs")

    def add_user(self, entry: PasswdEntry) -> None:
        if self.user_by_name(entry.name) is not None:
            raise UserDbError(f"user {entry.name!r} exists")
        self.passwd.append(entry)

    def add_group(self, entry: GroupEntry) -> None:
        if self.group_by_name(entry.name) is not None:
            raise UserDbError(f"group {entry.name!r} exists")
        self.groups.append(entry)
