"""Human-readable trace reports and the privilege audit.

The audit is a machine-checkable version of the paper's Table 1 / figure
transcripts: for every privileged-class operation a build issued, say
whether the kernel allowed it, a wrapper (fakeroot/seccomp/ignore-chown)
absorbed it, or it truly failed — with the errno the kernel produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .trace import Span, SyscallEvent, SyscallTracer

__all__ = [
    "PRIVILEGED_SYSCALLS",
    "AuditEntry",
    "PrivilegeAudit",
    "privilege_audit",
    "render_span_tree",
    "render_summary",
]

#: Operations that on real Linux require privilege in at least some common
#: invocation (the ones the paper's failure analysis turns on).  Reads and
#: own-file writes are deliberately excluded.
PRIVILEGED_SYSCALLS = frozenset({
    "chown", "lchown", "mknod",
    "setuid", "seteuid", "setreuid", "setresuid",
    "setgid", "setegid", "setresgid", "setgroups",
    "mount_fs", "bind_mount", "pivot_to", "umount",
    "sethostname", "unshare_uts",
    "write_uid_map", "write_gid_map",
    "setxattr", "removexattr",
})


@dataclass
class AuditEntry:
    """One aggregated audit line."""

    syscall: str
    classification: str   # "allowed" | "absorbed" | "failed"
    layer: str            # layer that answered the top-level call
    errno: str            # errno of the top-level call ("" on success)
    kernel_errno: str     # errno the kernel raised underneath a wrapper
    count: int = 0
    example: str = ""     # args of the first occurrence

    def render(self) -> str:
        line = f"{self.syscall}({self.example})"
        if self.errno:
            line += f" -> {self.errno}"
        if self.kernel_errno:
            line += f" [kernel denied: {self.kernel_errno}]"
        if self.count > 1:
            line += f" x{self.count}"
        return line


@dataclass
class PrivilegeAudit:
    """Classified privileged operations for one trace."""

    allowed: list[AuditEntry] = field(default_factory=list)
    absorbed: list[AuditEntry] = field(default_factory=list)
    failed: list[AuditEntry] = field(default_factory=list)
    events_seen: int = 0
    events_dropped: int = 0

    def render(self) -> str:
        lines = ["privilege audit"]
        if self.events_dropped:
            lines.append(f"  (ring buffer dropped {self.events_dropped} "
                         "events; audit is partial)")
        sections = [
            ("failed (privilege truly required, kernel refused)",
             self.failed),
            ("absorbed by an interposition layer (fakeroot/seccomp/...)",
             self.absorbed),
            ("allowed by the kernel", self.allowed),
        ]
        for title, entries in sections:
            total = sum(e.count for e in entries)
            lines.append(f"  {title}: {total}")
            for e in entries:
                lines.append(f"    {e.render()}")
        return "\n".join(lines)


def _children_index(tracer: SyscallTracer) -> dict[int, list[SyscallEvent]]:
    by_parent: dict[int, list[SyscallEvent]] = {}
    for ev in tracer.events:
        if ev.parent_seq:
            by_parent.setdefault(ev.parent_seq, []).append(ev)
    return by_parent


def _nested_errno(ev: SyscallEvent,
                  by_parent: dict[int, list[SyscallEvent]]) -> str:
    """First errno raised by any call the wrapper issued underneath."""
    stack = list(by_parent.get(ev.seq, ()))
    while stack:
        child = stack.pop(0)
        if child.errno:
            return child.errno
        stack.extend(by_parent.get(child.seq, ()))
    return ""


def privilege_audit(tracer: SyscallTracer) -> PrivilegeAudit:
    """Classify every top-level privileged-class call in the event ring."""
    audit = PrivilegeAudit(events_dropped=tracer.events.dropped)
    by_parent = _children_index(tracer)
    buckets: dict[tuple, AuditEntry] = {}
    for ev in tracer.events:
        if ev.depth != 0 or ev.name not in PRIVILEGED_SYSCALLS:
            continue
        audit.events_seen += 1
        if ev.errno:
            cls = "failed"
            kernel_errno = ""
        elif ev.layer != "kernel":
            cls = "absorbed"
            kernel_errno = _nested_errno(ev, by_parent)
        else:
            cls = "allowed"
            kernel_errno = ""
        key = (ev.name, cls, ev.layer, ev.errno, kernel_errno)
        entry = buckets.get(key)
        if entry is None:
            entry = AuditEntry(syscall=ev.name, classification=cls,
                               layer=ev.layer, errno=ev.errno,
                               kernel_errno=kernel_errno, example=ev.args)
            buckets[key] = entry
            getattr(audit, cls).append(entry)
        entry.count += 1
    return audit


def _span_line(span: Span, indent: int, *, top_n: int = 4) -> str:
    own = span.total_syscalls()
    total = sum(own.values())
    parts = [f"{'  ' * indent}{span.name} [{span.kind}]"]
    parts.append(f"{span.duration} ticks")
    parts.append(f"{total} syscalls")
    if own:
        top = ", ".join(f"{n} x{c}" for n, c in own.most_common(top_n))
        parts.append(top)
    errnos = span.total_errnos()
    if errnos:
        parts.append("errnos: " + ", ".join(
            f"{n} x{c}" for n, c in sorted(errnos.items())))
    line = " | ".join(parts)
    if span.status != "ok":
        line += f" | FAILED: {span.error}"
    return line


def render_span_tree(tracer: SyscallTracer, *,
                     root: Optional[Span] = None) -> str:
    """Indented span tree with per-span syscall/errno counts."""
    lines: list[str] = []

    def visit(span: Span, indent: int) -> None:
        lines.append(_span_line(span, indent))
        for child in span.children:
            visit(child, indent + 1)

    roots = [root] if root is not None else tracer.roots
    for s in roots:
        visit(s, 0)
    if not lines:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def render_summary(tracer: SyscallTracer, *, top_n: int = 10) -> str:
    """Global counters: totals, top syscalls, all errnos."""
    m = tracer.metrics
    total = sum(m.syscalls.values())
    lines = [f"trace summary: {total} top-level syscalls, "
             f"{len(tracer.events)} events kept, "
             f"{tracer.events.dropped} dropped"]
    if m.syscalls:
        lines.append("  top syscalls:")
        for name, count in m.syscalls.most_common(top_n):
            lines.append(f"    {name:<14} {count}")
    if m.errnos:
        lines.append("  errnos (all depths):")
        for name, count in sorted(m.errnos.items()):
            by_sc = ", ".join(
                f"{sc} x{c}" for (sc, en), c in
                sorted(m.errnos_by_syscall.items()) if en == name)
            lines.append(f"    {name:<10} {count}  ({by_sc})")
    return "\n".join(lines)
