"""Syscall tracing and build-phase spans.

The observability layer the paper's evidence calls for: the paper argues by
*transcript* (Figs. 2-3, 5, 8-11 are failing and succeeding builds shown at
errno granularity), so the reproduction must be able to show the same
receipts — which simulated syscalls a build issued, through which
interposition layer (kernel / fakeroot / seccomp / ignore-chown), and which
errnos fired where.

Design constraints:

* **Zero cost when disabled.**  Instrumentation is a per-class method wrap
  whose fast path is one attribute chain (``self.proc.kernel.tracer is
  None``) and a tail call.  No tracer object exists unless attached.
* **Below the kernel in the import graph.**  This module imports only
  :mod:`repro.errors` and :mod:`repro.obs.metrics`, so ``repro.kernel`` can
  import it freely.
* **Layer-aware.**  Each interposition class declares its layer when
  decorated; a ``chown`` answered by fakeroot shows ``layer="fakeroot"`` at
  depth 0 and any real syscalls it issued internally as nested events —
  which is exactly the absorbed-vs-failed distinction the privilege audit
  needs (paper §5.1).
"""

from __future__ import annotations

import functools
import itertools
from collections import Counter
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from ..errors import KernelError
from .metrics import RingBuffer, TraceMetrics

__all__ = [
    "TRACED_SYSCALLS",
    "SyscallEvent",
    "Span",
    "SyscallTracer",
    "attach_tracer",
    "instrument_syscalls",
    "kernel_span",
    "maybe_span",
]

DEFAULT_RING_SIZE = 65536

#: Method names on Syscalls (and its interposing subclasses) that are
#: recorded as syscall events.  Composite conveniences (mkdir_p, the
#: setup_* dances) are deliberately absent: their constituent calls are
#: traced individually, which is what a real strace would show.
TRACED_SYSCALLS = frozenset({
    # identity
    "getuid", "geteuid", "getgid", "getegid", "getgroups",
    # credentials
    "setuid", "seteuid", "setreuid", "setresuid",
    "setgid", "setegid", "setresgid", "setgroups",
    # namespaces & maps
    "unshare_user", "unshare_mount", "unshare_uts", "sethostname",
    "deny_setgroups", "write_uid_map", "write_gid_map",
    # mounts
    "mount_fs", "bind_mount", "pivot_to", "umount",
    # cwd / metadata
    "chdir", "stat", "lstat", "readlink", "readdir",
    # creation
    "mkdir", "mknod", "symlink", "link", "clone_tree",
    # file I/O
    "read_file", "write_file", "truncate",
    # removal / rename
    "unlink", "rmdir", "rename",
    # ownership & permissions
    "chown", "lchown", "chmod",
    # xattrs
    "setxattr", "getxattr", "listxattr", "removexattr",
    # exec
    "prepare_exec",
})


def _short(value: Any) -> str:
    """Compact, single-line rendering of one argument value."""
    if value is None or isinstance(value, bool):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return repr(value) if len(value) <= 48 else repr(value[:45] + "...")
    if isinstance(value, (bytes, bytearray)):
        return f"<{len(value)}B>"
    if isinstance(value, (list, tuple)):
        if len(value) <= 3:
            return "(" + ", ".join(_short(v) for v in value) + ")"
        return f"<{type(value).__name__} n={len(value)}>"
    r = repr(value)
    return r if len(r) <= 48 else f"<{type(value).__name__}>"


def _format_args(args: tuple, kwargs: dict) -> str:
    parts = [_short(a) for a in args]
    parts += [f"{k}={_short(v)}" for k, v in kwargs.items()]
    text = ", ".join(parts)
    return text if len(text) <= 120 else text[:117] + "..."


def _format_result(value: Any) -> str:
    if value is None:
        return "ok"
    return _short(value)


def _ns_level(ns) -> int:
    """Nesting depth of a user namespace (0 = initial)."""
    n = 0
    while ns.parent is not None:
        n += 1
        ns = ns.parent
    return n


@dataclass(slots=True)
class SyscallEvent:
    """One recorded system call."""

    seq: int
    name: str
    layer: str          # which class answered: kernel/fakeroot/seccomp/...
    args: str
    pid: int
    comm: str
    euid: int           # caller's kernel euid at call time
    egid: int
    ns_level: int       # user-namespace nesting depth (0 = initial)
    depth: int          # 0 = issued by userland, >0 = issued by a wrapper
    parent_seq: int     # seq of the enclosing call (0 = top level)
    span_seq: int       # seq of the enclosing span (0 = none)
    start_tick: int
    duration: int       # clock advances while the call ran (a work proxy)
    result: str         # "ok" or a summary; "error" on KernelError
    errno: str          # errno name ("" on success)
    errno_code: int     # numeric errno (0 on success)

    @property
    def ok(self) -> bool:
        return not self.errno


@dataclass(slots=True)
class _Frame:
    """An in-flight syscall (becomes a SyscallEvent at end_call)."""

    seq: int
    name: str
    layer: str
    args: str
    pid: int
    comm: str
    euid: int
    egid: int
    ns_level: int
    depth: int
    parent_seq: int
    start_tick: int
    span: Optional["Span"]


@dataclass
class Span:
    """A named phase of work (build / instruction / layer / push / ...).

    ``syscalls`` counts top-level calls made directly inside this span
    (not inside child spans); ``errnos`` counts failures at *any* nesting
    depth, because an EPERM a wrapper absorbed is still evidence.  Use the
    ``total_*`` accessors for subtree-inclusive numbers.
    """

    seq: int
    name: str
    kind: str
    start_tick: int
    meta: dict = field(default_factory=dict)
    parent_seq: int = 0
    end_tick: Optional[int] = None
    status: str = "ok"
    error: str = ""
    syscalls: Counter = field(default_factory=Counter)
    errnos: Counter = field(default_factory=Counter)
    errnos_by_syscall: Counter = field(default_factory=Counter)
    children: list["Span"] = field(default_factory=list)

    def fail(self, error: str) -> None:
        self.status = "error"
        self.error = error

    @property
    def duration(self) -> int:
        end = self.end_tick if self.end_tick is not None else self.start_tick
        return end - self.start_tick

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def total_syscalls(self) -> Counter:
        total = Counter()
        for s in self.walk():
            total.update(s.syscalls)
        return total

    def total_errnos(self) -> Counter:
        total = Counter()
        for s in self.walk():
            total.update(s.errnos)
        return total

    def total_errnos_by_syscall(self) -> Counter:
        total = Counter()
        for s in self.walk():
            total.update(s.errnos_by_syscall)
        return total


class SyscallTracer:
    """Records syscall events and phase spans for one simulated kernel.

    Attach with :func:`attach_tracer` (or ``REPRO_TRACE=1`` in the
    environment); when ``kernel.tracer`` is None the instrumented methods
    take the no-op fast path.
    """

    def __init__(self, *, clock: Optional[Callable[[], int]] = None,
                 ring_size: int = DEFAULT_RING_SIZE):
        self._clock = clock if clock is not None else (lambda: 0)
        self.events: RingBuffer[SyscallEvent] = RingBuffer(ring_size)
        self.metrics = TraceMetrics()
        self.roots: list[Span] = []
        self._span_stack: list[Span] = []
        self._stack: list[_Frame] = []
        self._seq = itertools.count(1)

    # -- state -----------------------------------------------------------------

    @property
    def current_span(self) -> Optional[Span]:
        return self._span_stack[-1] if self._span_stack else None

    @property
    def dropped_events(self) -> int:
        return self.events.dropped

    def clear(self) -> None:
        """Forget everything recorded so far (spans in flight survive)."""
        self.events.clear()
        self.metrics.clear()
        self.roots = [s for s in self._span_stack[:1]]

    # -- syscall recording (called from instrumented methods) -------------------

    def begin_call(self, name: str, layer: str, sys_obj,
                   args: tuple, kwargs: dict) -> _Frame:
        proc = sys_obj.proc
        cred = proc.cred
        frame = _Frame(
            seq=next(self._seq),
            name=name,
            layer=layer,
            args=_format_args(args, kwargs),
            pid=proc.pid,
            comm=proc.comm,
            euid=cred.euid,
            egid=cred.egid,
            ns_level=_ns_level(cred.userns),
            depth=len(self._stack),
            parent_seq=self._stack[-1].seq if self._stack else 0,
            start_tick=self._clock(),
            span=self._span_stack[-1] if self._span_stack else None,
        )
        self._stack.append(frame)
        return frame

    _MISSING = object()

    def end_call(self, frame: _Frame, *, result: Any = _MISSING,
                 error: Optional[KernelError] = None) -> SyscallEvent:
        self._stack.pop()
        top = frame.depth == 0
        if error is not None:
            errno_name = error.errno.name
            errno_code = int(error.errno)
            res = "error"
        else:
            errno_name = ""
            errno_code = 0
            res = _format_result(None if result is self._MISSING else result)
        self.metrics.count_call(frame.name, top_level=top)
        if errno_name:
            self.metrics.count_errno(frame.name, errno_name)
        span = frame.span
        if span is not None:
            if top:
                span.syscalls[frame.name] += 1
            if errno_name:
                span.errnos[errno_name] += 1
                span.errnos_by_syscall[f"{frame.name}:{errno_name}"] += 1
        event = SyscallEvent(
            seq=frame.seq, name=frame.name, layer=frame.layer,
            args=frame.args, pid=frame.pid, comm=frame.comm,
            euid=frame.euid, egid=frame.egid, ns_level=frame.ns_level,
            depth=frame.depth, parent_seq=frame.parent_seq,
            span_seq=span.seq if span is not None else 0,
            start_tick=frame.start_tick,
            duration=self._clock() - frame.start_tick,
            result=res, errno=errno_name, errno_code=errno_code,
        )
        self.events.append(event)
        return event

    # -- spans -------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, kind: str = "phase", **meta):
        s = Span(seq=next(self._seq), name=name, kind=kind,
                 start_tick=self._clock(), meta=meta)
        parent = self.current_span
        if parent is not None:
            s.parent_seq = parent.seq
            parent.children.append(s)
        else:
            self.roots.append(s)
        self._span_stack.append(s)
        try:
            yield s
        except KernelError as err:
            s.fail(f"{err.errno.name}: {err.msg or err.strerror}")
            raise
        except Exception as exc:
            s.fail(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            s.end_tick = self._clock()
            self._span_stack.pop()


def attach_tracer(kernel, *, ring_size: int = DEFAULT_RING_SIZE
                  ) -> SyscallTracer:
    """Create a tracer clocked by *kernel* and install it as
    ``kernel.tracer``.  Idempotent: an already-attached tracer is kept."""
    if getattr(kernel, "tracer", None) is None:
        kernel.tracer = SyscallTracer(clock=lambda: kernel.ticks,
                                      ring_size=ring_size)
    return kernel.tracer


def kernel_span(kernel, name: str, kind: str = "phase", **meta):
    """A span on *kernel*'s tracer, or a no-op context when untraced."""
    tracer = getattr(kernel, "tracer", None)
    if tracer is None:
        return nullcontext(None)
    return tracer.span(name, kind, **meta)


def maybe_span(tracer: Optional[SyscallTracer], name: str,
               kind: str = "phase", **meta):
    """Like :func:`kernel_span` for holders of an optional tracer
    reference (registry, CI server) that have no kernel at hand."""
    if tracer is None:
        return nullcontext(None)
    return tracer.span(name, kind, **meta)


def _wrap(fn: Callable, name: str, layer: str) -> Callable:
    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        tracer = self.proc.kernel.tracer
        if tracer is None:
            return fn(self, *args, **kwargs)
        frame = tracer.begin_call(name, layer, self, args, kwargs)
        try:
            result = fn(self, *args, **kwargs)
        except KernelError as err:
            tracer.end_call(frame, error=err)
            raise
        except BaseException as exc:
            tracer.end_call(frame, result=f"!{type(exc).__name__}")
            raise
        tracer.end_call(frame, result=result)
        return result

    wrapper.__traced__ = True  # type: ignore[attr-defined]
    wrapper.__wrapped_syscall__ = fn  # type: ignore[attr-defined]
    return wrapper


def instrument_syscalls(layer: str):
    """Class decorator: wrap every method of the class's own ``__dict__``
    whose name is in :data:`TRACED_SYSCALLS` so calls are recorded with the
    given *layer* label.  Inherited methods keep the layer of the class
    that defined them (a fakeroot ``mkdir`` really is a kernel mkdir)."""

    def decorate(cls):
        for name in TRACED_SYSCALLS:
            fn = cls.__dict__.get(name)
            if fn is None or not callable(fn):
                continue
            if getattr(fn, "__traced__", False):
                continue
            setattr(cls, name, _wrap(fn, name, layer))
        cls.trace_layer = layer
        return cls

    return decorate
