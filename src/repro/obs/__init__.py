"""Observability: syscall tracing, build-phase spans, privilege audits.

See docs/OBSERVABILITY.md for the event schema and span model.
"""

from .export import (
    dump_golden,
    event_to_dict,
    events_to_jsonl,
    golden_summary,
    span_to_dict,
    trace_to_dict,
)
from .metrics import RingBuffer, TraceMetrics
from .report import (
    PRIVILEGED_SYSCALLS,
    AuditEntry,
    PrivilegeAudit,
    privilege_audit,
    render_span_tree,
    render_summary,
)
from .trace import (
    TRACED_SYSCALLS,
    Span,
    SyscallEvent,
    SyscallTracer,
    attach_tracer,
    instrument_syscalls,
    kernel_span,
    maybe_span,
)

__all__ = [
    "AuditEntry",
    "PRIVILEGED_SYSCALLS",
    "PrivilegeAudit",
    "RingBuffer",
    "Span",
    "SyscallEvent",
    "SyscallTracer",
    "TRACED_SYSCALLS",
    "TraceMetrics",
    "attach_tracer",
    "dump_golden",
    "event_to_dict",
    "events_to_jsonl",
    "golden_summary",
    "instrument_syscalls",
    "kernel_span",
    "maybe_span",
    "privilege_audit",
    "render_span_tree",
    "render_summary",
    "span_to_dict",
    "trace_to_dict",
]
