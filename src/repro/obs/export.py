"""Machine-readable trace exports.

Two consumers:

* JSON-lines (``events_to_jsonl``): one event per line, for offline
  analysis — the paper-workflow analogue of keeping the strace log.
* Golden summaries (``golden_summary``): a deterministic, timing-free
  digest of a traced build, stored under ``tests/golden/`` and compared
  against the paper's figures.  Anything order- or allocation-dependent
  (ticks, pids, namespace ids) is deliberately excluded so two consecutive
  runs produce byte-identical JSON.
"""

from __future__ import annotations

import json
from typing import Optional

from .trace import Span, SyscallEvent, SyscallTracer

__all__ = [
    "event_to_dict",
    "events_to_jsonl",
    "span_to_dict",
    "trace_to_dict",
    "golden_summary",
    "dump_golden",
]


def event_to_dict(ev: SyscallEvent) -> dict:
    d = {
        "seq": ev.seq,
        "name": ev.name,
        "layer": ev.layer,
        "args": ev.args,
        "pid": ev.pid,
        "comm": ev.comm,
        "euid": ev.euid,
        "egid": ev.egid,
        "ns_level": ev.ns_level,
        "depth": ev.depth,
        "parent_seq": ev.parent_seq,
        "span_seq": ev.span_seq,
        "start_tick": ev.start_tick,
        "duration": ev.duration,
        "result": ev.result,
    }
    if ev.errno:
        d["errno"] = ev.errno
        d["errno_code"] = ev.errno_code
    return d


def events_to_jsonl(tracer: SyscallTracer) -> str:
    """One JSON object per line, oldest first."""
    return "\n".join(
        json.dumps(event_to_dict(ev), sort_keys=True)
        for ev in tracer.events)


def span_to_dict(span: Span, *, with_ticks: bool = True) -> dict:
    d: dict = {
        "name": span.name,
        "kind": span.kind,
        "status": span.status,
    }
    if with_ticks:
        d["start_tick"] = span.start_tick
        d["duration"] = span.duration
    if span.error:
        d["error"] = span.error
    if span.meta:
        d["meta"] = dict(span.meta)
    if span.syscalls:
        d["syscalls"] = dict(sorted(span.syscalls.items()))
    if span.errnos:
        d["errnos"] = dict(sorted(span.errnos.items()))
        d["errnos_by_syscall"] = dict(sorted(span.errnos_by_syscall.items()))
    if span.children:
        d["children"] = [span_to_dict(c, with_ticks=with_ticks)
                         for c in span.children]
    return d


def trace_to_dict(tracer: SyscallTracer) -> dict:
    """The whole trace: metrics, span forest, ring accounting."""
    return {
        "metrics": tracer.metrics.snapshot(),
        "events_kept": len(tracer.events),
        "events_dropped": tracer.events.dropped,
        "spans": [span_to_dict(s) for s in tracer.roots],
    }


def _instruction_digest(span: Span) -> dict:
    d: dict = {
        "lineno": span.meta.get("lineno"),
        "kind": span.meta.get("inst_kind"),
        "text": span.meta.get("text", span.name),
        "status": span.status,
        "syscalls": dict(sorted(span.total_syscalls().items())),
        "errnos": dict(sorted(span.total_errnos().items())),
        "errnos_by_syscall": dict(
            sorted(span.total_errnos_by_syscall().items())),
    }
    if span.error:
        d["error"] = span.error
    return d


def golden_summary(tracer: SyscallTracer, *,
                   span: Optional[Span] = None) -> dict:
    """Deterministic digest of a traced scenario.

    With a ``kind="build"`` root span (what :class:`~repro.core.ChImage`
    emits), the digest is per-instruction; otherwise the given/first root
    span is summarized as a single phase.  Sim-time, pids, and namespace
    ids never appear — only names, counts, errnos, and statuses.
    """
    if span is None:
        builds = [s for s in tracer.roots if s.kind == "build"]
        span = builds[-1] if builds else (
            tracer.roots[-1] if tracer.roots else None)
    if span is None:
        return {"status": "empty"}
    instructions = [c for c in span.walk() if c.kind == "instruction"]
    failing = [i for i in instructions if i.status != "ok"]
    digest: dict = {
        "name": span.name,
        "kind": span.kind,
        "status": span.status,
        "error": span.error,
        "meta": dict(span.meta),
        "syscalls": dict(sorted(span.total_syscalls().items())),
        "errnos": dict(sorted(span.total_errnos().items())),
        "errnos_by_syscall": dict(
            sorted(span.total_errnos_by_syscall().items())),
    }
    if instructions:
        digest["instructions"] = [_instruction_digest(i)
                                  for i in instructions]
        digest["failing_instruction"] = (
            _instruction_digest(failing[0]) if failing else None)
    return digest


def dump_golden(digest: dict) -> str:
    """Canonical JSON for golden files (stable key order, trailing \\n)."""
    return json.dumps(digest, indent=2, sort_keys=True) + "\n"
