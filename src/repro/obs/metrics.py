"""Counters and bounded buffers backing the tracer.

Kept free of any kernel imports so the observability layer sits *below*
:mod:`repro.kernel` in the import graph (the kernel imports us, never the
other way around).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Generic, Iterator, TypeVar

__all__ = ["RingBuffer", "TraceMetrics"]

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """A bounded event buffer: old events are evicted, but we remember how
    many were dropped so exports can say the record is partial."""

    def __init__(self, maxlen: int):
        if maxlen <= 0:
            raise ValueError(f"ring size must be positive: {maxlen}")
        self.maxlen = maxlen
        self._items: deque[T] = deque(maxlen=maxlen)
        self.dropped = 0

    def append(self, item: T) -> None:
        if len(self._items) == self.maxlen:
            self.dropped += 1
        self._items.append(item)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def clear(self) -> None:
        self._items.clear()
        self.dropped = 0

    @property
    def total_seen(self) -> int:
        """Events ever appended (kept + dropped)."""
        return len(self._items) + self.dropped


class TraceMetrics:
    """Aggregate counters, never evicted (unlike the event ring).

    * ``syscalls``: per-syscall call counts, **top-level calls only** (what
      the process issued, not what a wrapper issued internally).
    * ``errnos``: per-errno failure counts at **any** depth — an EPERM that a
      fakeroot wrapper absorbed still fired in the kernel and still counts
      (that is exactly the §5.1 "absorbed" signal, and what the errno-
      coverage test walks).
    * ``errnos_by_syscall``: ``(syscall, errno)`` pair counts, any depth.
    * ``cache``: build-cache events (``hit`` / ``miss`` / ``store``) —
      what the CI cache-smoke job compares cold vs. warm.
    * ``net``: deploy-time distribution counters (registry egress bytes,
      peer-broadcast bytes, makespan in µs, dedup skips) — what the
      deploy-scaling smoke job compares across strategies.
    * ``build``: parallel-build scheduling counters (tasks run, queue
      wait in µs, in-flight dedup hits, makespan in µs) — what the
      build-scaling smoke job compares across parallelism levels.
    * ``matrix``: build-matrix orchestration counters (cells expanded,
      unique cell builds, total/unique stage builds, amplification
      ×100, images pushed) — what the matrix-smoke job gates on.
    * ``snapshots``: instruction-boundary snapshot work (``walk_full`` /
      ``walk_dirty`` walks, ``memo_hit`` / ``memo_miss`` member digests)
      — what the coldbuild-smoke job compares against the reference
      full-walk oracle.
    * ``supply``: supply-chain events (``signed`` / ``unsigned_pull`` /
      ``verify_ok`` / ``verify_fail`` / ``gate_pass`` / ``gate_reject``
      / ``attested``) — what the policy-smoke job gates on.
    """

    def __init__(self):
        self.syscalls: Counter[str] = Counter()
        self.errnos: Counter[str] = Counter()
        self.errnos_by_syscall: Counter[tuple[str, str]] = Counter()
        self.cache: Counter[str] = Counter()
        self.net: Counter[str] = Counter()
        self.build: Counter[str] = Counter()
        self.matrix: Counter[str] = Counter()
        self.snapshots: Counter[str] = Counter()
        self.supply: Counter[str] = Counter()

    def count_call(self, name: str, *, top_level: bool) -> None:
        if top_level:
            self.syscalls[name] += 1

    def count_errno(self, name: str, errno_name: str) -> None:
        self.errnos[errno_name] += 1
        self.errnos_by_syscall[(name, errno_name)] += 1

    def count_cache(self, event: str) -> None:
        self.cache[event] += 1

    def count_net(self, event: str, n: int = 1) -> None:
        self.net[event] += n

    def count_build(self, event: str, n: int = 1) -> None:
        self.build[event] += n

    def count_matrix(self, event: str, n: int = 1) -> None:
        self.matrix[event] += n

    def count_snapshot(self, event: str, n: int = 1) -> None:
        self.snapshots[event] += n

    def count_supply(self, event: str, n: int = 1) -> None:
        self.supply[event] += n

    def clear(self) -> None:
        self.syscalls.clear()
        self.errnos.clear()
        self.errnos_by_syscall.clear()
        self.cache.clear()
        self.net.clear()
        self.build.clear()
        self.matrix.clear()
        self.snapshots.clear()
        self.supply.clear()

    def snapshot(self) -> dict:
        """A JSON-friendly copy (sorted keys for deterministic exports)."""
        return {
            "syscalls": dict(sorted(self.syscalls.items())),
            "errnos": dict(sorted(self.errnos.items())),
            "errnos_by_syscall": {
                f"{sc}:{en}": n
                for (sc, en), n in sorted(self.errnos_by_syscall.items())
            },
            "cache": dict(sorted(self.cache.items())),
            "net": dict(sorted(self.net.items())),
            "build": dict(sorted(self.build.items())),
            "matrix": dict(sorted(self.matrix.items())),
            "snapshot": dict(sorted(self.snapshots.items())),
            "supply": dict(sorted(self.supply.items())),
        }
