"""Charliecloud (Type III): the paper's primary contribution.

``ch-image`` — fully unprivileged Dockerfile interpreter with --force
fakeroot injection; ``ch-run`` — unprivileged runtime; single-layer,
ownership-flattened push.
"""

from .build_graph import (
    BuildGraphError,
    BuildGraphScheduler,
    ScheduleReport,
    TaskReport,
    build_parallel,
    plan_flight_key,
    stage_plan_keys,
)
from .builder import ChBuildResult, ChImage
from .cli import ch_image_cli
from .force import CONFIGS, DEBDERIV, ForceConfig, InitStep, RHEL7, detect_config
from .images import ImageStorage
from .push import flatten_archive, push_image
from .runtime import ChRun, ChRunResult
from .seccomp import SECCOMP_ENGINE, SeccompSyscalls

__all__ = [
    "BuildGraphError",
    "BuildGraphScheduler",
    "ScheduleReport",
    "TaskReport",
    "build_parallel",
    "plan_flight_key",
    "stage_plan_keys",
    "ChBuildResult",
    "ChImage",
    "ch_image_cli",
    "CONFIGS",
    "DEBDERIV",
    "ForceConfig",
    "InitStep",
    "RHEL7",
    "detect_config",
    "ImageStorage",
    "flatten_archive",
    "push_image",
    "ChRun",
    "ChRunResult",
    "SECCOMP_ENGINE",
    "SeccompSyscalls",
]
