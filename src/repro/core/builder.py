"""ch-image build: the fully unprivileged (Type III) Dockerfile interpreter.

Every RUN executes in a fresh unprivileged user namespace mapping the
invoking user to container root — no helpers, no daemon, no setuid: "the
entire build process is fully unprivileged; all security boundaries remain
within the Linux kernel" (paper §6.1).

With ``--force``, ch-image detects the image's distribution and injects
fakeroot(1) initialization and per-RUN wrapping (§5.3); without it, the
same detection still happens so the tool can *suggest* --force when the
build fails (design principle 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..archive import TarArchive
from ..cas.cache import BuildCache
from ..cas.diff import (
    apply_diff_to_snapshot,
    snapshot_and_diff,
    snapshot_tree,
)
from ..cas.store import blob_digest
from ..containers.dockerfile import (
    Instruction,
    parse_stage_graph,
    split_env_args,
)
from ..containers.oci import ImageConfig
from ..containers.runtime import ContainerError, enter_container
from ..errors import BuildError, KernelError
from ..fakeroot.state import LieDatabase
from ..kernel import Process, Syscalls
from ..obs.trace import attach_tracer, kernel_span
from ..shell import ExecContext, OutputSink, execute
from .force import ForceConfig, detect_config
from .images import ImageStorage
from .seccomp import SeccompSyscalls

__all__ = ["ChImage", "ChBuildResult"]


@dataclass
class ChBuildResult:
    """Outcome of one ch-image build, with the figure-style transcript.

    Parallel builds (``build(parallel=N)``) additionally report the
    virtual-time ``makespan``, the ``critical_path`` length (the floor no
    parallelism can beat), and the full
    :class:`~repro.core.build_graph.ScheduleReport` in ``schedule``.
    """

    tag: str
    success: bool = False
    transcript: list[str] = field(default_factory=list)
    modified_runs: int = 0
    init_steps_run: int = 0
    instructions: int = 0
    cache_hits: int = 0
    exit_status: int = 0
    error: str = ""
    parallelism: int = 1
    makespan: float = 0.0
    critical_path: float = 0.0
    schedule: Optional[object] = None

    @property
    def text(self) -> str:
        return "\n".join(self.transcript)


class ChImage:
    """One user's ch-image instance on one machine.

    ``cache=True`` enables the per-instruction build cache the paper lists
    as missing in §6.1 and recommends in §6.2.2 ("Charliecloud-specific
    improvements like image layers and build caching").  ``auto_map=True``
    uses the §6.2.4 future-kernel guaranteed-unique ID ranges instead of
    single-ID maps (requires the ``user.autosub_userns`` sysctl).
    """

    def __init__(self, machine, user_proc: Process,
                 storage_dir: Optional[str] = None, *,
                 cache: bool = False, auto_map: bool = False,
                 force_mode: str = "fakeroot",
                 build_cache: Optional[BuildCache] = None,
                 cache_max_bytes: Optional[int] = None):
        if force_mode not in ("fakeroot", "seccomp"):
            raise ValueError(f"unknown force mode {force_mode!r}")
        self.machine = machine
        self.user_proc = user_proc
        self.storage = ImageStorage(machine, user_proc, storage_dir)
        self.sys = Syscalls(user_proc)
        self.auto_map = auto_map
        self.force_mode = force_mode
        #: The instruction-level build cache (None = disabled).  Passing a
        #: shared :class:`~repro.cas.BuildCache` lets several builders
        #: (even different users) hit each other's instruction results;
        #: each builder gets its own :class:`~repro.cas.CacheHandle` so
        #: concurrent builders never double-count each other's hit/miss
        #: stats (the shared cache aggregates handles on report).
        if build_cache is not None:
            self.cache: Optional[BuildCache] = build_cache.handle(
                name=getattr(user_proc, "comm", "") or "builder")
        elif cache:
            self.cache = BuildCache(max_bytes=cache_max_bytes)
        else:
            self.cache = None
        #: §6.2.2(3): in seccomp mode the lie database lives in the builder
        #: (host side) and persists across RUN instructions and to push time
        self.seccomp_db = LieDatabase()

    @property
    def cache_enabled(self) -> bool:
        return self.cache is not None

    # -- observability -----------------------------------------------------------

    @property
    def tracer(self):
        """The machine kernel's tracer, if one is attached."""
        return self.machine.kernel.tracer

    def enable_tracing(self, **kwargs):
        """Attach a :class:`~repro.obs.SyscallTracer` to this machine's
        kernel (idempotent); ``ch-image build --trace`` calls this."""
        return attach_tracer(self.machine.kernel, **kwargs)

    def _inst_span(self, lineno: int, kind: str, args: str):
        text = f"{kind} {args}".strip()
        return kernel_span(self.machine.kernel, f"{lineno} {text}"[:80],
                           "instruction", lineno=lineno, inst_kind=kind,
                           text=text)

    # -- public operations -------------------------------------------------------

    def pull(self, ref: str) -> str:
        return self.storage.pull(ref)

    def build(self, *, tag: str, dockerfile: str, force: bool = False,
              parallel: int = 1, sim=None, fault_plan=None,
              retry_budget: int = 8) -> ChBuildResult:
        """``ch-image build [--force] [--parallel N] -t tag -f dockerfile .``

        Multi-stage Dockerfiles (``FROM ... AS name`` + ``COPY --from=``)
        are supported; only the final stage is tagged.  With
        ``parallel > 1`` (or an explicit *sim* engine) independent stages
        build concurrently on the sim clock via
        :func:`~repro.core.build_graph.build_parallel`; the image digests
        are identical either way.  A *fault_plan* with worker crashes
        (parallel builds only) kills workers on the sim clock; their
        stages requeue onto survivors up to *retry_budget* times.
        """
        if parallel != 1 or sim is not None:
            from .build_graph import build_parallel  # lazy: avoids cycle
            return build_parallel(self, tag=tag, dockerfile=dockerfile,
                                  force=force, parallelism=parallel,
                                  engine=sim, fault_plan=fault_plan,
                                  retry_budget=retry_budget)
        result = ChBuildResult(tag=tag)
        with kernel_span(self.machine.kernel, f"build {tag}", "build",
                         tag=tag, force=force,
                         force_mode=self.force_mode if force else "") as sp:
            self._build(tag, dockerfile, force, result)
            if sp is not None and not result.success:
                sp.fail(result.error or "build failed")
        return result

    def _build(self, tag: str, dockerfile: str, force: bool,
               result: ChBuildResult) -> None:
        out = result.transcript.append
        try:
            graph = parse_stage_graph(dockerfile)
        except BuildError as err:
            result.error = str(err)
            out(f"error: {err}")
            return

        stage_names: dict[str, str] = {}  # AS-name / index -> storage name
        n = len(graph)
        for stage in graph.stages:
            last = stage.index == n - 1
            stage_tag = tag if last else f"{tag}%stage{stage.index}"
            ok = self._build_stage(
                list(stage.instructions), stage_tag, force, result, out,
                stage_names, stage.first_ordinal, is_last=last,
                final_tag=tag)
            if not ok:
                return
            stage_names[str(stage.index)] = stage_tag
        result.success = True

    def _build_stage(self, instructions, tag: str, force: bool,
                     result: ChBuildResult, out, stage_names: dict[str, str],
                     lineno: int, *, is_last: bool, final_tag: str) -> bool:
        """Build one stage (instruction ordinals start at *lineno*)."""
        from_parts = instructions[0].args.split()
        base_ref = from_parts[0]
        as_name = None
        if len(from_parts) >= 3 and from_parts[1].upper() == "AS":
            as_name = from_parts[2].lower()  # stage names: case-insensitive
        with self._inst_span(lineno, "FROM", instructions[0].args) as sp:
            out(f"  {lineno} FROM {instructions[0].args}")
            try:
                base_name = stage_names.get(base_ref.lower())
                if base_name is None:  # not a stage: pull the image
                    self.storage.pull(base_ref)
                    base_name = base_ref
            except Exception as exc:
                result.error = f"cannot pull {base_ref}: {exc}"
                out(f"error: {result.error}")
                if sp is not None:
                    sp.fail(result.error)
                return False
            image_path = self.storage.copy(base_name, tag,
                                           clone=self.cache_enabled)
            config = self.storage.config_of(base_name)
        if as_name is not None:
            # registered *after* base resolution: FROM x AS x refers to
            # the external image x, not the stage being defined
            stage_names[as_name] = tag
        result.instructions = lineno

        # Build-cache chain: rooted in the base image's identity digest so
        # independent builders derive identical keys.  ``snap`` is lazy —
        # an all-hits warm build never packs the tree at all.
        ckey = ""
        snap: Optional[dict] = None
        if self.cache_enabled:
            ckey = self.cache.begin(
                self.storage.digest_of(base_name), force=force,
                force_mode=self.force_mode if force else "")

        force_config = detect_config(self.sys, image_path)
        if force and self.force_mode == "seccomp":
            out("will use --force: seccomp: fake privileged syscalls "
                "(no image modification)")
        elif force and force_config is not None:
            out(f"will use --force: {force_config.name}: "
                f"{force_config.description}")
        elif force:
            out("--force specified, but no suitable configuration found")

        env: dict[str, str] = dict(
            kv.split("=", 1) for kv in config.env if "=" in kv)
        workdir = config.workdir
        initialized = False
        saw_modifiable_failure = False

        for i, inst in enumerate(instructions[1:], start=lineno + 1):
            result.instructions = i
            with self._inst_span(i, inst.kind, inst.args) as sp:
                if self.cache_enabled and inst.kind not in ("COPY", "ADD",
                                                            "RUN"):
                    # config-only instructions extend the chain (their text
                    # is part of the key) but cache no tree diff
                    ckey = self.cache.extend(ckey, inst.kind, inst.args)
                if inst.kind in ("ENV", "ARG"):
                    env.update(dict(split_env_args(inst.args)))
                    out(f"  {i} {inst.kind} {inst.args}")
                    continue
                if inst.kind == "LABEL":
                    out(f"  {i} LABEL {inst.args}")
                    continue
                if inst.kind == "WORKDIR":
                    workdir = inst.args
                    out(f"  {i} WORKDIR {inst.args}")
                    continue
                if inst.kind in ("CMD", "ENTRYPOINT"):
                    words = tuple(inst.shell_words())
                    if inst.kind == "CMD":
                        config = ImageConfig(
                            arch=config.arch, env=config.env, cmd=words,
                            entrypoint=config.entrypoint, workdir=workdir,
                            user=config.user, labels=config.labels,
                            history=config.history)
                    else:
                        config = ImageConfig(
                            arch=config.arch, env=config.env, cmd=config.cmd,
                            entrypoint=words, workdir=workdir,
                            user=config.user, labels=config.labels,
                            history=config.history)
                    out(f"  {i} {inst.kind} {inst.args}")
                    continue
                if inst.kind in ("COPY", "ADD"):
                    out(f"  {i} {inst.kind} {inst.args}")
                    if self.cache_enabled:
                        ckey = self.cache.extend(
                            ckey, inst.kind, inst.args,
                            context=self._copy_context_digest(inst,
                                                              stage_names))
                        diff = self._cache_lookup(ckey, i, inst.kind)
                        if diff is not None:
                            out(f"  {i} {inst.kind}: using build cache")
                            result.cache_hits += 1
                            diff.apply_diff(self.sys, image_path)
                            if snap is not None:
                                snap = apply_diff_to_snapshot(snap, diff)
                            continue
                        if snap is None:
                            snap = snapshot_tree(self.sys, image_path)
                    status = self._do_copy(inst, image_path, out,
                                           stage_names=stage_names)
                    if status != 0:
                        result.error = (f"build failed: {inst.kind} failed")
                        out(f"error: {result.error}")
                        if sp is not None:
                            sp.fail(result.error)
                        return False
                    if self.cache_enabled:
                        snap = self._cache_store(ckey, inst, image_path,
                                                 snap)
                    continue
                if inst.kind != "RUN":
                    out(f"  {i} {inst.kind} {inst.args}")
                    continue

                # RUN
                words = inst.shell_words()
                out(f"  {i} RUN {words!r}")
                if self.cache_enabled:
                    ckey = self.cache.extend(ckey, "RUN", inst.args)
                    diff = self._cache_lookup(ckey, i, "RUN")
                    if diff is not None:
                        out(f"  {i} RUN: using build cache")
                        result.cache_hits += 1
                        diff.apply_diff(self.sys, image_path)
                        if snap is not None:
                            snap = apply_diff_to_snapshot(snap, diff)
                        continue
                    if snap is None:
                        snap = snapshot_tree(self.sys, image_path)
                modifiable = (force_config is not None
                              and force_config.run_modifiable(inst.args))
                seccomp = False
                if force and self.force_mode == "seccomp":
                    # §6.2.2(3): the wrapper lives in the runtime; every RUN
                    # is covered, no distro detection or image changes needed
                    out("workarounds: RUN: seccomp")
                    result.modified_runs += 1
                    seccomp = True
                else:
                    if force and modifiable and not initialized:
                        status = self._run_init(force_config, image_path, env,
                                                workdir, out, result)
                        if status != 0:
                            result.error = ("build failed: --force "
                                            "initialization failed with "
                                            f"status {status}")
                            result.exit_status = status
                            out(f"error: {result.error}")
                            if sp is not None:
                                sp.fail(result.error)
                            return False
                        initialized = True
                    if force and modifiable:
                        words = ["fakeroot"] + words
                        out(f"workarounds: RUN: new command: {words!r}")
                        result.modified_runs += 1

                status = self._run_in_container(image_path, words, env,
                                                workdir, out, seccomp=seccomp)
                if status == 0 and self.cache_enabled:
                    snap = self._cache_store(ckey, inst, image_path, snap)
                if status != 0:
                    if modifiable and not force:
                        saw_modifiable_failure = True
                    result.exit_status = status
                    result.error = (f"build failed: RUN command exited "
                                    f"with {status}")
                    out(f"error: {result.error}")
                    if saw_modifiable_failure and force_config is not None:
                        out(f"hint: --force may fix it: {force_config.name}: "
                            f"{force_config.description}")
                    if sp is not None:
                        sp.fail(result.error)
                    return False

        if is_last:
            if force:
                out(f"--force: init OK & modified {result.modified_runs} "
                    "RUN instructions")
            out(f"grown in {result.instructions} instructions: {final_tag}")
        if self.cache_enabled:
            # the tag marks this chain reachable for GC, and roots any
            # later FROM of this stage/image deterministically
            self.cache.tag(tag, ckey)
            self.storage.set_digest(tag, "chain:" + ckey)
        self.storage.set_config(tag, config.with_history(
            f"ch-image build {'--force ' if force else ''}from {base_ref}"))
        return True

    # -- internals ----------------------------------------------------------------

    def _enter(self, image_path: str, env: dict[str, str], workdir: str
               ) -> ExecContext:
        return enter_container(
            self.user_proc, image_path, "type3",
            dev_fs=self.machine.dev_fs, env=env, workdir=workdir or "/",
            auto_map=self.auto_map, comm="ch-run")

    # -- build cache (§6.2.2 extension) ---------------------------------------------

    def _copy_context_digest(self, inst: Instruction, stage_names) -> str:
        """Digest of the bytes a COPY/ADD would bring in, so content
        changes invalidate the key even when the instruction text does
        not (BuildKit context hashing)."""
        parts = inst.args.split()
        prefix = ""
        if parts and parts[0].startswith("--from="):
            name = (stage_names or {}).get(
                parts[0].split("=", 1)[1].lower())
            if name is None:
                return "missing-stage"
            prefix = self.storage.path_of(name)
            parts = parts[1:]
        if len(parts) != 2:
            return "malformed"
        try:
            return blob_digest(self.sys.read_file(prefix + parts[0]))
        except KernelError as err:
            return f"unreadable:{err.errno}"

    def _cache_lookup(self, ckey: str, lineno: int,
                      kind: str) -> Optional[TarArchive]:
        """Probe the cache, with a span + counter for the obs layer."""
        with kernel_span(self.machine.kernel, f"cache lookup {lineno}",
                         "cache", lineno=lineno, inst_kind=kind) as sp:
            diff = self.cache.lookup(ckey)
            event = "hit" if diff is not None else "miss"
            if sp is not None:
                sp.meta["result"] = event
            tracer = self.tracer
            if tracer is not None:
                tracer.metrics.count_cache(event)
        return diff

    def _cache_store(self, ckey: str, inst: Instruction, image_path: str,
                     snap: dict) -> dict:
        """Commit the instruction's tree diff to the cache; returns the
        updated snapshot (carried forward to the next instruction)."""
        with kernel_span(self.machine.kernel, f"cache store {inst.kind}",
                         "cache", inst_kind=inst.kind) as sp:
            diff, snap = snapshot_and_diff(self.sys, image_path, snap)
            self.cache.store_diff(ckey, inst.kind, inst.args, diff)
            if sp is not None:
                sp.meta["diff_members"] = len(diff)
            tracer = self.tracer
            if tracer is not None:
                tracer.metrics.count_cache("store")
        return snap

    def _run_in_container(self, image_path: str, argv: list[str],
                          env: dict[str, str], workdir: str, out, *,
                          seccomp: bool = False) -> int:
        try:
            ctx = self._enter(image_path, env, workdir)
        except ContainerError as err:
            out(f"error: {err}")
            return 125
        if seccomp:
            ctx = ctx.child(sys=SeccompSyscalls(ctx.sys, self.seccomp_db))
        sink = OutputSink()
        status = execute(ctx.child(stdout=sink, stderr=sink), list(argv))
        for line in sink.lines():
            out(line)
        return status

    def _run_init(self, config: ForceConfig, image_path: str,
                  env: dict[str, str], workdir: str, out,
                  result: ChBuildResult) -> int:
        """Run the config's init steps: check, then do if needed (§5.3.1)."""
        kernel = self.machine.kernel
        for n, step in enumerate(config.init_steps, start=1):
            with kernel_span(kernel, f"force init step {n}", "force-init",
                             step=n, check=step.check_cmd) as sp:
                out(f"workarounds: init step {n}: checking: "
                    f"$ {step.check_cmd}")
                status = self._run_in_container(
                    image_path, ["/bin/sh", "-c", step.check_cmd], env,
                    workdir, lambda line: None)  # check output is discarded
                if status == 0:
                    continue
                out(f"workarounds: init step {n}: $ {step.do_cmd}")
                status = self._run_in_container(
                    image_path, ["/bin/sh", "-c", step.do_cmd], env, workdir,
                    out)
                if status != 0:
                    if sp is not None:
                        sp.fail(f"init step {n} exited with {status}")
                    return status
                result.init_steps_run += 1
        return 0

    def _do_copy(self, inst: Instruction, image_path: str, out, *,
                 stage_names=None) -> int:
        parts = inst.args.split()
        from_stage = None
        if parts and parts[0].startswith("--from="):
            from_stage = parts[0].split("=", 1)[1]
            parts = parts[1:]
        if len(parts) != 2:
            out("error: COPY needs SRC DST")
            return 1
        src, dst = parts
        if from_stage is not None:
            name = (stage_names or {}).get(from_stage.lower())
            if name is None:
                out(f"error: COPY --from={from_stage}: no such stage")
                return 1
            src = self.storage.path_of(name) + src
        try:
            data = self.sys.read_file(src)
        except KernelError as err:
            out(f"error: COPY {src}: {err.strerror}")
            return 1
        target = dst if not dst.endswith("/") else \
            dst + src.rsplit("/", 1)[-1]
        full = image_path + target
        self.sys.mkdir_p(full.rsplit("/", 1)[0])
        self.sys.write_file(full, data)
        return 0
