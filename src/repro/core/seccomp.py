"""The §6.2.2(3) recommendation, implemented: fakeroot moved *into the
container implementation*.

"Rather than installing in the image itself, the wrapper could be moved
into the container implementation.  This would simplify it and also ease
[ownership preservation]."

Real Charliecloud later shipped exactly this as ``ch-image build
--force=seccomp``: a seccomp(2) filter installed by the runtime intercepts
privileged system calls and fakes their success — nothing is installed into
the image, no Dockerfile-visible change happens, and the lie database lives
host-side so it naturally persists across RUN instructions and is available
at push time (enabling the §6.2.2(2) ownership-preserving push).

Unlike fakeroot(1), the filter also fakes the set*id family, so APT's
privilege drop "succeeds" without the no-sandbox configuration file.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..fakeroot.base import EngineSpec, FakerootSyscalls
from ..fakeroot.state import LieDatabase
from ..kernel import Syscalls
from ..obs.trace import instrument_syscalls

__all__ = ["SECCOMP_ENGINE", "SeccompSyscalls"]

#: Not a fakeroot(1) implementation — the runtime itself.  Arch-independent
#: (seccomp is a kernel feature), wraps everything including static
#: binaries (the filter is on the *process*, not injected into libc).
SECCOMP_ENGINE = EngineSpec(
    name="seccomp",
    initial_release="(runtime feature)",
    latest_version="(runtime feature)",
    approach="seccomp",
    architectures=("any",),
    daemon=False,
    persistency="host-side database",
    intercepts_xattrs=True,
)


@instrument_syscalls("seccomp")
class SeccompSyscalls(FakerootSyscalls):
    """Runtime-installed syscall interception.

    Extends the fakeroot lie machinery with:

    * set*id/setgroups faking (they report success without changing
      credentials — the wrapped process only *believes* it dropped or
      gained privilege);
    * static-binary coverage (a process filter, not an LD_PRELOAD library —
      the executor checks ``wraps_static_binaries`` via the engine's
      ``approach``).
    """

    def __init__(self, inner: Syscalls, db: Optional[LieDatabase] = None):
        super().__init__(inner, SECCOMP_ENGINE, db)

    def clone_for(self, proc):
        return SeccompSyscalls(self.inner.clone_for(proc), self.db)

    # seccomp filters see every clone/execve: static binaries included
    # (EngineSpec.wraps_static_binaries keys off approach == "ptrace", so
    # override explicitly).
    @property
    def wraps_static(self) -> bool:  # pragma: no cover - informational
        return True

    # -- fake the set*id family -------------------------------------------------

    def setuid(self, uid: int) -> None:
        return None  # faked success

    def seteuid(self, euid: int) -> None:
        return None

    def setreuid(self, ruid: int, euid: int) -> None:
        return None

    def setresuid(self, ruid: int, euid: int, suid: int) -> None:
        return None

    def setgid(self, gid: int) -> None:
        return None

    def setegid(self, egid: int) -> None:
        return None

    def setresgid(self, rgid: int, egid: int, sgid: int) -> None:
        return None

    def setgroups(self, groups: Sequence[int]) -> None:
        return None

    # mknod of devices is faked by the base class; chown/chmod/xattrs too.
