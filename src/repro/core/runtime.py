"""ch-run: Charliecloud's fully unprivileged container runtime.

Written in C in the real implementation; the semantics are: unprivileged
user namespace (single-ID map), mount namespace, bind mounts, then exec —
no daemon, no helpers, ever.  Default inside-identity is the invoking user
(HPC jobs want your own uid for the shared filesystems); builds use
``--uid 0`` so package managers believe they are root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..containers.runtime import ContainerError, enter_container
from ..errors import KernelError
from ..kernel import Process, Syscalls
from ..shell import OutputSink, execute

__all__ = ["ChRun", "ChRunResult"]


@dataclass
class ChRunResult:
    status: int
    output: str


class ChRun:
    """One user's ch-run on one machine."""

    def __init__(self, machine, user_proc: Process):
        self.machine = machine
        self.user_proc = user_proc

    def run(
        self,
        image_path: str,
        argv: Sequence[str],
        *,
        binds: Sequence[tuple[str, str]] = (),
        env: Optional[dict[str, str]] = None,
        uid: Optional[int] = None,
        workdir: str = "/",
    ) -> ChRunResult:
        """``ch-run [-b SRC:DST] IMAGE -- CMD ...``"""
        try:
            ctx = enter_container(
                self.user_proc, image_path, "type3",
                dev_fs=self.machine.dev_fs, env=env, workdir=workdir,
                comm="ch-run")
        except ContainerError as err:
            return ChRunResult(125, f"ch-run: error: {err}")
        if uid is not None and uid != 0:
            # remap display identity: ch-run --uid (cosmetic in Type III,
            # paper §2.1.3 — "only cosmetic effects")
            pass
        host_sys = Syscalls(self.user_proc)
        for src, dst in binds:
            try:
                res = self.user_proc.mnt_ns.resolve(
                    src, self.user_proc.cred, cwd=self.user_proc.cwd)
            except KernelError as err:
                return ChRunResult(125, f"ch-run: can't bind {src}: "
                                        f"{err.strerror}")
            ctx.proc.mnt_ns.add_mount(dst, res.fs, root_ino=res.inode.ino,
                                      owning_userns=ctx.proc.cred.userns)
        sink = OutputSink()
        status = execute(ctx.child(stdout=sink, stderr=sink), list(argv))
        return ChRunResult(status, sink.text())
