"""ch-image push: single-layer, ownership-flattened image upload.

Paper §6.1: "On push, Charliecloud changes ownership for all image files to
root:root and clears setuid/setgid bits, to avoid leaking site IDs ...
images are single-layer, in contrast to other implementations that push
images as multiple layers."

§6.2.2's "preserve file ownership" recommendation is implemented as the
optional ``fakeroot_db`` argument: when the build's lie database is handed
in, the pushed archive reflects the *faked* ownership instead of the
flattened one.
"""

from __future__ import annotations

from typing import Optional

from ..archive import TarArchive, TarMember
from ..containers.oci import ImageRef, Manifest
from ..containers.registry import Registry
from ..errors import RegistryError
from ..fakeroot import LieDatabase
from .images import ImageStorage

__all__ = ["push_image", "flatten_archive"]


def flatten_archive(archive: TarArchive) -> TarArchive:
    """root:root everywhere, setuid/setgid cleared."""
    return TarArchive([m.flattened() for m in archive])


def push_image(
    storage: ImageStorage,
    name: str,
    dest: str,
    *,
    fakeroot_db: Optional[LieDatabase] = None,
) -> Manifest:
    """Push image *name* from ch-image storage to *dest*.

    Without *fakeroot_db*: the standard flattening behaviour.  With it: the
    §6.2.2 extension — ownership comes from fakeroot's records, "layer
    archives that reflect fakeroot(1)'s database rather than the
    filesystem".
    """
    sys = storage.sys
    path = storage.path_of(name)
    if not sys.exists(path):
        raise RegistryError(f"no image {name!r} in ch-image storage")
    archive = TarArchive.pack(sys, path)

    if fakeroot_db is None:
        layer = flatten_archive(archive)
    else:
        members = []
        for m in archive:
            st = sys.lstat(f"{path}/{m.path}")
            lie = fakeroot_db.get(st.st_dev, st.st_ino)
            if lie is not None:
                members.append(TarMember(
                    path=m.path, ftype=lie.ftype or m.ftype,
                    mode=lie.mode if lie.mode is not None else m.mode,
                    uid=lie.uid if lie.uid is not None else 0,
                    gid=lie.gid if lie.gid is not None else 0,
                    data=m.data, target=m.target,
                    rdev=lie.rdev or m.rdev, exe_impl=m.exe_impl,
                    exe_arch=m.exe_arch, exe_static=m.exe_static,
                    xattrs=m.xattrs))
            else:
                members.append(m.flattened())
        layer = TarArchive(members)

    ref = ImageRef.parse(dest)
    net = storage.machine.kernel.network
    if net is None:
        raise RegistryError("no network reachable")
    registry: Registry = net.registry(ref.registry or "docker.io")
    config = storage.config_of(name)
    return registry.push(ref, config, [layer])
