"""ch-image storage: plain directory trees, fully unprivileged.

Charliecloud keeps images as ordinary directories under
``/var/tmp/<user>.ch/img`` — no storage driver, no mounts, no helpers.  On
pull, "any downstream Type III users ... will change ownership to
themselves anyway, like tar(1)" (paper §5.2): extraction does not preserve
ownership, so the whole tree belongs to the invoking user.
"""

from __future__ import annotations

from typing import Optional

from ..archive import TarArchive
from ..errors import BuildError, KernelError, RegistryError
from ..kernel import FileType, Process, Syscalls
from ..containers.oci import ImageConfig, ImageRef
from ..containers.registry import Registry

__all__ = ["ImageStorage", "DEFAULT_HUB"]

DEFAULT_HUB = "docker.io"


class ImageStorage:
    """One user's ch-image storage directory."""

    def __init__(self, machine, user_proc: Process,
                 storage_dir: Optional[str] = None):
        self.machine = machine
        self.user_proc = user_proc
        self.sys = Syscalls(user_proc)
        user = user_proc.environ.get("USER", "user")
        self.root = storage_dir or f"/var/tmp/{user}.ch"
        self.img_dir = f"{self.root}/img"
        self.sys.mkdir_p(self.img_dir)
        self._configs: dict[str, ImageConfig] = {}
        self._digests: dict[str, str] = {}  # name -> identity digest

    # -- naming ---------------------------------------------------------------------

    def path_of(self, name: str) -> str:
        flat = name.replace("/", "%").replace(":", "+")
        return f"{self.img_dir}/{flat}"

    def exists(self, name: str) -> bool:
        return self.sys.exists(self.path_of(name))

    def list_images(self) -> list[str]:
        try:
            entries = self.sys.readdir(self.img_dir)
        except KernelError:
            return []
        return sorted(e.name.replace("%", "/").replace("+", ":")
                      for e in entries)

    def config_of(self, name: str) -> ImageConfig:
        return self._configs.get(name, ImageConfig(arch=self.machine.arch))

    def digest_of(self, name: str) -> str:
        """A stable identity digest for *name*: the registry manifest
        digest for pulled images, a build-chain digest for built stages,
        or (fallback) the digest of the tree contents.  This is what roots
        the build cache's Merkle chains — two builders that pulled the
        same image derive the same chain keys."""
        digest = self._digests.get(name)
        if digest is None:
            from ..cas.diff import snapshot_digest, snapshot_tree
            path = self.path_of(name)
            if not self.sys.exists(path):
                raise BuildError(f"no image {name!r} in storage")
            digest = snapshot_digest(snapshot_tree(self.sys, path))
            self._digests[name] = digest
        return digest

    def set_digest(self, name: str, digest: str) -> None:
        self._digests[name] = digest

    # -- pull -----------------------------------------------------------------------

    def _registry(self, ref: ImageRef) -> Registry:
        net = self.machine.kernel.network
        if net is None:
            raise RegistryError("no network reachable")
        return net.registry(ref.registry or DEFAULT_HUB)

    def pull(self, ref_text: str) -> str:
        """Pull and flatten: single directory tree owned by the user."""
        ref = ImageRef.parse(ref_text)
        name = str(ref)
        path = self.path_of(name)
        if self.sys.exists(path):
            return path
        registry = self._registry(ref)
        # the node-local CAS dedups layer blobs across users and pulls:
        # a blob the node already holds (earlier pull, broadcast pre-seed)
        # is not re-sent over the wire
        config, layers = registry.pull(
            ref, arch=self.machine.arch,
            local_store=getattr(self.machine, "content_store", None))
        self.sys.mkdir_p(path)
        for layer in layers:
            # unprivileged tar semantics: no chown attempts at all
            layer.extract(self.sys, path, preserve_owner=False)
        self._configs[name] = config
        self._digests[name] = registry.manifest(
            ref, arch=self.machine.arch).digest()
        return path

    # -- tag-to-tag copy (FROM materialization) ----------------------------------------

    def copy(self, src_name: str, dst_name: str, *, clone: bool = False) -> str:
        """Materialize *src_name* as *dst_name*.  The default is the
        plain pack-and-extract userspace copy; with *clone* the tree is
        duplicated by one ``clone_tree(2)`` reflink-style call — the fast
        path cache-enabled builds take for FROM."""
        src = self.path_of(src_name)
        dst = self.path_of(dst_name)
        if not self.sys.exists(src):
            raise BuildError(f"no image {src_name!r} in storage")
        if self.sys.exists(dst):
            self.delete(dst_name)
        if clone:
            self.sys.clone_tree(src, dst)
        else:
            archive = TarArchive.pack(self.sys, src)
            self.sys.mkdir_p(dst)
            archive.extract(self.sys, dst, preserve_owner=False)
        self._configs[dst_name] = self._configs.get(
            src_name, ImageConfig(arch=self.machine.arch))
        if src_name in self._digests:
            self._digests[dst_name] = self._digests[src_name]
        return dst

    def set_config(self, name: str, config: ImageConfig) -> None:
        self._configs[name] = config

    # -- delete ---------------------------------------------------------------------------

    def delete(self, name: str) -> None:
        self._rm_tree(self.path_of(name))
        self._configs.pop(name, None)
        self._digests.pop(name, None)

    def _rm_tree(self, path: str) -> None:
        st = self.sys.lstat(path)
        if st.ftype is FileType.DIR:
            for entry in self.sys.readdir(path):
                self._rm_tree(f"{path}/{entry.name}")
            self.sys.rmdir(path)
        else:
            self.sys.unlink(path)
