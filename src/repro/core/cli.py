"""A ch-image command-line front end.

``ch_image_cli(ch, argv)`` mirrors the CLI the paper's transcripts invoke:
``ch-image build [--force] [--trace] [--profile] [--parallel N]
[--fault-plan SPEC] [--retries N] -t TAG -f DOCKERFILE .``, plus pull/
push/list/delete, ``ch-image build-cache [--tree|--gc|--reset]`` and
``build-cache {export|import} REF`` for the §6.2.2 build cache, and
``ch-image trace [--audit|--json]`` to report on the last traced build.
Returns (exit_status, output_text).
"""

from __future__ import annotations

import json

from ..containers.oci import ImageRef
from ..errors import KernelError, ReproError
from ..obs.export import trace_to_dict
from ..obs.report import privilege_audit, render_span_tree, render_summary
from ..sim.profile import COUNTERS, render_counter_table
from .builder import ChImage
from .images import DEFAULT_HUB
from .push import push_image

__all__ = ["ch_image_cli"]


def ch_image_cli(ch: ChImage, argv: list[str]) -> tuple[int, str]:
    if not argv:
        return 1, ("usage: ch-image {audit|build|build-cache|pull|push|"
                   "list|delete|trace} ...")
    command, *args = argv

    if command == "build":
        force = False
        force_mode = None
        parallel = 1
        fault_spec = None
        retry_budget = 8
        profile = False
        tag = ""
        dockerfile_path = ""
        rest = []
        i = 0
        while i < len(args):
            a = args[i]
            if a == "--force":
                force = True
            elif a.startswith("--force="):
                force = True
                force_mode = a.split("=", 1)[1]
                if force_mode not in ("fakeroot", "seccomp"):
                    return 1, f"ch-image: unknown --force mode {force_mode!r}"
            elif a == "--parallel" or a.startswith("--parallel="):
                if a == "--parallel":
                    i += 1
                    value = args[i] if i < len(args) else ""
                else:
                    value = a.split("=", 1)[1]
                if not value.isdigit() or int(value) < 1:
                    return 1, f"ch-image: bad --parallel value {value!r}"
                parallel = int(value)
            elif a == "--fault-plan" or a.startswith("--fault-plan="):
                if a == "--fault-plan":
                    i += 1
                    if i >= len(args):
                        return 1, "ch-image: --fault-plan needs a value"
                    fault_spec = args[i]
                else:
                    fault_spec = a.split("=", 1)[1]
            elif a == "--retries" or a.startswith("--retries="):
                if a == "--retries":
                    i += 1
                    value = args[i] if i < len(args) else ""
                else:
                    value = a.split("=", 1)[1]
                if not value.isdigit():
                    return 1, f"ch-image: bad --retries value {value!r}"
                retry_budget = int(value)
            elif a == "--trace":
                ch.enable_tracing()
            elif a == "--profile":
                profile = True
            elif a == "-t":
                i += 1
                tag = args[i]
            elif a == "-f":
                i += 1
                dockerfile_path = args[i]
            else:
                rest.append(a)
            i += 1
        if not tag or not dockerfile_path:
            return 1, "ch-image build: need -t TAG and -f DOCKERFILE"
        try:
            dockerfile = ch.sys.read_file(dockerfile_path).decode()
        except KernelError as err:
            return 1, f"ch-image: can't read {dockerfile_path}: " \
                      f"{err.strerror}"
        fault_plan = None
        if fault_spec is not None:
            from ..sim import FaultPlan, FaultPlanError
            if parallel == 1:
                return 1, ("ch-image: --fault-plan needs --parallel "
                           "(worker crashes need the build farm)")
            try:
                fault_plan = FaultPlan.parse(fault_spec)
            except FaultPlanError as err:
                return 1, f"ch-image: {err}"
        saved_mode = ch.force_mode
        if force_mode is not None:
            ch.force_mode = force_mode
        before = COUNTERS.snapshot() if profile else None
        try:
            result = ch.build(tag=tag, dockerfile=dockerfile, force=force,
                              parallel=parallel, fault_plan=fault_plan,
                              retry_budget=retry_budget)
        finally:
            ch.force_mode = saved_mode
        text = result.text
        if profile:
            table = render_counter_table(COUNTERS.delta(before),
                                         title="build profile")
            text = f"{text}\n{table}" if text else table
        return (0 if result.success else 1), text

    if command == "pull":
        if not args:
            return 1, "ch-image pull: need an image reference"
        try:
            path = ch.pull(args[0])
        except ReproError as err:
            return 1, f"ch-image: pull failed: {err}"
        return 0, f"pulled {args[0]} to {path}"

    if command == "push":
        if len(args) < 2:
            return 1, "ch-image push: need IMAGE DEST"
        try:
            manifest = push_image(ch.storage, args[0], args[1])
        except (ReproError, KernelError) as err:
            return 1, f"ch-image: push failed: {err}"
        return 0, (f"pushed {args[0]} to {args[1]} "
                   f"({manifest.layer_count} layer)")

    if command in ("list", "list-images"):
        return 0, "\n".join(ch.storage.list_images())

    if command in ("delete", "rm"):
        if not args:
            return 1, "ch-image delete: need an image name"
        try:
            ch.storage.delete(args[0])
        except KernelError as err:
            return 1, f"ch-image: delete failed: {err.strerror}"
        if ch.cache is not None:
            # the image's chain is no longer tag-reachable; the records
            # stay until ``build-cache --gc`` sweeps them
            ch.cache.untag(args[0])
        return 0, f"deleted {args[0]}"

    if command == "build-cache":
        cache = ch.cache
        if cache is None:
            return 1, ("ch-image build-cache: the build cache is not "
                       "enabled (construct ChImage with cache=True)")
        if "--tree" in args:
            return 0, cache.tree()
        if "--gc" in args:
            res = cache.gc()
            return 0, (f"garbage collected: {res['records_dropped']} "
                       f"records, {res['blobs_reclaimed']} blobs "
                       f"({res['bytes_reclaimed']} bytes)")
        if "--reset" in args:
            res = cache.reset()
            return 0, (f"reset: dropped {res['records_dropped']} records, "
                       f"{res['blobs_reclaimed']} blobs")
        if args and args[0] in ("export", "import"):
            if len(args) < 2:
                return 1, f"ch-image build-cache {args[0]}: need a REF"
            ref = ImageRef.parse(args[1])
            net = ch.machine.kernel.network
            if net is None:
                return 1, "ch-image build-cache: no network reachable"
            try:
                registry = net.registry(ref.registry or DEFAULT_HUB)
                if args[0] == "export":
                    digest = cache.export_to_registry(registry, ref)
                    return 0, (f"exported {len(cache.records)} records "
                               f"to {args[1]} ({digest[:19]}...)")
                installed = cache.import_from_registry(registry, ref)
                return 0, f"imported {installed} records from {args[1]}"
            except ReproError as err:
                return 1, f"ch-image build-cache {args[0]} failed: {err}"
        return 0, cache.summary()

    if command == "audit":
        names = [a for a in args if not a.startswith("--")]
        if not names:
            return 1, "ch-image audit: need an image name"
        name = names[0]
        if not ch.storage.exists(name):
            return 1, f"ch-image audit: no image {name!r} in storage"
        from ..archive import TarArchive
        from ..supply import (audit_layers, layers_as_dict,
                              make_advisory_db, packages_of,
                              sbom_statement)
        path = ch.storage.path_of(name)
        sbom = sbom_statement(ch.sys, path, image=name)
        findings = [f.as_dict() for f in
                    make_advisory_db(seed=0).scan(packages_of(sbom))]
        audits = audit_layers([TarArchive.pack(ch.storage.sys, path)])
        size = layers_as_dict(audits)
        if "--json" in args:
            return 0, json.dumps({"image": name, "sbom": sbom,
                                  "findings": findings, "size": size},
                                 sort_keys=True)
        lines = [f"image audit: {name}",
                 f"  packages: {sbom['package_count']}"]
        worst = f" (worst: {findings[0]['severity']})" if findings else ""
        lines.append(f"  findings: {len(findings)}{worst}")
        for f in findings:
            fixed = f"< {f['fixed_in']}" if f["fixed_in"] else "(no fix)"
            lines.append(f"    {f['id']} {f['severity']}: {f['package']} "
                         f"{f['installed']} {fixed}: {f['summary']}")
        layer = size["layers"][0]
        top = layer["largest"][0] if layer["largest"] else None
        largest = f", largest {top['path']} ({top['size']})" if top else ""
        lines.append(f"  size: {size['total_bytes']} bytes, "
                     f"{layer['members']} members{largest}")
        return 0, "\n".join(lines)

    if command == "trace":
        tracer = ch.tracer
        if tracer is None:
            return 1, ("ch-image trace: tracing is not enabled "
                       "(build with --trace, or set REPRO_TRACE=1)")
        if "--json" in args:
            return 0, json.dumps(trace_to_dict(tracer), sort_keys=True)
        if "--audit" in args:
            return 0, privilege_audit(tracer).render()
        return 0, (render_span_tree(tracer) + "\n\n" +
                   render_summary(tracer))

    return 1, f"ch-image: unknown command {command!r}"
