"""The parallel build engine: stage-DAG scheduling on the sim clock.

The paper's Astra workflow (§4.2) treats build time as the dominant
human-facing cost of low-privilege container builds, yet ``ch-image``
historically executed every Dockerfile instruction — and every image in a
CI batch — strictly sequentially.  BuildKit-style builders showed that the
large constant factors live in stage-level DAG scheduling plus cache-aware
deduplication; this module brings both to the reproduction:

* :class:`BuildGraphScheduler` — a worker-pool discrete-event scheduler
  over the PR-3 :class:`~repro.sim.SimEngine`.  Tasks (build stages, or
  whole images in a CI farm) run as soon as their dependencies finish and
  a worker is free; ties are broken FIFO by (ready time, priority, id), so
  every schedule is deterministic.  Task cost is the kernel-tick delta of
  its actual execution scaled by ``tick_seconds`` — the same convention as
  the simulated :class:`~repro.cluster.scheduler.Scheduler`.
* **Single-flight deduplication** — a task carrying a ``flight_key``
  (Merkle plan key) that is already being built parks behind the one
  in-flight execution instead of redoing it, then re-runs warm (pure
  cache hits) when the leader lands.  The block-and-replay is counted as
  ``inflight_hits`` on the :class:`~repro.cas.BuildCache`.
* :func:`build_parallel` — a whole ``ch-image build`` as a stage DAG:
  independent stages of a multi-stage Dockerfile build concurrently, and
  the result reports **makespan** and **critical-path length** in virtual
  seconds (what ``ch-image build --parallel N`` prints).

Python execution remains single-threaded and deterministic; concurrency
exists on the virtual clock, exactly like the PR-3 deploy story.  Any
parallelism level and any valid topological order produce digest-identical
images (the determinism property tests pin this).
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..containers.dockerfile import StageGraph, parse_stage_graph
from ..errors import BuildError, ReproError
from ..obs.trace import kernel_span
from ..sim import FaultPlan, SimEngine

__all__ = [
    "DEFAULT_BUILD_TICK_SECONDS",
    "BuildGraphError",
    "BuildGraphScheduler",
    "ScheduleReport",
    "TaskReport",
    "build_parallel",
    "instruction_chain_keys",
    "plan_flight_key",
    "stage_plan_keys",
]

#: One kernel tick of build work in virtual seconds — the same scale the
#: cluster scheduler uses for rank compute, so build and deploy makespans
#: are comparable on one clock.
DEFAULT_BUILD_TICK_SECONDS = 1e-7


class BuildGraphError(ReproError):
    """Misuse of the build-graph scheduler (bad DAG, bad parallelism)."""


# -- plan keys (static Merkle keys for single-flight) -------------------------------


def plan_flight_key(dockerfile: str, *, force: bool = False,
                    force_mode: str = "") -> str:
    """The static Merkle *plan* key of a whole build: two builds with the
    same Dockerfile text and force mode collide here, which is exactly
    when their instruction-level cache chains would collide too — so one
    of them can wait for the other instead of duplicating the work."""
    mode = force_mode if force else ""
    return hashlib.sha256(
        f"plan|{dockerfile}|force={force}|mode={mode}".encode()).hexdigest()


def stage_plan_keys(graph: StageGraph, *, force: bool = False,
                    force_mode: str = "") -> list[str]:
    """Per-stage plan keys: each stage's key folds in its instruction
    texts and its dependencies' keys, mirroring the build cache's Merkle
    chains (minus runtime context digests).  Identical stages — within
    one Dockerfile or across concurrent builds sharing a scheduler —
    share a key and therefore single-flight."""
    mode = force_mode if force else ""
    keys: list[str] = [""] * len(graph)
    for stage in graph.stages:  # deps always point at earlier indices
        base = (keys[stage.base_stage] if stage.base_stage is not None
                else f"image:{stage.base_ref}")
        h = hashlib.sha256(
            f"stage|{base}|force={force}|mode={mode}".encode())
        for dep in stage.deps:
            h.update(f"|dep:{keys[dep]}".encode())
        for inst in stage.instructions[1:]:
            h.update(f"|{inst.kind} {inst.args}".encode())
        keys[stage.index] = h.hexdigest()
    return keys


def instruction_chain_keys(graph: StageGraph, *, force: bool = False,
                           force_mode: str = ""
                           ) -> list[list[tuple[Any, str]]]:
    """The instruction-level Merkle chain of every stage, *statically*.

    Returns one list per stage of ``(instruction, chain_key)`` pairs —
    entry 0 is the FROM instruction paired with the chain's root key,
    and each later entry's key extends its predecessor exactly the way
    :class:`~repro.cas.BuildCache` does during a real build
    (:meth:`begin`/:meth:`extend` on a throwaway cache, so the formulas
    can never drift).  Two differences from runtime keys, both
    grouping-preserving:

    * external base images root at the placeholder ``image:<ref>``
      instead of the world-specific image digest (same ref ⇒ same
      digest within any one world, so two chains collide here iff they
      collide at build time);
    * COPY/ADD context digests are unknown before the build and enter
      as ``""`` — correct grouping as long as all planned builds share
      one build context, which a matrix run does.

    Stage-internal FROMs root at ``chain:<tail>`` of the base stage's
    chain, mirroring how a cached build roots in the stage tag's
    recorded digest.  The matrix planner
    (:mod:`repro.matrix.plan`) uses these keys to count unique stage
    builds — distinct RUN/COPY/ADD keys — before anything is scheduled.
    """
    from ..cas.cache import BuildCache
    cache = BuildCache()  # throwaway: only begin/extend key derivation
    mode = force_mode if force else ""
    chains: list[list[tuple[Any, str]]] = []
    tails: list[str] = []
    for stage in graph.stages:  # deps always point at earlier indices
        root_digest = (f"chain:{tails[stage.base_stage]}"
                       if stage.base_stage is not None
                       else f"image:{stage.base_ref}")
        key = cache.begin(root_digest, force=force, force_mode=mode)
        chain: list[tuple[Any, str]] = [(stage.instructions[0], key)]
        for inst in stage.instructions[1:]:
            key = cache.extend(key, inst.kind, inst.args)
            chain.append((inst, key))
        chains.append(chain)
        tails.append(key)
    return chains


# -- the scheduler ------------------------------------------------------------------


@dataclass
class _Task:
    """Internal per-task scheduling state."""

    tid: int
    name: str
    fn: Callable[[], Any]
    deps: tuple[int, ...]
    ok_of: Optional[Callable[[Any], bool]]
    flight_key: str
    priority: int
    state: str = "pending"      # ready/inflight-wait/running/done/failed/skipped
    unmet: int = 0
    dependents: list[int] = field(default_factory=list)
    ready_time: float = 0.0
    start: float = 0.0
    finish: float = 0.0
    queue_wait: float = 0.0
    ticks: int = 0
    worker: int = -1
    deduped: bool = False
    flight_leader: bool = False
    result: Any = None
    ok: bool = True
    error: str = ""
    attempts: int = 0           # execution attempts (crash requeues + 1)


@dataclass(frozen=True)
class TaskReport:
    """One task's realized schedule."""

    name: str
    state: str
    ok: bool
    ready_time: float
    start: float
    finish: float
    queue_wait: float
    ticks: int
    worker: int
    deduped: bool
    error: str = ""
    attempts: int = 1

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class ScheduleReport:
    """What one scheduler run measured.

    ``makespan`` is virtual seconds from t=0 to the last completion;
    ``critical_path`` is the longest dependency chain through *realized*
    task durations — the floor no parallelism level can beat; the gap
    between ``serial_time`` and ``makespan`` is the win."""

    parallelism: int
    makespan: float = 0.0
    critical_path: float = 0.0
    critical_path_tasks: list[str] = field(default_factory=list)
    serial_time: float = 0.0          # sum of executed durations
    queue_wait_total: float = 0.0
    inflight_hits: int = 0
    worker_crashes: int = 0           # workers permanently lost mid-run
    requeues: int = 0                 # tasks re-run after a crash
    tasks: list[TaskReport] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return all(t.state == "done" and t.ok for t in self.tasks)

    @property
    def speedup(self) -> float:
        """Serial work over makespan (1.0 = no overlap happened)."""
        if self.makespan <= 0:
            return 1.0
        return self.serial_time / self.makespan

    def as_dict(self) -> dict:
        return {
            "parallelism": self.parallelism,
            "makespan": self.makespan,
            "critical_path": self.critical_path,
            "critical_path_tasks": list(self.critical_path_tasks),
            "serial_time": self.serial_time,
            "queue_wait_total": self.queue_wait_total,
            "inflight_hits": self.inflight_hits,
            "worker_crashes": self.worker_crashes,
            "requeues": self.requeues,
            "speedup": self.speedup,
            "tasks": [
                {"name": t.name, "state": t.state, "ok": t.ok,
                 "ready": t.ready_time, "start": t.start,
                 "finish": t.finish, "queue_wait": t.queue_wait,
                 "ticks": t.ticks, "worker": t.worker,
                 "deduped": t.deduped}
                for t in self.tasks
            ],
        }


class BuildGraphScheduler:
    """Run a DAG of build tasks on *parallelism* workers over a SimEngine.

    Tasks execute synchronously in Python when dispatched (determinism:
    dispatch order is the sim event order), but their *completions* land
    on the virtual clock after their tick-scaled cost — so independent
    tasks overlap in virtual time and the run reports a real makespan.

    *cache* (a :class:`~repro.cas.BuildCache` or handle) enables
    single-flight: a task whose ``flight_key`` is already in flight
    releases its worker, parks, and re-runs warm after the leader
    finishes.  *kernel* (optional) provides obs spans and counters.
    """

    def __init__(self, *, engine: Optional[SimEngine] = None,
                 parallelism: int = 1,
                 tick_seconds: float = DEFAULT_BUILD_TICK_SECONDS,
                 ticks: Optional[Callable[[], int]] = None,
                 cache=None, kernel=None, fail_fast: bool = True,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_budget: int = 8):
        if parallelism < 1:
            raise BuildGraphError(
                f"parallelism must be >= 1, got {parallelism}")
        self.engine = engine if engine is not None else SimEngine()
        self.parallelism = parallelism
        self.tick_seconds = tick_seconds
        self._ticks = ticks if ticks is not None else (lambda: 0)
        self.cache = cache
        self.kernel = kernel
        self.fail_fast = fail_fast
        self.fault_plan = fault_plan
        self.retry_budget = retry_budget
        self._tasks: list[_Task] = []
        self._ready: list[tuple[float, int, int]] = []  # (ready, prio, tid)
        self._free_workers: list[int] = list(range(parallelism))
        heapq.heapify(self._free_workers)
        self._dead_workers: set[int] = set()
        self._requeues = 0
        self._failed = False
        self._ran = False

    # -- building the DAG ----------------------------------------------------------

    def add_task(self, name: str, fn: Callable[[], Any], *,
                 deps: Sequence[int] = (), flight_key: str = "",
                 ok: Optional[Callable[[Any], bool]] = None,
                 priority: Optional[int] = None) -> int:
        """Register a task; returns its id (use as a dep for later tasks).
        *ok* maps the return value to pass/fail (default: always pass
        unless the task raises).  *priority* breaks FIFO ties among
        equally-ready tasks (default: insertion order)."""
        tid = len(self._tasks)
        for dep in deps:
            if not 0 <= dep < tid:
                raise BuildGraphError(
                    f"task {name!r}: dependency {dep} does not exist "
                    f"(tasks must be added in topological order)")
        task = _Task(tid=tid, name=name, fn=fn, deps=tuple(sorted(deps)),
                     ok_of=ok, flight_key=flight_key,
                     priority=tid if priority is None else priority)
        task.unmet = len(task.deps)
        for dep in task.deps:
            self._tasks[dep].dependents.append(tid)
        self._tasks.append(task)
        return tid

    # -- running -------------------------------------------------------------------

    def run(self) -> ScheduleReport:
        """Drain the DAG; returns the schedule report.  One-shot."""
        if self._ran:
            raise BuildGraphError("scheduler already ran")
        self._ran = True
        start_at = self.engine.now
        for task in self._tasks:
            if task.unmet == 0:
                self._make_ready(task, start_at)
        self.engine.at(start_at, self._dispatch)
        self.engine.run()
        return self._report(start_at)

    def _tracer(self):
        return getattr(self.kernel, "tracer", None) if self.kernel else None

    def _make_ready(self, task: _Task, now: float) -> None:
        task.state = "ready"
        task.ready_time = now
        heapq.heappush(self._ready, (now, task.priority, task.tid))

    # -- worker crashes (fault injection) ------------------------------------------

    def _alive_workers(self) -> int:
        return self.parallelism - len(self._dead_workers)

    def _retire_worker(self, worker: int) -> None:
        """Permanently remove a crashed worker from the pool."""
        if worker in self._dead_workers:
            return
        self._dead_workers.add(worker)
        tracer = self._tracer()
        if tracer is not None:
            tracer.metrics.count_build("worker_crashes")
        if self._alive_workers() <= 0:
            unfinished = [t.name for t in self._tasks
                          if t.state in ("pending", "ready", "running",
                                         "inflight-wait")]
            if unfinished:
                raise BuildGraphError(
                    f"all {self.parallelism} workers crashed with "
                    f"unfinished tasks: {unfinished}")

    def _prune_dead_workers(self) -> None:
        """Drop free workers whose crash time has already passed."""
        if self.fault_plan is None:
            return
        now = self.engine.now
        doomed = [w for w in self._free_workers
                  if (ct := self.fault_plan.worker_crash_time(w)) is not None
                  and ct <= now]
        if doomed:
            self._free_workers = [w for w in self._free_workers
                                  if w not in doomed]
            heapq.heapify(self._free_workers)
            for w in doomed:
                self._retire_worker(w)

    def _worker_crash(self, tid: int) -> None:
        """Event: the worker running *tid* died mid-task.  The stage is
        requeued; if the task led a single-flight, its waiters are woken
        to re-contend so one of them is promoted to leader — nobody parks
        forever behind a dead leader."""
        task = self._tasks[tid]
        now = self.engine.now
        self._retire_worker(task.worker)
        tracer = self._tracer()
        if tracer is not None:
            tracer.metrics.count_build("task_requeues")
        if task.flight_leader and self.cache is not None:
            # demote the dead leader and wake every waiter: the flight
            # re-forms at the next dispatch and the first contender leads
            task.flight_leader = False
            for waiter_tid in self.cache.flight_finish(task.flight_key):
                waiter = self._tasks[waiter_tid]
                if waiter.state == "inflight-wait":
                    waiter.deduped = False
                    self._make_ready(waiter, now)
        if task.attempts > self.retry_budget:
            task.state = "failed"
            task.finish = now
            task.ok = False
            task.error = (f"worker {task.worker} crashed and the retry "
                          f"budget ({self.retry_budget}) is spent")
            self._failed = True
            if self.fail_fast:
                for dep_tid in task.dependents:
                    self._skip_tree(dep_tid)
        else:
            # requeue the stage from scratch on a surviving worker
            self._requeues += 1
            task.worker = -1
            task.result = None
            task.ok = True
            task.error = ""
            task.ticks = 0
            self._make_ready(task, now)
        self._dispatch()

    def _dispatch(self) -> None:
        self._prune_dead_workers()
        while self._free_workers and self._ready:
            _, _, tid = heapq.heappop(self._ready)
            task = self._tasks[tid]
            if task.state not in ("ready",):
                continue
            if self._failed and self.fail_fast:
                self._skip(task, "skipped: an earlier task failed")
                continue
            now = self.engine.now
            if task.flight_key and self.cache is not None \
                    and not task.deduped:
                # warm replays (deduped=True) skip the flight check: they
                # already waited once and must not re-park behind each
                # other when several followers wake together
                if self.cache.flight_begin(task.flight_key):
                    task.flight_leader = True
                else:
                    # someone is building this exact key right now: park
                    # behind them; the worker stays free for other tasks
                    task.state = "inflight-wait"
                    task.deduped = True
                    self.cache.flight_wait(task.flight_key, task.tid)
                    continue
            worker = heapq.heappop(self._free_workers)
            task.queue_wait = now - task.ready_time
            self._execute(task, worker, now)

    def _execute(self, task: _Task, worker: int, now: float) -> None:
        task.state = "running"
        task.worker = worker
        task.start = now
        task.attempts += 1
        tracer = self._tracer()
        if tracer is not None:
            tracer.metrics.count_build("tasks")
            tracer.metrics.count_build("queue_wait_us",
                                       int(task.queue_wait * 1e6))
            if task.deduped:
                tracer.metrics.count_build("inflight_hits")
        if task.deduped and self.cache is not None:
            self.cache.note_inflight_hit()
        ticks_before = self._ticks()
        with kernel_span(self.kernel, f"schedule {task.name}", "stage-sched",
                         task=task.name, worker=worker,
                         queue_wait=task.queue_wait,
                         deduped=task.deduped) as sp:
            try:
                task.result = task.fn()
                task.ok = (task.ok_of(task.result)
                           if task.ok_of is not None else True)
            except Exception as exc:  # logical failure, recorded not raised
                task.ok = False
                task.error = f"{type(exc).__name__}: {exc}"
            if not task.ok:
                task.error = task.error or "task reported failure"
                if sp is not None:
                    sp.fail(task.error)
        task.ticks = self._ticks() - ticks_before
        cost = task.ticks * self.tick_seconds
        crash_t = (self.fault_plan.worker_crash_time(worker)
                   if self.fault_plan is not None else None)
        if crash_t is not None and now <= crash_t < now + cost:
            # the worker dies before this task's completion lands
            self.engine.at(crash_t, self._worker_crash, task.tid)
        else:
            self.engine.after(cost, self._complete, task.tid)

    def _complete(self, tid: int) -> None:
        task = self._tasks[tid]
        now = self.engine.now
        task.finish = now
        task.state = "done" if task.ok else "failed"
        heapq.heappush(self._free_workers, task.worker)
        if task.flight_leader and self.cache is not None:
            for waiter_tid in self.cache.flight_finish(task.flight_key):
                waiter = self._tasks[waiter_tid]
                if waiter.state == "inflight-wait":
                    self._make_ready(waiter, now)
        if not task.ok:
            self._failed = True
            if self.fail_fast:
                for dep_tid in task.dependents:
                    self._skip_tree(dep_tid)
        else:
            for dep_tid in task.dependents:
                dependent = self._tasks[dep_tid]
                dependent.unmet -= 1
                if dependent.unmet == 0 and dependent.state == "pending":
                    self._make_ready(dependent, now)
        self._dispatch()

    def _skip(self, task: _Task, reason: str) -> None:
        task.state = "skipped"
        task.ok = False
        task.error = reason
        for dep_tid in task.dependents:
            self._skip_tree(dep_tid)

    def _skip_tree(self, tid: int) -> None:
        task = self._tasks[tid]
        if task.state in ("pending", "ready", "inflight-wait"):
            self._skip(task, "skipped: a dependency failed")

    # -- reporting -----------------------------------------------------------------

    def _report(self, start_at: float) -> ScheduleReport:
        stuck = [t.name for t in self._tasks
                 if t.state in ("pending", "ready", "running",
                                "inflight-wait")]
        if stuck and not self._failed:
            raise BuildGraphError(
                f"scheduler deadlocked with unfinished tasks: {stuck}")
        for t in self._tasks:
            if t.state in ("pending", "ready", "inflight-wait"):
                self._skip(t, "skipped: an earlier task failed")
        report = ScheduleReport(parallelism=self.parallelism)
        durations: dict[int, float] = {}
        executed = [t for t in self._tasks if t.state in ("done", "failed")]
        for t in self._tasks:
            durations[t.tid] = (t.finish - t.start
                                if t.state in ("done", "failed") else 0.0)
        report.makespan = (max((t.finish for t in executed), default=start_at)
                           - start_at)
        report.serial_time = sum(durations.values())
        report.queue_wait_total = sum(t.queue_wait for t in executed)
        report.inflight_hits = sum(1 for t in executed if t.deduped)
        report.worker_crashes = len(self._dead_workers)
        report.requeues = self._requeues
        # critical path over realized durations
        cp: dict[int, float] = {}
        cp_prev: dict[int, Optional[int]] = {}
        for t in self._tasks:  # tids are topologically ordered by add_task
            best_dep, best = None, 0.0
            for dep in t.deps:
                if cp.get(dep, 0.0) > best:
                    best, best_dep = cp[dep], dep
            cp[t.tid] = durations[t.tid] + best
            cp_prev[t.tid] = best_dep
        if cp:
            tail = max(cp, key=lambda tid: (cp[tid], -tid))
            report.critical_path = cp[tail]
            chain: list[str] = []
            walk: Optional[int] = tail
            while walk is not None:
                chain.append(self._tasks[walk].name)
                walk = cp_prev[walk]
            report.critical_path_tasks = list(reversed(chain))
        report.tasks = [
            TaskReport(name=t.name, state=t.state, ok=t.ok,
                       ready_time=t.ready_time, start=t.start,
                       finish=t.finish, queue_wait=t.queue_wait,
                       ticks=t.ticks, worker=t.worker, deduped=t.deduped,
                       error=t.error, attempts=max(t.attempts, 1))
            for t in self._tasks
        ]
        tracer = self._tracer()
        if tracer is not None:
            tracer.metrics.count_build("makespan_us",
                                       int(report.makespan * 1e6))
        return report


# -- ch-image build as a stage DAG --------------------------------------------------


def build_parallel(ch, *, tag: str, dockerfile: str, force: bool = False,
                   parallelism: int = 2,
                   engine: Optional[SimEngine] = None,
                   tick_seconds: float = DEFAULT_BUILD_TICK_SECONDS,
                   priorities: Optional[Sequence[int]] = None,
                   fault_plan: Optional[FaultPlan] = None,
                   retry_budget: int = 8):
    """``ch-image build --parallel N``: one build as a stage DAG.

    Independent stages of a multi-stage Dockerfile run as concurrent
    tasks on the sim clock; the returned
    :class:`~repro.core.builder.ChBuildResult` additionally carries
    ``makespan``, ``critical_path``, and the full ``schedule`` report.
    The final image (and every ``tag%stageN``) is digest-identical to a
    sequential build — scheduling changes *when*, never *what*.

    *priorities* (tests only) permutes FIFO tie-breaking to realize any
    valid topological order without changing the result.
    """
    from .builder import ChBuildResult

    result = ChBuildResult(tag=tag, parallelism=parallelism)
    out = result.transcript.append
    kernel = ch.machine.kernel
    with kernel_span(kernel, f"build {tag} [parallel {parallelism}]",
                     "build", tag=tag, force=force,
                     parallelism=parallelism,
                     force_mode=ch.force_mode if force else "") as sp:
        try:
            graph = parse_stage_graph(dockerfile)
        except BuildError as err:
            result.error = str(err)
            out(f"error: {err}")
            if sp is not None:
                sp.fail(result.error)
            return result

        n = len(graph)
        flight_keys = stage_plan_keys(
            graph, force=force,
            force_mode=ch.force_mode if force else "")
        stage_results = [ChBuildResult(tag=tag) for _ in range(n)]
        stage_names: dict[str, str] = {}
        scheduler = BuildGraphScheduler(
            engine=engine, parallelism=parallelism,
            tick_seconds=tick_seconds, ticks=lambda: kernel.ticks,
            cache=ch.cache, kernel=kernel, fault_plan=fault_plan,
            retry_budget=retry_budget)

        def make_stage_fn(stage, stage_tag):
            def run_stage():
                sres = stage_results[stage.index]
                ok = ch._build_stage(
                    list(stage.instructions), stage_tag, force, sres,
                    sres.transcript.append, stage_names,
                    stage.first_ordinal, is_last=stage.index == n - 1,
                    final_tag=tag)
                if ok:
                    stage_names[str(stage.index)] = stage_tag
                return ok
            return run_stage

        for stage in graph.stages:
            stage_tag = tag if stage.index == n - 1 \
                else f"{tag}%stage{stage.index}"
            scheduler.add_task(
                f"{tag}:{stage.label}", make_stage_fn(stage, stage_tag),
                deps=stage.deps,
                flight_key=flight_keys[stage.index] if ch.cache is not None
                else "",
                ok=bool,
                priority=None if priorities is None
                else priorities[stage.index])

        schedule = scheduler.run()

    # merge per-stage results, in stage order (deterministic transcript)
    for sres in stage_results:
        result.transcript.extend(sres.transcript)
        result.modified_runs += sres.modified_runs
        result.init_steps_run += sres.init_steps_run
        result.cache_hits += sres.cache_hits
        result.instructions = max(result.instructions, sres.instructions)
    result.success = schedule.success
    if not result.success:
        for sres, treport in zip(stage_results, schedule.tasks):
            if sres.error or not treport.ok:
                result.error = sres.error or treport.error
                result.exit_status = sres.exit_status
                break
        result.error = result.error or "parallel build failed"
        if sp is not None:
            sp.fail(result.error)
    else:
        result.instructions = graph.total_instructions
    result.makespan = schedule.makespan
    result.critical_path = schedule.critical_path
    result.schedule = schedule
    out(f"parallel build: {n} stages on {parallelism} worker"
        f"{'s' if parallelism != 1 else ''}: makespan "
        f"{schedule.makespan * 1e3:.3f} ms, critical path "
        f"{schedule.critical_path * 1e3:.3f} ms, "
        f"{schedule.inflight_hits} deduped")
    if schedule.worker_crashes:
        out(f"faults: {schedule.worker_crashes} worker crash"
            f"{'es' if schedule.worker_crashes != 1 else ''}, "
            f"{schedule.requeues} stage requeue"
            f"{'s' if schedule.requeues != 1 else ''}")
    return result
