"""ch-image --force: distro detection and fakeroot(1) injection (paper §5.3).

Design principles, quoted from the paper:

1. "Be clear and explicit about what is happening."
2. "Minimize changes to the build."
3. "Modify the build only if the user requests it, but otherwise say what
   *could* be modified."

A :class:`ForceConfig` holds a *detection* rule (a file and a regex —
"this approach avoids executing a command within the container"), an
ordered list of *init steps* (each a check command and a do command), and
the *keywords* whose presence marks a RUN instruction as modifiable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..errors import KernelError
from ..kernel import Syscalls

__all__ = ["ForceConfig", "InitStep", "CONFIGS", "detect_config"]


@dataclass(frozen=True)
class InitStep:
    """One initialization step: run ``do_cmd`` unless ``check_cmd`` passes."""

    check_cmd: str
    do_cmd: str


@dataclass(frozen=True)
class ForceConfig:
    """One supported distribution family."""

    name: str
    description: str
    match_file: str
    match_re: str
    init_steps: tuple[InitStep, ...]
    run_keywords: tuple[str, ...]

    def matches(self, sys: Syscalls, image_path: str) -> bool:
        """Test the image tree host-side (no in-container execution)."""
        path = image_path.rstrip("/") + self.match_file
        try:
            content = sys.read_file(path).decode(errors="replace")
        except KernelError:
            return False
        return re.search(self.match_re, content) is not None

    def run_modifiable(self, command: str) -> bool:
        """Does this RUN command contain a trigger keyword?"""
        return any(k in command for k in self.run_keywords)


#: CentOS/RHEL 7: fakeroot comes from EPEL, which is installed if needed but
#: left disabled ("EPEL can cause unexpected upgrades of standard
#: packages"), then used explicitly via --enablerepo (§5.3.1).
RHEL7 = ForceConfig(
    name="rhel7",
    description="CentOS/RHEL 7",
    match_file="/etc/redhat-release",
    match_re=r"release 7\.",
    init_steps=(
        InitStep(
            check_cmd="command -v fakeroot > /dev/null",
            do_cmd=(
                "set -ex; "
                "if ! grep -Eq '\\[epel\\]' /etc/yum.conf "
                "/etc/yum.repos.d/*; then "
                "yum install -y epel-release; "
                "yum-config-manager --disable epel; "
                "fi; "
                "yum --enablerepo=epel install -y fakeroot"
            ),
        ),
    ),
    run_keywords=("dnf", "rpm", "yum"),
)

#: Debian 9/10 and Ubuntu: disable the APT sandbox, then install pseudo
#: ("in our experience, the fakeroot package in Debian 10 was not able to
#: install the packages we tested", §5.2).
DEBDERIV = ForceConfig(
    name="debderiv",
    description="Debian (9, 10) or Ubuntu (16, 18, 20)",
    match_file="/etc/os-release",
    match_re=r"stretch|buster|xenial|bionic|focal",
    init_steps=(
        InitStep(
            check_cmd=(
                "apt-config dump | fgrep -q 'APT::Sandbox::User \"root\"' "
                "|| ! fgrep -q _apt /etc/passwd"
            ),
            do_cmd=(
                "echo 'APT::Sandbox::User \"root\";' > "
                "/etc/apt/apt.conf.d/no-sandbox"
            ),
        ),
        InitStep(
            check_cmd="command -v fakeroot > /dev/null",
            do_cmd="apt-get update && apt-get install -y pseudo",
        ),
    ),
    run_keywords=("apt-get", "apt", "dpkg"),
)

CONFIGS: tuple[ForceConfig, ...] = (RHEL7, DEBDERIV)


def detect_config(sys: Syscalls, image_path: str) -> Optional[ForceConfig]:
    """Find the matching --force configuration for an image tree."""
    for config in CONFIGS:
        if config.matches(sys, image_path):
            return config
    return None
