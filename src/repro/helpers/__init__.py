"""shadow-utils substrate: subordinate IDs and the privileged map helpers."""

from .newidmap import HelperError, ShadowUtils
from .subid import SUB_ID_COUNT, SUB_ID_MIN, SubidEntry, SubidError, SubidFile

__all__ = [
    "HelperError",
    "ShadowUtils",
    "SUB_ID_COUNT",
    "SUB_ID_MIN",
    "SubidEntry",
    "SubidError",
    "SubidFile",
]
