"""newuidmap(1)/newgidmap(1): the shadow-utils privileged helpers.

These are the "carefully managed tools" of paper §4.1: installed with
CAP_SETUID/CAP_SETGID file capabilities, they are the *security boundary*
between unprivileged users and privileged ID maps.  They enforce:

* every requested outside range is either the caller's own ID (count 1) or
  lies entirely within the caller's /etc/subuid (resp. subgid) grants;
* the setgroups(2) policy interaction of §2.1.4 — newgidmap must refuse to
  install a self-only gid map while setgroups is still allowed.  The check
  was missing in shadow-utils < 4.6 (CVE-2018-7169); ``fixed_cve_2018_7169``
  lets tests demonstrate the vulnerable behaviour.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..errors import Errno, KernelError
from ..kernel import Cap, Credentials, IdMapEntry, Kernel, Process, Syscalls
from .subid import SubidFile

__all__ = ["HelperError", "ShadowUtils"]


class HelperError(KernelError):
    """A privileged helper refused the request (maps to the helper's
    non-zero exit + stderr message in real shadow-utils)."""


class ShadowUtils:
    """The pair of helpers plus their host configuration.

    Parameters
    ----------
    kernel:
        Host kernel; /etc/subuid and /etc/subgid live in its root filesystem.
    users:
        Host account database (username -> UID) used to match subid grants
        by name as well as by numeric ID.
    fixed_cve_2018_7169:
        When False, newgidmap omits the setgroups check (the historical
        vulnerability).
    """

    SUBUID_PATH = "/etc/subuid"
    SUBGID_PATH = "/etc/subgid"

    def __init__(
        self,
        kernel: Kernel,
        users: Optional[Mapping[str, int]] = None,
        *,
        fixed_cve_2018_7169: bool = True,
    ):
        self.kernel = kernel
        self.users = dict(users or {})
        self.fixed_cve_2018_7169 = fixed_cve_2018_7169
        self._root_sys = Syscalls(kernel.init_process)
        for path in (self.SUBUID_PATH, self.SUBGID_PATH):
            if not self._root_sys.exists(path):
                self._root_sys.mkdir_p("/etc")
                self._root_sys.write_file(path, b"")
                self._root_sys.chmod(path, 0o644)

    # -- configuration management (what useradd/usermod do) ---------------------

    def _load(self, path: str) -> SubidFile:
        return SubidFile.parse(self._root_sys.read_file(path).decode())

    def _store(self, path: str, f: SubidFile) -> None:
        self._root_sys.write_file(path, f.format().encode())

    def subuid(self) -> SubidFile:
        return self._load(self.SUBUID_PATH)

    def subgid(self) -> SubidFile:
        return self._load(self.SUBGID_PATH)

    def useradd(self, username: str, uid: int, *, subid_count: int = 65536,
                ) -> tuple[int, int]:
        """Register a host account and auto-allocate subordinate ranges
        ("newer versions of shadow-utils can automatically manage the setup
        using useradd", §4.1).  Returns (subuid_start, subgid_start)."""
        self.users[username] = uid
        uf = self.subuid()
        ue = uf.allocate(username, subid_count)
        self._store(self.SUBUID_PATH, uf)
        gf = self.subgid()
        ge = gf.allocate(username, subid_count)
        self._store(self.SUBGID_PATH, gf)
        return ue.start, ge.start

    def usermod_add_subuids(self, username: str, start: int, count: int) -> None:
        from .subid import SubidEntry
        f = self.subuid()
        f.add(SubidEntry(username, start, count))
        self._store(self.SUBUID_PATH, f)

    def usermod_add_subgids(self, username: str, start: int, count: int) -> None:
        from .subid import SubidEntry
        f = self.subgid()
        f.add(SubidEntry(username, start, count))
        self._store(self.SUBGID_PATH, f)

    # -- the helpers themselves ---------------------------------------------------

    def _username_of(self, uid: int) -> str:
        for name, u in self.users.items():
            if u == uid:
                return name
        return str(uid)

    def _helper_cred(self) -> Credentials:
        """The helper executes with file capabilities (setcap), not setuid
        root: its UIDs stay the caller's but CAP_SETUID/CAP_SETGID are
        raised — 'installed using CAP_SETUID, which helps minimize risk of
        privilege escalation compared to using a SETUID bit' (§4.1)."""
        cred = Credentials.root(self.kernel.init_userns)
        cred.caps = frozenset({Cap.SETUID, Cap.SETGID})
        return cred

    def _validate(
        self,
        caller: Process,
        entries: Sequence[IdMapEntry],
        grants: SubidFile,
        own_id: int,
        *,
        which: str,
    ) -> None:
        if not entries:
            raise HelperError(Errno.EINVAL, f"new{which}map: empty map request")
        username = self._username_of(
            caller.cred.euid if which == "uid" else caller.cred.euid
        )
        uid = caller.cred.euid
        for e in entries:
            if e.outside_start == own_id and e.count == 1:
                continue  # mapping one's own ID is always allowed
            if not grants.authorizes(username, uid, e.outside_start, e.count):
                raise HelperError(
                    Errno.EPERM,
                    f"new{which}map: range {e.outside_start}:{e.count} not "
                    f"authorized for {username} in /etc/sub{which}",
                )

    def newuidmap(self, caller: Process, target: Process,
                  entries: Sequence[IdMapEntry]) -> None:
        """Install a UID map on *target*'s namespace for *caller*."""
        self._validate(caller, entries, self.subuid(), caller.cred.euid,
                       which="uid")
        helper = self.kernel.spawn(parent=caller, cred=self._helper_cred(),
                                   comm="newuidmap")
        try:
            Syscalls(helper).write_uid_map(entries, target=target)
        finally:
            helper.exit(0)

    def newgidmap(self, caller: Process, target: Process,
                  entries: Sequence[IdMapEntry]) -> None:
        """Install a GID map on *target*'s namespace for *caller*.

        Security check (the CVE-2018-7169 fix): if the requested map is not
        fully authorized by /etc/subgid — i.e. the caller is only mapping
        its own GID — setgroups(2) must already be disabled in the target
        namespace, otherwise the §2.1.4 group-drop attack is possible.
        """
        grants = self.subgid()
        username = self._username_of(caller.cred.euid)
        self._validate(caller, entries, grants, caller.cred.egid, which="gid")
        # A user the admin has vetted with subgid grants may keep setgroups
        # enabled (Type II builds rely on it); a self-only map by a user with
        # *no* grants is the dangerous case the fix gates on.
        has_grants = bool(grants.entries_for(username, caller.cred.euid))
        fully_authorized = has_grants and all(
            grants.authorizes(username, caller.cred.euid,
                              e.outside_start, e.count)
            or (e.outside_start == caller.cred.egid and e.count == 1)
            for e in entries
        )
        if self.fixed_cve_2018_7169 and not fully_authorized:
            if target.cred.userns.setgroups != "deny":
                raise HelperError(
                    Errno.EPERM,
                    "newgidmap: setgroups must be denied before installing "
                    "a self-only gid map",
                )
        helper = self.kernel.spawn(parent=caller, cred=self._helper_cred(),
                                   comm="newgidmap")
        try:
            Syscalls(helper).write_gid_map(entries, target=target)
        finally:
            helper.exit(0)

    # -- convenience: the standard rootless-podman-style setup ---------------------

    def setup_rootless_userns(self, caller: Process) -> None:
        """The full Figure 4 dance: unshare, then map self->0 and the
        subordinate range to 1..n via the helpers."""
        uid, gid = caller.cred.euid, caller.cred.egid
        username = self._username_of(uid)
        sub_u = self.subuid().entries_for(username, uid)
        sub_g = self.subgid().entries_for(username, uid)
        if not sub_u or not sub_g:
            raise HelperError(
                Errno.EPERM,
                f"no subordinate ID ranges configured for {username}",
            )
        sys = Syscalls(caller)
        sys.unshare_user()
        self.newuidmap(caller, caller, [
            IdMapEntry(0, uid, 1),
            IdMapEntry(1, sub_u[0].start, sub_u[0].count),
        ])
        self.newgidmap(caller, caller, [
            IdMapEntry(0, gid, 1),
            IdMapEntry(1, sub_g[0].start, sub_g[0].count),
        ])
