"""/etc/subuid and /etc/subgid: subordinate ID range configuration.

Each line is ``name_or_id:start:count`` (subuid(5)).  Sysadmins (or
``useradd``/``usermod --add-subuids``) maintain these files; the privileged
helpers consult them to decide which maps an unprivileged user may install
(paper §2.1.2, §4.1, Figures 1 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..errors import ReproError
from ..kernel.types import ID_MAX, check_id

__all__ = ["SubidEntry", "SubidFile", "SubidError",
           "SUB_ID_MIN", "SUB_ID_COUNT"]

#: Default first subordinate ID useradd hands out (login.defs SUB_UID_MIN).
SUB_ID_MIN = 100000

#: Default range size per user (login.defs SUB_UID_COUNT).
SUB_ID_COUNT = 65536


class SubidError(ReproError):
    """Malformed subid configuration or allocation failure."""


@dataclass(frozen=True)
class SubidEntry:
    """One subordinate range grant."""

    owner: str  # username or decimal UID string
    start: int
    count: int

    def __post_init__(self) -> None:
        check_id(self.start, "start")
        if self.count <= 0:
            raise SubidError(f"count must be positive: {self.count}")
        if self.start + self.count - 1 > ID_MAX:
            raise SubidError("range exceeds 32-bit ID space")

    @property
    def end(self) -> int:
        """Last subordinate ID (inclusive)."""
        return self.start + self.count - 1

    def contains_range(self, start: int, count: int) -> bool:
        return self.start <= start and start + count - 1 <= self.end

    def overlaps(self, other: "SubidEntry") -> bool:
        return self.start <= other.end and other.start <= self.end

    def format(self) -> str:
        return f"{self.owner}:{self.start}:{self.count}"


class SubidFile:
    """Parsed view of an /etc/subuid or /etc/subgid file."""

    def __init__(self, entries: Iterable[SubidEntry] = ()):
        self._entries: list[SubidEntry] = list(entries)

    @classmethod
    def parse(cls, text: str) -> "SubidFile":
        entries = []
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":")
            if len(parts) != 3:
                raise SubidError(f"line {lineno}: expected name:start:count")
            try:
                entries.append(SubidEntry(parts[0], int(parts[1]), int(parts[2])))
            except ValueError as exc:
                raise SubidError(f"line {lineno}: {exc}") from exc
        return cls(entries)

    def format(self) -> str:
        return "".join(e.format() + "\n" for e in self._entries)

    def __iter__(self) -> Iterator[SubidEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def entries_for(self, username: str, uid: Optional[int] = None
                    ) -> list[SubidEntry]:
        """Grants applying to a user, matched by name or decimal UID
        (subuid(5) allows both forms)."""
        keys = {username}
        if uid is not None:
            keys.add(str(uid))
        return [e for e in self._entries if e.owner in keys]

    def authorizes(self, username: str, uid: Optional[int],
                   start: int, count: int) -> bool:
        """Is host range [start, start+count) within one of the user's grants?"""
        return any(
            e.contains_range(start, count)
            for e in self.entries_for(username, uid)
        )

    def add(self, entry: SubidEntry) -> None:
        for existing in self._entries:
            if existing.overlaps(entry):
                raise SubidError(
                    f"range {entry.start}:{entry.count} overlaps grant for "
                    f"{existing.owner} ({existing.start}:{existing.count})"
                )
        self._entries.append(entry)

    def allocate(self, username: str, count: int = SUB_ID_COUNT) -> SubidEntry:
        """useradd-style automatic allocation: first gap >= count above
        SUB_ID_MIN, non-overlapping with every existing grant."""
        taken = sorted((e.start, e.end) for e in self._entries)
        candidate = SUB_ID_MIN
        for start, end in taken:
            if candidate + count - 1 < start:
                break
            candidate = max(candidate, end + 1)
        if candidate + count - 1 > ID_MAX:
            raise SubidError("subordinate ID space exhausted")
        entry = SubidEntry(username, candidate, count)
        self._entries.append(entry)
        return entry
