"""The three fakeroot(1) implementations of paper Table 1."""

from __future__ import annotations

from .base import EngineSpec

__all__ = ["FAKEROOT_CLASSIC", "FAKEROOT_NG", "PSEUDO", "ENGINES",
           "engine_by_name"]

#: Debian's fakeroot: LD_PRELOAD, any arch, faked(1) daemon, -s/-i state file.
FAKEROOT_CLASSIC = EngineSpec(
    name="fakeroot",
    initial_release="1997-Jun",
    latest_version="2020-Oct (1.25.3)",
    approach="LD_PRELOAD",
    architectures=("any",),
    daemon=True,
    persistency="save/restore from file",
    intercepts_xattrs=False,
)

#: fakeroot-ng: ptrace(2)-based — wraps static binaries but only on the
#: architectures it has been ported to.
FAKEROOT_NG = EngineSpec(
    name="fakeroot-ng",
    initial_release="2008-Jan",
    latest_version="2013-Apr (0.18)",
    approach="ptrace",
    architectures=("ppc", "x86", "x86_64"),
    daemon=True,
    persistency="save/restore from file",
    intercepts_xattrs=True,
)

#: pseudo (Yocto): LD_PRELOAD with an always-on database; the most complete
#: coverage (xattrs included), which is why the paper's Debian example uses it.
PSEUDO = EngineSpec(
    name="pseudo",
    initial_release="2010-Mar",
    latest_version="2018-Jan (1.9.0)",
    approach="LD_PRELOAD",
    architectures=("any",),
    daemon=True,
    persistency="database",
    intercepts_xattrs=True,
)

ENGINES: dict[str, EngineSpec] = {
    e.name: e for e in (FAKEROOT_CLASSIC, FAKEROOT_NG, PSEUDO)
}


def engine_by_name(name: str) -> EngineSpec:
    try:
        return ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown fakeroot engine {name!r}; have {sorted(ENGINES)}"
        )
