"""The fakeroot interception layer.

:class:`FakerootSyscalls` wraps a real :class:`~repro.kernel.Syscalls`,
"intercepting privileged and privileged-adjacent system calls and lying to
the wrapped process about their results" (paper §5.1):

* ``chown(2)`` never reaches the kernel; the requested ownership goes into
  the lie database and success is returned.
* ``mknod(2)`` for devices creates a plain file and records the device
  metadata as a lie.
* ``stat(2)`` *does* reach the kernel, then the result is adjusted: lies are
  overlaid, and — the basic illusion — the invoking user's own IDs display
  as root.
* ``chmod(2)`` is tried for real first (mode bits usually work for files you
  own); EPERM is converted into a recorded lie.
* identity calls report UID/GID 0.

It deliberately does **not** intercept ``setuid``/``setgroups`` — which is
why apt-get's sandbox still has to be disabled separately even under
fakeroot (paper Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import Errno, KernelError, ReproError
from ..kernel import FileType, StatResult, Syscalls
from ..obs.trace import instrument_syscalls
from .state import Lie, LieDatabase

__all__ = ["EngineSpec", "FakerootError", "FakerootSyscalls"]


class FakerootError(ReproError):
    """The wrapper itself failed to start or operate."""


@dataclass(frozen=True)
class EngineSpec:
    """One fakeroot implementation's characteristics (paper Table 1)."""

    name: str
    initial_release: str
    latest_version: str
    approach: str  # "LD_PRELOAD" or "ptrace"
    architectures: tuple[str, ...]  # ("any",) or explicit ISA list
    daemon: bool
    persistency: str  # "save/restore from file" or "database"
    intercepts_xattrs: bool = False

    @property
    def wraps_static_binaries(self) -> bool:
        """LD_PRELOAD implementations cannot wrap statically linked
        executables; ptrace(2) ones can (paper §5.1), and so can process-
        level mechanisms like seccomp filters (§6.2.2(3))."""
        return self.approach in ("ptrace", "seccomp")

    def supports_arch(self, arch: str) -> bool:
        return "any" in self.architectures or arch in self.architectures

    def table_row(self) -> dict[str, str]:
        """Render as a Table 1 row."""
        return {
            "implementation": self.name,
            "initial release": self.initial_release,
            "latest version": self.latest_version,
            "approach": self.approach,
            "architectures": (
                "any" if "any" in self.architectures
                else ", ".join(self.architectures)
            ),
            "daemon?": "yes" if self.daemon else "no",
            "persistency": self.persistency,
        }


@instrument_syscalls("fakeroot")
class FakerootSyscalls(Syscalls):
    """A Syscalls proxy that fakes privileged operations.

    Parameters
    ----------
    inner:
        The real syscall interface of the wrapped process.
    engine:
        Which implementation's quirks to exhibit.
    db:
        Lie database (shared across invocations for persistent engines).
    """

    def __init__(self, inner: Syscalls, engine: EngineSpec,
                 db: Optional[LieDatabase] = None):
        if not engine.supports_arch(inner.kernel.arch):
            raise FakerootError(
                f"{engine.name}: architecture {inner.kernel.arch} not "
                f"supported (supports: {', '.join(engine.architectures)})"
            )
        super().__init__(inner.proc)
        self.inner = inner
        self.engine = engine
        self.db = db if db is not None else LieDatabase()

    def clone_for(self, proc):
        """Children inherit the wrapper (LD_PRELOAD env / traced children /
        seccomp filters all propagate across fork), sharing the lie DB."""
        return type(self)(self.inner.clone_for(proc), self.engine, self.db)

    # -- helpers ---------------------------------------------------------------------

    def _key(self, path: str, *, follow: bool = True) -> tuple[int, int]:
        st = self.inner.lstat(path) if not follow else self.inner.stat(path)
        return st.st_dev, st.st_ino

    def _journal_touch(self, path: str, *, follow: bool = True) -> None:
        """Record a lie mutation in the VFS change journal.  Lies change
        what this wrapper's stat/pack view reports for the inode even
        though no kernel write happened, so snapshot walkers must see the
        inode as dirty.  Resolved directly against the mount table — a
        syscall here would perturb the wrapped process's trace."""
        try:
            res = self.inner.mnt_ns.resolve(path, self.inner.cred,
                                            follow=follow,
                                            cwd=self.inner.getcwd())
        except KernelError:
            return
        res.fs.touch(res.inode)

    def digest_view_key(self) -> tuple:
        """Fakeroot views are partitioned by engine, lie database, and the
        wrapped identity (the base illusion maps the invoker's IDs to
        root), never shared with the plain kernel view; composing the
        inner key keeps namespace ID display in the partition too."""
        return ("fakeroot", type(self).__name__, self.engine.name, self.db,
                self.inner.cred.euid,
                self.inner.cred.egid) + self.inner.digest_view_key()

    # -- identity: pretend to be root ---------------------------------------------------

    def getuid(self) -> int:
        return 0

    def geteuid(self) -> int:
        return 0

    def getgid(self) -> int:
        return 0

    def getegid(self) -> int:
        return 0

    # -- ownership lies ------------------------------------------------------------------

    def chown(self, path: str, uid: int, gid: int, *, follow: bool = True
              ) -> None:
        """Fake success without ever issuing the real call."""
        dev, ino = self._key(path, follow=follow)
        self.db.record(dev, ino, Lie(
            uid=uid if uid != -1 else None,
            gid=gid if gid != -1 else None,
        ))
        self._journal_touch(path, follow=follow)

    def lchown(self, path: str, uid: int, gid: int) -> None:
        self.chown(path, uid, gid, follow=False)

    def chmod(self, path: str, mode: int) -> None:
        """Try the real chmod; record a lie when the kernel refuses, and
        always remember setuid/setgid bits (the kernel may silently strip
        them for foreign groups)."""
        try:
            self.inner.chmod(path, mode)
        except KernelError as err:
            if err.errno not in (Errno.EPERM, Errno.EACCES):
                raise
        dev, ino = self._key(path)
        self.db.record(dev, ino, Lie(mode=mode & 0o7777))
        self._journal_touch(path)

    def mknod(self, path: str, ftype: FileType, mode: int = 0o644,
              rdev: tuple[int, int] = (0, 0)) -> None:
        """Device nodes become plain files plus a lie (paper Figure 7)."""
        if ftype in (FileType.CHR, FileType.BLK):
            self.inner.mknod(path, FileType.REG, mode)
            dev, ino = self._key(path, follow=False)
            self.db.record(dev, ino, Lie(uid=0, gid=0, ftype=ftype, rdev=rdev,
                                         mode=mode & 0o7777))
            self._journal_touch(path, follow=False)
        else:
            self.inner.mknod(path, ftype, mode, rdev)

    # -- xattr lies (engine-dependent; the package-coverage differentiator) --------------

    def setxattr(self, path: str, name: str, value: bytes) -> None:
        if name.startswith(("security.", "trusted.")):
            if not self.engine.intercepts_xattrs:
                # classic fakeroot: pass through; the kernel will refuse
                self.inner.setxattr(path, name, value)
                return
            dev, ino = self._key(path)
            self.db.record(dev, ino, Lie(xattrs=((name, bytes(value)),)))
            self._journal_touch(path)
            return
        self.inner.setxattr(path, name, value)

    def getxattr(self, path: str, name: str) -> bytes:
        dev, ino = self._key(path)
        lie = self.db.get(dev, ino)
        if lie is not None:
            for lname, lvalue in lie.xattrs:
                if lname == name:
                    return lvalue
        return self.inner.getxattr(path, name)

    # -- stat overlay -------------------------------------------------------------------

    def _overlay(self, st: StatResult) -> StatResult:
        lie = self.db.get(st.st_dev, st.st_ino)
        uid, gid = st.st_uid, st.st_gid
        mode, ftype, rdev = st.st_mode, st.ftype, st.st_rdev
        # Base illusion: the invoking user's IDs display as root.
        me = self.inner.geteuid()
        mg = self.inner.getegid()
        if uid == me:
            uid = 0
        if gid == mg:
            gid = 0
        if lie is not None:
            if lie.uid is not None:
                uid = lie.uid
            if lie.gid is not None:
                gid = lie.gid
            if lie.ftype is not None:
                ftype = lie.ftype
            if lie.rdev is not None:
                rdev = lie.rdev
            if lie.mode is not None:
                mode = (mode & ~0o7777) | lie.mode
        return StatResult(
            st_ino=st.st_ino, st_dev=st.st_dev, st_mode=mode,
            st_nlink=st.st_nlink, st_uid=uid, st_gid=gid, st_size=st.st_size,
            st_rdev=rdev, st_mtime=st.st_mtime, ftype=ftype,
            kuid=st.kuid, kgid=st.kgid,
            st_gen=st.st_gen, st_tree_gen=st.st_tree_gen,
            exe_impl=st.exe_impl, exe_arch=st.exe_arch,
            exe_static=st.exe_static,
        )

    def stat(self, path: str) -> StatResult:
        return self._overlay(self.inner.stat(path))

    def lstat(self, path: str) -> StatResult:
        return self._overlay(self.inner.lstat(path))

    # -- db maintenance on unlink --------------------------------------------------------

    def unlink(self, path: str) -> None:
        try:
            st = self.inner.lstat(path)
        except KernelError:
            st = None
        self.inner.unlink(path)
        if st is not None and st.st_nlink <= 1:
            self.db.forget(st.st_dev, st.st_ino)

    # -- persistence (fakeroot -s / -i; pseudo's database) --------------------------------

    def _root_dev(self) -> int:
        # Read the mount table directly: a stat() here would perturb the
        # wrapped process's syscall trace.
        return self.inner.mnt_ns.mounts["/"].fs.device_id

    def save_state(self, path: str) -> None:
        """fakeroot -s: persist the lie database to *path* (inside the
        wrapped filesystem view).

        Device numbers are host-specific, so the root filesystem's device
        is stored as 0: saved databases are byte-identical across hosts
        for the common case of lies confined to one filesystem, which is
        what makes build-cache layer diffs portable.
        """
        root = self._root_dev()
        portable = LieDatabase()
        for (dev, ino), lie in self.db:
            portable.record(0 if dev == root else dev, ino, lie)
        self.inner.write_file(path, portable.dump())

    def load_state(self, path: str) -> None:
        """fakeroot -i: merge a previously saved database."""
        loaded = LieDatabase.load(self.inner.read_file(path))
        root = self._root_dev()
        by_device = {m.fs.device_id: m.fs
                     for m in self.inner.mnt_ns.mounts.values()}
        for (dev, ino), lie in loaded:
            dev = root if dev == 0 else dev
            self.db.record(dev, ino, lie)
            fs = by_device.get(dev)
            if fs is not None and ino in fs._inodes:
                fs.touch(fs.inode(ino))
