"""The fakeroot lie database.

fakeroot(1) "remembers which lies it told, to make later intercepted system
calls return consistent results" (paper §5.1).  The database is keyed by
(device, inode) — like the real implementations — so hard links share lies
and rename is free.

Serialization supports both persistence styles of Table 1: explicit
save/restore to a file (fakeroot, fakeroot-ng) and an always-on database
(pseudo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import ReproError
from ..kernel import FileType

__all__ = ["Lie", "LieDatabase", "LieFormatError"]


class LieFormatError(ReproError):
    """Corrupt serialized lie database."""


@dataclass(frozen=True)
class Lie:
    """Faked metadata for one inode.  ``None`` fields are not faked."""

    uid: Optional[int] = None
    gid: Optional[int] = None
    mode: Optional[int] = None
    ftype: Optional[FileType] = None
    rdev: Optional[tuple[int, int]] = None
    xattrs: tuple[tuple[str, bytes], ...] = ()

    def merged_with(self, other: "Lie") -> "Lie":
        """Later lies override earlier ones field-wise."""
        xattrs = dict(self.xattrs)
        xattrs.update(dict(other.xattrs))
        return Lie(
            uid=other.uid if other.uid is not None else self.uid,
            gid=other.gid if other.gid is not None else self.gid,
            mode=other.mode if other.mode is not None else self.mode,
            ftype=other.ftype if other.ftype is not None else self.ftype,
            rdev=other.rdev if other.rdev is not None else self.rdev,
            xattrs=tuple(sorted(xattrs.items())),
        )


_FTYPE_CODE = {
    FileType.REG: "f", FileType.DIR: "d", FileType.SYMLINK: "l",
    FileType.CHR: "c", FileType.BLK: "b", FileType.FIFO: "p",
    FileType.SOCK: "s",
}
_CODE_FTYPE = {v: k for k, v in _FTYPE_CODE.items()}
_NONE = "-"


class LieDatabase:
    """All lies currently in force, keyed by (device_id, inode number)."""

    def __init__(self):
        self._lies: dict[tuple[int, int], Lie] = {}

    def __len__(self) -> int:
        return len(self._lies)

    def __iter__(self) -> Iterator[tuple[tuple[int, int], Lie]]:
        return iter(sorted(self._lies.items()))

    def get(self, dev: int, ino: int) -> Optional[Lie]:
        return self._lies.get((dev, ino))

    def record(self, dev: int, ino: int, lie: Lie) -> None:
        """Merge *lie* into the entry for (dev, ino)."""
        key = (dev, ino)
        existing = self._lies.get(key)
        self._lies[key] = existing.merged_with(lie) if existing else lie

    def forget(self, dev: int, ino: int) -> None:
        self._lies.pop((dev, ino), None)

    def clear(self) -> None:
        self._lies.clear()

    # -- serialization -------------------------------------------------------------

    def dump(self) -> bytes:
        """Serialize: one line per inode,
        ``dev ino uid gid mode ftype major minor [name=hex ...]``."""
        lines = []
        for (dev, ino), lie in sorted(self._lies.items()):
            fields = [
                str(dev), str(ino),
                _NONE if lie.uid is None else str(lie.uid),
                _NONE if lie.gid is None else str(lie.gid),
                _NONE if lie.mode is None else oct(lie.mode),
                _NONE if lie.ftype is None else _FTYPE_CODE[lie.ftype],
                _NONE if lie.rdev is None else f"{lie.rdev[0]},{lie.rdev[1]}",
            ]
            for name, value in lie.xattrs:
                fields.append(f"{name}={value.hex()}")
            lines.append(" ".join(fields))
        return ("\n".join(lines) + "\n" if lines else "").encode()

    @classmethod
    def load(cls, data: bytes) -> "LieDatabase":
        db = cls()
        for lineno, line in enumerate(data.decode().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) < 7:
                raise LieFormatError(f"line {lineno}: too few fields")
            try:
                dev, ino = int(parts[0]), int(parts[1])
                uid = None if parts[2] == _NONE else int(parts[2])
                gid = None if parts[3] == _NONE else int(parts[3])
                mode = None if parts[4] == _NONE else int(parts[4], 8)
                ftype = None if parts[5] == _NONE else _CODE_FTYPE[parts[5]]
                if parts[6] == _NONE:
                    rdev = None
                else:
                    a, b = parts[6].split(",")
                    rdev = (int(a), int(b))
                xattrs = []
                for extra in parts[7:]:
                    name, _, hexval = extra.partition("=")
                    xattrs.append((name, bytes.fromhex(hexval)))
            except (ValueError, KeyError) as exc:
                raise LieFormatError(f"line {lineno}: {exc}") from exc
            db._lies[(dev, ino)] = Lie(uid, gid, mode, ftype, rdev,
                                       tuple(xattrs))
        return db
