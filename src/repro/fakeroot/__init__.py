"""fakeroot(1) substrate: syscall interception with a consistent lie
database (paper §5.1, Table 1)."""

from .base import EngineSpec, FakerootError, FakerootSyscalls
from .registry import (
    ENGINES,
    FAKEROOT_CLASSIC,
    FAKEROOT_NG,
    PSEUDO,
    engine_by_name,
)
from .state import Lie, LieDatabase, LieFormatError

__all__ = [
    "EngineSpec",
    "FakerootError",
    "FakerootSyscalls",
    "ENGINES",
    "FAKEROOT_CLASSIC",
    "FAKEROOT_NG",
    "PSEUDO",
    "engine_by_name",
    "Lie",
    "LieDatabase",
    "LieFormatError",
]
