"""Discrete-event simulated time for the cluster substrate.

The kernels' per-machine tick counters measure *work*; this package
measures *concurrency*: a cluster-wide virtual clock, an event queue, and
a bandwidth+latency network cost model, so the §4.2 parallel-deploy story
can report makespans instead of pretending a for-loop is a cluster.
"""

from .clock import SimClock
from .events import EventQueue, ReferenceEventQueue, SimEngine, SimError
from .faults import (
    FaultPlan,
    FaultPlanError,
    RegistryFaultInjector,
    RetryPolicy,
    TransientTransferError,
    faulty_transmit,
    link_restore,
    link_snapshot,
    retry_call,
)
from .opts import optimizations_enabled, reference_engine, set_optimizations
from .profile import (
    COUNTERS,
    CounterRegistry,
    EngineProfile,
    category_of,
    render_counter_table,
)
from .topology import (
    DEFAULT_BANDWIDTH,
    DEFAULT_CHUNK_SIZE,
    DEFAULT_LATENCY,
    LinkStats,
    NetLink,
    Topology,
    TopologyError,
)
from .transfer import (
    TransferTiming,
    chunk_sizes,
    transmit,
    transmit_reference,
)
from .workload import (
    PullRequest,
    WorkloadError,
    WorkloadReport,
    WorkloadSpec,
    generate_requests,
    run_workload,
    zipf_weights,
)

__all__ = [
    "SimClock",
    "EventQueue",
    "ReferenceEventQueue",
    "SimEngine",
    "SimError",
    "EngineProfile",
    "category_of",
    "COUNTERS",
    "CounterRegistry",
    "render_counter_table",
    "optimizations_enabled",
    "reference_engine",
    "set_optimizations",
    "FaultPlan",
    "FaultPlanError",
    "RegistryFaultInjector",
    "RetryPolicy",
    "TransientTransferError",
    "faulty_transmit",
    "link_restore",
    "link_snapshot",
    "retry_call",
    "DEFAULT_BANDWIDTH",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_LATENCY",
    "LinkStats",
    "NetLink",
    "Topology",
    "TopologyError",
    "TransferTiming",
    "chunk_sizes",
    "transmit",
    "transmit_reference",
    "PullRequest",
    "WorkloadError",
    "WorkloadReport",
    "WorkloadSpec",
    "generate_requests",
    "run_workload",
    "zipf_weights",
]
