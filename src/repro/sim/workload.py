"""Seeded open-loop workload generation for registry-scale benchmarks.

The ROADMAP's "heavy traffic" axis needs load that looks like a
production registry's: requests arrive on their own schedule whether or
not the service keeps up (open loop — Poisson arrivals), a few images
take most of the traffic (Zipf popularity), and the traffic is split
across tenants (the `tenant/repo:tag` namespaces the fleet serves).

Everything is a pure function of the spec's seed: one
``random.Random(f"{seed}|workload")`` stream drives inter-arrival gaps,
image choice, and tenant choice, so two runs of the same spec produce the
identical request tape — which is what lets the fault-matrix tests replay
a workload under different :class:`~repro.sim.FaultPlan`\\ s and assert
byte-identical convergence.

:func:`run_workload` plays a tape against a
:class:`~repro.cluster.fleet.RegistryFleet` on a :class:`SimEngine`:
each request is an event at its arrival time, overload 503s and registry
flakes are retried per :class:`RetryPolicy` (honouring ``retry_at``), and
the report aggregates throughput and latency percentiles.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import RegistryError, ReproError, TransientError
from .events import SimEngine
from .faults import FaultPlan, RetryPolicy

__all__ = ["PullRequest", "WorkloadError", "WorkloadReport",
           "WorkloadSpec", "generate_requests", "run_workload",
           "zipf_weights"]


class WorkloadError(ReproError):
    """Bad workload spec."""


def zipf_weights(n: int, s: float) -> list[float]:
    """Unnormalized Zipf weights ``1/rank^s`` for ranks ``1..n``."""
    if n <= 0:
        raise WorkloadError(f"need at least one item: {n}")
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


@dataclass(frozen=True)
class PullRequest:
    """One client pull in the tape."""

    index: int
    at: float                 # virtual arrival time
    tenant: str
    image: str                # full ref, e.g. "alice/app:v0"
    token: Optional[str] = None

    def as_dict(self) -> dict:
        return {"index": self.index, "at": round(self.at, 9),
                "tenant": self.tenant, "image": self.image}


@dataclass
class WorkloadSpec:
    """A seeded open-loop pull workload.

    ``images`` are ``repo:tag`` names ranked by popularity (rank 1 is
    hottest); ``tenants`` are ``(name, weight)`` pairs.  A request pulls
    ``{tenant}/{image}``, so the same repo exists independently under
    each tenant — the benchmark pushes it once per tenant.
    """

    seed: int = 0
    rate: float = 50.0               # mean arrivals per virtual second
    duration: float = 10.0           # seconds of arrivals
    zipf_s: float = 1.1              # popularity skew exponent
    images: Sequence[str] = ("app:v0",)
    tenants: Sequence[tuple[str, float]] = (("alice", 1.0),)
    tokens: dict = field(default_factory=dict)  # tenant -> auth token

    def validate(self) -> None:
        if self.rate <= 0:
            raise WorkloadError(f"rate must be positive: {self.rate}")
        if self.duration <= 0:
            raise WorkloadError(
                f"duration must be positive: {self.duration}")
        if not self.images:
            raise WorkloadError("spec needs at least one image")
        if not self.tenants or any(w <= 0 for _, w in self.tenants):
            raise WorkloadError(
                "spec needs tenants with positive weights")

    def refs(self) -> list[str]:
        """Every distinct ref the workload can request (push these)."""
        return [f"{tenant}/{image}"
                for tenant, _ in self.tenants for image in self.images]


def _cdf(weights: Sequence[float]) -> list[float]:
    total, out = 0.0, []
    for w in weights:
        total += w
        out.append(total)
    return out


def generate_requests(spec: WorkloadSpec) -> list[PullRequest]:
    """The deterministic request tape for *spec* (sorted by arrival)."""
    spec.validate()
    rng = random.Random(f"{spec.seed}|workload")
    image_cdf = _cdf(zipf_weights(len(spec.images), spec.zipf_s))
    tenant_cdf = _cdf([w for _, w in spec.tenants])
    requests: list[PullRequest] = []
    t = 0.0
    while True:
        t += rng.expovariate(spec.rate)
        if t >= spec.duration:
            break
        image = spec.images[
            bisect_right(image_cdf, rng.random() * image_cdf[-1])]
        tenant = spec.tenants[
            bisect_right(tenant_cdf, rng.random() * tenant_cdf[-1])][0]
        requests.append(PullRequest(
            index=len(requests), at=t, tenant=tenant,
            image=f"{tenant}/{image}",
            token=spec.tokens.get(tenant)))
    return requests


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


@dataclass
class WorkloadReport:
    """What one workload run did, open-loop accounting included."""

    offered: int = 0                 # requests in the tape
    completed: int = 0
    dropped: int = 0                 # retry budget exhausted
    failed: int = 0                  # non-retryable errors (auth, missing)
    retries: int = 0
    overloads: int = 0               # 503-style admission rejections seen
    faults: int = 0                  # transient faults seen (incl. flakes)
    backoff_seconds: float = 0.0
    makespan: float = 0.0            # last completion time
    latencies: list[float] = field(default_factory=list)

    @property
    def p50(self) -> float:
        return _percentile(sorted(self.latencies), 0.50)

    @property
    def p99(self) -> float:
        return _percentile(sorted(self.latencies), 0.99)

    @property
    def pulls_per_sec(self) -> float:
        elapsed = self.makespan
        return self.completed / elapsed if elapsed > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "dropped": self.dropped,
            "failed": self.failed,
            "retries": self.retries,
            "overloads": self.overloads,
            "faults": self.faults,
            "backoff_seconds": round(self.backoff_seconds, 9),
            "makespan": round(self.makespan, 9),
            "pulls_per_sec": round(self.pulls_per_sec, 6),
            "p50": round(self.p50, 9),
            "p99": round(self.p99, 9),
        }


def run_workload(fleet, spec: WorkloadSpec, *,
                 engine: Optional[SimEngine] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 tracer=None) -> WorkloadReport:
    """Play *spec*'s request tape against *fleet* on the sim clock.

    Binds ``fleet.clock`` to the engine for the run (activating admission
    control) and installs *fault_plan*'s injector when given, restoring
    both afterwards.  Transient failures — overload 503s, registry
    flakes — are retried per *retry_policy* from ``max(now + backoff,
    retry_at)``; a request that exhausts the budget is counted dropped.
    """
    from ..cluster.fleet import FleetOverloadError  # lazy: sim <- cluster
    engine = engine if engine is not None else SimEngine()
    policy = retry_policy if retry_policy is not None \
        else RetryPolicy(seed=spec.seed)
    requests = generate_requests(spec)
    report = WorkloadReport(offered=len(requests))

    def attempt(req: PullRequest, n: int) -> None:
        now = engine.now
        try:
            end = fleet.timed_pull(req.image, now=now, token=req.token)
        except TransientError as exc:
            report.faults += 1
            if isinstance(exc, FleetOverloadError):
                report.overloads += 1
            if n < policy.budget:
                delay = policy.backoff(n, f"pull|{req.index}")
                at = max(now + delay, exc.retry_at)
                report.retries += 1
                report.backoff_seconds += at - now
                engine.at(at, attempt, req, n + 1)
            else:
                report.dropped += 1
            return
        except RegistryError:
            report.failed += 1
            return
        report.completed += 1
        report.latencies.append(end - req.at)
        report.makespan = max(report.makespan, end)

    prev_clock = getattr(fleet, "clock", None)
    prev_injector = getattr(fleet, "fault_injector", None)
    fleet.clock = engine.clock
    if fault_plan is not None and prev_injector is None:
        fault_plan.bind_registry(fleet.name)
        fleet.fault_injector = fault_plan.injector(engine.clock)
    try:
        for req in requests:
            engine.at(req.at, attempt, req, 0)
        engine.run()
    finally:
        fleet.clock = prev_clock
        fleet.fault_injector = prev_injector
    if tracer is not None:
        m = tracer.metrics
        m.count_net("workload_offered", report.offered)
        m.count_net("workload_completed", report.completed)
        m.count_net("workload_dropped", report.dropped)
        m.count_net("workload_retries", report.retries)
    return report
