"""A deterministic profiler for the discrete-event engine.

Wall-clock profilers can't explain a simulation: the interesting question
is not "where did the CPU go" but "which *kind* of event dominates the
schedule".  :class:`EngineProfile` hangs off a
:class:`~repro.sim.SimEngine` and, for every event popped, counts it
under its callback's category (the callable's ``__qualname__`` — e.g.
``_BlobCast.send``) and attributes the **virtual time the event advanced
the clock by** to that category.  Both numbers are pure functions of the
schedule: profiling a run never changes it, and two runs of the same
schedule profile identically — so profiles can be asserted in tests and
diffed across optimization levels.

Wall-clock throughput (events/sec) is deliberately *not* measured here;
the fleet benchmark times :meth:`SimEngine.run` around the engine and
divides by ``events_processed`` so the profiler itself stays
deterministic.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["EngineProfile", "category_of"]


def category_of(fn: Callable) -> str:
    """The profiling category of a callback: its qualified name, seen
    through ``functools.partial`` wrappers; the type name as a last
    resort (e.g. a callable instance)."""
    qualname = getattr(fn, "__qualname__", None)
    if qualname is not None:
        return qualname
    inner = getattr(fn, "func", None)     # functools.partial and friends
    if inner is not None and inner is not fn:
        return category_of(inner)
    return type(fn).__name__


class EngineProfile:
    """Per-category event counts and virtual-time attribution."""

    __slots__ = ("events", "virtual_seconds", "total_events",
                 "total_virtual_seconds")

    def __init__(self):
        self.events: dict[str, int] = {}
        self.virtual_seconds: dict[str, float] = {}
        self.total_events = 0
        self.total_virtual_seconds = 0.0

    def record(self, fn: Callable, dt: float) -> None:
        """One event popped: *fn* fired after advancing the clock by
        *dt* virtual seconds (clamped at zero — an event scheduled at or
        before the current time advances nothing)."""
        category = category_of(fn)
        self.events[category] = self.events.get(category, 0) + 1
        self.total_events += 1
        if dt > 0.0:
            self.virtual_seconds[category] = \
                self.virtual_seconds.get(category, 0.0) + dt
            self.total_virtual_seconds += dt

    def top(self, n: int = 5) -> list[tuple[str, int]]:
        """The *n* busiest categories by event count (count-desc, then
        name — deterministic)."""
        return sorted(self.events.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:n]

    def as_dict(self) -> dict:
        """JSON-friendly, sorted, rounded — safe to golden-test."""
        return {
            "total_events": self.total_events,
            "total_virtual_seconds": round(self.total_virtual_seconds, 9),
            "events": dict(sorted(self.events.items())),
            "virtual_seconds": {k: round(v, 9)
                                for k, v in sorted(
                                    self.virtual_seconds.items())},
        }

    def __repr__(self) -> str:
        busiest = ", ".join(f"{c}×{n}" for c, n in self.top(3))
        return (f"EngineProfile(events={self.total_events}, "
                f"vt={self.total_virtual_seconds:.6f}s, top: {busiest})")
