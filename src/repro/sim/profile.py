"""A deterministic profiler for the discrete-event engine.

Wall-clock profilers can't explain a simulation: the interesting question
is not "where did the CPU go" but "which *kind* of event dominates the
schedule".  :class:`EngineProfile` hangs off a
:class:`~repro.sim.SimEngine` and, for every event popped, counts it
under its callback's category (the callable's ``__qualname__`` — e.g.
``_BlobCast.send``) and attributes the **virtual time the event advanced
the clock by** to that category.  Both numbers are pure functions of the
schedule: profiling a run never changes it, and two runs of the same
schedule profile identically — so profiles can be asserted in tests and
diffed across optimization levels.

Wall-clock throughput (events/sec) is deliberately *not* measured here;
the fleet benchmark times :meth:`SimEngine.run` around the engine and
divides by ``events_processed`` so the profiler itself stays
deterministic.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["EngineProfile", "category_of", "CounterRegistry", "COUNTERS",
           "render_counter_table"]


def category_of(fn: Callable) -> str:
    """The profiling category of a callback: its qualified name, seen
    through ``functools.partial`` wrappers; the type name as a last
    resort (e.g. a callable instance)."""
    qualname = getattr(fn, "__qualname__", None)
    if qualname is not None:
        return qualname
    inner = getattr(fn, "func", None)     # functools.partial and friends
    if inner is not None and inner is not fn:
        return category_of(inner)
    return type(fn).__name__


class EngineProfile:
    """Per-category event counts and virtual-time attribution."""

    __slots__ = ("events", "virtual_seconds", "total_events",
                 "total_virtual_seconds")

    def __init__(self):
        self.events: dict[str, int] = {}
        self.virtual_seconds: dict[str, float] = {}
        self.total_events = 0
        self.total_virtual_seconds = 0.0

    def record(self, fn: Callable, dt: float) -> None:
        """One event popped: *fn* fired after advancing the clock by
        *dt* virtual seconds (clamped at zero — an event scheduled at or
        before the current time advances nothing)."""
        category = category_of(fn)
        self.events[category] = self.events.get(category, 0) + 1
        self.total_events += 1
        if dt > 0.0:
            self.virtual_seconds[category] = \
                self.virtual_seconds.get(category, 0.0) + dt
            self.total_virtual_seconds += dt

    def top(self, n: int = 5) -> list[tuple[str, int]]:
        """The *n* busiest categories by event count (count-desc, then
        name — deterministic)."""
        return sorted(self.events.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:n]

    def as_dict(self) -> dict:
        """JSON-friendly, sorted, rounded — safe to golden-test."""
        return {
            "total_events": self.total_events,
            "total_virtual_seconds": round(self.total_virtual_seconds, 9),
            "events": dict(sorted(self.events.items())),
            "virtual_seconds": {k: round(v, 9)
                                for k, v in sorted(
                                    self.virtual_seconds.items())},
        }

    def __repr__(self) -> str:
        busiest = ", ".join(f"{c}×{n}" for c, n in self.top(3))
        return (f"EngineProfile(events={self.total_events}, "
                f"vt={self.total_virtual_seconds:.6f}s, top: {busiest})")


class CounterRegistry:
    """Deterministic named counters for hot paths outside the event loop.

    The snapshot/digest layer counts its work here (``snapshot.walk_full``,
    ``snapshot.walk_dirty``, ``digest.memo_hit``, ``digest.memo_miss``)
    under dotted ``category.event`` names.  Like :class:`EngineProfile`,
    counting is a pure function of the operations performed — two
    identical runs count identically — so tests and benchmarks can assert
    on deltas.  ``snapshot()``/``delta()`` give cheap before/after views.
    """

    __slots__ = ("_counts",)

    def __init__(self):
        self._counts: dict[str, int] = {}

    def count(self, name: str, n: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + n

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A sorted copy, safe to diff against a later one."""
        return dict(sorted(self._counts.items()))

    def delta(self, earlier: dict[str, int]) -> dict[str, int]:
        """Counts accumulated since *earlier* (a prior ``snapshot()``),
        zero-entries dropped."""
        out = {}
        for name, n in self._counts.items():
            d = n - earlier.get(name, 0)
            if d:
                out[name] = d
        return dict(sorted(out.items()))

    def reset(self) -> None:
        self._counts.clear()


#: Process-global registry (mirrors how ``opts.ENABLED`` is one switch):
#: the snapshot fast path counts here regardless of which kernel ran it;
#: per-kernel attribution lives in the obs TraceMetrics instead.
COUNTERS = CounterRegistry()


def render_counter_table(counts: dict[str, int],
                         title: str = "engine counters") -> str:
    """Render counters as the per-category profile table the CLI prints:
    dotted names grouped by category, with a derived ``digest`` hit rate
    so cold vs warm builds are explainable at a glance."""
    lines = [title, "  category            event                count"]
    for name in sorted(counts):
        category, _, event = name.partition(".")
        lines.append(f"  {category:<19} {event:<20} {counts[name]:>6}")
    hits = counts.get("digest.memo_hit", 0)
    misses = counts.get("digest.memo_miss", 0)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        lines.append(f"  digest memo hit rate: {rate:.1f}% "
                     f"({hits} hit / {misses} miss)")
    return "\n".join(lines)
