"""Deterministic fault injection and retry/backoff on simulated time.

Real deployments of the §5.3.3 pipeline lose links, crash nodes, and hit
flaky registries.  This module makes those failures *first-class and
reproducible*: a :class:`FaultPlan` is a seeded schedule of fault windows
on the :class:`~repro.sim.SimClock` — link-down windows, slow-link
degradation, node crashes, registry 5xx-style flake windows, and build
worker crashes — and a :class:`RetryPolicy` is a capped exponential
backoff with *deterministic* jitter (every random draw comes from
``random.Random(f"{seed}|{name}")``-style per-name streams, so binding
order never changes the schedule).

Nothing here reads the wall clock or global RNG state: the same seed
always produces byte-identical fault schedules, retries, and backoff
delays, which is what lets the fault ablations assert digest-identical
convergence and replayable reports.

:func:`faulty_transmit` wraps :func:`~repro.sim.transmit` with the fault
checks and — critically — rolls back both links' reservation horizons and
:class:`~repro.sim.LinkStats` when a transfer aborts, so a retried
transfer never double-counts bytes or holds a phantom reservation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from ..errors import ReproError, TransientError, TransientRegistryError
from .topology import NetLink
from .transfer import TransferTiming, transmit

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "RegistryFaultInjector",
    "RetryPolicy",
    "TransientTransferError",
    "faulty_transmit",
    "link_restore",
    "link_snapshot",
    "retry_call",
]


class FaultPlanError(ReproError):
    """A fault-plan spec could not be parsed or is inconsistent."""


class TransientTransferError(TransientError):
    """A chunked transfer aborted mid-flight (link down / timed out)."""


# --------------------------------------------------------------------------
# RetryPolicy


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``budget`` is the number of *retries* (so an operation is attempted at
    most ``budget + 1`` times).  ``backoff(attempt, key)`` is a pure
    function of ``(seed, key, attempt)`` — two runs with the same seed
    back off identically, and two different call sites (different keys)
    decorrelate without sharing RNG state.
    """

    budget: int = 8
    base_delay: float = 0.05         # seconds before the first retry
    factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1              # +/- fraction of the delay
    attempt_timeout: Optional[float] = None   # per-attempt wall limit
    seed: int = 0

    def backoff(self, attempt: int, key: str = "") -> float:
        """Delay before retry number *attempt* (0-based) of *key*."""
        delay = min(self.max_delay, self.base_delay * self.factor ** attempt)
        if self.jitter > 0:
            u = random.Random(f"{self.seed}|{key}|{attempt}").random()
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return delay


# --------------------------------------------------------------------------
# FaultPlan


def _intersects(ws: float, we: float, start: float, end: float) -> bool:
    """Does window [ws, we) overlap the activity interval [start, end]?"""
    if start == end:
        return ws <= start < we
    return ws < end and we > start


@dataclass
class FaultPlan:
    """A seeded, reproducible schedule of faults on the SimClock.

    Faults are either *explicit* (``add_link_down`` etc.) or *generated*:
    the ``link_loss`` / ``slow_rate`` / ``crash_rate`` / ``flake_rate``
    probabilities are materialized per endpoint name by :meth:`bind`,
    drawing every value from ``random.Random(f"{seed}|{kind}|{name}")`` so
    the schedule is independent of binding order and call count.
    """

    seed: int = 0
    horizon: float = 0.5             # seconds generated faults spread over
    link_loss: float = 0.0           # P(endpoint gets one down window)
    slow_rate: float = 0.0           # P(endpoint gets one slow window)
    crash_rate: float = 0.0          # P(node crashes during the horizon)
    flake_rate: float = 0.0          # P(registry gets one flake window)

    _down: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    _slow: dict[str, list[tuple[float, float, float]]] = \
        field(default_factory=dict)
    _crash: dict[str, float] = field(default_factory=dict)
    _flakes: list[tuple[float, float]] = field(default_factory=list)
    _worker_crash: dict[int, float] = field(default_factory=dict)
    _bound: set[str] = field(default_factory=set)
    _bound_registries: set[str] = field(default_factory=set)

    # -- explicit faults ---------------------------------------------------

    def add_link_down(self, name: str, start: float, end: float) -> "FaultPlan":
        if end <= start:
            raise FaultPlanError(f"empty down window {start}:{end}")
        self._down.setdefault(name, []).append((float(start), float(end)))
        self._down[name].sort()
        return self

    def add_slow_link(self, name: str, start: float, end: float,
                      factor: float) -> "FaultPlan":
        if end <= start:
            raise FaultPlanError(f"empty slow window {start}:{end}")
        if not 0 < factor <= 1:
            raise FaultPlanError(f"slow factor must be in (0, 1]: {factor}")
        self._slow.setdefault(name, []).append(
            (float(start), float(end), float(factor)))
        self._slow[name].sort()
        return self

    def add_node_crash(self, name: str, at: float) -> "FaultPlan":
        self._crash[name] = min(float(at), self._crash.get(name, float(at)))
        return self

    def add_registry_flake(self, start: float, end: float) -> "FaultPlan":
        if end <= start:
            raise FaultPlanError(f"empty flake window {start}:{end}")
        self._flakes.append((float(start), float(end)))
        self._flakes.sort()
        return self

    def add_worker_crash(self, worker: int, at: float) -> "FaultPlan":
        self._worker_crash[int(worker)] = float(at)
        return self

    # -- generated faults --------------------------------------------------

    def bind(self, names: Iterable[str]) -> "FaultPlan":
        """Materialize generated faults for *names* (node endpoints).

        Idempotent per name; per-name RNG streams make the result
        independent of binding order.
        """
        for name in names:
            if name in self._bound:
                continue
            self._bound.add(name)
            if self.link_loss > 0:
                r = random.Random(f"{self.seed}|down|{name}")
                if r.random() < self.link_loss:
                    start = r.uniform(0.0, 0.75 * self.horizon)
                    dur = r.uniform(0.05, 0.25) * self.horizon
                    self.add_link_down(name, start, start + dur)
            if self.slow_rate > 0:
                r = random.Random(f"{self.seed}|slow|{name}")
                if r.random() < self.slow_rate:
                    start = r.uniform(0.0, 0.75 * self.horizon)
                    dur = r.uniform(0.1, 0.5) * self.horizon
                    self.add_slow_link(name, start, start + dur,
                                       r.uniform(0.1, 0.5))
            if self.crash_rate > 0:
                r = random.Random(f"{self.seed}|crash|{name}")
                if r.random() < self.crash_rate:
                    self.add_node_crash(name, r.uniform(0.0, self.horizon))
        return self

    def bind_registry(self, name: str) -> "FaultPlan":
        """Materialize the registry's generated flake window (crash and
        down faults are never generated for the registry — the invariant
        assumes it stays reachable eventually)."""
        if name in self._bound_registries:
            return self
        self._bound_registries.add(name)
        if self.flake_rate > 0:
            r = random.Random(f"{self.seed}|flake|{name}")
            if r.random() < self.flake_rate:
                start = r.uniform(0.0, 0.5 * self.horizon)
                dur = r.uniform(0.05, 0.3) * self.horizon
                self.add_registry_flake(start, start + dur)
        return self

    # -- queries -----------------------------------------------------------

    def down_window(self, name: str, start: float,
                    end: float) -> Optional[tuple[float, float]]:
        """First down window of *name* overlapping [start, end], if any."""
        for ws, we in self._down.get(name, ()):
            if _intersects(ws, we, start, end):
                return (ws, we)
        return None

    def bandwidth_factor(self, name: str, t: float) -> float:
        """Degradation multiplier for *name*'s link at time *t*."""
        factor = 1.0
        for ws, we, f in self._slow.get(name, ()):
            if ws <= t < we:
                factor = min(factor, f)
        return factor

    def crash_time(self, name: str) -> Optional[float]:
        return self._crash.get(name)

    def crashed_by(self, name: str, t: float) -> bool:
        ct = self._crash.get(name)
        return ct is not None and ct <= t

    def flake_window(self, t: float) -> Optional[tuple[float, float]]:
        """Registry flake window containing time *t*, if any."""
        for ws, we in self._flakes:
            if ws <= t < we:
                return (ws, we)
        return None

    def worker_crash_time(self, worker: int) -> Optional[float]:
        return self._worker_crash.get(int(worker))

    @property
    def empty(self) -> bool:
        return not (self._down or self._slow or self._crash
                    or self._flakes or self._worker_crash
                    or self.link_loss or self.slow_rate
                    or self.crash_rate or self.flake_rate)

    def injector(self, clock) -> "RegistryFaultInjector":
        """A registry-side injector reading this plan on *clock*."""
        return RegistryFaultInjector(self, clock)

    # -- (de)serialization -------------------------------------------------

    def as_dict(self) -> dict:
        """Canonical JSON-friendly form — byte-identical for equal seeds
        bound to equal name sets (the replayability contract)."""
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "rates": {"link_loss": self.link_loss,
                      "slow_rate": self.slow_rate,
                      "crash_rate": self.crash_rate,
                      "flake_rate": self.flake_rate},
            "down": {n: [[round(s, 9), round(e, 9)] for s, e in ws]
                     for n, ws in sorted(self._down.items())},
            "slow": {n: [[round(s, 9), round(e, 9), round(f, 9)]
                         for s, e, f in ws]
                     for n, ws in sorted(self._slow.items())},
            "crash": {n: round(t, 9)
                      for n, t in sorted(self._crash.items())},
            "flakes": [[round(s, 9), round(e, 9)] for s, e in self._flakes],
            "worker_crash": {str(w): round(t, 9) for w, t
                             in sorted(self._worker_crash.items())},
        }

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """Build a plan from a CLI spec: comma-separated tokens.

        ``seed=N`` ``horizon=S`` ``link-loss=P`` ``slow-rate=P``
        ``crash-rate=P`` ``flake-rate=P`` ``down=NAME@S:E``
        ``slow=NAME@S:E*F`` ``crash=NAME@T`` ``flake=S:E``
        ``worker-crash=IDX@T``

        e.g. ``seed=7,link-loss=0.1,flake=0.0:0.05``.
        """
        plan = cls()
        if not spec:
            return plan
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise FaultPlanError(f"bad fault token (need key=value): "
                                     f"{token!r}")
            key, _, value = token.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "seed":
                    plan.seed = int(value)
                elif key == "horizon":
                    plan.horizon = float(value)
                elif key == "link-loss":
                    plan.link_loss = float(value)
                elif key == "slow-rate":
                    plan.slow_rate = float(value)
                elif key == "crash-rate":
                    plan.crash_rate = float(value)
                elif key == "flake-rate":
                    plan.flake_rate = float(value)
                elif key == "down":
                    name, _, window = value.partition("@")
                    s, _, e = window.partition(":")
                    plan.add_link_down(name, float(s), float(e))
                elif key == "slow":
                    name, _, rest = value.partition("@")
                    window, _, f = rest.partition("*")
                    s, _, e = window.partition(":")
                    plan.add_slow_link(name, float(s), float(e), float(f))
                elif key == "crash":
                    name, _, t = value.partition("@")
                    plan.add_node_crash(name, float(t))
                elif key == "flake":
                    s, _, e = value.partition(":")
                    plan.add_registry_flake(float(s), float(e))
                elif key == "worker-crash":
                    idx, _, t = value.partition("@")
                    plan.add_worker_crash(int(idx), float(t))
                else:
                    raise FaultPlanError(f"unknown fault token {key!r}")
            except ValueError as exc:
                raise FaultPlanError(f"bad fault token {token!r}: {exc}")
        return plan


class RegistryFaultInjector:
    """Makes a Registry raise ``TransientRegistryError`` inside a flake
    window.  Installed as ``registry.fault_injector``; the registry calls
    :meth:`check` at the top of ``fetch_blob``/``push``."""

    def __init__(self, plan: FaultPlan, clock):
        self.plan = plan
        self.clock = clock
        self.faults_raised = 0

    def check(self, op: str) -> None:
        window = self.plan.flake_window(self.clock.now)
        if window is not None:
            self.faults_raised += 1
            raise TransientRegistryError(
                f"registry {op} failed transiently "
                f"(flake window {window[0]:.3f}:{window[1]:.3f} "
                f"at t={self.clock.now:.3f})", retry_at=window[1])


# --------------------------------------------------------------------------
# Fault-aware transfers


def link_snapshot(link: NetLink) -> tuple:
    """Capture a link's reservation horizons and stats (for rollback)."""
    s = link.stats
    return (link.tx_free_at, link.rx_free_at, s.bytes_tx, s.bytes_rx,
            s.chunks_tx, s.chunks_rx, s.busy_tx_seconds, s.busy_rx_seconds,
            s.byte_seconds)


def link_restore(link: NetLink, snap: tuple) -> None:
    """Undo a transfer: restore a :func:`link_snapshot` in place
    (other code holds references to ``link.stats``)."""
    s = link.stats
    (link.tx_free_at, link.rx_free_at, s.bytes_tx, s.bytes_rx, s.chunks_tx,
     s.chunks_rx, s.busy_tx_seconds, s.busy_rx_seconds, s.byte_seconds) = snap


def faulty_transmit(plan: Optional[FaultPlan], src: NetLink, dst: NetLink,
                    size: int, *, chunk_size: int,
                    available: Union[float, Sequence[float]],
                    now: float = 0.0,
                    attempt_timeout: Optional[float] = None,
                    record_arrivals: bool = True) -> TransferTiming:
    """:func:`transmit`, but aborting (with full rollback) under faults.

    Checks, in order: slow-link degradation at *now* scales the effective
    bandwidth for the whole transfer; a down window on either endpoint
    overlapping the transfer's wire interval aborts it; an attempt that
    would finish later than ``now + attempt_timeout`` aborts.  An aborted
    transfer restores both links' reservation horizons *and* LinkStats to
    their pre-call values — a retry must not double-count bytes — and
    raises :class:`TransientTransferError` whose ``retry_at`` is the end
    of the offending window.
    """
    if plan is None or plan.empty:
        return transmit(src, dst, size, chunk_size=chunk_size,
                        available=available,
                        record_arrivals=record_arrivals)
    src_snap = link_snapshot(src)
    dst_snap = link_snapshot(dst)
    factor = min(plan.bandwidth_factor(src.name, now),
                 plan.bandwidth_factor(dst.name, now))
    scaled = factor < 1.0
    src_bw, dst_bw = src.bandwidth, dst.bandwidth
    if scaled:
        src.bandwidth = src_bw * factor
        dst.bandwidth = dst_bw * factor
    try:
        timing = transmit(src, dst, size, chunk_size=chunk_size,
                          available=available,
                          record_arrivals=record_arrivals)
    finally:
        if scaled:
            src.bandwidth, dst.bandwidth = src_bw, dst_bw

    window = (plan.down_window(src.name, timing.start, timing.end)
              or plan.down_window(dst.name, timing.start, timing.end))
    if window is not None:
        link_restore(src, src_snap)
        link_restore(dst, dst_snap)
        raise TransientTransferError(
            f"link down during transfer {src.name} -> {dst.name} "
            f"(window {window[0]:.3f}:{window[1]:.3f})", retry_at=window[1])
    if attempt_timeout is not None and timing.end - now > attempt_timeout:
        link_restore(src, src_snap)
        link_restore(dst, dst_snap)
        raise TransientTransferError(
            f"transfer {src.name} -> {dst.name} exceeded the "
            f"{attempt_timeout}s attempt timeout", retry_at=now)
    return timing


# --------------------------------------------------------------------------
# Synchronous retry driver


def retry_call(fn: Callable[[int], object], *, policy: RetryPolicy,
               clock=None, key: str = "",
               on_retry: Optional[Callable[[int, float, TransientError],
                                           None]] = None):
    """Run ``fn(attempt)`` retrying transient failures per *policy*.

    Between attempts the (virtual) *clock* advances by the backoff delay,
    and past the failure's ``retry_at`` if that is later — simulated time
    pays for waiting the way wall time would.  Used on the synchronous
    legs of the pipeline (registry push, cache export); the event-driven
    broadcast schedules its retries on the engine instead.
    """
    attempt = 0
    while True:
        try:
            return fn(attempt)
        except TransientError as exc:
            if attempt >= policy.budget:
                raise
            delay = policy.backoff(attempt, key)
            if clock is not None:
                clock.advance_to(max(clock.now + delay, exc.retry_at))
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            attempt += 1
