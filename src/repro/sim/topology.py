"""The network cost model: per-endpoint links with bandwidth and latency.

Every endpoint that moves blobs — each :class:`~repro.cluster.Machine` and
each :class:`~repro.containers.registry.Registry` — gets one
:class:`NetLink`: its uplink into the cluster fabric, full-duplex, with a
transmit side and a receive side that are each serialized FIFO (a NIC can
only put one chunk on the wire at a time).  This is deliberately the
*simplest* model that exhibits the §4.2 scaling problem: a registry with
one egress link serving N nodes is an O(N) pull storm no matter how fat
the fabric is, while peer-to-peer re-serving spreads the transmit load
over N links and turns deploy makespan into O(log N).

There is no daemon anywhere in this model — links belong to endpoints, and
transfers are initiated by the job processes themselves (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ReproError

__all__ = ["DEFAULT_BANDWIDTH", "DEFAULT_CHUNK_SIZE", "DEFAULT_LATENCY",
           "LinkStats", "NetLink", "Topology", "TopologyError"]

#: Defaults sized so the simulated KB-scale images take tens of
#: milliseconds per transfer — far above the per-hop latency, so the
#: asymptotic story (O(N) vs O(log N)) dominates the constants.
DEFAULT_BANDWIDTH = 256 * 1024      # bytes/second, each direction
DEFAULT_LATENCY = 1e-4              # seconds, one-way per endpoint
DEFAULT_CHUNK_SIZE = 1024           # bytes per pipelined chunk


class TopologyError(ReproError):
    """Unknown endpoint or bad link parameters."""


@dataclass(slots=True)
class LinkStats:
    """Traffic accounting for one link (one endpoint's uplink).

    Slotted: these objects are mutated on the transmit hot path (every
    transfer does eight attribute reads/writes here), and ``__slots__``
    drops the per-instance dict both for speed and for the ~10k-link
    fleets the engine benchmark builds.
    """

    bytes_tx: int = 0
    bytes_rx: int = 0
    chunks_tx: int = 0
    chunks_rx: int = 0
    busy_tx_seconds: float = 0.0     # wire time the transmit side was busy
    busy_rx_seconds: float = 0.0
    #: Σ chunk_bytes × (arrival − available): bytes weighted by their total
    #: time in flight *including queueing* — the congestion integral the
    #: ablation reports as bytes·seconds.
    byte_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "bytes_tx": self.bytes_tx,
            "bytes_rx": self.bytes_rx,
            "chunks_tx": self.chunks_tx,
            "chunks_rx": self.chunks_rx,
            "busy_tx_seconds": round(self.busy_tx_seconds, 9),
            "busy_rx_seconds": round(self.busy_rx_seconds, 9),
            "byte_seconds": round(self.byte_seconds, 9),
        }


@dataclass(slots=True)
class NetLink:
    """One endpoint's full-duplex uplink into the fabric.

    ``tx_free_at`` / ``rx_free_at`` are the FIFO reservation horizons: the
    earliest virtual time the next chunk may start in that direction.
    Slotted for the same hot-path reason as :class:`LinkStats`.
    """

    name: str
    bandwidth: float = DEFAULT_BANDWIDTH
    latency: float = DEFAULT_LATENCY
    tx_free_at: float = 0.0
    rx_free_at: float = 0.0
    stats: LinkStats = field(default_factory=LinkStats)

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise TopologyError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise TopologyError(f"{self.name}: latency cannot be negative")

    @property
    def utilization_window(self) -> float:
        """The horizon this link's reservations currently extend to."""
        return max(self.tx_free_at, self.rx_free_at)

    def reset_time(self) -> None:
        """Forget reservations (stats survive) — new simulation epoch."""
        self.tx_free_at = 0.0
        self.rx_free_at = 0.0


class Topology:
    """The set of endpoints and their links for one deployment.

    Endpoints are named (a machine's hostname, a registry's name).
    :meth:`attach` additionally hangs the link off the object itself as
    ``obj.netlink``, so cost-model-aware code can find it either way.
    """

    def __init__(self, *, bandwidth: float = DEFAULT_BANDWIDTH,
                 latency: float = DEFAULT_LATENCY,
                 chunk_size: int = DEFAULT_CHUNK_SIZE):
        if chunk_size <= 0:
            raise TopologyError(f"chunk_size must be positive: {chunk_size}")
        self.default_bandwidth = bandwidth
        self.default_latency = latency
        self.chunk_size = chunk_size
        self._links: dict[str, NetLink] = {}

    def add(self, name: str, *, bandwidth: Optional[float] = None,
            latency: Optional[float] = None) -> NetLink:
        """Register an endpoint (idempotent) and return its link."""
        link = self._links.get(name)
        if link is None:
            link = NetLink(
                name,
                bandwidth=(bandwidth if bandwidth is not None
                           else self.default_bandwidth),
                latency=(latency if latency is not None
                         else self.default_latency))
            self._links[name] = link
        return link

    def attach(self, obj, name: Optional[str] = None, *,
               bandwidth: Optional[float] = None,
               latency: Optional[float] = None) -> NetLink:
        """Register *obj* (a Machine, a Registry, ...) as an endpoint and
        set ``obj.netlink``.  The name defaults to ``obj.hostname`` or
        ``obj.name``."""
        if name is None:
            name = getattr(obj, "hostname", None) or getattr(obj, "name",
                                                             None)
        if not name:
            raise TopologyError(f"cannot infer an endpoint name for {obj!r}")
        link = self.add(name, bandwidth=bandwidth, latency=latency)
        obj.netlink = link
        return link

    def link(self, name: str) -> NetLink:
        try:
            return self._links[name]
        except KeyError:
            raise TopologyError(f"unknown endpoint {name!r} "
                                f"(known: {sorted(self._links)})")

    def has(self, name: str) -> bool:
        return name in self._links

    @property
    def links(self) -> dict[str, NetLink]:
        return dict(self._links)

    def utilization(self) -> dict[str, dict]:
        """Per-link traffic stats, JSON-friendly and sorted."""
        return {name: link.stats.as_dict()
                for name, link in sorted(self._links.items())}

    def reset_time(self) -> None:
        for link in self._links.values():
            link.reset_time()
