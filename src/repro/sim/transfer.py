"""Timed, chunked, pipelined point-to-point transfers.

A transfer moves ``size`` bytes from one endpoint's link to another's in
``chunk_size`` pieces.  Each chunk independently reserves the sender's
transmit side and the receiver's receive side (FIFO — ``free_at``
horizons), takes ``chunk/min(bandwidths)`` of wire time, and lands after
both endpoints' one-way latencies.  Because chunk *c*'s start time is
``max(available[c], tx_free, rx_free)``, a relay that is still receiving a
blob can already re-serve the chunks it has — that is the pipelining the
tree broadcast leans on, and it falls out of the cost model rather than
being special-cased.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from .topology import NetLink

__all__ = ["TransferTiming", "chunk_sizes", "transmit"]


def chunk_sizes(size: int, chunk_size: int) -> list[int]:
    """Split *size* bytes into full chunks plus a remainder."""
    if size <= 0:
        return []
    n_full, rem = divmod(size, chunk_size)
    return [chunk_size] * n_full + ([rem] if rem else [])


@dataclass
class TransferTiming:
    """When one blob's chunks arrived at the receiver."""

    size: int
    start: float                     # first chunk's wire start
    end: float                       # last chunk's arrival
    chunk_arrivals: list[float] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start


def transmit(src: NetLink, dst: NetLink, size: int, *, chunk_size: int,
             available: Union[float, Sequence[float]]) -> TransferTiming:
    """Move *size* bytes ``src -> dst``; returns the chunk arrival times.

    *available* is either a single time (all bytes ready at the source —
    a registry or a node that already holds the blob) or a per-chunk
    sequence (the source is itself still receiving — pipelined relay).
    """
    chunks = chunk_sizes(size, chunk_size)
    if not chunks:
        # A zero-size transfer still cannot complete before its data
        # exists: with a per-chunk sequence the source finishes receiving
        # at max(available), and that is when this hop is "done".
        if isinstance(available, (int, float)):
            t = float(available)
        else:
            t = max((float(a) for a in available), default=0.0)
        return TransferTiming(size=0, start=t, end=t)
    if isinstance(available, (int, float)):
        avail = [float(available)] * len(chunks)
    else:
        if len(available) != len(chunks):
            raise ValueError(
                f"have {len(available)} chunk availability times for "
                f"{len(chunks)} chunks")
        avail = [float(a) for a in available]

    rate = min(src.bandwidth, dst.bandwidth)
    hop_latency = src.latency + dst.latency
    arrivals: list[float] = []
    first_start = None
    for nbytes, ready in zip(chunks, avail):
        start = max(ready, src.tx_free_at, dst.rx_free_at)
        wire = nbytes / rate
        end = start + wire
        src.tx_free_at = end
        dst.rx_free_at = end
        arrival = end + hop_latency
        arrivals.append(arrival)
        if first_start is None:
            first_start = start
        src.stats.bytes_tx += nbytes
        src.stats.chunks_tx += 1
        src.stats.busy_tx_seconds += wire
        dst.stats.bytes_rx += nbytes
        dst.stats.chunks_rx += 1
        dst.stats.busy_rx_seconds += wire
        flight = arrival - ready
        src.stats.byte_seconds += nbytes * flight
        dst.stats.byte_seconds += nbytes * flight
    return TransferTiming(size=size, start=first_start or 0.0,
                          end=arrivals[-1], chunk_arrivals=arrivals)
