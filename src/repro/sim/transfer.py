"""Timed, chunked, pipelined point-to-point transfers.

A transfer moves ``size`` bytes from one endpoint's link to another's in
``chunk_size`` pieces.  Each chunk independently reserves the sender's
transmit side and the receiver's receive side (FIFO — ``free_at``
horizons), takes ``chunk/min(bandwidths)`` of wire time, and lands after
both endpoints' one-way latencies.  Because chunk *c*'s start time is
``max(available[c], tx_free, rx_free)``, a relay that is still receiving a
blob can already re-serve the chunks it has — that is the pipelining the
tree broadcast leans on, and it falls out of the cost model rather than
being special-cased.

Two implementations share one arithmetic contract:

* the **reference chunk loop** (:func:`transmit_reference`) walks every
  chunk — required when ``available`` is a per-chunk sequence, i.e. the
  source is itself mid-receive;
* the **closed-form bulk path** handles scalar ``available`` (a registry,
  or a relay that already holds the whole blob).  Back-to-back equal-rate
  chunks make every per-chunk quantity an affine function of the *exact
  integer* byte count, so the start/end/arrival schedule and the
  :class:`~repro.sim.LinkStats` increments are computed analytically —
  O(1) stat mutations, no per-chunk heap traffic — with **bit-identical
  floats** to the loop (the property tests in
  ``tests/sim/test_transfer_property.py`` pin this down).

Bit-identity works because both paths evaluate the *same float
expressions*: within one busy period starting at ``base`` after ``b0``
bytes, chunk *c* ends at ``base + (B_c - b0)/rate`` where ``B_c`` is an
exact int; the byte·seconds congestion integral is decomposed into
``Σ nbytes·cum / rate + bytes·(base + hop_latency) - bytes·ready`` whose
first numerator is an exact integer with a closed form
(``chunk² · n(n+1)/2 + rem·size`` for a scalar-available transfer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from . import opts
from .topology import NetLink

__all__ = ["TransferTiming", "chunk_sizes", "transmit", "transmit_reference"]


def chunk_sizes(size: int, chunk_size: int) -> list[int]:
    """Split *size* bytes into full chunks plus a remainder."""
    if size <= 0:
        return []
    n_full, rem = divmod(size, chunk_size)
    return [chunk_size] * n_full + ([rem] if rem else [])


@dataclass(slots=True)
class TransferTiming:
    """When one blob's chunks arrived at the receiver.

    ``chunk_arrivals`` is ``None`` for a coalesced transfer
    (``record_arrivals=False``): nobody observes the intermediate chunks,
    so the schedule is never materialized — only its first and last
    points (``first_arrival`` / ``end``) are kept.
    """

    size: int
    start: float                     # first chunk's wire start
    end: float                       # last chunk's arrival
    first_arrival: float = 0.0       # first chunk's arrival
    chunk_arrivals: Optional[list[float]] = field(default=None)

    @property
    def duration(self) -> float:
        return self.end - self.start


def _zero_size(src: NetLink, dst: NetLink,
               available: Union[float, Sequence[float]]) -> TransferTiming:
    # A zero-size transfer still cannot complete before its data exists
    # (with a per-chunk sequence the source finishes receiving at
    # max(available)) *nor* before both FIFO horizons are free — an empty
    # blob queues behind in-flight traffic like any other send.
    if isinstance(available, (int, float)):
        ready = float(available)
    else:
        ready = max((float(a) for a in available), default=0.0)
    t = max(ready, src.tx_free_at, dst.rx_free_at)
    return TransferTiming(size=0, start=t, end=t, first_arrival=t,
                          chunk_arrivals=[])


def transmit(src: NetLink, dst: NetLink, size: int, *, chunk_size: int,
             available: Union[float, Sequence[float]],
             record_arrivals: bool = True) -> TransferTiming:
    """Move *size* bytes ``src -> dst``; returns the chunk arrival times.

    *available* is either a single time (all bytes ready at the source —
    a registry or a node that already holds the blob) or a per-chunk
    sequence (the source is itself still receiving — pipelined relay).

    With ``record_arrivals=False`` the per-chunk arrival list is not
    materialized (``chunk_arrivals is None``); use it for transfers whose
    intermediate chunks nobody observes.  All timings and LinkStats are
    identical either way.
    """
    if size <= 0:
        return _zero_size(src, dst, available)
    if isinstance(available, (int, float)):
        if opts.ENABLED:
            return _transmit_bulk(src, dst, size, chunk_size,
                                  float(available), record_arrivals)
        n_full, rem = divmod(size, chunk_size)
        avail = [float(available)] * (n_full + (1 if rem else 0))
    else:
        avail = [float(a) for a in available]
    return _transmit_chunked(src, dst, size, chunk_size, avail,
                             record_arrivals)


def transmit_reference(src: NetLink, dst: NetLink, size: int, *,
                       chunk_size: int,
                       available: Union[float, Sequence[float]],
                       record_arrivals: bool = True) -> TransferTiming:
    """:func:`transmit` forced down the per-chunk reference loop, even
    for scalar availability.  The bulk path must be bit-identical to
    this — it is the oracle the property tests compare against."""
    if size <= 0:
        return _zero_size(src, dst, available)
    if isinstance(available, (int, float)):
        n_full, rem = divmod(size, chunk_size)
        avail = [float(available)] * (n_full + (1 if rem else 0))
    else:
        avail = [float(a) for a in available]
    return _transmit_chunked(src, dst, size, chunk_size, avail,
                             record_arrivals)


def _transmit_chunked(src: NetLink, dst: NetLink, size: int,
                      chunk_size: int, avail: list[float],
                      record_arrivals: bool) -> TransferTiming:
    """The reference per-chunk loop (and the only path able to model a
    pipelined relay, where each chunk has its own availability time)."""
    chunks = chunk_sizes(size, chunk_size)
    if len(avail) != len(chunks):
        raise ValueError(
            f"have {len(avail)} chunk availability times for "
            f"{len(chunks)} chunks")

    rate = min(src.bandwidth, dst.bandwidth)
    hop_latency = src.latency + dst.latency
    tx_free = src.tx_free_at
    rx_free = dst.rx_free_at
    arrivals: Optional[list[float]] = [] if record_arrivals else None

    # Busy periods: while chunks go out back-to-back, chunk ends are
    # ``base_start + exact_bytes/rate`` — one rounding per chunk instead
    # of an accumulated sum, and the same expression the bulk path uses.
    first_start = first_arrival = 0.0
    base_start = 0.0
    end = None
    sent = 0                          # cumulative bytes (exact)
    base_sent = 0                     # bytes sent before this busy period
    # byte·seconds decomposition: Σ nbytes·(arrival − ready) ==
    #   Σ_periods [Σ nbytes·cum / rate + period_bytes·(base + latency)]
    #   − Σ_ready-groups group_bytes·ready
    bs_pos = 0.0
    ibs = 0                           # Σ nbytes·cum this period (exact)
    period_bytes = 0
    bs_neg = 0.0
    group_ready: Optional[float] = None
    group_bytes = 0

    for nbytes, ready in zip(chunks, avail):
        start = max(ready, tx_free, rx_free)
        if end is None or start > end:
            if period_bytes:
                bs_pos += (ibs / rate) + (period_bytes
                                          * (base_start + hop_latency))
            base_start = start
            base_sent = sent
            ibs = 0
            period_bytes = 0
        sent += nbytes
        cum = sent - base_sent
        end = base_start + cum / rate
        tx_free = rx_free = end
        ibs += nbytes * cum
        period_bytes += nbytes
        if ready != group_ready:
            if group_bytes:
                bs_neg += group_bytes * group_ready
            group_ready = ready
            group_bytes = 0
        group_bytes += nbytes
        arrival = end + hop_latency
        if arrivals is not None:
            arrivals.append(arrival)
        if sent == nbytes:            # first chunk
            first_start = start
            first_arrival = arrival
    bs_pos += (ibs / rate) + (period_bytes * (base_start + hop_latency))
    bs_neg += group_bytes * group_ready
    last_arrival = end + hop_latency

    src.tx_free_at = end
    dst.rx_free_at = end
    _flush_stats(src, dst, size, len(chunks), size / rate, bs_pos - bs_neg)
    return TransferTiming(size=size, start=first_start, end=last_arrival,
                          first_arrival=first_arrival,
                          chunk_arrivals=arrivals)


def _transmit_bulk(src: NetLink, dst: NetLink, size: int, chunk_size: int,
                   ready: float, record_arrivals: bool) -> TransferTiming:
    """Closed-form transfer for scalar availability.

    Every byte is ready at ``ready``, so chunk starts never wait on data
    after the first: the whole transfer is one busy period and chunk *k*
    ends at ``start + (k·chunk_size)/rate`` — the identical float the
    reference loop computes.  LinkStats are aggregated with O(1)
    mutations; the byte·seconds numerator ``Σ nbytes·cum`` collapses to
    ``chunk² · n(n+1)/2 + rem·size`` (exact integers).
    """
    rate = min(src.bandwidth, dst.bandwidth)
    hop_latency = src.latency + dst.latency
    start = max(ready, src.tx_free_at, dst.rx_free_at)
    n_full, rem = divmod(size, chunk_size)
    n_chunks = n_full + (1 if rem else 0)

    end = start + size / rate
    first_bytes = chunk_size if n_full else rem
    first_arrival = (start + first_bytes / rate) + hop_latency
    last_arrival = end + hop_latency
    arrivals: Optional[list[float]] = None
    if record_arrivals:
        arrivals = [(start + (k * chunk_size) / rate) + hop_latency
                    for k in range(1, n_full + 1)]
        if rem:
            arrivals.append(last_arrival)

    ibs = chunk_size * chunk_size * (n_full * (n_full + 1) // 2)
    if rem:
        ibs += rem * size
    byte_seconds = ((ibs / rate) + (size * (start + hop_latency))
                    - (size * ready))

    src.tx_free_at = end
    dst.rx_free_at = end
    _flush_stats(src, dst, size, n_chunks, size / rate, byte_seconds)
    return TransferTiming(size=size, start=start, end=last_arrival,
                          first_arrival=first_arrival,
                          chunk_arrivals=arrivals)


def _flush_stats(src: NetLink, dst: NetLink, size: int, n_chunks: int,
                 wire: float, byte_seconds: float) -> None:
    """One aggregated LinkStats update per transfer, identical on both
    implementation paths (same expressions, same order)."""
    ss = src.stats
    ss.bytes_tx += size
    ss.chunks_tx += n_chunks
    ss.busy_tx_seconds += wire
    ss.byte_seconds += byte_seconds
    ds = dst.stats
    ds.bytes_rx += size
    ds.chunks_rx += n_chunks
    ds.busy_rx_seconds += wire
    ds.byte_seconds += byte_seconds
