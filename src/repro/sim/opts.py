"""Engine optimization switches.

The fleet-scale engine has three optimizations layered on the reference
discrete-event semantics: the closed-form bulk transmit path
(:mod:`~repro.sim.transfer`), the same-timestamp bucket event queue
(:mod:`~repro.sim.events`), and broadcast event coalescing
(:mod:`~repro.cluster.broadcast`).  All three are *pure* speedups — every
virtual timestamp, LinkStats float, and deploy digest is bit-identical
with them on or off — and this module is the single switch the parity
tests and the ``engine-throughput-smoke`` ablation flip to prove it.

Set ``REPRO_SIM_REFERENCE=1`` in the environment to start with the
reference (pre-optimization) engine, or use :func:`reference_engine` to
scope it to a block.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["optimizations_enabled", "reference_engine", "set_optimizations"]

#: Read at call time by the hot paths (module attribute, not a from-import)
#: so flipping the switch affects engines that already exist.
ENABLED = os.environ.get("REPRO_SIM_REFERENCE", "") not in ("1", "true", "yes")


def optimizations_enabled() -> bool:
    """Are the engine fast paths currently active?"""
    return ENABLED


def set_optimizations(enabled: bool) -> bool:
    """Turn the fast paths on or off; returns the previous setting."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(enabled)
    return previous


@contextmanager
def reference_engine():
    """Run a block on the reference (pre-optimization) engine: per-chunk
    transmit loop, plain binary-heap event queue, no event coalescing."""
    previous = set_optimizations(False)
    try:
        yield
    finally:
        set_optimizations(previous)
