"""Simulated time.

The kernels already keep a deterministic per-machine tick counter
(``Kernel.ticks``, advanced once per syscall) — good for *work* accounting
but useless for *concurrency*: the paper's §4.2 deploy story ("deployed in
parallel using the local resource management tool") needs events on many
nodes to overlap in time.  :class:`SimClock` is the cluster-wide virtual
clock those events share.  It measures seconds as floats, starts at zero,
and only ever moves forward; nothing in it reads the wall clock, so every
simulation is exactly reproducible.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotone virtual clock (seconds since simulation start)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"clock cannot start before zero: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to *t* (ignored if *t* is in the past —
        the clock never rewinds)."""
        if t > self._now:
            self._now = t
        return self._now

    def advance(self, dt: float) -> float:
        """Move the clock forward by *dt* seconds."""
        if dt < 0:
            raise ValueError(f"cannot advance by a negative delta: {dt}")
        self._now += dt
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
