"""A discrete-event engine: a priority queue of timestamped callbacks.

This is the classic event-list simulation loop: :meth:`SimEngine.at`
schedules ``fn(*args)`` at a virtual time, :meth:`SimEngine.run` pops
events in time order (FIFO within equal timestamps, by sequence number)
and advances the shared :class:`~repro.sim.SimClock` to each event's
timestamp before firing it.  Callbacks may schedule further events, which
is how pipelined transfers chain: a chunk-arrival event at a relay node
schedules that relay's onward sends.

Determinism: no wall clock, no randomness — identical schedules replay
identically, which the golden-transcript discipline of this repo depends
on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..errors import ReproError
from .clock import SimClock

__all__ = ["EventQueue", "SimEngine", "SimError"]


class SimError(ReproError):
    """Misuse of the simulation engine."""


class EventQueue:
    """A time-ordered queue of ``(time, seq, fn, args)`` entries."""

    def __init__(self):
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = itertools.count(1)
        self.scheduled = 0

    def push(self, time: float, fn: Callable, *args: Any) -> None:
        if time < 0:
            raise SimError(f"cannot schedule an event before t=0: {time}")
        heapq.heappush(self._heap, (float(time), next(self._seq), fn, args))
        self.scheduled += 1

    def pop(self) -> tuple[float, Callable, tuple]:
        if not self._heap:
            raise SimError("pop from an empty event queue")
        time, _, fn, args = heapq.heappop(self._heap)
        return time, fn, args

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class SimEngine:
    """One simulation run: a clock plus its event queue."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self.queue = EventQueue()
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at virtual time *time*."""
        self.queue.push(time, fn, *args)

    def after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` *delay* seconds from now."""
        if delay < 0:
            raise SimError(f"cannot schedule {delay}s in the past")
        self.queue.push(self.clock.now + delay, fn, *args)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the queue in time order (optionally stopping once the
        next event lies beyond *until*); returns the clock reading."""
        while self.queue:
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None \
                    and next_time > until:
                break
            time, fn, args = self.queue.pop()
            self.clock.advance_to(time)
            self.events_processed += 1
            fn(*args)
        if until is not None:
            self.clock.advance_to(until)
        return self.clock.now
