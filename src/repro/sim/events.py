"""A discrete-event engine: a priority queue of timestamped callbacks.

This is the classic event-list simulation loop: :meth:`SimEngine.at`
schedules ``fn(*args)`` at a virtual time, :meth:`SimEngine.run` pops
events in time order (FIFO within equal timestamps) and advances the
shared :class:`~repro.sim.SimClock` to each event's timestamp before
firing it.  Callbacks may schedule further events, which is how pipelined
transfers chain: a chunk-arrival event at a relay node schedules that
relay's onward sends.

The default :class:`EventQueue` keeps a binary heap of *distinct*
timestamps with a FIFO bucket per timestamp.  Fleet-scale workloads are
full of equal-time floods — 10k rank-ready events at job start, 10k pull
events at distribution start — and the bucket fast path turns each of
those from 10k × O(log n) heap churn into one heap entry plus O(1)
appends/pops.  :class:`ReferenceEventQueue` is the pre-optimization
``(time, seq, payload)`` heap, kept as the oracle for the throughput
ablation; both orders are identical by construction.

Determinism: no wall clock, no randomness — identical schedules replay
identically, which the golden-transcript discipline of this repo depends
on.  Non-finite timestamps are rejected outright: a NaN compares false
against everything, so it would silently corrupt heap order instead of
failing loudly.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Any, Callable, Optional

from ..errors import ReproError
from . import opts
from .clock import SimClock
from .profile import EngineProfile

__all__ = ["EventQueue", "ReferenceEventQueue", "SimEngine", "SimError"]


class SimError(ReproError):
    """Misuse of the simulation engine."""


def _check_time(time: float) -> float:
    time = float(time)
    if not math.isfinite(time):
        raise SimError(f"cannot schedule an event at a non-finite "
                       f"time: {time}")
    if time < 0:
        raise SimError(f"cannot schedule an event before t=0: {time}")
    return time


class EventQueue:
    """A time-ordered queue of ``(time, fn, args)`` entries.

    FIFO within equal timestamps; a heap of distinct times with one
    deque bucket each, so same-timestamp floods cost O(1) per event.
    """

    def __init__(self):
        self._times: list[float] = []            # heap of distinct times
        self._buckets: dict[float, deque] = {}
        self._count = 0
        self.scheduled = 0

    def push(self, time: float, fn: Callable, *args: Any) -> None:
        time = _check_time(time)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = bucket = deque()
            heapq.heappush(self._times, time)
        bucket.append((fn, args))
        self._count += 1
        self.scheduled += 1

    def pop(self) -> tuple[float, Callable, tuple]:
        if not self._count:
            raise SimError("pop from an empty event queue")
        time = self._times[0]
        bucket = self._buckets[time]
        fn, args = bucket.popleft()
        if not bucket:
            heapq.heappop(self._times)
            del self._buckets[time]
        self._count -= 1
        return time, fn, args

    def peek_time(self) -> Optional[float]:
        return self._times[0] if self._times else None

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


class ReferenceEventQueue:
    """The pre-optimization queue: one heap entry per event, a global
    sequence number breaking equal-time ties FIFO.  Pops in exactly the
    order :class:`EventQueue` does — kept as the ablation baseline."""

    def __init__(self):
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = itertools.count(1)
        self.scheduled = 0

    def push(self, time: float, fn: Callable, *args: Any) -> None:
        time = _check_time(time)
        heapq.heappush(self._heap, (time, next(self._seq), fn, args))
        self.scheduled += 1

    def pop(self) -> tuple[float, Callable, tuple]:
        if not self._heap:
            raise SimError("pop from an empty event queue")
        time, _, fn, args = heapq.heappop(self._heap)
        return time, fn, args

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class SimEngine:
    """One simulation run: a clock plus its event queue.

    Pass an :class:`~repro.sim.EngineProfile` as *profile* to count
    events and attribute virtual time by callback category while the
    engine runs (deterministic — it reads no wall clock).
    """

    def __init__(self, clock: Optional[SimClock] = None, *,
                 profile: Optional[EngineProfile] = None):
        self.clock = clock if clock is not None else SimClock()
        self.queue = EventQueue() if opts.ENABLED else ReferenceEventQueue()
        self.events_processed = 0
        self.profile = profile

    @property
    def now(self) -> float:
        return self.clock.now

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at virtual time *time*."""
        self.queue.push(time, fn, *args)

    def after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` *delay* seconds from now."""
        if delay < 0:
            raise SimError(f"cannot schedule {delay}s in the past")
        self.queue.push(self.clock.now + delay, fn, *args)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the queue in time order (optionally stopping once the
        next event lies beyond *until*); returns the clock reading."""
        queue = self.queue
        clock = self.clock
        profile = self.profile
        processed = 0
        try:
            while queue:
                next_time = queue.peek_time()
                if until is not None and next_time is not None \
                        and next_time > until:
                    break
                time, fn, args = queue.pop()
                if profile is not None:
                    profile.record(fn, time - clock.now)
                clock.advance_to(time)
                processed += 1
                fn(*args)
        finally:
            self.events_processed += processed
        if until is not None:
            clock.advance_to(until)
        return clock.now
