"""The supply-chain layer: attestation, signing, scanning, auditing.

The build side is already a content-addressed Merkle DAG (instruction
chains, layer blobs, manifests), so attaching trust to it is cheap:

* :mod:`~repro.supply.sbom` — SBOM statements from the image tree's
  package databases;
* :mod:`~repro.supply.provenance` — provenance statements from the
  static instruction chain (digest-stable across parallelism);
* :mod:`~repro.supply.signing` — seeded deterministic keypairs,
  detached signatures over manifest digests;
* :mod:`~repro.supply.scanner` — CVE-style advisories matched against
  SBOMs with rpm-style version comparison;
* :mod:`~repro.supply.size_audit` — per-layer size and bloat
  attribution, dedup-aware;
* :mod:`~repro.supply.policy` — the :class:`PolicyGate` that composes
  all of the above and rejects images before broadcast;
* :mod:`~repro.supply.attest` — build-time bundle generation.
"""

from .attest import AttestationBundle, build_attestations
from .policy import AuditReport, PolicyGate, SupplyPolicy
from .provenance import (PROVENANCE_FORMAT, provenance_bytes,
                         provenance_statement)
from .sbom import SBOM_FORMAT, packages_of, sbom_bytes, sbom_statement
from .scanner import (SEVERITIES, Advisory, AdvisoryDb, Finding,
                      compare_versions, make_advisory_db, severity_rank)
from .signing import KeyRegistry, Signature, Signer, canonical_json
from .size_audit import LayerAudit, MemberStat, audit_layers, layers_as_dict

__all__ = [
    "AttestationBundle",
    "build_attestations",
    "AuditReport",
    "PolicyGate",
    "SupplyPolicy",
    "PROVENANCE_FORMAT",
    "provenance_bytes",
    "provenance_statement",
    "SBOM_FORMAT",
    "packages_of",
    "sbom_bytes",
    "sbom_statement",
    "SEVERITIES",
    "Advisory",
    "AdvisoryDb",
    "Finding",
    "compare_versions",
    "make_advisory_db",
    "severity_rank",
    "KeyRegistry",
    "Signature",
    "Signer",
    "canonical_json",
    "LayerAudit",
    "MemberStat",
    "audit_layers",
    "layers_as_dict",
]
