"""Provenance attestations from the Merkle instruction chain.

The build planner already derives a static, content-addressed key for
every instruction of every stage (:func:`instruction_chain_keys` — the
same formulas the build cache uses at runtime).  A provenance statement
records those chains plus the resolved base-image digests, the build
arguments, and the subject (the built image's digest) in canonical
JSON.  Because the chains are derived from Dockerfile *text* and the
subject digest is parallelism-invariant (PR 4's digest-identical
guarantee), the statement's digest is identical across
``--parallelism 1`` and ``--parallelism 8`` — which is what lets two
independent builders corroborate each other's attestations.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..containers.dockerfile import parse_stage_graph
from ..core.build_graph import instruction_chain_keys
from .signing import canonical_json

__all__ = ["PROVENANCE_FORMAT", "provenance_statement", "provenance_bytes"]

PROVENANCE_FORMAT = "repro.provenance/v1"


def provenance_statement(dockerfile: str, *, image: str = "",
                         subject: str = "", force: bool = False,
                         force_mode: str = "",
                         resolve_base: Optional[Callable[[str], str]] = None,
                         ) -> dict:
    """Build the provenance statement for one image build.

    *resolve_base* maps an external base reference (``centos:7``) to its
    digest in this world; when absent or failing, the placeholder
    ``image:<ref>`` is recorded — the same rooting
    :func:`instruction_chain_keys` uses, so the statement stays
    well-formed for never-pulled bases.
    """
    graph = parse_stage_graph(dockerfile)
    chains = instruction_chain_keys(graph, force=force,
                                    force_mode=force_mode)
    bases: dict[str, str] = {}
    stages = []
    for stage, chain in zip(graph.stages, chains):
        if stage.base_stage is None and stage.base_ref not in bases:
            digest = f"image:{stage.base_ref}"
            if resolve_base is not None:
                try:
                    digest = resolve_base(stage.base_ref)
                except Exception:
                    pass
            bases[stage.base_ref] = digest
        stages.append({
            "index": stage.index,
            "label": stage.label,
            "base": (f"stage:{stage.base_stage}"
                     if stage.base_stage is not None else stage.base_ref),
            "instructions": [
                {"kind": inst.kind, "args": inst.args, "chain_key": key}
                for inst, key in chain],
        })
    return {
        "format": PROVENANCE_FORMAT,
        "builder": {"name": "ch-image", "force": force,
                    "force_mode": force_mode if force else ""},
        "image": image,
        "subject": subject,
        "bases": bases,
        "stages": stages,
    }


def provenance_bytes(statement: dict) -> bytes:
    """Canonical encoding (what gets signed/stored)."""
    return canonical_json(statement)
