"""CVE-style scanning of SBOMs against a seeded advisory database.

An :class:`Advisory` says "package *P* before version *V* has a flaw of
severity *S*".  Scanning an SBOM is a version comparison per installed
package — the comparison is an rpmvercmp-style segment walk that
understands epochs (``1:7.9p1-10``), numeric/alpha segment alternation,
and release suffixes, which is enough for every version string the
simulated catalogs mint.

``make_advisory_db(seed)`` mints the deterministic advisory set the
policy-smoke job and golden transcripts pin: identifiers are derived
from the seed, contents from the catalog's package inventory (openssh
before 8.0 is the canonical "high" hit — exactly what the paper's
Figure 2 image installs).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

__all__ = ["SEVERITIES", "severity_rank", "compare_versions", "Advisory",
           "Finding", "AdvisoryDb", "make_advisory_db"]

#: Severity ladder, least to most severe.
SEVERITIES = ("negligible", "low", "medium", "high", "critical")


def severity_rank(severity: str) -> int:
    """Index into :data:`SEVERITIES`; raises ValueError for unknowns."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(f"unknown severity {severity!r}; expected one of "
                         f"{SEVERITIES}") from None


_SEGMENT = re.compile(r"\d+|[a-zA-Z]+")


def _version_key(version: str) -> tuple:
    """Sortable key: (epoch, segment, segment, ...).

    Numeric segments compare numerically, alpha segments lexically;
    numeric sorts after alpha at the same position (rpm semantics:
    ``1.0a < 1.0.1``).  Separators only delimit segments.
    """
    epoch = 0
    body = version
    head, sep, tail = version.partition(":")
    if sep and head.isdigit():
        epoch, body = int(head), tail
    key: list = [epoch]
    for seg in _SEGMENT.findall(body):
        if seg.isdigit():
            key.append((1, int(seg), ""))
        else:
            key.append((0, 0, seg))
    return tuple(key)


def compare_versions(a: str, b: str) -> int:
    """-1, 0, or 1 as *a* is older than, equal to, or newer than *b*."""
    ka, kb = _version_key(a), _version_key(b)
    return (ka > kb) - (ka < kb)


@dataclass(frozen=True)
class Advisory:
    """One published flaw: *package* before *fixed_in* is affected.

    ``fixed_in == ""`` means no fixed version exists — every installed
    version is affected.
    """

    ident: str
    package: str
    fixed_in: str
    severity: str
    summary: str = ""

    def affects(self, version: str) -> bool:
        if not self.fixed_in:
            return True
        return compare_versions(version, self.fixed_in) < 0


@dataclass(frozen=True)
class Finding:
    """One advisory matched against one installed package."""

    advisory: Advisory
    installed: str

    def as_dict(self) -> dict:
        return {
            "id": self.advisory.ident,
            "package": self.advisory.package,
            "installed": self.installed,
            "fixed_in": self.advisory.fixed_in,
            "severity": self.advisory.severity,
            "summary": self.advisory.summary,
        }


class AdvisoryDb:
    """The advisory feed a scanner consults."""

    def __init__(self, advisories: tuple = ()):
        self._by_package: dict[str, list[Advisory]] = {}
        for adv in advisories:
            self.add(adv)

    def add(self, advisory: Advisory) -> None:
        severity_rank(advisory.severity)  # validate loudly at feed time
        self._by_package.setdefault(advisory.package, []).append(advisory)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_package.values())

    def for_package(self, name: str) -> list[Advisory]:
        return list(self._by_package.get(name, ()))

    def scan(self, packages: dict[str, str]) -> list[Finding]:
        """All findings for an installed set, most severe first (ties
        broken by advisory id for determinism)."""
        findings = [
            Finding(advisory=adv, installed=version)
            for name, version in packages.items()
            for adv in self._by_package.get(name, ())
            if adv.affects(version)
        ]
        findings.sort(key=lambda f: (-severity_rank(f.advisory.severity),
                                     f.advisory.ident))
        return findings

    def worst(self, packages: dict[str, str]) -> str:
        """Severity of the worst finding, or ``""`` when clean."""
        findings = self.scan(packages)
        return findings[0].advisory.severity if findings else ""


#: (package, fixed_in, severity, summary) — the simulated advisory feed.
_SEED_ADVISORIES = (
    ("openssh", "8.0", "high",
     "pre-auth option parsing overflow in sshd"),
    ("openssh-server", "8.0", "critical",
     "remote code execution in privilege separation monitor"),
    ("openssh-client", "1:8.0p1-1", "high",
     "malicious server can overwrite files via scp"),
    ("gcc", "5.0", "low",
     "crafted source can crash the preprocessor"),
    ("openmpi", "4.0.0", "medium",
     "predictable shared-memory segment names allow local DoS"),
    ("openmpi-bin", "4.0.0", "medium",
     "predictable shared-memory segment names allow local DoS"),
    ("hdf5", "1.10.0", "medium",
     "heap overflow parsing crafted H5 files"),
    ("iputils", "20200821", "low",
     "ping leaks uninitialized stack bytes in payloads"),
    ("fakeroot", "", "negligible",
     "LD_PRELOAD interposition is bypassable by static binaries"),
)


def make_advisory_db(seed: int = 0) -> AdvisoryDb:
    """The deterministic advisory feed: contents fixed by the catalog,
    identifiers derived from *seed* (so distinct feeds are tellable
    apart in transcripts while any one seed is fully reproducible)."""
    db = AdvisoryDb()
    for package, fixed_in, severity, summary in _SEED_ADVISORIES:
        digest = hashlib.sha256(
            f"adv|{seed}|{package}|{fixed_in}".encode()).hexdigest()
        db.add(Advisory(ident=f"ADV-{digest[:10]}", package=package,
                        fixed_in=fixed_in, severity=severity,
                        summary=summary))
    return db
