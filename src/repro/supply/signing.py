"""Deterministic signing for the supply-chain layer.

A real deployment would use sigstore/cosign-style detached signatures;
here keypairs are derived from a seed so every run of the simulation —
and both ends of a golden-transcript comparison — agree on every byte.
The math is a keyed hash, not public-key crypto: the *shape* of the
trust argument (a registry of named keys, signatures bound to a payload
digest, verification against a trust store) is what the policy gate
exercises, and a sha256 MAC models it faithfully and deterministically.

The payload signed for an image is the **manifest digest** — the root of
the content-addressed tree (config + layer blobs), so any tamper with a
layer changes the manifest digest and unbinds the signature.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

__all__ = ["Signature", "Signer", "KeyRegistry", "canonical_json"]


def canonical_json(obj) -> bytes:
    """Canonical statement encoding: sorted keys, no whitespace.

    Every attestation (SBOM, provenance) is serialized through this one
    function so digests are reproducible across runs and across
    parallelism levels.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class Signature:
    """A detached signature over a payload digest.

    ``key`` names the signing key, ``public_key`` pins which generation
    of that name signed (a re-generated key has a different public
    half), ``payload`` is the digest that was signed, ``value`` the
    signature proper.
    """

    key: str
    public_key: str
    payload: str
    value: str

    def as_dict(self) -> dict:
        return {"key": self.key, "public_key": self.public_key,
                "payload": self.payload, "value": self.value}

    @classmethod
    def from_dict(cls, d: dict) -> "Signature":
        return cls(key=d["key"], public_key=d["public_key"],
                   payload=d["payload"], value=d["value"])


def _sig_value(secret: str, payload: str) -> str:
    return hashlib.sha256(f"sig|{secret}|{payload}".encode()).hexdigest()


@dataclass(frozen=True)
class Signer:
    """The private half of one key: what a build farm holds."""

    name: str
    public_key: str
    _secret: str

    def sign(self, payload: str) -> Signature:
        return Signature(key=self.name, public_key=self.public_key,
                         payload=payload,
                         value=_sig_value(self._secret, payload))


class KeyRegistry:
    """Seeded keypair registry — the trust store verifiers consult.

    ``generate(name)`` derives a keypair deterministically from
    ``(seed, name)``; ``signer(name)`` hands out the private half;
    ``verify`` recomputes the signature from the registered secret and
    rejects unknown keys, stale public keys, payload mismatches, and
    forged values.  Two registries with the same seed mint identical
    keys, which is what lets golden transcripts pin signed audits.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._secrets: dict[str, str] = {}

    def generate(self, name: str) -> str:
        """Mint (or re-mint) the keypair *name*; returns the public key."""
        if not name:
            raise ValueError("key name must be non-empty")
        secret = hashlib.sha256(
            f"supply-key|{self.seed}|{name}".encode()).hexdigest()
        self._secrets[name] = secret
        return self.public_key(name)

    def has(self, name: str) -> bool:
        return name in self._secrets

    def names(self) -> list[str]:
        return sorted(self._secrets)

    def public_key(self, name: str) -> str:
        if name not in self._secrets:
            raise KeyError(f"no key named {name!r}")
        return "pk:" + hashlib.sha256(
            f"pub|{self._secrets[name]}".encode()).hexdigest()[:16]

    def signer(self, name: str) -> Signer:
        if name not in self._secrets:
            self.generate(name)
        return Signer(name=name, public_key=self.public_key(name),
                      _secret=self._secrets[name])

    def verify(self, sig: Signature, payload: str) -> bool:
        """True iff *sig* is a valid signature over *payload* by a
        currently-registered key."""
        if sig.key not in self._secrets:
            return False
        if sig.public_key != self.public_key(sig.key):
            return False
        if sig.payload != payload:
            return False
        return sig.value == _sig_value(self._secrets[sig.key], payload)
