"""Per-layer size audit with bloat attribution.

Layers are :class:`~repro.archive.TarArchive` values, so the audit can
attribute every byte to a member and — because members are
content-addressed — tell *unique* payload apart from bytes that already
exist elsewhere in the image (the dedup the CAS would collapse anyway).
``duplicate_bytes`` is the honest bloat number: bytes a layer ships
that an earlier member already shipped.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..archive import TarArchive

__all__ = ["MemberStat", "LayerAudit", "audit_layers", "layers_as_dict"]


@dataclass(frozen=True)
class MemberStat:
    """One member's contribution to a layer."""

    path: str
    size: int
    duplicate: bool

    def as_dict(self) -> dict:
        return {"path": self.path, "size": self.size,
                "duplicate": self.duplicate}


@dataclass(frozen=True)
class LayerAudit:
    """The size story of one layer."""

    index: int
    digest: str
    members: int
    total_bytes: int
    unique_bytes: int
    duplicate_bytes: int
    largest: tuple[MemberStat, ...]

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "digest": self.digest,
            "members": self.members,
            "total_bytes": self.total_bytes,
            "unique_bytes": self.unique_bytes,
            "duplicate_bytes": self.duplicate_bytes,
            "largest": [m.as_dict() for m in self.largest],
        }


def audit_layers(layers: list[TarArchive], *, top: int = 5
                 ) -> list[LayerAudit]:
    """Audit *layers* in order; duplicate detection is cumulative, so a
    byte run counts as unique exactly once across the whole image."""
    seen: set[str] = set()
    audits: list[LayerAudit] = []
    for index, layer in enumerate(layers):
        stats: list[MemberStat] = []
        unique = duplicate = 0
        for m in layer.members:
            size = len(m.data)
            dup = False
            if size:
                digest = hashlib.sha256(m.data).hexdigest()
                dup = digest in seen
                seen.add(digest)
                if dup:
                    duplicate += size
                else:
                    unique += size
            stats.append(MemberStat(path=m.path, size=size, duplicate=dup))
        largest = tuple(sorted(stats, key=lambda s: (-s.size, s.path))[:top])
        audits.append(LayerAudit(
            index=index, digest=layer.digest(), members=len(stats),
            total_bytes=unique + duplicate, unique_bytes=unique,
            duplicate_bytes=duplicate, largest=largest))
    return audits


def layers_as_dict(audits: list[LayerAudit]) -> dict:
    """Image-level rollup (JSON-friendly, deterministic)."""
    return {
        "layers": [a.as_dict() for a in audits],
        "total_bytes": sum(a.total_bytes for a in audits),
        "unique_bytes": sum(a.unique_bytes for a in audits),
        "duplicate_bytes": sum(a.duplicate_bytes for a in audits),
    }
