"""Build-time attestation generation.

``build_attestations`` runs right after a build succeeds, while the
image tree and its Merkle chain are both at hand: the SBOM comes from
the tree's package databases, the provenance from the static
instruction chain plus the digests the build actually resolved.  The
bundle's blobs are what gets attached to the image on push (content-
addressed, so pushing the same build twice dedups to nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cas.store import blob_digest
from .provenance import provenance_bytes, provenance_statement
from .sbom import sbom_bytes, sbom_statement

__all__ = ["AttestationBundle", "build_attestations"]


@dataclass(frozen=True)
class AttestationBundle:
    """The attestation blobs of one build, keyed by kind."""

    sbom: bytes
    provenance: bytes

    def blobs(self) -> dict[str, bytes]:
        return {"sbom": self.sbom, "provenance": self.provenance}

    def digests(self) -> dict[str, str]:
        return {kind: blob_digest(blob)
                for kind, blob in self.blobs().items()}


def build_attestations(ch, tag: str, dockerfile: str, *,
                       force: bool = False, force_mode: str = ""
                       ) -> AttestationBundle:
    """Attest the already-built image *tag* from builder *ch*.

    Both statements are canonical and derived only from build-invariant
    inputs (installed set, Dockerfile text, resolved digests), so the
    bundle's digests are identical at every ``--parallelism`` level.
    """

    def resolve_base(ref: str) -> str:
        return ch.storage.digest_of(ref)

    sbom = sbom_statement(ch.sys, ch.storage.path_of(tag), image=tag)
    provenance = provenance_statement(
        dockerfile, image=tag, subject=ch.storage.digest_of(tag),
        force=force, force_mode=force_mode, resolve_base=resolve_base)
    return AttestationBundle(sbom=sbom_bytes(sbom),
                             provenance=provenance_bytes(provenance))
