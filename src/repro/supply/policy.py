"""The policy gate: what stands between a pushed image and a deploy.

A :class:`PolicyGate` composes the supply-chain checks — signature
verification against a trust store, required attestations, a CVE scan
of the SBOM, a per-layer size budget — into one audit that runs
*before* any broadcast traffic is scheduled.  ``audit`` always returns
a full :class:`AuditReport` (violations included); ``check`` raises
:class:`~repro.errors.SupplyPolicyError` when the report has any.

The gate works against anything with the registry metadata surface:
``manifest`` / ``signatures_of`` / ``attestation_digests`` /
``fetch_attestation`` / ``blob_at_rest`` — both :class:`Registry` and
:class:`RegistryFleet` provide it, so the same gate guards a single
service and a sharded fleet.  Audit reads are at-rest (no transfer is
counted): the gate runs registry-side, not over the wire.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..archive import TarArchive
from ..errors import RegistryError, SupplyPolicyError
from ..obs.trace import maybe_span
from .provenance import PROVENANCE_FORMAT
from .sbom import SBOM_FORMAT, packages_of
from .scanner import AdvisoryDb, severity_rank
from .signing import KeyRegistry, Signature
from .size_audit import audit_layers, layers_as_dict

__all__ = ["SupplyPolicy", "AuditReport", "PolicyGate"]


@dataclass(frozen=True)
class SupplyPolicy:
    """What the gate requires of an image.

    ``trusted_keys`` empty means any key the keyring can verify;
    ``severity_threshold`` is the least severity that rejects (``""``
    disables scanning enforcement — findings are still reported);
    ``max_layer_bytes`` caps any single layer (``None`` = no cap).
    """

    require_signature: bool = True
    require_sbom: bool = True
    require_provenance: bool = True
    trusted_keys: tuple[str, ...] = ()
    severity_threshold: str = "high"
    max_layer_bytes: Optional[int] = None


@dataclass
class AuditReport:
    """Everything the gate learned about one image."""

    ref: str
    manifest_digest: str = ""
    signed: bool = False
    signature_key: str = ""
    attestations: dict = field(default_factory=dict)  # kind -> digest
    package_count: int = 0
    findings: list = field(default_factory=list)      # Finding.as_dict()
    size: dict = field(default_factory=dict)          # layers_as_dict()
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def worst_severity(self) -> str:
        return self.findings[0]["severity"] if self.findings else ""

    def as_dict(self) -> dict:
        return {
            "ref": self.ref,
            "manifest": self.manifest_digest,
            "signed": self.signed,
            "signature_key": self.signature_key,
            "attestations": dict(sorted(self.attestations.items())),
            "package_count": self.package_count,
            "findings": list(self.findings),
            "size": self.size,
            "violations": list(self.violations),
            "verdict": "pass" if self.ok else "reject",
        }

    def render(self) -> str:
        """The ``ch-image audit`` / ``astra-matrix --policy`` text."""
        lines = [f"supply audit: {self.ref}"]
        if self.manifest_digest:
            lines.append(f"  manifest: {self.manifest_digest}")
        sig = (f"ok (key {self.signature_key})" if self.signed
               else "MISSING")
        lines.append(f"  signature: {sig}")
        atts = ", ".join(f"{k} {d}" for k, d in
                         sorted(self.attestations.items())) or "none"
        lines.append(f"  attestations: {atts}")
        lines.append(f"  packages: {self.package_count}")
        worst = f" (worst: {self.worst_severity})" if self.findings else ""
        lines.append(f"  findings: {len(self.findings)}{worst}")
        for f in self.findings:
            fixed = f"< {f['fixed_in']}" if f["fixed_in"] else "(no fix)"
            lines.append(f"    {f['id']} {f['severity']}: {f['package']} "
                         f"{f['installed']} {fixed}: {f['summary']}")
        if self.size:
            lines.append(
                f"  layers: {len(self.size['layers'])}, "
                f"{self.size['total_bytes']} bytes "
                f"({self.size['duplicate_bytes']} duplicate)")
            for layer in self.size["layers"]:
                top = layer["largest"][0] if layer["largest"] else None
                largest = (f", largest {top['path']} ({top['size']})"
                           if top else "")
                lines.append(
                    f"    layer {layer['index']}: {layer['total_bytes']} "
                    f"bytes, {layer['members']} members{largest}")
        verdict = ("PASS" if self.ok else
                   "REJECT (" + "; ".join(self.violations) + ")")
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


class PolicyGate:
    """Composes the supply-chain checks over a registry surface."""

    def __init__(self, policy: Optional[SupplyPolicy] = None, *,
                 keys: Optional[KeyRegistry] = None,
                 advisories: Optional[AdvisoryDb] = None,
                 tracer=None):
        self.policy = policy if policy is not None else SupplyPolicy()
        if self.policy.severity_threshold:
            severity_rank(self.policy.severity_threshold)  # fail loudly now
        self.keys = keys if keys is not None else KeyRegistry()
        self.advisories = (advisories if advisories is not None
                           else AdvisoryDb())
        self.tracer = tracer

    # -- signature verification --------------------------------------------------------

    def _verify_signature(self, registry, ref, manifest
                          ) -> tuple[Optional[Signature], list[str]]:
        """(validating signature, violations) for the manifest served."""
        digest = manifest.digest()
        sigs = registry.signatures_of(ref)
        if not sigs:
            if self.policy.require_signature:
                return None, ["no signature recorded"]
            return None, []
        matching = [s for s in sigs if s.payload == digest]
        if not matching:
            return None, ["signature does not match the served manifest "
                          "(layer or config tampered after signing)"]
        trusted = self.policy.trusted_keys
        for sig in matching:
            if trusted and sig.key not in trusted:
                continue
            if self.keys.verify(sig, digest):
                return sig, []
        return None, ["no trusted key validates the recorded signature"]

    def verify_pull(self, registry, ref, manifest) -> None:
        """The pull/deploy-time check: the served manifest must carry a
        verifiable signature (when policy requires one).  Raises
        :class:`SupplyPolicyError`; counts verify_ok / verify_fail."""
        sig, violations = self._verify_signature(registry, ref, manifest)
        if violations:
            self._count("verify_fail")
            raise SupplyPolicyError(
                f"{ref}: " + "; ".join(violations),
                ref=str(ref), violations=tuple(violations))
        if sig is not None:
            self._count("verify_ok")

    # -- the full audit ----------------------------------------------------------------

    def audit(self, registry, ref, *, arch: Optional[str] = None
              ) -> AuditReport:
        """Run every check; never raises for policy reasons (a missing
        manifest still surfaces as :class:`RegistryError`)."""
        report = AuditReport(ref=str(ref))
        with maybe_span(self.tracer, f"supply-audit {ref}", "supply",
                        ref=str(ref)):
            manifest = registry.manifest(ref, arch=arch)
            report.manifest_digest = manifest.digest()

            sig, violations = self._verify_signature(registry, ref,
                                                     manifest)
            report.violations.extend(violations)
            if sig is not None:
                report.signed = True
                report.signature_key = sig.key

            report.attestations = registry.attestation_digests(ref)
            sbom = self._load_statement(registry, ref, "sbom", SBOM_FORMAT,
                                        self.policy.require_sbom,
                                        report.violations)
            self._load_statement(registry, ref, "provenance",
                                 PROVENANCE_FORMAT,
                                 self.policy.require_provenance,
                                 report.violations)

            if sbom is not None:
                packages = packages_of(sbom)
                report.package_count = len(packages)
                report.findings = [f.as_dict()
                                   for f in self.advisories.scan(packages)]
                threshold = self.policy.severity_threshold
                if threshold:
                    floor = severity_rank(threshold)
                    over = [f for f in report.findings
                            if severity_rank(f["severity"]) >= floor]
                    if over:
                        ids = ", ".join(f["id"] for f in over)
                        report.violations.append(
                            f"{len(over)} finding(s) at or above "
                            f"{threshold}: {ids}")

            layers = [TarArchive.deserialize(registry.blob_at_rest(d))
                      for d in manifest.layers]
            audits = audit_layers(layers)
            report.size = layers_as_dict(audits)
            cap = self.policy.max_layer_bytes
            if cap is not None:
                for layer in audits:
                    if layer.total_bytes > cap:
                        report.violations.append(
                            f"layer {layer.index} is {layer.total_bytes} "
                            f"bytes (cap {cap})")
        return report

    def check(self, registry, ref, *, arch: Optional[str] = None
              ) -> AuditReport:
        """Audit and enforce: raises :class:`SupplyPolicyError` when the
        report has violations; counts gate_pass / gate_reject."""
        report = self.audit(registry, ref, arch=arch)
        if report.violations:
            self._count("gate_reject")
            raise SupplyPolicyError(
                f"{ref}: policy gate rejected: "
                + "; ".join(report.violations),
                ref=str(ref), violations=tuple(report.violations))
        self._count("gate_pass")
        return report

    # -- helpers -----------------------------------------------------------------------

    def _load_statement(self, registry, ref, kind: str, expect_format: str,
                        required: bool, violations: list) -> Optional[dict]:
        try:
            raw = registry.fetch_attestation(ref, kind)
        except RegistryError:
            if required:
                violations.append(f"missing {kind} attestation")
            return None
        try:
            statement = json.loads(raw)
        except ValueError:
            violations.append(f"malformed {kind} attestation (not JSON)")
            return None
        if statement.get("format") != expect_format:
            violations.append(
                f"malformed {kind} attestation (format "
                f"{statement.get('format')!r}, expected {expect_format!r})")
            return None
        return statement

    def _count(self, event: str) -> None:
        if self.tracer is not None:
            self.tracer.metrics.count_supply(event)
