"""SBOM generation from the simulated package databases.

The install paths (:mod:`repro.distro.yum` / :mod:`repro.distro.apt`)
maintain line-oriented databases at ``/var/lib/rpm/packages`` and
``/var/lib/dpkg/status`` inside every image tree.  An SBOM statement is
the sorted union of both — name, version, and which database recorded
the install — canonically encoded so its digest is a pure function of
the installed set (and therefore identical across build parallelism
levels, which only reorder *work*, never results).
"""

from __future__ import annotations

from ..distro.apt import DPKG_DB_PATH
from ..distro.packages import PackageDb
from ..distro.rpm import RPM_DB_PATH
from ..kernel import Syscalls
from .signing import canonical_json

__all__ = ["SBOM_FORMAT", "sbom_statement", "sbom_bytes", "packages_of"]

SBOM_FORMAT = "repro.sbom/v1"


def _db_packages(sys: Syscalls, path: str, origin: str) -> list[dict]:
    return [{"name": name, "version": version, "origin": origin}
            for name, version in sorted(PackageDb(sys, path).installed()
                                        .items())]


def sbom_statement(sys: Syscalls, image_path: str, *,
                   image: str = "") -> dict:
    """The SBOM of the image tree rooted at *image_path*.

    Reads both package databases under the tree (either may be absent —
    a busybox-style image legitimately has neither).  ``packages`` is
    sorted by (origin, name) so the statement is canonical.
    """
    root = image_path.rstrip("/")
    packages = (_db_packages(sys, root + DPKG_DB_PATH, "dpkg")
                + _db_packages(sys, root + RPM_DB_PATH, "rpm"))
    packages.sort(key=lambda p: (p["origin"], p["name"]))
    return {
        "format": SBOM_FORMAT,
        "image": image,
        "package_count": len(packages),
        "packages": packages,
    }


def sbom_bytes(statement: dict) -> bytes:
    """Canonical encoding of an SBOM statement (what gets signed/stored)."""
    return canonical_json(statement)


def packages_of(statement: dict) -> dict[str, str]:
    """name -> version map of an SBOM statement (scanner input)."""
    return {p["name"]: p["version"] for p in statement.get("packages", ())}
