"""A tar-like archive format for the simulated filesystem.

Used for package payloads (rpm's cpio, deb's data.tar), image layers, and
registry blobs.  Members carry full ownership/mode metadata, so the paper's
ownership-flattening discussion (§6.1 item 2: Charliecloud pushes root:root
with setuid/setgid cleared) is observable in the archives themselves.

Packing goes through a :class:`~repro.kernel.Syscalls` interface — so when
packed under a fakeroot wrapper, the *lies* are what gets archived.  That is
precisely fakeroot's historical purpose: "users to create archives with
files in them with root permissions/ownership" (§5.1), and the §6.2.2
"preserve file ownership" recommendation falls out for free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterable, Optional

from .errors import KernelError, ReproError
from .kernel import FileType, Syscalls

__all__ = ["TarMember", "TarArchive", "ArchiveError", "member_of"]


class ArchiveError(ReproError):
    """Malformed archive or failed pack/extract."""


_FTYPE_CODE = {
    FileType.REG: "f", FileType.DIR: "d", FileType.SYMLINK: "l",
    FileType.CHR: "c", FileType.BLK: "b", FileType.FIFO: "p",
    FileType.SOCK: "s",
}
_CODE_FTYPE = {v: k for k, v in _FTYPE_CODE.items()}


@dataclass(frozen=True)
class TarMember:
    """One archive entry.  ``uid``/``gid`` are numeric as in real tar."""

    path: str  # relative, no leading slash
    ftype: FileType
    mode: int
    uid: int
    gid: int
    data: bytes = b""
    target: str = ""
    rdev: tuple[int, int] = (0, 0)
    exe_impl: Optional[str] = None
    exe_arch: str = "noarch"
    exe_static: bool = False
    xattrs: tuple[tuple[str, bytes], ...] = ()

    def flattened(self) -> "TarMember":
        """Ownership flattened to root:root, setuid/setgid cleared — what
        Charliecloud does on push 'to avoid leaking site IDs' (§6.1)."""
        return replace(self, uid=0, gid=0, mode=self.mode & ~0o6000)


def member_of(sys: Syscalls, full: str, relpath: str, st=None) -> TarMember:
    """Build the archive member for one path as seen through *sys*.

    The single implementation shared by :meth:`TarArchive.pack` and the
    incremental snapshot walker, so both produce bit-identical members.
    The path is resolved once: metadata (including executable simulation
    metadata) rides on the ``lstat`` result, and only regular files pay
    for a content read."""
    if st is None:
        st = sys.lstat(full)
    data = b""
    target = ""
    if st.ftype is FileType.REG:
        data = sys.read_file(full)
    elif st.ftype is FileType.SYMLINK:
        target = sys.readlink(full)
    xattrs = []
    try:
        for name in sys.listxattr(full):
            xattrs.append((name, sys.getxattr(full, name)))
    except KernelError:
        pass
    return TarMember(
        path=relpath, ftype=st.ftype, mode=st.st_mode & 0o7777,
        uid=st.st_uid, gid=st.st_gid, data=data, target=target,
        rdev=st.st_rdev, exe_impl=st.exe_impl, exe_arch=st.exe_arch,
        exe_static=st.exe_static, xattrs=tuple(sorted(xattrs)),
    )


class TarArchive:
    """An ordered collection of members."""

    def __init__(self, members: Iterable[TarMember] = ()):
        self.members: list[TarMember] = list(members)

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def member(self, path: str) -> TarMember:
        for m in self.members:
            if m.path == path:
                return m
        raise ArchiveError(f"no member {path!r}")

    def total_bytes(self) -> int:
        return sum(len(m.data) for m in self.members)

    # -- digests -----------------------------------------------------------------

    def digest(self) -> str:
        """Content-addressed identity (sha256 over the serialization)."""
        return "sha256:" + hashlib.sha256(self.serialize()).hexdigest()

    # -- pack / extract -----------------------------------------------------------

    @classmethod
    def pack(cls, sys: Syscalls, root: str, *, flatten: bool = False
             ) -> "TarArchive":
        """Archive the tree under *root* as seen through *sys*.

        Seen *through sys* matters: under a fakeroot wrapper, stat lies
        (ownership, device nodes) are captured into the archive.
        """
        members: list[TarMember] = []

        def walk(dirpath: str, rel: str) -> None:
            for entry in sys.readdir(dirpath):
                full = f"{dirpath.rstrip('/')}/{entry.name}"
                relpath = f"{rel}/{entry.name}" if rel else entry.name
                st = sys.lstat(full)
                members.append(member_of(sys, full, relpath, st))
                if st.ftype is FileType.DIR:
                    walk(full, relpath)

        walk(root, "")
        archive = cls(members)
        if flatten:
            archive = cls([m.flattened() for m in members])
        return archive

    def extract(self, sys: Syscalls, dest: str, *,
                preserve_owner: bool = False,
                on_chown_error: str = "raise") -> list[str]:
        """Unpack under *dest* through *sys*.

        ``preserve_owner=False`` is what unprivileged tar does: "downstream
        Type III users that pull the image will change ownership to
        themselves anyway, like tar(1)" (§5.2).  With ``preserve_owner=True``
        each member is chowned — which in a Type III container fails for
        unmapped IDs; ``on_chown_error`` may be "raise", "warn" (collect) or
        "ignore".  Returns the list of chown warnings.
        """
        warnings: list[str] = []
        for m in self.members:
            path = f"{dest.rstrip('/')}/{m.path}"
            if m.ftype is FileType.DIR:
                if not sys.exists(path):
                    sys.mkdir(path, 0o755)
            elif m.ftype is FileType.SYMLINK:
                if sys.exists(path):
                    sys.unlink(path)
                sys.symlink(m.target, path)
            elif m.ftype is FileType.REG:
                sys.write_file(path, m.data)
                res = sys.mnt_ns.resolve(path, sys.cred, follow=False,
                                         cwd=sys.getcwd())
                res.inode.exe_impl = m.exe_impl
                res.inode.exe_arch = m.exe_arch
                res.inode.exe_static = m.exe_static
                res.fs.touch(res.inode)
            elif m.ftype in (FileType.CHR, FileType.BLK):
                sys.mknod(path, m.ftype, m.mode & 0o777, rdev=m.rdev)
            else:
                sys.mknod(path, m.ftype, m.mode & 0o777)
            if m.ftype is not FileType.SYMLINK:
                sys.chmod(path, m.mode)
            if preserve_owner and m.ftype is not FileType.SYMLINK:
                try:
                    sys.chown(path, m.uid, m.gid, follow=False)
                except KernelError as err:
                    msg = (f"tar: {m.path}: chown to {m.uid}:{m.gid} "
                           f"failed: {err.strerror}")
                    if on_chown_error == "raise":
                        raise ArchiveError(msg) from err
                    if on_chown_error == "warn":
                        warnings.append(msg)
            for name, value in m.xattrs:
                try:
                    sys.setxattr(path, name, value)
                except KernelError:
                    warnings.append(f"tar: {m.path}: setxattr {name} failed")
        return warnings

    def apply_diff(self, sys: Syscalls, dest: str) -> None:
        """Apply this archive as an overlay *diff*: whiteout members
        (character devices with mode 0) delete the corresponding path;
        everything else is written in place."""
        for m in self.members:
            path = f"{dest.rstrip('/')}/{m.path}"
            if m.ftype is FileType.CHR and m.mode == 0:  # whiteout
                try:
                    st = sys.lstat(path)
                except KernelError:
                    continue
                if st.ftype is FileType.DIR:
                    continue  # directory whiteouts not modelled
                sys.unlink(path)
                continue
            # handle type changes: replace whatever is in the way
            try:
                existing = sys.lstat(path)
            except KernelError:
                existing = None
            if existing is not None and existing.ftype is not m.ftype:
                if existing.ftype is FileType.DIR:
                    self._rm_dir_contents(sys, path)
                    sys.rmdir(path)
                else:
                    sys.unlink(path)
                existing = None
            if m.ftype is FileType.DIR:
                if existing is None:
                    sys.mkdir(path, m.mode & 0o777)
                sys.chmod(path, m.mode)
                continue
            if m.ftype is FileType.SYMLINK:
                if existing is not None:
                    sys.unlink(path)
                sys.symlink(m.target, path)
                continue
            sys.write_file(path, m.data)
            res = sys.mnt_ns.resolve(path, sys.cred, follow=False,
                                     cwd=sys.getcwd())
            res.inode.exe_impl = m.exe_impl
            res.inode.exe_arch = m.exe_arch
            res.inode.exe_static = m.exe_static
            res.fs.touch(res.inode)
            sys.chmod(path, m.mode)
            try:
                sys.chown(path, m.uid, m.gid, follow=False)
            except KernelError:
                pass

    @staticmethod
    def _rm_dir_contents(sys: Syscalls, path: str) -> None:
        for entry in sys.readdir(path):
            child = f"{path}/{entry.name}"
            if entry.ftype is FileType.DIR:
                TarArchive._rm_dir_contents(sys, child)
                sys.rmdir(child)
            else:
                sys.unlink(child)

    # -- serialization ---------------------------------------------------------------

    def serialize(self) -> bytes:
        """Deterministic byte encoding (header line + hex payload per member)."""
        out = []
        for m in self.members:
            xattr_part = ";".join(f"{n}={v.hex()}" for n, v in m.xattrs)
            header = "|".join([
                m.path, _FTYPE_CODE[m.ftype], oct(m.mode), str(m.uid),
                str(m.gid), m.target, f"{m.rdev[0]},{m.rdev[1]}",
                m.exe_impl or "", m.exe_arch, "1" if m.exe_static else "0",
                xattr_part,
            ])
            out.append(header + "\n" + m.data.hex() + "\n")
        return "".join(out).encode()

    @classmethod
    def deserialize(cls, blob: bytes) -> "TarArchive":
        lines = blob.decode().splitlines()
        if len(lines) % 2:
            raise ArchiveError("truncated archive")
        members = []
        for i in range(0, len(lines), 2):
            parts = lines[i].split("|")
            if len(parts) != 11:
                raise ArchiveError(f"bad member header: {lines[i]!r}")
            (path, code, mode_s, uid_s, gid_s, target, rdev_s,
             impl, arch, static_s, xattr_part) = parts
            try:
                rmaj, rmin = rdev_s.split(",")
                xattrs = tuple(
                    (n, bytes.fromhex(v))
                    for n, _, v in (x.partition("=")
                                    for x in xattr_part.split(";") if x)
                )
                members.append(TarMember(
                    path=path, ftype=_CODE_FTYPE[code], mode=int(mode_s, 8),
                    uid=int(uid_s), gid=int(gid_s),
                    data=bytes.fromhex(lines[i + 1]),
                    target=target, rdev=(int(rmaj), int(rmin)),
                    exe_impl=impl or None, exe_arch=arch,
                    exe_static=static_s == "1", xattrs=xattrs,
                ))
            except (ValueError, KeyError) as exc:
                raise ArchiveError(f"bad member {path!r}: {exc}") from exc
        return cls(members)
