"""Concrete filesystem types and their HPC-relevant behaviour flags.

The paper's shared-filesystem discussion (§4.2, §6.1, §6.2.1) turns on two
properties:

* whether ``user.*`` extended attributes work (fuse-overlayfs needs them for
  its ID bookkeeping; default NFS/Lustre lack them), and
* whether the filesystem *server* enforces IDs on file creation/chown
  independently of any client-side user namespace (NFS does, which is why
  "the UID/GID mappers cannot work when the container storage location is a
  shared filesystem").
"""

from __future__ import annotations

from .filesystem_params import FS_PARAMS
from .userns import UserNamespace
from .vfs import Filesystem, FsFeatures

__all__ = [
    "make_ext4",
    "make_tmpfs",
    "make_nfs",
    "make_lustre",
    "make_gpfs",
    "FS_PARAMS",
]


def make_ext4(label: str = "ext4") -> Filesystem:
    """Node-local disk: full xattr support, local ID authority."""
    return Filesystem("ext4", features=FsFeatures(user_xattrs=True), label=label)


def make_tmpfs(
    label: str = "tmpfs", *, owning_userns: UserNamespace | None = None,
    root_uid: int = 0, root_gid: int = 0, root_mode: int = 0o1777,
) -> Filesystem:
    """RAM-backed filesystem; mountable inside user namespaces."""
    return Filesystem(
        "tmpfs",
        features=FsFeatures(user_xattrs=True),
        owning_userns=owning_userns,
        root_uid=root_uid,
        root_gid=root_gid,
        root_mode=root_mode,
        label=label,
    )


def make_nfs(
    label: str = "nfs", *, xattr_support: bool = False
) -> Filesystem:
    """NFS share.

    ``xattr_support=False`` is the default deployed configuration; Linux 5.9 +
    NFSv4.2 servers can enable it (paper §6.2.1) — pass True to model that.
    Server-side ID enforcement is always on: the server cannot see client
    user namespaces.
    """
    return Filesystem(
        "nfs",
        features=FsFeatures(user_xattrs=xattr_support, remote_id_enforcement=True),
        label=label,
    )


def make_lustre(
    label: str = "lustre", *, xattr_support: bool = False
) -> Filesystem:
    """Lustre scratch filesystem.

    Default-configured Lustre lacks ``user.*`` xattrs on MDS/OST (paper
    §6.1); sites can enable them on both the metadata server and storage
    targets (§6.2.1).
    """
    return Filesystem(
        "lustre",
        features=FsFeatures(user_xattrs=xattr_support, remote_id_enforcement=True),
        label=label,
    )


def make_gpfs(label: str = "gpfs", *, xattr_support: bool = False) -> Filesystem:
    """GPFS/Spectrum Scale; xattr behaviour "not evaluated" in the paper, so
    default to unsupported (conservative)."""
    return Filesystem(
        "gpfs",
        features=FsFeatures(user_xattrs=xattr_support, remote_id_enforcement=True),
        label=label,
    )
