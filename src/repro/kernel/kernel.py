"""The simulated kernel: process table, namespaces, clock, sysctls.

One :class:`Kernel` == one machine (one node of the cluster substrate).  The
kernel owns the initial user namespace, boots with a root filesystem, and
hands out :class:`~repro.kernel.process.Process` objects.
"""

from __future__ import annotations

import itertools
import os
from typing import Optional

from ..errors import Errno, KernelError
from .cred import Credentials
from .mounts import MountNamespace
from .process import Process
from .userns import UserNamespace
from .vfs import Filesystem

__all__ = ["Kernel"]


class Kernel:
    """A simulated Linux kernel instance.

    Parameters
    ----------
    root_fs:
        Filesystem mounted at ``/``.
    arch:
        ISA of this machine (``x86_64``, ``aarch64``, ``ppc64le``); binaries
        record the ISA they were built for and exec of a mismatched binary
        fails with ENOEXEC, which is what forces Astra users to build on the
        machine itself (paper §4.2).
    kernel_version:
        Feature-gates version-dependent behaviour (user namespaces need
        >= (3, 8); paper §3.1).
    """

    def __init__(
        self,
        root_fs: Filesystem,
        *,
        arch: str = "x86_64",
        hostname: str = "localhost",
        kernel_version: tuple[int, int] = (5, 10),
        userns_enabled: bool = True,
    ):
        self.arch = arch
        self.hostname = hostname
        self.kernel_version = kernel_version
        self.root_fs = root_fs
        self.init_userns = UserNamespace.initial()
        self._ticks = 0
        self._pids = itertools.count(1)
        self.processes: dict[int, Process] = {}
        #: every spawn ever: (pid, comm, euid, caps, userns); see spawn()
        self.spawn_log: list[tuple] = []
        self.userns_count = 0
        self.sysctl: dict[str, int] = {
            "user.max_user_namespaces": 0 if not userns_enabled else 63414,
            # §6.2.4 future-work feature: when 1, the kernel grants every
            # user a guaranteed-unique subordinate range derived from the
            # UID, writable into unprivileged maps with no helper tools.
            "user.autosub_userns": 0,
        }
        #: Attachment point for the outside world (package repos, registries);
        #: set by the cluster substrate.  None = air-gapped.
        self.network = None
        #: Optional :class:`~repro.obs.SyscallTracer`; None = tracing off
        #: (the instrumented syscall fast path checks exactly this).
        self.tracer = None
        if os.environ.get("REPRO_TRACE"):
            from ..obs.trace import attach_tracer
            attach_tracer(self)

        init_mnt = MountNamespace(root_fs, owning_userns=self.init_userns)
        self.init_process = Process(
            self, next(self._pids), 0, Credentials.root(self.init_userns), init_mnt,
            comm="init",
        )
        self.processes[self.init_process.pid] = self.init_process

    #: base of the kernel-managed auto-subordinate ID space (§6.2.4 model):
    #: user *u* owns [AUTOSUB_BASE + u*65536, +65536).  Disjoint from normal
    #: UID allocation and from /etc/subuid's SUB_UID_MIN default space only
    #: if sysadmins keep them apart — exactly the "guaranteed-unique" policy
    #: the paper suggests the kernel could provide.
    AUTOSUB_BASE = 1 << 28
    AUTOSUB_COUNT = 65536

    def autosub_range(self, uid: int) -> tuple[int, int]:
        """(start, count) of the kernel-guaranteed range for *uid*."""
        return self.AUTOSUB_BASE + uid * self.AUTOSUB_COUNT, \
            self.AUTOSUB_COUNT

    # -- time -----------------------------------------------------------------

    def now(self) -> int:
        """Deterministic monotonic clock (ticks, not seconds).  Each call
        *advances* time — the simulation charges one tick per stamped
        operation."""
        self._ticks += 1
        return self._ticks

    @property
    def ticks(self) -> int:
        """Current sim-time without advancing it (tracer timestamps must
        not perturb mtimes or any other now()-derived state)."""
        return self._ticks

    # -- namespaces -------------------------------------------------------------

    def supports_userns(self) -> bool:
        return self.kernel_version >= (3, 8) and (
            self.sysctl["user.max_user_namespaces"] > 0
        )

    def create_userns(self, parent: UserNamespace, owner_uid: int,
                      owner_gid: int) -> UserNamespace:
        if not self.supports_userns():
            raise KernelError(
                Errno.EPERM,
                "user namespaces unavailable (kernel too old or disabled by sysctl)",
            )
        if self.userns_count >= self.sysctl["user.max_user_namespaces"]:
            raise KernelError(Errno.ENOSPC, "user.max_user_namespaces exceeded")
        ns = UserNamespace(parent, owner_uid, owner_gid)
        self.userns_count += 1
        return ns

    # -- processes ---------------------------------------------------------------

    def spawn(
        self,
        *,
        parent: Optional[Process] = None,
        cred: Optional[Credentials] = None,
        mnt_ns: Optional[MountNamespace] = None,
        cwd: str = "/",
        umask: int = 0o022,
        environ: Optional[dict[str, str]] = None,
        comm: str = "proc",
    ) -> Process:
        """Create a process (fork/clone-style)."""
        parent = parent or self.init_process
        proc = Process(
            self,
            next(self._pids),
            parent.pid,
            cred if cred is not None else parent.cred.copy(),
            mnt_ns if mnt_ns is not None else parent.mnt_ns,
            cwd=cwd,
            umask=umask,
            environ=environ,
            comm=comm,
        )
        self.processes[proc.pid] = proc
        # audit trail: (pid, comm, euid-at-spawn, caps-at-spawn, userns) —
        # survives reaping, so privilege audits can see short-lived helpers
        self.spawn_log.append(
            (proc.pid, comm, proc.cred.euid, frozenset(proc.cred.caps),
             proc.cred.userns))
        return proc

    def login(self, uid: int, gid: int, groups: frozenset[int] = frozenset(),
              *, user: str = "user", home: str = "/") -> Process:
        """Convenience: a login shell process for an unprivileged user."""
        cred = Credentials.for_user(uid, gid, groups, self.init_userns)
        env = {"HOME": home, "USER": user, "PATH": "/usr/sbin:/usr/bin:/sbin:/bin"}
        return self.spawn(cred=cred, cwd=home if home else "/", environ=env,
                          comm=f"{user}-shell")

    def reap(self, proc: Process) -> None:
        self.processes.pop(proc.pid, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Kernel {self.hostname} arch={self.arch} "
            f"v{self.kernel_version[0]}.{self.kernel_version[1]} "
            f"procs={len(self.processes)}>"
        )
