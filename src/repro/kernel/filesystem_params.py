"""Latency/throughput parameters for simulated filesystem types.

Used by the benchmark harness to give storage-driver comparisons a realistic
*shape* (local disk ≪ shared filesystem metadata latency; FUSE adds
per-operation overhead).  Values are simulated cost units per metadata
operation and per byte, not wall-clock claims.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FsParams", "FS_PARAMS"]


@dataclass(frozen=True)
class FsParams:
    """Simulated cost model for one filesystem type."""

    meta_op_cost: float  # per metadata operation (create/chown/stat)
    byte_cost: float  # per byte written
    fuse_overhead: float = 0.0  # extra multiplier when accessed through FUSE


FS_PARAMS: dict[str, FsParams] = {
    "ext4": FsParams(meta_op_cost=1.0, byte_cost=0.001),
    "tmpfs": FsParams(meta_op_cost=0.5, byte_cost=0.0005),
    "nfs": FsParams(meta_op_cost=25.0, byte_cost=0.01),
    "lustre": FsParams(meta_op_cost=15.0, byte_cost=0.002),
    "gpfs": FsParams(meta_op_cost=18.0, byte_cost=0.003),
    "proc": FsParams(meta_op_cost=0.2, byte_cost=0.0),
    "sysfs": FsParams(meta_op_cost=0.2, byte_cost=0.0),
    "overlay": FsParams(meta_op_cost=1.2, byte_cost=0.0012, fuse_overhead=0.3),
}
