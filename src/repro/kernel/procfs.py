"""A minimal /proc filesystem.

Rendered per-mount: the interesting property for the paper is *ownership* —
proc entries are owned by init-namespace root, so inside a container whose
user namespace does not map kernel UID 0 they appear owned by ``nobody`` and
are untouchable even by the container's root.  That is the mechanism behind
the Figure 5 failure of Podman's unprivileged mode.
"""

from __future__ import annotations

from .kernel import Kernel
from .process import Process
from .vfs import FileType, Filesystem, FsFeatures

__all__ = ["make_procfs", "make_sysfs"]


def _add_file(fs: Filesystem, parent, name: str, content: str, *,
              mode: int = 0o444, uid: int = 0, gid: int = 0) -> None:
    node = fs.alloc(FileType.REG, mode, uid, gid, data=content.encode())
    fs.link_child(parent, name, node)


def _add_dir(fs: Filesystem, parent, name: str, *, mode: int = 0o555,
             uid: int = 0, gid: int = 0):
    node = fs.alloc(FileType.DIR, mode, uid, gid)
    fs.link_child(parent, name, node)
    return node


def make_procfs(kernel: Kernel, proc: Process) -> Filesystem:
    """Build a /proc snapshot for *proc*.

    Real procfs is dynamic; a per-mount snapshot is enough here because the
    files the substrates read (uid_map, gid_map, setgroups, sysctls) are
    fixed at container-entry time.  Every inode is owned by kernel root
    (uid 0, gid 0), as on Linux.
    """
    fs = Filesystem("proc", features=FsFeatures(user_xattrs=False),
                    label="proc", root_mode=0o555)
    root = fs.root

    ns = proc.cred.userns
    uid_map = ns.uid_map.format() if ns.uid_map is not None else ""
    gid_map = ns.gid_map.format() if ns.gid_map is not None else ""

    self_dir = _add_dir(fs, root, "self")
    _add_file(fs, self_dir, "uid_map", uid_map, mode=0o644)
    _add_file(fs, self_dir, "gid_map", gid_map, mode=0o644)
    _add_file(fs, self_dir, "setgroups", ns.setgroups + "\n", mode=0o644)
    _add_file(fs, self_dir, "status",
              f"Name:\t{proc.comm}\nPid:\t{proc.pid}\n"
              f"Uid:\t{proc.cred.ruid}\t{proc.cred.euid}\t"
              f"{proc.cred.suid}\t{proc.cred.fsuid}\n")

    sys_dir = _add_dir(fs, root, "sys")
    net_dir = _add_dir(fs, sys_dir, "net")
    ipv4_dir = _add_dir(fs, net_dir, "ipv4")
    _add_file(fs, ipv4_dir, "ip_forward", "0\n", mode=0o644)
    user_dir = _add_dir(fs, sys_dir, "user")
    _add_file(fs, user_dir, "max_user_namespaces",
              str(kernel.sysctl["user.max_user_namespaces"]) + "\n", mode=0o644)
    kdir = _add_dir(fs, sys_dir, "kernel")
    _add_file(fs, kdir, "osrelease",
              f"{kernel.kernel_version[0]}.{kernel.kernel_version[1]}.0\n")
    hostname = (proc.uts.hostname if proc.uts is not None
                else kernel.hostname)
    _add_file(fs, kdir, "hostname", hostname + "\n", mode=0o644)

    _add_file(fs, root, "cpuinfo",
              f"processor\t: 0\narchitecture\t: {kernel.arch}\n")
    _add_file(fs, root, "filesystems",
              "".join(f"nodev\t{t}\n" for t in ("proc", "tmpfs", "overlay")))
    return fs


def make_sysfs(kernel: Kernel) -> Filesystem:
    """A skeletal /sys, owned by kernel root like /proc."""
    fs = Filesystem("sysfs", features=FsFeatures(user_xattrs=False),
                    label="sysfs", root_mode=0o555)
    root = fs.root
    kdir = _add_dir(fs, root, "kernel")
    _add_file(fs, kdir, "arch", kernel.arch + "\n")
    fsdir = _add_dir(fs, root, "fs")
    _add_dir(fs, fsdir, "cgroup")
    return fs
