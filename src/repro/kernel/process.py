"""Processes: credentials + namespaces + working directory.

A container is not a first-class kernel object — it is just a process (or
group of processes) with its own view of kernel resources (paper §1), so the
container implementations in :mod:`repro.containers` and :mod:`repro.core`
are built purely out of these processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .cred import Credentials
from .mounts import MountNamespace

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .userns import UserNamespace

__all__ = ["Process", "UtsNamespace"]


class UtsNamespace:
    """A UTS namespace: per-container hostname (one of the 'about a half
    dozen other types of namespace' of paper §2.1)."""

    def __init__(self, hostname: str, owning_userns: "UserNamespace"):
        self.hostname = hostname
        self.owning_userns = owning_userns


class PidNamespace:
    """A PID namespace: processes get their own PID numbering (the first
    member is PID 1).  Host-side PIDs remain visible to the resource
    manager — the §3.1 tracking property."""

    def __init__(self, owning_userns: "UserNamespace"):
        self.owning_userns = owning_userns
        self._next = 1

    def allocate(self) -> int:
        pid = self._next
        self._next += 1
        return pid


class Process:
    """One simulated process."""

    def __init__(
        self,
        kernel: "Kernel",
        pid: int,
        ppid: int,
        cred: Credentials,
        mnt_ns: MountNamespace,
        *,
        cwd: str = "/",
        umask: int = 0o022,
        environ: Optional[dict[str, str]] = None,
        comm: str = "init",
    ):
        self.kernel = kernel
        self.pid = pid
        self.ppid = ppid
        self.cred = cred
        self.mnt_ns = mnt_ns
        self.cwd = cwd
        self.umask = umask
        self.environ: dict[str, str] = dict(environ or {})
        self.comm = comm
        self.alive = True
        self.exit_status: Optional[int] = None
        #: UTS namespace; None = the initial one (kernel hostname)
        self.uts: Optional[UtsNamespace] = None
        #: PID namespace; None = the initial one (ns_pid == pid)
        self.pid_ns: Optional[PidNamespace] = None
        #: PID as seen inside pid_ns (host pid when in the initial ns)
        self.ns_pid: int = pid

    def fork(self, *, comm: str | None = None,
             new_pid_ns: bool = False) -> "Process":
        """Create a child sharing namespaces, copying credentials.

        ``new_pid_ns`` models clone(CLONE_NEWPID): the child becomes PID 1
        of a fresh namespace (the container-init pattern).
        """
        child = self.kernel.spawn(
            parent=self,
            cred=self.cred.copy(),
            mnt_ns=self.mnt_ns,
            cwd=self.cwd,
            umask=self.umask,
            environ=dict(self.environ),
            comm=comm or self.comm,
        )
        child.uts = self.uts
        if new_pid_ns:
            child.pid_ns = PidNamespace(self.cred.userns)
            child.ns_pid = child.pid_ns.allocate()
        elif self.pid_ns is not None:
            child.pid_ns = self.pid_ns
            child.ns_pid = self.pid_ns.allocate()
        return child

    def exit(self, status: int) -> None:
        self.alive = False
        self.exit_status = status
        self.kernel.reap(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process pid={self.pid} comm={self.comm!r} euid={self.cred.euid}>"
