"""Fundamental kernel ID types and constants.

The kernel is concerned only with integer IDs in ``[0, 2**32 - 1]``
(paper §2.1, footnote 4); translation to user/group *names* is a user-space
operation implemented in :mod:`repro.distro.users`.
"""

from __future__ import annotations

__all__ = [
    "ID_MAX",
    "OVERFLOW_UID",
    "OVERFLOW_GID",
    "ROOT_UID",
    "ROOT_GID",
    "check_id",
]

#: Maximum valid kernel ID (32-bit, inclusive).
ID_MAX = 2**32 - 1

#: The "overflow" UID shown for IDs with no mapping in the current user
#: namespace (``nobody``).
OVERFLOW_UID = 65534

#: The "overflow" GID (``nogroup``).
OVERFLOW_GID = 65534

ROOT_UID = 0
ROOT_GID = 0


def check_id(value: int, what: str = "id") -> int:
    """Validate that *value* is a legal kernel UID/GID.

    Returns the value unchanged; raises :class:`ValueError` otherwise.
    (-1 is *not* legal here; syscalls that accept -1 as "unchanged" handle
    that before translation.)
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{what} must be an int, got {value!r}")
    if not 0 <= value <= ID_MAX:
        raise ValueError(f"{what} out of range [0, 2**32-1]: {value}")
    return value
