"""Simulated Linux kernel substrate.

Everything the paper's container analysis depends on: user namespaces with
UID/GID maps, mount namespaces, a VFS with UNIX permission semantics,
capabilities, and a syscall layer with faithful errno behaviour.
"""

from .capabilities import Cap, EMPTY_CAP_SET, FULL_CAP_SET, cap_set
from .cred import Credentials
from .filesystem import make_ext4, make_gpfs, make_lustre, make_nfs, make_tmpfs
from .idmap import IDENTITY_MAP, IdMap, IdMapEntry
from .kernel import Kernel
from .mounts import MountFlags, MountNamespace, normpath
from .process import Process
from .procfs import make_procfs, make_sysfs
from .syscalls import DirEntry, StatResult, Syscalls
from .types import ID_MAX, OVERFLOW_GID, OVERFLOW_UID, ROOT_GID, ROOT_UID
from .userns import SetgroupsPolicy, UserNamespace
from .vfs import (
    FileType,
    Filesystem,
    FsFeatures,
    Inode,
    copy_tree,
    may_access,
    mode_to_string,
)

__all__ = [
    "Cap",
    "EMPTY_CAP_SET",
    "FULL_CAP_SET",
    "cap_set",
    "Credentials",
    "make_ext4",
    "make_gpfs",
    "make_lustre",
    "make_nfs",
    "make_tmpfs",
    "IDENTITY_MAP",
    "IdMap",
    "IdMapEntry",
    "Kernel",
    "MountFlags",
    "MountNamespace",
    "normpath",
    "Process",
    "make_procfs",
    "make_sysfs",
    "DirEntry",
    "StatResult",
    "Syscalls",
    "ID_MAX",
    "OVERFLOW_GID",
    "OVERFLOW_UID",
    "ROOT_GID",
    "ROOT_UID",
    "SetgroupsPolicy",
    "UserNamespace",
    "FileType",
    "Filesystem",
    "FsFeatures",
    "Inode",
    "copy_tree",
    "may_access",
    "mode_to_string",
]
