"""Virtual filesystem: inodes, directories, permission evaluation.

Inodes store *kernel* UIDs/GIDs.  Permission evaluation follows UNIX
semantics exactly as the paper relies on in §2.1.4: the classes are checked
in the order user, group, other — and the **first match governs**, so a
group-deny (e.g. ``rwx---r-x``) can deny a group member something "other"
would be allowed.
"""

from __future__ import annotations

import enum
import itertools
import stat as _stat
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import Errno, KernelError
from .capabilities import Cap
from .cred import Credentials
from .userns import UserNamespace

__all__ = [
    "FileType",
    "Inode",
    "Filesystem",
    "FsFeatures",
    "mode_to_string",
    "copy_tree",
]

_device_ids = itertools.count(1)


class FileType(enum.Enum):
    """Inode types."""

    REG = "regular file"
    DIR = "directory"
    SYMLINK = "symbolic link"
    CHR = "character device"
    BLK = "block device"
    FIFO = "fifo"
    SOCK = "socket"


_TYPE_CHAR = {
    FileType.REG: "-",
    FileType.DIR: "d",
    FileType.SYMLINK: "l",
    FileType.CHR: "c",
    FileType.BLK: "b",
    FileType.FIFO: "p",
    FileType.SOCK: "s",
}

_ST_MODE_BITS = {
    FileType.REG: _stat.S_IFREG,
    FileType.DIR: _stat.S_IFDIR,
    FileType.SYMLINK: _stat.S_IFLNK,
    FileType.CHR: _stat.S_IFCHR,
    FileType.BLK: _stat.S_IFBLK,
    FileType.FIFO: _stat.S_IFIFO,
    FileType.SOCK: _stat.S_IFSOCK,
}


def mode_to_string(ftype: FileType, mode: int) -> str:
    """Render a mode like ls -l: ``-rw-r--r--``, honouring suid/sgid/sticky."""
    chars = list(_TYPE_CHAR[ftype])
    for shift, (r, w, x) in ((6, "rwx"), (3, "rwx"), (0, "rwx")):
        bits = (mode >> shift) & 0o7
        chars.append(r if bits & 4 else "-")
        chars.append(w if bits & 2 else "-")
        chars.append(x if bits & 1 else "-")
    out = chars
    if mode & 0o4000:  # setuid
        out[3] = "s" if out[3] == "x" else "S"
    if mode & 0o2000:  # setgid
        out[6] = "s" if out[6] == "x" else "S"
    if mode & 0o1000:  # sticky
        out[9] = "t" if out[9] == "x" else "T"
    return "".join(out)


@dataclass
class Inode:
    """A filesystem object.

    ``uid``/``gid`` are kernel IDs.  ``mode`` holds the 12 permission bits
    (rwxrwxrwx + setuid/setgid/sticky).  Executables carry simulation
    metadata: ``exe_impl`` names a registered userland implementation,
    ``exe_arch`` is the ISA the binary was compiled for, and ``exe_static``
    marks statically linked binaries (which LD_PRELOAD wrappers cannot
    intercept — paper §5.1).
    """

    ino: int
    ftype: FileType
    mode: int
    uid: int
    gid: int
    nlink: int = 1
    data: bytes = b""
    entries: dict[str, int] = field(default_factory=dict)
    target: str = ""  # symlink target
    rdev: tuple[int, int] = (0, 0)  # (major, minor) for devices
    xattrs: dict[str, bytes] = field(default_factory=dict)
    atime: int = 0
    mtime: int = 0
    ctime: int = 0
    exe_impl: Optional[str] = None
    exe_arch: str = "noarch"
    exe_static: bool = False
    #: Change-journal generation counters (monotonic per filesystem).
    #: ``gen`` is the generation of the last mutation touching this inode
    #: itself; ``tree_gen`` additionally reflects mutations anywhere below
    #: a directory, so a snapshot walker can skip whole clean subtrees.
    gen: int = 0
    tree_gen: int = 0

    @property
    def size(self) -> int:
        if self.ftype is FileType.REG:
            return len(self.data)
        if self.ftype is FileType.SYMLINK:
            return len(self.target)
        return 0

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIR

    @property
    def st_mode(self) -> int:
        """Full st_mode word (type bits | permission bits)."""
        return _ST_MODE_BITS[self.ftype] | (self.mode & 0o7777)


@dataclass(frozen=True)
class FsFeatures:
    """Feature/behaviour flags distinguishing filesystem types.

    ``user_xattrs``: whether the ``user.*`` xattr namespace works.  Default
    NFS/Lustre lack it, which is what breaks rootless Podman's
    fuse-overlayfs on shared filesystems (paper §6.1).

    ``remote_id_enforcement``: network filesystems where the *server*
    decides whether a file may be created/chowned with a foreign UID; client
    user namespaces are invisible to it (paper §4.2).
    """

    user_xattrs: bool = True
    remote_id_enforcement: bool = False
    read_only: bool = False


class Filesystem:
    """A mounted filesystem instance: a pool of inodes with a root directory.

    ``owning_userns`` is the user namespace that owns the superblock; it
    feeds mount-level privilege decisions (e.g. implicit nosuid for mounts
    owned by non-initial namespaces).
    """

    def __init__(
        self,
        fstype: str,
        *,
        features: FsFeatures = FsFeatures(),
        owning_userns: Optional[UserNamespace] = None,
        root_uid: int = 0,
        root_gid: int = 0,
        root_mode: int = 0o755,
        label: str = "",
    ):
        self.fstype = fstype
        self.features = features
        self.owning_userns = owning_userns
        self.label = label or fstype
        self.device_id = next(_device_ids)
        self._inodes: dict[int, Inode] = {}
        self._next_ino = itertools.count(2)
        #: Change journal: one monotonic generation counter per superblock.
        #: Every mutating operation bumps it and stamps the touched inode;
        #: directory ``tree_gen`` is propagated to ancestors via
        #: ``_parents`` so "anything changed below here since gen G?" is a
        #: single integer comparison.
        self.gen = 0
        self._parents: dict[int, set[int]] = {}
        root = Inode(
            ino=1, ftype=FileType.DIR, mode=root_mode, uid=root_uid, gid=root_gid,
            nlink=2,
        )
        self._inodes[1] = root
        self.root_ino = 1

    # -- inode management --------------------------------------------------------

    def inode(self, ino: int) -> Inode:
        try:
            return self._inodes[ino]
        except KeyError:
            raise KernelError(Errno.EIO, f"stale inode {ino} on {self.label}")

    @property
    def root(self) -> Inode:
        return self.inode(self.root_ino)

    def alloc(
        self,
        ftype: FileType,
        mode: int,
        uid: int,
        gid: int,
        *,
        now: int = 0,
        **extra,
    ) -> Inode:
        """Allocate a fresh unlinked inode."""
        if self.features.read_only:
            raise KernelError(Errno.EROFS, self.label)
        ino = next(self._next_ino)
        self.gen += 1
        node = Inode(
            ino=ino, ftype=ftype, mode=mode & 0o7777, uid=uid, gid=gid,
            nlink=0, atime=now, mtime=now, ctime=now,
            gen=self.gen, tree_gen=self.gen, **extra,
        )
        self._inodes[ino] = node
        return node

    def touch(self, node: Inode) -> int:
        """Journal one mutation of *node*: bump the superblock generation,
        stamp the inode, and propagate ``tree_gen`` to every ancestor
        directory.  Propagation early-exits at ancestors already stamped
        with a newer-or-equal generation, so repeated mutations in one
        subtree cost O(depth) only on the first."""
        self.gen += 1
        g = self.gen
        node.gen = g
        stack = [node.ino]
        while stack:
            ino = stack.pop()
            cur = self._inodes.get(ino)
            if cur is None or cur.tree_gen >= g:
                continue
            cur.tree_gen = g
            stack.extend(self._parents.get(ino, ()))
        node.tree_gen = g
        return g

    def link_child(self, parent: Inode, name: str, child: Inode) -> None:
        """Add a directory entry; maintains nlink."""
        if not parent.is_dir:
            raise KernelError(Errno.ENOTDIR)
        if name in parent.entries:
            raise KernelError(Errno.EEXIST, name)
        if not name or "/" in name or name in (".", ".."):
            raise KernelError(Errno.EINVAL, f"bad entry name {name!r}")
        parent.entries[name] = child.ino
        child.nlink += 1
        if child.is_dir:
            child.nlink += 1  # the child's own "." entry
            parent.nlink += 1  # the child's ".." entry
        self._parents.setdefault(child.ino, set()).add(parent.ino)
        self.touch(parent)

    def unlink_child(self, parent: Inode, name: str) -> Inode:
        """Remove a directory entry; drops dangling inodes."""
        try:
            ino = parent.entries.pop(name)
        except KeyError:
            raise KernelError(Errno.ENOENT, name)
        child = self.inode(ino)
        child.nlink -= 1
        if child.is_dir:
            child.nlink -= 1  # its "." entry
            parent.nlink -= 1
        parents = self._parents.get(ino)
        if parents is not None:
            # A hardlinked inode may still be reachable through another
            # directory; only this parent edge goes away.
            if child.is_dir or child.nlink <= 0 or not any(
                    e == ino for e in parent.entries.values()):
                parents.discard(parent.ino)
        if child.nlink <= 0:
            self._inodes.pop(ino, None)
            self._parents.pop(ino, None)
        self.touch(parent)
        return child

    def lookup(self, parent: Inode, name: str) -> Optional[Inode]:
        ino = parent.entries.get(name)
        return None if ino is None else self.inode(ino)

    def iter_tree(self, start_ino: int | None = None) -> Iterator[tuple[str, Inode]]:
        """Yield (path-relative, inode) pairs depth-first from *start_ino*."""
        start = self.inode(start_ino if start_ino is not None else self.root_ino)

        def walk(node: Inode, prefix: str) -> Iterator[tuple[str, Inode]]:
            for name in sorted(node.entries):
                child = self.inode(node.entries[name])
                path = f"{prefix}/{name}" if prefix else name
                yield path, child
                if child.is_dir:
                    yield from walk(child, path)

        yield from walk(start, "")

    def total_bytes(self, start_ino: int | None = None) -> int:
        """Total regular-file bytes under *start_ino* (storage accounting)."""
        return sum(
            node.size for _, node in self.iter_tree(start_ino)
            if node.ftype is FileType.REG
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Filesystem {self.label} ({self.fstype}) inodes={len(self._inodes)}>"


# -- permission evaluation --------------------------------------------------------


def ids_mapped(cred: Credentials, inode: Inode) -> bool:
    """privileged_wrt_inode_uidgid(): are the inode's IDs visible in cred's ns?

    Capability-based overrides (CAP_DAC_OVERRIDE, CAP_CHOWN, CAP_FOWNER...)
    only apply when the inode's uid *and* gid both map into the caller's user
    namespace.  This single rule is why a container root can freely modify
    image files (mapped) but not /proc entries owned by unmapped host root
    (paper §4.1.1, Figure 5).
    """
    return (
        cred.userns.uid_from_host(inode.uid) is not None
        and cred.userns.gid_from_host(inode.gid) is not None
    )


def capable_wrt_inode(cred: Credentials, inode: Inode, cap: Cap) -> bool:
    """capable_wrt_inode_uidgid(): cap in own ns + inode IDs mapped."""
    return cred.has_cap(cap) and ids_mapped(cred, inode)


def may_access(
    cred: Credentials,
    inode: Inode,
    *,
    read: bool = False,
    write: bool = False,
    execute: bool = False,
) -> bool:
    """Evaluate UNIX permissions for *cred* on *inode*.

    Checked classes in order user, group, other; first match governs
    (paper §2.1.4).  CAP_DAC_OVERRIDE bypasses rw checks (and x on
    directories / files with any x bit), subject to the inode IDs being
    mapped in the caller's namespace.
    """
    want = 0
    if read:
        want |= 4
    if write:
        want |= 2
    if execute:
        want |= 1

    if capable_wrt_inode(cred, inode, Cap.DAC_OVERRIDE):
        if execute and inode.ftype is FileType.REG and not (inode.mode & 0o111):
            return False  # even root needs one x bit to exec a regular file
        return True
    if (
        not write
        and not execute
        and capable_wrt_inode(cred, inode, Cap.DAC_READ_SEARCH)
    ):
        return True

    if cred.fsuid == inode.uid:
        bits = (inode.mode >> 6) & 0o7
    elif cred.in_group(inode.gid):
        bits = (inode.mode >> 3) & 0o7
    else:
        bits = inode.mode & 0o7
    return (bits & want) == want


# -- raw tree copy (driver-level, bypasses permissions) ----------------------------


def copy_tree(
    src_fs: Filesystem,
    src_ino: int,
    dst_fs: Filesystem,
    dst_parent_ino: int,
    name: str,
    *,
    now: int = 0,
) -> Inode:
    """Recursively copy a subtree preserving all metadata.

    This is a *driver-level* operation (no permission checks): it models what
    storage drivers do inside their own context, e.g. the vfs driver
    duplicating a layer (paper §4.1).  Returns the new root inode of the copy.
    """
    src = src_fs.inode(src_ino)
    parent = dst_fs.inode(dst_parent_ino)
    dup = dst_fs.alloc(
        src.ftype, src.mode, src.uid, src.gid, now=now,
        data=src.data, target=src.target, rdev=src.rdev,
        exe_impl=src.exe_impl, exe_arch=src.exe_arch, exe_static=src.exe_static,
    )
    dup.xattrs = dict(src.xattrs)
    dup.mtime = src.mtime
    dst_fs.link_child(parent, name, dup)
    if src.is_dir:
        for child_name in sorted(src.entries):
            copy_tree(src_fs, src.entries[child_name], dst_fs, dup.ino, child_name,
                      now=now)
    return dup
