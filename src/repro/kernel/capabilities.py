"""Linux capabilities (capabilities(7)).

Only the capabilities the paper's analysis touches are modelled, plus a few
the substrates need.  A *capability set* is a frozenset of :class:`Cap`.
"""

from __future__ import annotations

import enum

__all__ = ["Cap", "FULL_CAP_SET", "EMPTY_CAP_SET", "cap_set"]


class Cap(enum.Enum):
    """A subset of Linux capabilities."""

    CHOWN = "CAP_CHOWN"
    DAC_OVERRIDE = "CAP_DAC_OVERRIDE"
    DAC_READ_SEARCH = "CAP_DAC_READ_SEARCH"
    FOWNER = "CAP_FOWNER"
    FSETID = "CAP_FSETID"
    KILL = "CAP_KILL"
    SETGID = "CAP_SETGID"
    SETUID = "CAP_SETUID"
    SETPCAP = "CAP_SETPCAP"
    NET_BIND_SERVICE = "CAP_NET_BIND_SERVICE"
    NET_ADMIN = "CAP_NET_ADMIN"
    SYS_CHROOT = "CAP_SYS_CHROOT"
    SYS_ADMIN = "CAP_SYS_ADMIN"
    SYS_PTRACE = "CAP_SYS_PTRACE"
    MKNOD = "CAP_MKNOD"
    AUDIT_WRITE = "CAP_AUDIT_WRITE"
    SETFCAP = "CAP_SETFCAP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All modelled capabilities — what UID 0 (or a new user namespace creator)
#: holds.
FULL_CAP_SET: frozenset[Cap] = frozenset(Cap)

#: No capabilities — a normal unprivileged process.
EMPTY_CAP_SET: frozenset[Cap] = frozenset()


def cap_set(*caps: Cap) -> frozenset[Cap]:
    """Convenience constructor for a capability set."""
    return frozenset(caps)
