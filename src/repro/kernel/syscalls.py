"""The system-call layer.

A :class:`Syscalls` instance is bound to one process and exposes the calls
the paper's analysis turns on, with faithful privilege/errno semantics:

* ``chown(2)``: needs CAP_CHOWN *in the caller's user namespace* **and** the
  inode's IDs mapped there (``capable_wrt_inode_uidgid``); target IDs that
  don't map raise EINVAL.  This is exactly why Figure 2's
  ``cpio: chown`` fails in a Type III container and succeeds in Type II.
* ``setgroups(2)``: EPERM in unprivileged user namespaces (Figure 3 line
  "setgroups 65534 failed ... (1: Operation not permitted)").
* ``setresuid(2)`` & friends: EINVAL (22) for IDs with no mapping (Figure 3
  line "seteuid 100 failed - seteuid (22: Invalid argument)").
* uid_map/gid_map writes: once-only, single-ID unless the writer holds
  CAP_SETUID/CAP_SETGID in the parent namespace, and the unprivileged
  gid_map path demands setgroups be denied first (§2.1.4).

The fakeroot implementations in :mod:`repro.fakeroot` interpose on this
class, which mirrors how the real tools interpose on libc/ptrace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..errors import Errno, KernelError
from ..obs.trace import instrument_syscalls
from .capabilities import Cap
from .idmap import IdMap, IdMapEntry
from .mounts import MountFlags, Resolved, normpath
from .process import Process
from .userns import UserNamespace
from .vfs import (
    FileType,
    Filesystem,
    Inode,
    capable_wrt_inode,
    copy_tree,
    ids_mapped,
    may_access,
)

__all__ = ["Syscalls", "StatResult", "DirEntry"]


@dataclass(frozen=True)
class StatResult:
    """stat(2) result.  st_uid/st_gid are translated into the *caller's*
    user namespace (unmapped IDs show as the overflow IDs, i.e. nobody /
    nogroup — paper §2.1.1 case 3).  ``kuid``/``kgid`` expose the raw kernel
    IDs for tests and host-side tooling."""

    st_ino: int
    st_dev: int
    st_mode: int
    st_nlink: int
    st_uid: int
    st_gid: int
    st_size: int
    st_rdev: tuple[int, int]
    st_mtime: int
    ftype: FileType
    kuid: int
    kgid: int
    #: Change-journal generations (simulation-side statx extension): the
    #: inode's own last-mutation generation and, for directories, the
    #: newest generation anywhere in the subtree below it.
    st_gen: int = 0
    st_tree_gen: int = 0
    #: Executable simulation metadata, surfaced here so archivers get it
    #: from the stat they already issued instead of resolving the path a
    #: second time.
    exe_impl: Optional[str] = None
    exe_arch: str = "noarch"
    exe_static: bool = False


@dataclass(frozen=True)
class DirEntry:
    name: str
    ftype: FileType


@instrument_syscalls("kernel")
class Syscalls:
    """System calls as invoked by one process."""

    def __init__(self, proc: Process):
        self.proc = proc

    def clone_for(self, proc: Process) -> "Syscalls":
        """The syscall interface a forked child gets.  Wrappers that are
        inherited across fork (seccomp filters, LD_PRELOAD environments)
        override this to re-wrap the child."""
        return Syscalls(proc)

    # convenience accessors -----------------------------------------------------

    @property
    def cred(self):
        return self.proc.cred

    @property
    def kernel(self):
        return self.proc.kernel

    @property
    def mnt_ns(self):
        return self.proc.mnt_ns

    def _resolve(self, path: str, *, follow: bool = True) -> Resolved:
        return self.mnt_ns.resolve(path, self.cred, follow=follow,
                                   cwd=self.proc.cwd)

    def _resolve_parent(self, path: str):
        return self.mnt_ns.resolve_parent(path, self.cred, cwd=self.proc.cwd)

    def _check_writable_mount(self, res_mount, call: str = "") -> None:
        if res_mount.flags.read_only or res_mount.fs.features.read_only:
            raise KernelError(Errno.EROFS, res_mount.mountpoint, syscall=call)

    # -- identity ---------------------------------------------------------------

    def getuid(self) -> int:
        return self.cred.userns.uid_display(self.cred.ruid)

    def geteuid(self) -> int:
        return self.cred.userns.uid_display(self.cred.euid)

    def getgid(self) -> int:
        return self.cred.userns.gid_display(self.cred.rgid)

    def getegid(self) -> int:
        return self.cred.userns.gid_display(self.cred.egid)

    def getgroups(self) -> list[int]:
        ns = self.cred.userns
        return sorted(ns.gid_display(g) for g in self.cred.groups)

    def getpid(self) -> int:
        """PID as seen in the caller's PID namespace."""
        return self.proc.ns_pid

    def getppid(self) -> int:
        parent = self.kernel.processes.get(self.proc.ppid)
        if parent is None:
            return 0
        if self.proc.pid_ns is not None and \
                parent.pid_ns is not self.proc.pid_ns:
            return 0  # parent outside the namespace shows as 0
        return parent.ns_pid

    # -- set*id family ------------------------------------------------------------

    def _uid_to_kernel(self, ns_uid: int, call: str) -> int:
        kuid = self.cred.userns.uid_to_host(ns_uid)
        if kuid is None:
            raise KernelError(Errno.EINVAL,
                              f"uid {ns_uid} not mapped in user namespace",
                              syscall=call)
        return kuid

    def _gid_to_kernel(self, ns_gid: int, call: str) -> int:
        kgid = self.cred.userns.gid_to_host(ns_gid)
        if kgid is None:
            raise KernelError(Errno.EINVAL,
                              f"gid {ns_gid} not mapped in user namespace",
                              syscall=call)
        return kgid

    def setuid(self, uid: int) -> None:
        kuid = self._uid_to_kernel(uid, "setuid")
        c = self.cred
        if c.has_cap(Cap.SETUID):
            c.ruid = c.euid = c.suid = c.fsuid = kuid
        elif kuid in (c.ruid, c.suid):
            c.euid = c.fsuid = kuid
        else:
            raise KernelError(Errno.EPERM, syscall="setuid")

    def seteuid(self, euid: int) -> None:
        kuid = self._uid_to_kernel(euid, "seteuid")
        c = self.cred
        if c.has_cap(Cap.SETUID) or kuid in (c.ruid, c.euid, c.suid):
            c.euid = c.fsuid = kuid
        else:
            raise KernelError(Errno.EPERM, syscall="seteuid")

    def setreuid(self, ruid: int, euid: int) -> None:
        # Same semantics as setresuid(ruid, euid, -1), but reported under
        # its own name — a failing transcript must say "setreuid", not the
        # syscall it happens to share code with.
        c = self.cred
        new = {}
        for label, val in (("ruid", ruid), ("euid", euid)):
            if val == -1:
                continue
            new[label] = self._uid_to_kernel(val, "setreuid")
        if not c.has_cap(Cap.SETUID):
            allowed = {c.ruid, c.euid, c.suid}
            for v in new.values():
                if v not in allowed:
                    raise KernelError(Errno.EPERM, syscall="setreuid")
        c.ruid = new.get("ruid", c.ruid)
        c.euid = new.get("euid", c.euid)
        c.fsuid = c.euid

    def setresuid(self, ruid: int, euid: int, suid: int) -> None:
        c = self.cred
        new = {}
        for label, val in (("ruid", ruid), ("euid", euid), ("suid", suid)):
            if val == -1:
                continue
            new[label] = self._uid_to_kernel(val, "setresuid")
        if not c.has_cap(Cap.SETUID):
            allowed = {c.ruid, c.euid, c.suid}
            for v in new.values():
                if v not in allowed:
                    raise KernelError(Errno.EPERM, syscall="setresuid")
        c.ruid = new.get("ruid", c.ruid)
        c.euid = new.get("euid", c.euid)
        c.suid = new.get("suid", c.suid)
        c.fsuid = c.euid

    def setgid(self, gid: int) -> None:
        kgid = self._gid_to_kernel(gid, "setgid")
        c = self.cred
        if c.has_cap(Cap.SETGID):
            c.rgid = c.egid = c.sgid = c.fsgid = kgid
        elif kgid in (c.rgid, c.sgid):
            c.egid = c.fsgid = kgid
        else:
            raise KernelError(Errno.EPERM, syscall="setgid")

    def setegid(self, egid: int) -> None:
        kgid = self._gid_to_kernel(egid, "setegid")
        c = self.cred
        if c.has_cap(Cap.SETGID) or kgid in (c.rgid, c.egid, c.sgid):
            c.egid = c.fsgid = kgid
        else:
            raise KernelError(Errno.EPERM, syscall="setegid")

    def setresgid(self, rgid: int, egid: int, sgid: int) -> None:
        c = self.cred
        new = {}
        for label, val in (("rgid", rgid), ("egid", egid), ("sgid", sgid)):
            if val == -1:
                continue
            new[label] = self._gid_to_kernel(val, "setresgid")
        if not c.has_cap(Cap.SETGID):
            allowed = {c.rgid, c.egid, c.sgid}
            for v in new.values():
                if v not in allowed:
                    raise KernelError(Errno.EPERM, syscall="setresgid")
        c.rgid = new.get("rgid", c.rgid)
        c.egid = new.get("egid", c.egid)
        c.sgid = new.get("sgid", c.sgid)
        c.fsgid = c.egid

    def setgroups(self, groups: Sequence[int]) -> None:
        """setgroups(2), with the user-namespace gate of paper §2.1.4.

        In a user namespace setgroups(2) is permitted only if the namespace's
        /proc/<pid>/setgroups file says "allow" (impossible for namespaces
        whose gid_map was installed unprivileged) and the caller holds
        CAP_SETGID in it.
        """
        c = self.cred
        ns = c.userns
        if not ns.is_initial and ns.setgroups != "allow":
            raise KernelError(Errno.EPERM,
                              "setgroups disabled in this user namespace",
                              syscall="setgroups")
        if not c.has_cap(Cap.SETGID):
            raise KernelError(Errno.EPERM, syscall="setgroups")
        kgids = frozenset(self._gid_to_kernel(g, "setgroups") for g in groups)
        c.groups = kgids

    # -- capabilities -------------------------------------------------------------

    def has_cap(self, cap: Cap, target_ns: Optional[UserNamespace] = None) -> bool:
        return self.cred.has_cap(cap, target_ns)

    def drop_caps(self) -> None:
        self.cred.caps = frozenset()

    # -- namespaces ----------------------------------------------------------------

    def unshare_user(self) -> UserNamespace:
        """unshare(CLONE_NEWUSER): enter a fresh user namespace.

        Available to *unprivileged* processes (this is the foundation of
        Type III containers); the caller gets all capabilities in the new
        namespace, whose UID/GID maps start empty.
        """
        ns = self.kernel.create_userns(
            self.cred.userns, self.cred.euid, self.cred.egid
        )
        self.cred.enter_userns(ns, full_caps=True)
        return ns

    def unshare_mount(self) -> None:
        """unshare(CLONE_NEWNS): private copy of the mount table."""
        self.proc.mnt_ns = self.proc.mnt_ns.clone()

    def unshare_uts(self) -> None:
        """unshare(CLONE_NEWUTS): private hostname, owned by the caller's
        user namespace (so container root may sethostname)."""
        if not self.cred.has_cap(Cap.SYS_ADMIN):
            raise KernelError(Errno.EPERM, syscall="unshare")
        from .process import UtsNamespace
        self.proc.uts = UtsNamespace(self.gethostname(), self.cred.userns)

    def gethostname(self) -> str:
        if self.proc.uts is not None:
            return self.proc.uts.hostname
        return self.kernel.hostname

    def sethostname(self, name: str) -> None:
        """sethostname(2): CAP_SYS_ADMIN in the UTS namespace's owner."""
        if len(name) > 64:
            raise KernelError(Errno.EINVAL, syscall="sethostname")
        uts = self.proc.uts
        owner = uts.owning_userns if uts is not None \
            else self.kernel.init_userns
        if not self.cred.has_cap(Cap.SYS_ADMIN, owner):
            raise KernelError(Errno.EPERM, syscall="sethostname")
        if uts is not None:
            uts.hostname = name
        else:
            self.kernel.hostname = name

    def deny_setgroups(self, target: Optional[Process] = None) -> None:
        """Write "deny" to /proc/<pid>/setgroups."""
        tgt = target or self.proc
        tgt.cred.userns.deny_setgroups()

    def write_uid_map(
        self,
        entries: Iterable[IdMapEntry],
        target: Optional[Process] = None,
    ) -> None:
        """Write /proc/<pid>/uid_map.

        Privileged multi-range writes require CAP_SETUID in the target
        namespace's *parent* (what setcap'd newuidmap(1) has); otherwise the
        unprivileged single-ID rule applies.
        """
        tgt = target or self.proc
        ns = tgt.cred.userns
        if ns.parent is None:
            raise KernelError(Errno.EPERM, "cannot write initial ns uid_map",
                              syscall="write_uid_map")
        privileged = self.cred.has_cap(Cap.SETUID, ns.parent)
        ents = list(entries)
        if not privileged and self._is_autosub_grant(ents, self.cred.euid):
            privileged = True  # §6.2.4: kernel-granted unique range
        ns.set_uid_map(IdMap(ents), writer_euid=self.cred.euid,
                       writer_privileged=privileged)

    def write_gid_map(
        self,
        entries: Iterable[IdMapEntry],
        target: Optional[Process] = None,
    ) -> None:
        tgt = target or self.proc
        ns = tgt.cred.userns
        if ns.parent is None:
            raise KernelError(Errno.EPERM, "cannot write initial ns gid_map",
                              syscall="write_gid_map")
        privileged = self.cred.has_cap(Cap.SETGID, ns.parent)
        ents = list(entries)
        if (not privileged
                and self._is_autosub_grant(ents, self.cred.egid,
                                           range_uid=self.cred.euid)
                and ns.setgroups == "deny"):
            # §6.2.4 kernel grant — but only with setgroups already denied,
            # to keep the §2.1.4 group-drop attack closed
            privileged = True
        ns.set_gid_map(IdMap(ents), writer_egid=self.cred.egid,
                       writer_privileged=privileged)

    def _is_autosub_grant(self, entries: list[IdMapEntry], own_id: int,
                          *, range_uid: Optional[int] = None) -> bool:
        """The §6.2.4 policy: 'host UID maps to container root and
        guaranteed-unique host UIDs map to all other container UIDs'.

        Accepted shape when ``user.autosub_userns`` is enabled: exactly two
        entries — the caller's own ID at inside 0, plus the caller's
        kernel-derived unique range at inside 1.
        """
        if not self.kernel.sysctl.get("user.autosub_userns"):
            return False
        if len(entries) != 2:
            return False
        start, count = self.kernel.autosub_range(
            self.cred.euid if range_uid is None else range_uid)
        own, sub = entries
        return (
            own.inside_start == 0 and own.count == 1
            and own.outside_start == own_id
            and sub.inside_start == 1 and sub.count == count
            and sub.outside_start == start
        )

    def setup_auto_userns(self) -> UserNamespace:
        """The full §6.2.4 dance: an unprivileged process gets a Type II
        quality map with *no helper tools at all* — the kernel policy
        guarantees uniqueness of the subordinate range."""
        uid, gid = self.cred.euid, self.cred.egid
        start, count = self.kernel.autosub_range(uid)
        ns = self.unshare_user()
        self.write_uid_map([IdMapEntry(0, uid, 1),
                            IdMapEntry(1, start, count)])
        self.deny_setgroups()
        self.write_gid_map([IdMapEntry(0, gid, 1),
                            IdMapEntry(1, start, count)])
        return ns

    def setup_single_id_userns(self, *, inside_uid: int = 0,
                               inside_gid: int = 0) -> UserNamespace:
        """The full Type III dance: unshare + deny setgroups + single-ID maps.

        Maps the invoking user's (only) IDs to ``inside_uid``/``inside_gid``
        (paper §2.1.3: "the process has precisely the same access within the
        container as on the host").
        """
        outside_uid = self.cred.euid
        outside_gid = self.cred.egid
        ns = self.unshare_user()
        self.write_uid_map([IdMapEntry(inside_uid, outside_uid, 1)])
        self.deny_setgroups()
        self.write_gid_map([IdMapEntry(inside_gid, outside_gid, 1)])
        return ns

    # -- mounts ----------------------------------------------------------------------

    def _require_mount_cap(self, call: str = "mount") -> None:
        if not self.cred.has_cap(Cap.SYS_ADMIN):
            raise KernelError(Errno.EPERM, f"{call} requires CAP_SYS_ADMIN",
                              syscall=call)

    def mount_fs(self, fs: Filesystem, mountpoint: str,
                 flags: MountFlags = MountFlags()) -> None:
        """Mount *fs* at *mountpoint* (tmpfs/proc-style FS_USERNS_MOUNT)."""
        self._require_mount_cap()
        self._resolve(mountpoint)  # must exist
        self.mnt_ns.add_mount(mountpoint, fs, flags=flags,
                              owning_userns=self.cred.userns)

    def bind_mount(self, source: str, mountpoint: str,
                   flags: MountFlags = MountFlags()) -> None:
        self._require_mount_cap()
        src = self._resolve(source)
        self._resolve(mountpoint)
        self.mnt_ns.add_mount(mountpoint, src.fs, root_ino=src.inode.ino,
                              flags=flags, owning_userns=self.cred.userns)

    def pivot_to(self, source: str) -> None:
        """Make *source* the root of this process's mount namespace
        (the essence of ch-run's container entry)."""
        self._require_mount_cap("pivot_root")
        src = self._resolve(source)
        if not src.inode.is_dir:
            raise KernelError(Errno.ENOTDIR, source, syscall="pivot_root")
        self.mnt_ns.set_root(src.fs, src.inode.ino,
                             owning_userns=self.cred.userns)
        self.proc.cwd = "/"

    def umount(self, mountpoint: str) -> None:
        self._require_mount_cap("umount")
        self.mnt_ns.remove_mount(mountpoint)

    # -- cwd -------------------------------------------------------------------------

    def chdir(self, path: str) -> None:
        res = self._resolve(path)
        if not res.inode.is_dir:
            raise KernelError(Errno.ENOTDIR, path, syscall="chdir")
        if not may_access(self.cred, res.inode, execute=True):
            raise KernelError(Errno.EACCES, path, syscall="chdir")
        self.proc.cwd = res.path

    def getcwd(self) -> str:
        return self.proc.cwd

    def umask(self, new: int) -> int:
        old = self.proc.umask
        self.proc.umask = new & 0o777
        return old

    # -- metadata ----------------------------------------------------------------------

    def _stat_of(self, res: Resolved) -> StatResult:
        node = res.inode
        ns = self.cred.userns
        return StatResult(
            st_ino=node.ino,
            st_dev=res.fs.device_id,
            st_mode=node.st_mode,
            st_nlink=node.nlink,
            st_uid=ns.uid_display(node.uid),
            st_gid=ns.gid_display(node.gid),
            st_size=node.size,
            st_rdev=node.rdev,
            st_mtime=node.mtime,
            ftype=node.ftype,
            kuid=node.uid,
            kgid=node.gid,
            st_gen=node.gen,
            st_tree_gen=node.tree_gen,
            exe_impl=node.exe_impl,
            exe_arch=node.exe_arch,
            exe_static=node.exe_static,
        )

    def digest_view_key(self) -> tuple:
        """Identity of this interface's *view* of file metadata, used to
        partition the member-digest memo: two interfaces may share cached
        digests only if they would stat identical results for the same
        (device, inode, generation).  Wrappers that lie about metadata
        (fakeroot, seccomp) override this with their lie-database identity.

        The uid/gid map entries are part of the key: ID *display* depends
        on them, and a map written after a walk must invalidate the view."""
        ns = self.cred.userns
        return ("kernel", ns,
                ns.uid_map.entries if ns.uid_map is not None else None,
                ns.gid_map.entries if ns.gid_map is not None else None)

    def stat(self, path: str) -> StatResult:
        return self._stat_of(self._resolve(path))

    def lstat(self, path: str) -> StatResult:
        return self._stat_of(self._resolve(path, follow=False))

    def exists(self, path: str) -> bool:
        try:
            self._resolve(path, follow=False)
            return True
        except KernelError:
            return False

    def access(self, path: str, *, read: bool = False, write: bool = False,
               execute: bool = False) -> bool:
        try:
            res = self._resolve(path)
        except KernelError:
            return False
        return may_access(self.cred, res.inode, read=read, write=write,
                          execute=execute)

    def readlink(self, path: str) -> str:
        res = self._resolve(path, follow=False)
        if res.inode.ftype is not FileType.SYMLINK:
            raise KernelError(Errno.EINVAL, path, syscall="readlink")
        return res.inode.target

    def readdir(self, path: str) -> list[DirEntry]:
        res = self._resolve(path)
        if not res.inode.is_dir:
            raise KernelError(Errno.ENOTDIR, path, syscall="readdir")
        if not may_access(self.cred, res.inode, read=True):
            raise KernelError(Errno.EACCES, path, syscall="readdir")
        out = []
        for name in sorted(res.inode.entries):
            child = res.fs.inode(res.inode.entries[name])
            out.append(DirEntry(name, child.ftype))
        return out

    # -- creation -----------------------------------------------------------------------

    def _prep_create(self, path: str, call: str):
        rp = self._resolve_parent(path)
        self._check_writable_mount(rp.mount, call)
        if not may_access(self.cred, rp.dir_inode, write=True, execute=True):
            raise KernelError(Errno.EACCES, path, syscall=call)
        if rp.fs.lookup(rp.dir_inode, rp.name) is not None:
            raise KernelError(Errno.EEXIST, path, syscall=call)
        return rp

    def _new_ids(self, parent_dir: Inode) -> tuple[int, int, bool]:
        """(uid, gid, inherit_sgid) for a new inode, honouring setgid dirs."""
        uid = self.cred.fsuid
        if parent_dir.mode & 0o2000:  # setgid directory
            return uid, parent_dir.gid, True
        return uid, self.cred.fsgid, False

    def mkdir(self, path: str, mode: int = 0o777) -> None:
        rp = self._prep_create(path, "mkdir")
        uid, gid, sgid = self._new_ids(rp.dir_inode)
        eff = mode & ~self.proc.umask & 0o777
        if sgid:
            eff |= 0o2000
        node = rp.fs.alloc(FileType.DIR, eff, uid, gid, now=self.kernel.now())
        rp.fs.link_child(rp.dir_inode, rp.name, node)

    def mkdir_p(self, path: str, mode: int = 0o777) -> None:
        """mkdir -p convenience (not a real syscall, but constantly needed)."""
        if not path.startswith("/"):
            path = self.proc.cwd.rstrip("/") + "/" + path
        parts = [c for c in normpath(path).split("/") if c]
        cur = ""
        for part in parts:
            cur += "/" + part
            if not self.exists(cur):
                self.mkdir(cur, mode)

    def mknod(self, path: str, ftype: FileType, mode: int = 0o644,
              rdev: tuple[int, int] = (0, 0)) -> None:
        """mknod(2).  Device nodes require CAP_MKNOD in the *initial* user
        namespace — a container root cannot create them, which is exactly the
        operation fakeroot(1) fakes in Figure 7."""
        if ftype in (FileType.CHR, FileType.BLK):
            if not (self.cred.userns.is_initial and self.cred.has_cap(Cap.MKNOD)):
                raise KernelError(Errno.EPERM, path, syscall="mknod")
        elif ftype not in (FileType.REG, FileType.FIFO, FileType.SOCK):
            raise KernelError(Errno.EINVAL, path, syscall="mknod")
        rp = self._prep_create(path, "mknod")
        uid, gid, _ = self._new_ids(rp.dir_inode)
        eff = mode & ~self.proc.umask & 0o777
        node = rp.fs.alloc(ftype, eff, uid, gid, now=self.kernel.now(), rdev=rdev)
        rp.fs.link_child(rp.dir_inode, rp.name, node)

    def symlink(self, target: str, path: str) -> None:
        rp = self._prep_create(path, "symlink")
        uid, gid, _ = self._new_ids(rp.dir_inode)
        node = rp.fs.alloc(FileType.SYMLINK, 0o777, uid, gid,
                           now=self.kernel.now(), target=target)
        rp.fs.link_child(rp.dir_inode, rp.name, node)

    def link(self, existing: str, path: str) -> None:
        src = self._resolve(existing, follow=False)
        if src.inode.is_dir:
            raise KernelError(Errno.EPERM, existing, syscall="link")
        rp = self._prep_create(path, "link")
        if rp.fs is not src.fs:
            raise KernelError(Errno.EXDEV, path, syscall="link")
        rp.fs.link_child(rp.dir_inode, rp.name, src.inode)

    # -- file I/O ---------------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        res = self._resolve(path)
        node = res.inode
        if node.is_dir:
            raise KernelError(Errno.EISDIR, path, syscall="open")
        if not may_access(self.cred, node, read=True):
            raise KernelError(Errno.EACCES, path, syscall="open")
        if node.ftype is FileType.CHR:
            return b""  # /dev/null & friends read empty
        return bytes(node.data)

    def write_file(self, path: str, data: bytes, *, append: bool = False,
                   mode: int = 0o666) -> None:
        """open(O_WRONLY|O_CREAT[|O_APPEND|O_TRUNC]) + write + close."""
        if isinstance(data, str):  # tolerate text for userland convenience
            data = data.encode()
        try:
            res = self._resolve(path)
        except KernelError as err:
            if err.errno != Errno.ENOENT:
                raise
            rp = self._prep_create(path, "open")
            uid, gid, _ = self._new_ids(rp.dir_inode)
            eff = mode & ~self.proc.umask & 0o777
            node = rp.fs.alloc(FileType.REG, eff, uid, gid, now=self.kernel.now(),
                               data=bytes(data))
            rp.fs.link_child(rp.dir_inode, rp.name, node)
            return
        node = res.inode
        if node.is_dir:
            raise KernelError(Errno.EISDIR, path, syscall="open")
        self._check_writable_mount(res.mount, "open")
        if not may_access(self.cred, node, write=True):
            raise KernelError(Errno.EACCES, path, syscall="open")
        if node.ftype is FileType.CHR:
            return  # writes to devices vanish
        node.data = bytes(node.data) + bytes(data) if append else bytes(data)
        node.mtime = self.kernel.now()
        res.fs.touch(node)

    def truncate(self, path: str, length: int = 0) -> None:
        res = self._resolve(path)
        if res.inode.is_dir:
            raise KernelError(Errno.EISDIR, path, syscall="truncate")
        self._check_writable_mount(res.mount, "truncate")
        if not may_access(self.cred, res.inode, write=True):
            raise KernelError(Errno.EACCES, path, syscall="truncate")
        res.inode.data = bytes(res.inode.data[:length])
        res.fs.touch(res.inode)

    # -- removal / rename -----------------------------------------------------------------

    def _check_sticky(self, dir_inode: Inode, victim: Inode, path: str,
                      call: str) -> None:
        if dir_inode.mode & 0o1000:  # sticky directory (e.g. /tmp)
            c = self.cred
            if (
                c.fsuid != victim.uid
                and c.fsuid != dir_inode.uid
                and not capable_wrt_inode(c, victim, Cap.FOWNER)
            ):
                raise KernelError(Errno.EPERM, path, syscall=call)

    def unlink(self, path: str) -> None:
        rp = self._resolve_parent(path)
        self._check_writable_mount(rp.mount, "unlink")
        if not may_access(self.cred, rp.dir_inode, write=True, execute=True):
            raise KernelError(Errno.EACCES, path, syscall="unlink")
        victim = rp.fs.lookup(rp.dir_inode, rp.name)
        if victim is None:
            raise KernelError(Errno.ENOENT, path, syscall="unlink")
        if victim.is_dir:
            raise KernelError(Errno.EISDIR, path, syscall="unlink")
        self._check_sticky(rp.dir_inode, victim, path, "unlink")
        rp.fs.unlink_child(rp.dir_inode, rp.name)

    def rmdir(self, path: str) -> None:
        rp = self._resolve_parent(path)
        self._check_writable_mount(rp.mount, "rmdir")
        if not may_access(self.cred, rp.dir_inode, write=True, execute=True):
            raise KernelError(Errno.EACCES, path, syscall="rmdir")
        victim = rp.fs.lookup(rp.dir_inode, rp.name)
        if victim is None:
            raise KernelError(Errno.ENOENT, path, syscall="rmdir")
        if not victim.is_dir:
            raise KernelError(Errno.ENOTDIR, path, syscall="rmdir")
        if victim.entries:
            raise KernelError(Errno.ENOTEMPTY, path, syscall="rmdir")
        self._check_sticky(rp.dir_inode, victim, path, "rmdir")
        rp.fs.unlink_child(rp.dir_inode, rp.name)

    def rename(self, old: str, new: str) -> None:
        rp_old = self._resolve_parent(old)
        rp_new = self._resolve_parent(new)
        self._check_writable_mount(rp_old.mount, "rename")
        self._check_writable_mount(rp_new.mount, "rename")
        if rp_old.fs is not rp_new.fs:
            raise KernelError(Errno.EXDEV, new, syscall="rename")
        for rp in (rp_old, rp_new):
            if not may_access(self.cred, rp.dir_inode, write=True, execute=True):
                raise KernelError(Errno.EACCES, old, syscall="rename")
        victim = rp_old.fs.lookup(rp_old.dir_inode, rp_old.name)
        if victim is None:
            raise KernelError(Errno.ENOENT, old, syscall="rename")
        self._check_sticky(rp_old.dir_inode, victim, old, "rename")
        existing = rp_new.fs.lookup(rp_new.dir_inode, rp_new.name)
        if existing is not None:
            if existing.is_dir and existing.entries:
                raise KernelError(Errno.ENOTEMPTY, new, syscall="rename")
            rp_new.fs.unlink_child(rp_new.dir_inode, rp_new.name)
        rp_old.fs.unlink_child(rp_old.dir_inode, rp_old.name)
        # unlink_child may have dropped nlink to 0; resurrect for re-link
        rp_new.fs._inodes[victim.ino] = victim
        victim.nlink = max(victim.nlink, 0)
        rp_new.fs.link_child(rp_new.dir_inode, rp_new.name, victim)

    def clone_tree(self, src: str, dst: str) -> None:
        """Clone the directory tree at *src* to *dst*, preserving all
        metadata, in one call — the reflink / overlayfs lower-dir sharing
        fast path caching builders use to materialize FROM.  Data blocks
        are shared, so the cost is O(1) in syscalls rather than O(files)
        of a userspace copy; like reflinks, it cannot cross filesystems."""
        res = self._resolve(src)
        if not res.inode.is_dir:
            raise KernelError(Errno.ENOTDIR, src, syscall="clone_tree")
        if not may_access(self.cred, res.inode, read=True, execute=True):
            raise KernelError(Errno.EACCES, src, syscall="clone_tree")
        rp = self._prep_create(dst, "clone_tree")
        if rp.fs is not res.fs:
            raise KernelError(Errno.EXDEV, dst, syscall="clone_tree")
        copy_tree(res.fs, res.inode.ino, rp.fs, rp.dir_inode.ino, rp.name,
                  now=self.kernel.now())

    # -- ownership & permissions (the heart of the paper) ----------------------------------

    def chown(self, path: str, uid: int, gid: int, *, follow: bool = True) -> None:
        """chown(2)/lchown(2).  *uid*/*gid* are namespace-relative; -1 means
        "leave unchanged".

        Failure modes reproduced from the paper:

        * target ID unmapped in the caller's namespace → EINVAL (the
          Type III ``cpio: chown`` failure of Figure 2);
        * caller lacks CAP_CHOWN wrt the inode → EPERM;
        * NFS-style server-side ID enforcement → EPERM even for mapped IDs
          (§4.2: shared-filesystem container storage).
        """
        res = self._resolve(path, follow=follow)
        self._check_writable_mount(res.mount, "chown")
        node = res.inode
        c = self.cred
        ns = c.userns

        kuid: Optional[int] = None
        kgid: Optional[int] = None
        if uid != -1:
            kuid = ns.uid_to_host(uid)
            if kuid is None:
                raise KernelError(Errno.EINVAL,
                                  f"uid {uid} not mapped", syscall="chown")
        if gid != -1:
            kgid = ns.gid_to_host(gid)
            if kgid is None:
                raise KernelError(Errno.EINVAL,
                                  f"gid {gid} not mapped", syscall="chown")

        uid_changes = kuid is not None and kuid != node.uid
        gid_changes = kgid is not None and kgid != node.gid

        privileged = capable_wrt_inode(c, node, Cap.CHOWN)
        if not privileged:
            # Unprivileged rules: owner may "change" uid to itself (no-op)
            # and may chgrp to a group it belongs to.
            if c.fsuid != node.uid:
                raise KernelError(Errno.EPERM, path, syscall="chown")
            if uid_changes:
                raise KernelError(Errno.EPERM, path, syscall="chown")
            if gid_changes and not c.in_group(kgid):
                raise KernelError(Errno.EPERM, path, syscall="chown")

        if res.fs.features.remote_id_enforcement and (uid_changes or gid_changes):
            # The filesystem server cannot see client user namespaces; it
            # applies its own check against the caller's kernel IDs.
            if c.euid != 0:
                raise KernelError(
                    Errno.EPERM,
                    f"{path}: server rejected ownership change "
                    f"({res.fs.label} has no user-namespace knowledge)",
                    syscall="chown",
                )

        if kuid is not None:
            node.uid = kuid
        if kgid is not None:
            node.gid = kgid
        # POSIX: chown clears setuid/setgid unless the caller has CAP_FSETID.
        if (uid_changes or gid_changes) and not capable_wrt_inode(
            c, node, Cap.FSETID
        ):
            if node.ftype is FileType.REG:
                node.mode &= ~0o6000
        node.ctime = self.kernel.now()
        res.fs.touch(node)

    def lchown(self, path: str, uid: int, gid: int) -> None:
        self.chown(path, uid, gid, follow=False)

    def chmod(self, path: str, mode: int) -> None:
        res = self._resolve(path)
        self._check_writable_mount(res.mount, "chmod")
        node = res.inode
        c = self.cred
        if c.fsuid != node.uid and not capable_wrt_inode(c, node, Cap.FOWNER):
            raise KernelError(Errno.EPERM, path, syscall="chmod")
        eff = mode & 0o7777
        # Setting setgid on a file whose group you're not in silently drops it.
        if (
            eff & 0o2000
            and not node.is_dir
            and not c.in_group(node.gid)
            and not capable_wrt_inode(c, node, Cap.FSETID)
        ):
            eff &= ~0o2000
        node.mode = eff
        node.ctime = self.kernel.now()
        res.fs.touch(node)

    # -- extended attributes ------------------------------------------------------------------

    def setxattr(self, path: str, name: str, value: bytes) -> None:
        """setxattr(2).  ``user.*`` needs filesystem support (the
        fuse-overlayfs-on-NFS failure of §6.1); ``security.*``/``trusted.*``
        need privilege."""
        res = self._resolve(path)
        self._check_writable_mount(res.mount, "setxattr")
        node = res.inode
        c = self.cred
        if name.startswith("user."):
            if not res.fs.features.user_xattrs:
                raise KernelError(
                    Errno.ENOTSUP,
                    f"{res.fs.label} does not support user xattrs",
                    syscall="setxattr",
                )
            if node.ftype not in (FileType.REG, FileType.DIR):
                raise KernelError(Errno.EPERM, path, syscall="setxattr")
            if not may_access(c, node, write=True):
                raise KernelError(Errno.EACCES, path, syscall="setxattr")
        elif name.startswith("security.capability"):
            # File capabilities are checked against the *superblock's* user
            # namespace: a rootless container can set them only on
            # filesystems it owns (e.g. fuse-overlayfs), never on host
            # ext4 — which is why Type II + overlay installs file-caps
            # packages fine while Type III on a plain directory cannot.
            fs_ns = res.fs.owning_userns or self.kernel.init_userns
            if not (c.has_cap(Cap.SETFCAP, fs_ns) and ids_mapped(c, node)):
                raise KernelError(Errno.EPERM, path, syscall="setxattr")
        elif name.startswith("trusted."):
            if not (c.userns.is_initial and c.has_cap(Cap.SYS_ADMIN)):
                raise KernelError(Errno.EPERM, path, syscall="setxattr")
        node.xattrs[name] = bytes(value)
        res.fs.touch(node)

    def getxattr(self, path: str, name: str) -> bytes:
        res = self._resolve(path)
        if name.startswith("user.") and not res.fs.features.user_xattrs:
            raise KernelError(Errno.ENOTSUP, name, syscall="getxattr")
        try:
            return res.inode.xattrs[name]
        except KeyError:
            raise KernelError(Errno.ENODATA, name, syscall="getxattr")

    def listxattr(self, path: str) -> list[str]:
        res = self._resolve(path)
        return sorted(res.inode.xattrs)

    def removexattr(self, path: str, name: str) -> None:
        res = self._resolve(path)
        self._check_writable_mount(res.mount, "removexattr")
        if not may_access(self.cred, res.inode, write=True):
            raise KernelError(Errno.EACCES, path, syscall="removexattr")
        res.inode.xattrs.pop(name, None)
        res.fs.touch(res.inode)

    # -- exec support ------------------------------------------------------------------------

    def prepare_exec(self, path: str) -> tuple[Inode, Resolved]:
        """execve(2) front half: resolve, check x permission and ISA.

        Returns the inode so the userland executor can dispatch; raises
        ENOEXEC for foreign-architecture binaries (how an x86-64 image
        fails on Astra's aarch64 nodes)."""
        res = self._resolve(path)
        node = res.inode
        if node.is_dir:
            raise KernelError(Errno.EISDIR, path, syscall="execve")
        if node.ftype is not FileType.REG:
            raise KernelError(Errno.EACCES, path, syscall="execve")
        if not may_access(self.cred, node, execute=True):
            raise KernelError(Errno.EACCES, path, syscall="execve")
        if node.exe_arch not in ("noarch", self.kernel.arch):
            raise KernelError(
                Errno.ENOEXEC,
                f"{path}: built for {node.exe_arch}, node is {self.kernel.arch}",
                syscall="execve",
            )
        return node, res
