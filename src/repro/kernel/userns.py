"""User namespaces (user_namespaces(7); paper §2.1).

A :class:`UserNamespace` carries the UID and GID maps plus the
``/proc/<pid>/setgroups`` switch whose ordering interactions with the GID map
are the "setgroups(2) trap" of paper §2.1.4.

Maps start *unset*; writing them follows the kernel's once-only rule and the
privilege rules of §2.1.2/§2.1.3:

* A writer with ``CAP_SETUID``/``CAP_SETGID`` *in the parent namespace* (e.g.
  the shadow-utils helpers) may install multi-range maps.
* An unprivileged writer may install only a single-ID map of its own
  euid/egid, and may write a gid_map only after setgroups has been denied.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import Errno, KernelError
from .idmap import IDENTITY_MAP, IdMap
from .types import OVERFLOW_GID, OVERFLOW_UID

__all__ = ["UserNamespace", "SetgroupsPolicy"]

_ns_ids = itertools.count(1)


class SetgroupsPolicy:
    """Values of /proc/<pid>/setgroups."""

    ALLOW = "allow"
    DENY = "deny"


class UserNamespace:
    """A user namespace node in the namespace tree.

    Parameters
    ----------
    parent:
        The parent namespace, or None for the initial namespace.
    owner_uid, owner_gid:
        The *host-side* effective IDs of the creating process (the kernel
        records these; they feed the "owner of the namespace gets all
        capabilities" rule).
    """

    MAX_NESTING = 32  # kernel limit on user namespace depth

    def __init__(
        self,
        parent: Optional["UserNamespace"],
        owner_uid: int,
        owner_gid: int,
    ):
        if parent is not None and parent.level + 1 > self.MAX_NESTING:
            raise KernelError(Errno.EUSERS, "user namespace nesting too deep")
        self.ns_id = next(_ns_ids)
        self.parent = parent
        self.owner_uid = owner_uid
        self.owner_gid = owner_gid
        self.level: int = 0 if parent is None else parent.level + 1
        self.uid_map: Optional[IdMap] = None
        self.gid_map: Optional[IdMap] = None
        self.setgroups: str = SetgroupsPolicy.ALLOW

    # -- construction ----------------------------------------------------------

    @classmethod
    def initial(cls) -> "UserNamespace":
        """The init user namespace: identity maps, setgroups allowed."""
        ns = cls(None, 0, 0)
        ns.uid_map = IDENTITY_MAP
        ns.gid_map = IDENTITY_MAP
        return ns

    # -- tree queries ----------------------------------------------------------

    @property
    def is_initial(self) -> bool:
        return self.parent is None

    def is_ancestor_of(self, other: "UserNamespace") -> bool:
        """True if *self* is a proper ancestor of *other*."""
        ns = other.parent
        while ns is not None:
            if ns is self:
                return True
            ns = ns.parent
        return False

    # -- map installation (the /proc/<pid>/{uid_map,gid_map,setgroups} API) ----

    def deny_setgroups(self) -> None:
        """Write "deny" to /proc/<pid>/setgroups.

        Must happen before the gid_map is written; afterwards the file is
        immutable (matching the kernel).
        """
        if self.gid_map is not None:
            raise KernelError(
                Errno.EPERM, "setgroups cannot be changed after gid_map is set"
            )
        self.setgroups = SetgroupsPolicy.DENY

    def set_uid_map(
        self, idmap: IdMap, *, writer_euid: int, writer_privileged: bool
    ) -> None:
        """Install the UID map (write to /proc/<pid>/uid_map).

        ``writer_privileged`` means the writer holds CAP_SETUID in this
        namespace's *parent* (e.g. newuidmap(1)); otherwise the single-entry
        unprivileged rule of §2.1.3 applies.
        """
        self._check_map_write(idmap, writer_privileged, writer_euid, which="uid")
        self.uid_map = idmap

    def set_gid_map(
        self, idmap: IdMap, *, writer_egid: int, writer_privileged: bool
    ) -> None:
        """Install the GID map (write to /proc/<pid>/gid_map).

        An unprivileged writer must first have denied setgroups(2); this is
        the check whose absence was CVE-2018-7169 (paper §2.1.4).
        """
        if not writer_privileged and self.setgroups != SetgroupsPolicy.DENY:
            raise KernelError(
                Errno.EPERM,
                "unprivileged gid_map write requires setgroups denied first",
            )
        self._check_map_write(idmap, writer_privileged, writer_egid, which="gid")
        self.gid_map = idmap

    def _check_map_write(
        self, idmap: IdMap, privileged: bool, writer_id: int, *, which: str
    ) -> None:
        if self.is_initial:
            raise KernelError(Errno.EPERM, "cannot rewrite initial namespace map")
        current = self.uid_map if which == "uid" else self.gid_map
        if current is not None:
            raise KernelError(Errno.EPERM, f"{which}_map may only be written once")
        if not privileged:
            if not idmap.is_single():
                raise KernelError(
                    Errno.EPERM,
                    f"unprivileged {which}_map must map exactly one ID",
                )
            entry = idmap.entries[0]
            if entry.outside_start != writer_id:
                raise KernelError(
                    Errno.EPERM,
                    f"unprivileged {which}_map outside ID must be the writer's "
                    f"own ({writer_id}), got {entry.outside_start}",
                )
        # Outside IDs must be mapped in the parent namespace (kernel rule);
        # for a child of the initial namespace this is always true.
        parent = self.parent
        assert parent is not None
        pmap = parent.uid_map if which == "uid" else parent.gid_map
        if pmap is None:
            raise KernelError(Errno.EPERM, "parent namespace has no map yet")
        for e in idmap.entries:
            if (
                pmap.to_outside(e.outside_start) is None
                or pmap.to_outside(e.outside_end) is None
            ):
                raise KernelError(
                    Errno.EPERM,
                    f"outside {which} range {e.outside_start}+{e.count} not mapped "
                    "in parent namespace",
                )

    # -- translation (up/down the whole ancestry, like the kernel) -------------

    def uid_to_host(self, ns_uid: int) -> Optional[int]:
        """Translate a UID in this namespace to the init-namespace (kernel) UID."""
        return self._to_host(ns_uid, "uid")

    def gid_to_host(self, ns_gid: int) -> Optional[int]:
        return self._to_host(ns_gid, "gid")

    def uid_from_host(self, kuid: int) -> Optional[int]:
        """Translate a kernel UID into this namespace (None if unmapped)."""
        return self._from_host(kuid, "uid")

    def gid_from_host(self, kgid: int) -> Optional[int]:
        return self._from_host(kgid, "gid")

    def uid_display(self, kuid: int) -> int:
        """Kernel UID as seen from this namespace; overflow UID if unmapped."""
        inside = self.uid_from_host(kuid)
        return OVERFLOW_UID if inside is None else inside

    def gid_display(self, kgid: int) -> int:
        inside = self.gid_from_host(kgid)
        return OVERFLOW_GID if inside is None else inside

    def _to_host(self, ns_id: int, which: str) -> Optional[int]:
        ns: Optional[UserNamespace] = self
        cur = ns_id
        while ns is not None:
            m = ns.uid_map if which == "uid" else ns.gid_map
            if m is None:
                return None
            nxt = m.to_outside(cur)
            if nxt is None:
                return None
            cur = nxt
            if ns.is_initial:
                return cur
            ns = ns.parent
        return cur

    def _from_host(self, kid: int, which: str) -> Optional[int]:
        # Walk the ancestry root-first, translating downwards.
        chain: list[UserNamespace] = []
        ns: Optional[UserNamespace] = self
        while ns is not None:
            chain.append(ns)
            ns = ns.parent
        cur = kid
        for node in reversed(chain):
            m = node.uid_map if which == "uid" else node.gid_map
            if m is None:
                return None
            if node.is_initial:
                # identity map; skip translation
                continue
            nxt = m.to_inside(cur)
            if nxt is None:
                return None
            cur = nxt
        return cur

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "init" if self.is_initial else f"level{self.level}"
        return f"<UserNamespace #{self.ns_id} {kind} owner_uid={self.owner_uid}>"
