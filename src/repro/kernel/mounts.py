"""Mount namespaces and path resolution.

A :class:`MountNamespace` is a table of mounts (mountpoint path → filesystem
subtree).  Containers get their own mount namespace whose root is a bind of
the image tree (paper §2.1: "the mount namespace gives a process its own
mounts and filesystem tree, allowing the container to run a different
distribution than the host").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import Errno, KernelError
from .cred import Credentials
from .userns import UserNamespace
from .vfs import FileType, Filesystem, Inode, may_access

__all__ = ["MountFlags", "Mount", "MountNamespace", "Resolved", "normpath"]

_MAX_SYMLINKS = 40  # kernel ELOOP limit


def normpath(path: str) -> str:
    """Normalize an absolute path: collapse //, /./, resolve lexical '..'."""
    if not path.startswith("/"):
        raise KernelError(Errno.EINVAL, f"path not absolute: {path!r}")
    out: list[str] = []
    for comp in path.split("/"):
        if comp in ("", "."):
            continue
        if comp == "..":
            if out:
                out.pop()
        else:
            out.append(comp)
    return "/" + "/".join(out)


@dataclass(frozen=True)
class MountFlags:
    """Per-mount flags."""

    read_only: bool = False
    nosuid: bool = False
    nodev: bool = False


@dataclass
class Mount:
    """One row of the mount table.

    ``root_ino`` permits bind mounts: the mount's root may be any directory
    of ``fs``, not just the filesystem root.
    """

    mountpoint: str
    fs: Filesystem
    root_ino: int
    flags: MountFlags = field(default_factory=MountFlags)
    owning_userns: Optional[UserNamespace] = None

    @property
    def effective_nosuid(self) -> bool:
        """Mounts created by non-initial user namespaces are implicitly nosuid."""
        if self.flags.nosuid:
            return True
        ns = self.owning_userns
        return ns is not None and not ns.is_initial


@dataclass(frozen=True)
class Resolved:
    """Result of a path walk."""

    mount: Mount
    inode: Inode
    path: str  # canonical (symlink-free) path

    @property
    def fs(self) -> Filesystem:
        return self.mount.fs


@dataclass(frozen=True)
class ResolvedParent:
    """Result of resolving a path up to (but excluding) its final component."""

    mount: Mount
    dir_inode: Inode
    name: str
    dir_path: str

    @property
    def fs(self) -> Filesystem:
        return self.mount.fs


class MountNamespace:
    """A mount table plus the path-walking machinery."""

    def __init__(self, root_fs: Filesystem, *,
                 root_flags: MountFlags = MountFlags(),
                 owning_userns: Optional[UserNamespace] = None):
        self._mounts: dict[str, Mount] = {}
        self._mounts["/"] = Mount("/", root_fs, root_fs.root_ino, root_flags,
                                  owning_userns)

    # -- mount table manipulation -------------------------------------------------

    @property
    def mounts(self) -> dict[str, Mount]:
        return dict(self._mounts)

    def clone(self) -> "MountNamespace":
        """CLONE_NEWNS: a copy of the mount table (filesystems shared)."""
        dup = MountNamespace.__new__(MountNamespace)
        dup._mounts = {
            p: Mount(m.mountpoint, m.fs, m.root_ino, m.flags, m.owning_userns)
            for p, m in self._mounts.items()
        }
        return dup

    def add_mount(
        self,
        mountpoint: str,
        fs: Filesystem,
        *,
        root_ino: int | None = None,
        flags: MountFlags = MountFlags(),
        owning_userns: Optional[UserNamespace] = None,
    ) -> Mount:
        mp = normpath(mountpoint)
        mount = Mount(mp, fs, fs.root_ino if root_ino is None else root_ino,
                      flags, owning_userns)
        self._mounts[mp] = mount
        return mount

    def remove_mount(self, mountpoint: str) -> None:
        mp = normpath(mountpoint)
        if mp == "/":
            raise KernelError(Errno.EBUSY, "cannot unmount /")
        if mp not in self._mounts:
            raise KernelError(Errno.EINVAL, f"not a mountpoint: {mp}")
        del self._mounts[mp]

    def set_root(self, fs: Filesystem, root_ino: int | None = None, *,
                 owning_userns: Optional[UserNamespace] = None,
                 flags: MountFlags = MountFlags()) -> None:
        """pivot_root-style: replace the root mount (container entry)."""
        self._mounts = {
            "/": Mount("/", fs, fs.root_ino if root_ino is None else root_ino,
                       flags, owning_userns)
        }

    # -- path walking --------------------------------------------------------------

    def _mount_at(self, canon: str) -> Optional[Mount]:
        return self._mounts.get(canon)

    def _rewalk(self, comps: list[str]) -> tuple[Mount, Inode]:
        """Re-walk an already-canonical component list (no symlinks/perm checks)."""
        mount = self._mounts["/"]
        inode = mount.fs.inode(mount.root_ino)
        cur = ""
        for name in comps:
            cur = f"{cur}/{name}"
            m = self._mount_at(cur)
            if m is not None:
                mount, inode = m, m.fs.inode(m.root_ino)
                continue
            child = mount.fs.lookup(inode, name)
            if child is None:
                raise KernelError(Errno.ENOENT, cur)
            inode = child
        return mount, inode

    def resolve(
        self,
        path: str,
        cred: Credentials,
        *,
        follow: bool = True,
        cwd: str = "/",
    ) -> Resolved:
        """Walk *path*, enforcing search permission, following symlinks.

        ``follow=False`` gives lstat-style behaviour for the final component.
        Relative paths are resolved against *cwd*.
        """
        mount, inode, canon = self._walk(path, cred, follow_final=follow, cwd=cwd)
        return Resolved(mount, inode, canon)

    def resolve_parent(
        self, path: str, cred: Credentials, *, cwd: str = "/"
    ) -> ResolvedParent:
        """Resolve everything but the final component (for create/unlink)."""
        if not path.startswith("/"):
            path = cwd.rstrip("/") + "/" + path
        canon_in = normpath(path)
        if canon_in == "/":
            raise KernelError(Errno.EBUSY, "cannot operate on /")
        parent_path, _, name = canon_in.rpartition("/")
        parent_path = parent_path or "/"
        mount, dir_inode, canon = self._walk(parent_path, cred, follow_final=True,
                                             cwd="/")
        if not dir_inode.is_dir:
            raise KernelError(Errno.ENOTDIR, parent_path)
        return ResolvedParent(mount, dir_inode, name, canon)

    def _walk(
        self, path: str, cred: Credentials, *, follow_final: bool, cwd: str
    ) -> tuple[Mount, Inode, str]:
        if not path:
            raise KernelError(Errno.ENOENT, "empty path")
        if not path.startswith("/"):
            path = cwd.rstrip("/") + "/" + path

        pending: list[str] = [c for c in path.split("/") if c not in ("", ".")]
        pending.reverse()  # treat as a stack

        mount = self._mounts["/"]
        inode = mount.fs.inode(mount.root_ino)
        canon: list[str] = []
        links = 0

        while pending:
            name = pending.pop()
            if name == "..":
                if canon:
                    canon.pop()
                    mount, inode = self._rewalk(canon)
                continue
            if not inode.is_dir:
                raise KernelError(Errno.ENOTDIR, "/" + "/".join(canon))
            if not may_access(cred, inode, execute=True):
                raise KernelError(Errno.EACCES, "/" + "/".join(canon + [name]))
            candidate = "/" + "/".join(canon + [name])
            m = self._mount_at(candidate)
            if m is not None:
                mount, inode = m, m.fs.inode(m.root_ino)
                canon.append(name)
                continue
            child = mount.fs.lookup(inode, name)
            if child is None:
                raise KernelError(Errno.ENOENT, candidate)
            if child.ftype is FileType.SYMLINK and (pending or follow_final):
                links += 1
                if links > _MAX_SYMLINKS:
                    raise KernelError(Errno.ELOOP, candidate)
                target = child.target
                tcomps = [c for c in target.split("/") if c not in ("", ".")]
                pending.extend(reversed(tcomps))
                if target.startswith("/"):
                    canon = []
                    mount = self._mounts["/"]
                    inode = mount.fs.inode(mount.root_ino)
                continue
            canon.append(name)
            inode = child

        return mount, inode, "/" + "/".join(canon)
