"""Process credentials: IDs, supplementary groups, capabilities.

All IDs stored here are *kernel* (init-namespace) IDs; the namespace-relative
view is computed through ``cred.userns`` at syscall boundaries, the same way
the kernel stores kuids/kgids internally.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .capabilities import Cap, EMPTY_CAP_SET, FULL_CAP_SET
from .userns import UserNamespace

__all__ = ["Credentials"]


@dataclass
class Credentials:
    """The credential set of a process (cf. credentials(7)).

    ruid/euid/suid/fsuid and the gid analogues are kernel IDs.  ``groups``
    are the supplementary groups, also kernel GIDs.  ``caps`` is the
    effective capability set, held *with respect to* ``userns``.
    """

    ruid: int
    euid: int
    suid: int
    fsuid: int
    rgid: int
    egid: int
    sgid: int
    fsgid: int
    groups: frozenset[int]
    caps: frozenset[Cap]
    userns: UserNamespace

    @classmethod
    def root(cls, userns: UserNamespace) -> "Credentials":
        """Host root credentials."""
        return cls(0, 0, 0, 0, 0, 0, 0, 0, frozenset({0}), FULL_CAP_SET, userns)

    @classmethod
    def for_user(
        cls,
        uid: int,
        gid: int,
        groups: frozenset[int] = frozenset(),
        userns: UserNamespace | None = None,
    ) -> "Credentials":
        """Unprivileged credentials for a normal user."""
        ns = userns if userns is not None else UserNamespace.initial()
        return cls(
            uid, uid, uid, uid, gid, gid, gid, gid,
            frozenset(groups) | {gid},
            EMPTY_CAP_SET,
            ns,
        )

    def copy(self) -> "Credentials":
        """Independent copy (for fork())."""
        return replace(self)

    # -- capability checks ------------------------------------------------------

    def has_cap(self, cap: Cap, target_ns: UserNamespace | None = None) -> bool:
        """ns_capable(): does this process hold *cap* in *target_ns*?

        True if the target is the process's own namespace (or a descendant of
        it) and the cap is in the effective set, or if the process's euid owns
        an ancestor namespace of the target (the creator-gets-all-caps rule).
        """
        ns = target_ns if target_ns is not None else self.userns
        node: UserNamespace | None = ns
        while node is not None:
            if node is self.userns:
                return cap in self.caps
            # A process in the parent namespace whose euid owns `node` has
            # all capabilities in it (user_namespaces(7)).
            if node.parent is self.userns and self.euid == node.owner_uid:
                return True
            node = node.parent
        return False

    def in_group(self, kgid: int) -> bool:
        """True if *kgid* is the fsgid or a supplementary group."""
        return kgid == self.fsgid or kgid in self.groups

    # -- namespace-relative views ------------------------------------------------

    @property
    def ns_uid(self) -> int:
        """euid as seen inside the process's own user namespace."""
        return self.userns.uid_display(self.euid)

    @property
    def ns_gid(self) -> int:
        return self.userns.gid_display(self.egid)

    def enter_userns(self, ns: UserNamespace, *, full_caps: bool = True) -> None:
        """Move into *ns* (unshare/setns semantics).

        The first process in a new user namespace gets all capabilities in it
        (paper §2.1.1 footnote 5).
        """
        self.userns = ns
        self.caps = FULL_CAP_SET if full_caps else EMPTY_CAP_SET

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Credentials euid={self.euid} egid={self.egid} "
            f"groups={sorted(self.groups)} ns=#{self.userns.ns_id} "
            f"caps={len(self.caps)}>"
        )
