"""Control groups, v1 and v2.

Paper §4.1: "with rootless Podman, cgroups are left unused as cgroup
operations by default are generally root-level actions... prototype work is
underway to implement cgroups v2 in userspace via the crun runtime, which
enables cgroups control in a completely unprivileged context."

We model exactly that distinction:

* v1: every write requires root in the initial namespace;
* v2 (unified) with delegation: a subtree can be delegated to a user, after
  which that user can create child groups and set limits — what crun uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import Errno, KernelError
from .cred import Credentials

__all__ = ["CgroupV1Hierarchy", "CgroupV2Hierarchy", "Cgroup"]


@dataclass
class Cgroup:
    """One cgroup node."""

    name: str
    owner_uid: int
    limits: dict[str, int] = field(default_factory=dict)
    pids: set[int] = field(default_factory=set)
    children: dict[str, "Cgroup"] = field(default_factory=dict)

    def path_of(self, prefix: str = "") -> str:  # pragma: no cover - cosmetic
        return f"{prefix}/{self.name}"


class CgroupV1Hierarchy:
    """cgroups v1: root-only writes; the reason rootless Podman skips cgroups."""

    version = 1

    def __init__(self):
        self.root = Cgroup("", owner_uid=0)

    def create(self, parent: Cgroup, name: str, cred: Credentials) -> Cgroup:
        if cred.euid != 0 or not cred.userns.is_initial:
            raise KernelError(Errno.EPERM,
                              "cgroup v1 modification requires host root")
        child = Cgroup(name, owner_uid=0)
        parent.children[name] = child
        return child

    def set_limit(self, group: Cgroup, key: str, value: int,
                  cred: Credentials) -> None:
        if cred.euid != 0 or not cred.userns.is_initial:
            raise KernelError(Errno.EPERM,
                              "cgroup v1 modification requires host root")
        group.limits[key] = value

    def attach(self, group: Cgroup, pid: int, cred: Credentials) -> None:
        if cred.euid != 0 or not cred.userns.is_initial:
            raise KernelError(Errno.EPERM, "cgroup v1 attach requires host root")
        group.pids.add(pid)


class CgroupV2Hierarchy:
    """cgroups v2 unified hierarchy with subtree delegation.

    ``delegate(subtree, uid)`` is what systemd's ``Delegate=`` does for user
    sessions; afterwards the delegated user manages the subtree without any
    privilege — the mechanism crun's unprivileged cgroup support rides on.
    """

    version = 2

    def __init__(self):
        self.root = Cgroup("", owner_uid=0)
        self._delegations: dict[int, int] = {}  # id(cgroup) -> uid

    def delegate(self, group: Cgroup, uid: int, cred: Credentials) -> None:
        if cred.euid != 0 or not cred.userns.is_initial:
            raise KernelError(Errno.EPERM, "delegation requires host root")
        group.owner_uid = uid
        self._delegations[id(group)] = uid

    def _may_manage(self, group: Cgroup, cred: Credentials) -> bool:
        if cred.euid == 0 and cred.userns.is_initial:
            return True
        return group.owner_uid == cred.euid

    def create(self, parent: Cgroup, name: str, cred: Credentials) -> Cgroup:
        if not self._may_manage(parent, cred):
            raise KernelError(Errno.EPERM,
                              f"no delegation of cgroup subtree to uid {cred.euid}")
        child = Cgroup(name, owner_uid=parent.owner_uid)
        parent.children[name] = child
        return child

    def set_limit(self, group: Cgroup, key: str, value: int,
                  cred: Credentials) -> None:
        if not self._may_manage(group, cred):
            raise KernelError(Errno.EPERM, "cgroup not delegated to caller")
        if key not in ("memory.max", "cpu.max", "pids.max", "io.max"):
            raise KernelError(Errno.EINVAL, f"unknown cgroup v2 control {key}")
        group.limits[key] = value

    def attach(self, group: Cgroup, pid: int, cred: Credentials) -> None:
        if not self._may_manage(group, cred):
            raise KernelError(Errno.EPERM, "cgroup not delegated to caller")
        group.pids.add(pid)
