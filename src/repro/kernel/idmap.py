"""UID/GID maps for user namespaces (paper §2.1.1).

A map is a set of one-to-one range correspondences between *inside*
(namespace) IDs and *outside* (host/parent) IDs, exactly like the kernel's
``/proc/<pid>/uid_map``.  Because each entry maps a contiguous range
one-to-one, there is never squashing of multiple IDs onto one (§2.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..errors import Errno, KernelError
from .types import ID_MAX, check_id

__all__ = ["IdMapEntry", "IdMap", "IDENTITY_MAP"]


@dataclass(frozen=True)
class IdMapEntry:
    """One line of a uid_map/gid_map file: ``inside outside count``."""

    inside_start: int
    outside_start: int
    count: int

    def __post_init__(self) -> None:
        check_id(self.inside_start, "inside_start")
        check_id(self.outside_start, "outside_start")
        if not isinstance(self.count, int) or self.count <= 0:
            raise ValueError(f"count must be a positive int: {self.count!r}")
        if self.inside_start + self.count - 1 > ID_MAX:
            raise ValueError("inside range exceeds 32-bit ID space")
        if self.outside_start + self.count - 1 > ID_MAX:
            raise ValueError("outside range exceeds 32-bit ID space")

    @property
    def inside_end(self) -> int:
        """Last inside ID covered (inclusive)."""
        return self.inside_start + self.count - 1

    @property
    def outside_end(self) -> int:
        """Last outside ID covered (inclusive)."""
        return self.outside_start + self.count - 1

    def contains_inside(self, ns_id: int) -> bool:
        return self.inside_start <= ns_id <= self.inside_end

    def contains_outside(self, host_id: int) -> bool:
        return self.outside_start <= host_id <= self.outside_end

    def format(self) -> str:
        """Render in ``/proc/self/uid_map`` column format."""
        return f"{self.inside_start:>10} {self.outside_start:>10} {self.count:>10}"


class IdMap:
    """An ordered, validated collection of :class:`IdMapEntry`.

    Raises :class:`KernelError` with ``EINVAL`` for ill-formed maps, matching
    what a write to ``/proc/<pid>/uid_map`` would return.
    """

    MAX_ENTRIES = 340  # kernel limit since Linux 4.15 (5 before that)

    def __init__(self, entries: Iterable[IdMapEntry]):
        ents = list(entries)
        if not ents:
            raise KernelError(Errno.EINVAL, "empty ID map")
        if len(ents) > self.MAX_ENTRIES:
            raise KernelError(
                Errno.EINVAL, f"too many map entries ({len(ents)} > {self.MAX_ENTRIES})"
            )
        # Ranges may not overlap on either side; this is what guarantees the
        # map is one-to-one in both directions.
        for i, a in enumerate(ents):
            for b in ents[i + 1 :]:
                if a.inside_start <= b.inside_end and b.inside_start <= a.inside_end:
                    raise KernelError(Errno.EINVAL, "overlapping inside ID ranges")
                if (
                    a.outside_start <= b.outside_end
                    and b.outside_start <= a.outside_end
                ):
                    raise KernelError(Errno.EINVAL, "overlapping outside ID ranges")
        self._entries: tuple[IdMapEntry, ...] = tuple(ents)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def identity(cls) -> "IdMap":
        """The initial namespace's map: every ID maps to itself."""
        return cls([IdMapEntry(0, 0, ID_MAX + 1)])

    @classmethod
    def single(cls, inside: int, outside: int) -> "IdMap":
        """An unprivileged map: exactly one ID (paper §2.1.3)."""
        return cls([IdMapEntry(inside, outside, 1)])

    @classmethod
    def parse(cls, text: str) -> "IdMap":
        """Parse uid_map file syntax: one ``inside outside count`` per line."""
        entries = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise KernelError(Errno.EINVAL, f"bad map line: {line!r}")
            try:
                entries.append(IdMapEntry(int(parts[0]), int(parts[1]), int(parts[2])))
            except ValueError as exc:
                raise KernelError(Errno.EINVAL, str(exc)) from exc
        return cls(entries)

    # -- queries ---------------------------------------------------------------

    @property
    def entries(self) -> tuple[IdMapEntry, ...]:
        return self._entries

    def __iter__(self) -> Iterator[IdMapEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdMap):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{e.inside_start}->{e.outside_start}x{e.count}" for e in self._entries
        )
        return f"IdMap({inner})"

    def to_outside(self, ns_id: int) -> Optional[int]:
        """Translate a namespace ID to the host ID, or None if unmapped."""
        for e in self._entries:
            if e.contains_inside(ns_id):
                return e.outside_start + (ns_id - e.inside_start)
        return None

    def to_inside(self, host_id: int) -> Optional[int]:
        """Translate a host ID into the namespace, or None if unmapped."""
        for e in self._entries:
            if e.contains_outside(host_id):
                return e.inside_start + (host_id - e.outside_start)
        return None

    def mapped_count(self) -> int:
        """Total number of IDs covered by the map."""
        return sum(e.count for e in self._entries)

    def is_single(self) -> bool:
        """True for the one-ID maps unprivileged processes may create."""
        return len(self._entries) == 1 and self._entries[0].count == 1

    def format(self) -> str:
        """Render the whole map in ``/proc/self/uid_map`` format."""
        return "\n".join(e.format() for e in self._entries) + "\n"


#: Shared identity map used by the initial user namespace.
IDENTITY_MAP = IdMap.identity()
