"""repro — a reproduction of "Minimizing privilege for building HPC containers".

A simulated-Linux substrate plus container build implementations:

* :mod:`repro.kernel` — user/mount namespaces, VFS, capabilities, syscalls.
* :mod:`repro.helpers` — shadow-utils subordinate-ID helpers.
* :mod:`repro.fakeroot` — three fakeroot(1) engines.
* :mod:`repro.shell` — a mini POSIX shell + simulated userland.
* :mod:`repro.distro` — yum/rpm and apt/dpkg package substrates + base images.
* :mod:`repro.cas` — the content-addressed blob store and the Merkle-
  keyed ch-image build cache.
* :mod:`repro.containers` — OCI plumbing, Docker (Type I), rootless
  Podman/Buildah (Type II).
* :mod:`repro.core` — Charliecloud ch-image/ch-run (Type III), the paper's
  primary contribution.
* :mod:`repro.cluster` — HPC machines, scheduler, CI, the Astra workflow.
"""

__version__ = "1.0.0"

from .errors import (
    BuildError,
    Errno,
    KernelError,
    PackageError,
    RegistryError,
    ReproError,
)

__all__ = [
    "__version__",
    "BuildError",
    "Errno",
    "KernelError",
    "PackageError",
    "RegistryError",
    "ReproError",
]
