"""Content-addressed storage and the shared build cache.

The subsystem behind ``ch-image build-cache`` and the registry/driver
blob dedup: a refcounted sha256 :class:`ContentStore` (LRU eviction, GC,
pinning), tree-diff helpers shared with the storage drivers, and the
Merkle-keyed :class:`BuildCache` whose values are layer diffs and whose
manifests travel between builders via any OCI registry.

See docs/CACHING.md for the design and key-derivation rules.
"""

from .cache import (
    CACHE_MANIFEST_VERSION,
    BuildCache,
    BuildCacheStats,
    CacheHandle,
    CacheRecord,
)
from .diff import (
    Snapshot,
    apply_diff_to_snapshot,
    diff_against_snapshot,
    member_digest,
    snapshot_and_diff,
    snapshot_digest,
    snapshot_of_archive,
    snapshot_tree,
)
from .store import CasError, CasStats, ContentStore, blob_digest

__all__ = [
    "BuildCache",
    "BuildCacheStats",
    "CacheHandle",
    "CacheRecord",
    "CACHE_MANIFEST_VERSION",
    "CasError",
    "CasStats",
    "ContentStore",
    "blob_digest",
    "member_digest",
    "Snapshot",
    "snapshot_and_diff",
    "snapshot_of_archive",
    "snapshot_tree",
    "snapshot_digest",
    "diff_against_snapshot",
    "apply_diff_to_snapshot",
]
