"""Tree snapshots and layer diffs, shared by storage drivers and the
build cache.

A *snapshot* is ``path -> member digest`` for a whole tree; a *diff* is
the overlayfs-style :class:`~repro.archive.TarArchive` containing changed
members plus character-device whiteouts for deletions.  Keeping the
hashing here (one implementation) is what makes cache keys and layer
diffs agree everywhere: the same bytes hash the same whether a storage
driver, a registry, or the build cache looks at them.

Two implementations produce every snapshot and diff:

* The **reference oracle** — pack the whole tree, hash every member
  (:func:`diff_against_snapshot` over :meth:`TarArchive.pack`).  O(tree)
  per instruction boundary; always correct; selected by
  ``REPRO_SIM_REFERENCE=1`` / :func:`repro.sim.opts.reference_engine`.

* The **incremental walker** — consult the VFS change journal
  (:class:`~repro.kernel.vfs.Filesystem` generation counters) and walk
  only *dirty* directories, splicing the previous snapshot's entries for
  clean subtrees and reusing memoized member digests keyed by
  ``(device, inode, generation)``.  O(changed paths) per boundary.

The two are bit-identical — same snapshot mappings, same
:func:`snapshot_digest`, same serialized diff archives — which the
Hypothesis suite in ``tests/cas/test_incremental_property.py`` asserts
across random mutation sequences.  The walker counts its work in
:data:`repro.sim.profile.COUNTERS` (``snapshot.walk_full``,
``snapshot.walk_dirty``, ``snapshot.splice``, ``digest.memo_hit``,
``digest.memo_miss``) and, when a tracer is attached, in
``TraceMetrics.snapshots``.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Optional
from weakref import WeakKeyDictionary

from ..archive import TarArchive, TarMember, member_of
from ..errors import KernelError
from ..kernel import FileType, Syscalls
from ..sim import opts as _opts
from ..sim.profile import COUNTERS

__all__ = [
    "member_digest",
    "Snapshot",
    "snapshot_tree",
    "snapshot_of_archive",
    "snapshot_digest",
    "snapshot_and_diff",
    "diff_against_snapshot",
    "apply_diff_to_snapshot",
]

#: ``/`` is the last path separator below ``0`` in ASCII, so
#: ``[path + "/", path + AFTER_SLASH)`` brackets exactly the descendants
#: of *path* in a sorted path list.
_AFTER_SLASH = chr(ord("/") + 1)


def member_digest(m: TarMember) -> str:
    """Content+metadata digest of one archive member."""
    h = hashlib.sha256()
    h.update(f"{m.ftype}|{m.mode}|{m.uid}|{m.gid}|{m.target}|"
             f"{m.rdev}".encode())
    h.update(m.data)
    return h.hexdigest()


class Snapshot(dict):
    """``path -> member digest`` plus the change-journal bookkeeping that
    makes the *next* walk incremental.

    ``meta``
        ``path -> (device, inode, data_bytes)`` as of the walk that
        produced this snapshot.  The (device, inode) pair anchors splice
        decisions — a renamed subtree re-appears at a new path and must
        not inherit the old path's digests; ``data_bytes`` lets storage
        drivers charge full-tree byte costs without re-packing.
    ``base_gen``
        ``device_id -> filesystem generation`` floor at walk time: any
        inode whose generation is at or below the floor is unchanged
        since this snapshot.
    ``view_key``
        The :meth:`~repro.kernel.Syscalls.digest_view_key` of the
        interface that walked, or ``None`` when the snapshot came from
        the reference path (then it can seed a diff but never a splice).

    Instances are treated as immutable once built;
    :func:`apply_diff_to_snapshot` returns a new one.
    """

    __slots__ = ("meta", "base_gen", "view_key", "_digest", "_sorted")

    def __init__(self, mapping=(), *, view_key: Optional[tuple] = None):
        super().__init__(mapping)
        self.meta: dict[str, tuple] = {}
        self.base_gen: dict[int, int] = {}
        self.view_key = view_key
        self._digest: Optional[str] = None
        self._sorted: Optional[list[str]] = None

    def sorted_paths(self) -> list[str]:
        """Paths in sorted order, computed once."""
        s = self._sorted
        if s is None:
            s = self._sorted = sorted(self)
        return s

    def total_bytes(self) -> int:
        """Sum of member data bytes (valid on fresh walks, where ``meta``
        covers every path)."""
        return sum(m[2] for m in self.meta.values())


def snapshot_of_archive(archive: TarArchive) -> dict[str, str]:
    """``path -> member digest`` for an already-packed tree."""
    return {m.path: member_digest(m) for m in archive}


# -- the member-digest memo ----------------------------------------------------------
#
# kernel -> {view_key -> {(device, inode): (generation, digest)}}.  Keyed
# weakly by kernel so simulated machines are collectable; partitioned by
# view key because the *same* inode stats differently through different
# interfaces (fakeroot lies, user-namespace ID display).

_DIGEST_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()


def _memo_for(sys: Syscalls) -> tuple[tuple, dict]:
    views = _DIGEST_MEMO.get(sys.kernel)
    if views is None:
        views = _DIGEST_MEMO[sys.kernel] = {}
    view = sys.digest_view_key()
    memo = views.get(view)
    if memo is None:
        memo = views[view] = {}
    return view, memo


def _count(sys: Syscalls, event: str, n: int = 1) -> None:
    """Record walker work in the global counter registry and, when a
    tracer is attached, in its per-run metrics."""
    if n <= 0:
        return
    COUNTERS.count(event, n)
    tracer = sys.kernel.tracer
    if tracer is not None:
        tracer.metrics.count_snapshot(event, n)


def _journal_capable(sys: Syscalls, prev) -> Optional[Snapshot]:
    """*prev* as a journal-capable snapshot, or None: it must have been
    walked by an interface with the same digest view as *sys*."""
    if isinstance(prev, Snapshot) and prev.view_key is not None \
            and prev.view_key == sys.digest_view_key():
        return prev
    return None


def _wrap_reference(cur: dict[str, str], full: TarArchive) -> Snapshot:
    """Wrap a reference-path snapshot dict so storage drivers can charge
    byte costs; ``view_key=None`` keeps it out of the splice fast path."""
    snap = Snapshot(cur)
    meta = snap.meta
    for m in full:
        meta[m.path] = (None, None, len(m.data))
    return snap


def _walk_incremental(sys: Syscalls, root: str, jprev: Optional[Snapshot],
                      prev_digests) -> tuple[Snapshot, list[TarMember], int]:
    """Walk the tree under *root*, re-hashing only what the change
    journal says is dirty relative to *jprev* (None: walk everything,
    still memoized).

    Returns ``(snapshot, changed_members, dirty_dirs)``.  *prev_digests*
    (any mapping, or None to skip collection) decides which members land
    in ``changed_members``; traced syscalls issued for a dirty path are
    exactly the ones :meth:`TarArchive.pack` would issue for it.
    """
    view, memo = _memo_for(sys)
    cur = Snapshot(view_key=view)
    meta = cur.meta
    base = cur.base_gen
    changed: list[TarMember] = []

    rootpath = root.rstrip("/") or "/"
    mounts_under = [mp for mp in sys.mnt_ns.mounts
                    if mp != "/" and (mp == rootpath
                                      or mp.startswith(rootpath + "/"))]
    fs_by_dev = {m.fs.device_id: m.fs for m in sys.mnt_ns.mounts.values()}

    floors = jprev.base_gen if jprev is not None else None
    pmeta = jprev.meta if jprev is not None else None
    prev_sorted = jprev.sorted_paths() if jprev is not None else None

    try:
        res0 = sys.mnt_ns.resolve(rootpath, sys.cred, cwd=sys.getcwd())
    except KernelError:
        res0 = None  # let the traced readdir below raise the real error

    # Whole-tree early exit: the root's subtree generation is at or below
    # every floor and no mount shadows part of the tree — nothing moved.
    if jprev is not None and not mounts_under and res0 is not None \
            and res0.inode.tree_gen <= floors.get(res0.fs.device_id, -1):
        return jprev, [], 0

    dirty_dirs = 0
    memo_hits = 0
    memo_misses = 0
    spliced = 0

    def note_dev(dev: int) -> None:
        if dev not in base:
            fs = fs_by_dev.get(dev)
            if fs is not None:
                base[dev] = fs.gen

    def splice_subtree(rel: str) -> None:
        # Copy the clean directory's own entry plus its whole descendant
        # range from the previous snapshot — no syscalls, no hashing.
        nonlocal spliced
        cur[rel] = jprev[rel]
        meta[rel] = pmeta[rel]
        lo = bisect_left(prev_sorted, rel + "/")
        hi = bisect_left(prev_sorted, rel + _AFTER_SLASH)
        for p in prev_sorted[lo:hi]:
            cur[p] = jprev[p]
            meta[p] = pmeta[p]
        spliced += 1 + (hi - lo)

    def clean_dir(full: str, rel: str, st) -> bool:
        if floors is None:
            return False
        if st.st_tree_gen > floors.get(st.st_dev, -1):
            return False
        pm = pmeta.get(rel)
        if pm is None or pm[0] != st.st_dev or pm[1] != st.st_ino:
            return False  # new or renamed-into-place directory
        if mounts_under and any(mp == full or mp.startswith(full + "/")
                                for mp in mounts_under):
            return False  # a mount shadows part of this subtree
        return True

    def clean_file(rel: str, st) -> bool:
        if floors is None or st.st_gen > floors.get(st.st_dev, -1):
            return False
        pm = pmeta.get(rel)
        return pm is not None and pm[0] == st.st_dev and pm[1] == st.st_ino

    def hashed(full: str, rel: str, st
               ) -> tuple[str, Optional[TarMember]]:
        nonlocal memo_hits, memo_misses
        key = (st.st_dev, st.st_ino)
        hit = memo.get(key)
        if hit is not None and hit[0] == st.st_gen:
            memo_hits += 1
            return hit[1], None
        m = member_of(sys, full, rel, st)
        d = member_digest(m)
        memo[key] = (st.st_gen, d)
        memo_misses += 1
        return d, m

    def record(full: str, rel: str, st) -> None:
        d, m = hashed(full, rel, st)
        cur[rel] = d
        meta[rel] = (st.st_dev, st.st_ino,
                     st.st_size if st.ftype is FileType.REG else 0)
        if prev_digests is not None and prev_digests.get(rel) != d:
            changed.append(m if m is not None
                           else member_of(sys, full, rel, st))

    def walk(dirpath: str, rel: str) -> None:
        nonlocal dirty_dirs
        dirty_dirs += 1
        for entry in sys.readdir(dirpath):
            full = f"{dirpath.rstrip('/')}/{entry.name}"
            relpath = f"{rel}/{entry.name}" if rel else entry.name
            st = sys.lstat(full)
            note_dev(st.st_dev)
            if st.ftype is FileType.DIR:
                if clean_dir(full, relpath, st):
                    splice_subtree(relpath)
                    continue
                record(full, relpath, st)
                walk(full, relpath)
            else:
                if clean_file(relpath, st):
                    cur[relpath] = jprev[relpath]
                    meta[relpath] = pmeta[relpath]
                    continue
                record(full, relpath, st)

    if res0 is not None:
        note_dev(res0.fs.device_id)
    walk(rootpath, "")

    _count(sys, "digest.memo_hit", memo_hits)
    _count(sys, "digest.memo_miss", memo_misses)
    _count(sys, "snapshot.splice", spliced)
    return cur, changed, dirty_dirs


def snapshot_tree(sys: Syscalls, root: str):
    """Digest the tree under *root* as seen through *sys*.

    Reference mode packs and hashes everything; otherwise the journal
    walker runs with an empty baseline (a full walk, but memoized and
    producing a journal-capable :class:`Snapshot`)."""
    if not _opts.optimizations_enabled():
        _count(sys, "snapshot.walk_full")
        return snapshot_of_archive(TarArchive.pack(sys, root))
    cur, _changed, _dirty = _walk_incremental(sys, root, None, None)
    _count(sys, "snapshot.walk_full")
    return cur


def snapshot_digest(snapshot) -> str:
    """One deterministic digest for a whole snapshot (used as the
    base-image component of build-cache keys).  Cached on
    :class:`Snapshot` instances — they are immutable once built."""
    cached = getattr(snapshot, "_digest", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    paths = (snapshot.sorted_paths() if isinstance(snapshot, Snapshot)
             else sorted(snapshot))
    for path in paths:
        h.update(f"{path}\x00{snapshot[path]}\n".encode())
    digest = "sha256:" + h.hexdigest()
    if isinstance(snapshot, Snapshot):
        snapshot._digest = digest
    return digest


def _whiteouts(prev, cur) -> list[TarMember]:
    return [TarMember(path=p, ftype=FileType.CHR, mode=0, uid=0,
                      gid=0, rdev=(0, 0))
            for p in sorted(p for p in prev if p not in cur)]


def snapshot_and_diff(sys: Syscalls, root: str, prev=None
                      ) -> tuple[TarArchive, Snapshot]:
    """Snapshot the tree under *root* and diff it against *prev* in one
    pass.  Returns ``(diff, snapshot)`` — the diff holds changed/added
    members in path order plus whiteouts for paths that disappeared,
    bit-identical to packing the tree and calling
    :func:`diff_against_snapshot`, but touching only dirty subtrees when
    *prev* is a journal-capable :class:`Snapshot` from the same view.
    """
    prev_map = prev if prev is not None else {}
    if not _opts.optimizations_enabled():
        full = TarArchive.pack(sys, root)
        _count(sys, "snapshot.walk_full")
        diff, cur = diff_against_snapshot(prev_map, full)
        return diff, _wrap_reference(cur, full)
    jprev = _journal_capable(sys, prev_map)
    cur, changed, dirty = _walk_incremental(sys, root, jprev, prev_map)
    if jprev is None:
        _count(sys, "snapshot.walk_full")
    else:
        _count(sys, "snapshot.walk_dirty", dirty)
    changed.sort(key=lambda m: m.path)
    return TarArchive(changed + _whiteouts(prev_map, cur)), cur


def diff_against_snapshot(prev, full: TarArchive
                          ) -> tuple[TarArchive, dict[str, str]]:
    """Diff a packed tree against the previous snapshot (the reference
    oracle — every member hashed from scratch).

    Returns ``(diff, new_snapshot)``: the diff holds changed/added members
    in path order plus whiteouts (character devices with mode 0, as
    overlayfs represents deletions) for paths that disappeared.
    """
    cur: dict[str, str] = {}
    members_by_path: dict[str, TarMember] = {}
    for m in full:
        cur[m.path] = member_digest(m)
        members_by_path[m.path] = m
    changed = [members_by_path[p] for p in sorted(cur)
               if prev.get(p) != cur[p]]
    return TarArchive(changed + _whiteouts(prev, cur)), cur


def apply_diff_to_snapshot(prev, diff: TarArchive):
    """The snapshot that results from applying *diff* to a tree whose
    snapshot was *prev* — without re-packing the tree.

    Journal bookkeeping is carried over when *prev* is a
    :class:`Snapshot`: the floor generations stay (they still bound every
    *untouched* inode) and ``meta`` entries for paths the diff rewrote
    are dropped — applying the diff mutates those paths through real
    syscalls, so the journal marks their directories dirty and the next
    walk re-anchors them."""
    if isinstance(prev, Snapshot):
        out = Snapshot(prev, view_key=prev.view_key)
        out.meta = dict(prev.meta)
        out.base_gen = dict(prev.base_gen)
        meta = out.meta
    else:
        out = dict(prev)
        meta = None
    for m in diff:
        if m.ftype is FileType.CHR and m.mode == 0:  # whiteout
            out.pop(m.path, None)
        else:
            out[m.path] = member_digest(m)
        if meta is not None:
            meta.pop(m.path, None)
    return out
