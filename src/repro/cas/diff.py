"""Tree snapshots and layer diffs, shared by storage drivers and the
build cache.

A *snapshot* is ``path -> member digest`` for a whole tree; a *diff* is
the overlayfs-style :class:`~repro.archive.TarArchive` containing changed
members plus character-device whiteouts for deletions.  Keeping the
hashing here (one implementation) is what makes cache keys and layer
diffs agree everywhere: the same bytes hash the same whether a storage
driver, a registry, or the build cache looks at them.
"""

from __future__ import annotations

import hashlib

from ..archive import TarArchive, TarMember
from ..kernel import FileType, Syscalls

__all__ = [
    "member_digest",
    "snapshot_tree",
    "snapshot_of_archive",
    "snapshot_digest",
    "diff_against_snapshot",
    "apply_diff_to_snapshot",
]


def member_digest(m: TarMember) -> str:
    """Content+metadata digest of one archive member."""
    h = hashlib.sha256()
    h.update(f"{m.ftype}|{m.mode}|{m.uid}|{m.gid}|{m.target}|"
             f"{m.rdev}".encode())
    h.update(m.data)
    return h.hexdigest()


def snapshot_of_archive(archive: TarArchive) -> dict[str, str]:
    """``path -> member digest`` for an already-packed tree."""
    return {m.path: member_digest(m) for m in archive}


def snapshot_tree(sys: Syscalls, root: str) -> dict[str, str]:
    """Pack and digest the tree under *root* as seen through *sys*."""
    return snapshot_of_archive(TarArchive.pack(sys, root))


def snapshot_digest(snapshot: dict[str, str]) -> str:
    """One deterministic digest for a whole snapshot (used as the
    base-image component of build-cache keys)."""
    h = hashlib.sha256()
    for path in sorted(snapshot):
        h.update(f"{path}\x00{snapshot[path]}\n".encode())
    return "sha256:" + h.hexdigest()


def diff_against_snapshot(prev: dict[str, str], full: TarArchive
                          ) -> tuple[TarArchive, dict[str, str]]:
    """Diff a packed tree against the previous snapshot.

    Returns ``(diff, new_snapshot)``: the diff holds changed/added members
    in path order plus whiteouts (character devices with mode 0, as
    overlayfs represents deletions) for paths that disappeared.
    """
    cur: dict[str, str] = {}
    members_by_path: dict[str, TarMember] = {}
    for m in full:
        cur[m.path] = member_digest(m)
        members_by_path[m.path] = m
    changed = [members_by_path[p] for p in sorted(cur)
               if prev.get(p) != cur[p]]
    deleted = [TarMember(path=p, ftype=FileType.CHR, mode=0, uid=0,
                         gid=0, rdev=(0, 0))
               for p in sorted(set(prev) - set(cur))]
    return TarArchive(changed + deleted), cur


def apply_diff_to_snapshot(prev: dict[str, str], diff: TarArchive
                           ) -> dict[str, str]:
    """The snapshot that results from applying *diff* to a tree whose
    snapshot was *prev* — without re-packing the tree."""
    out = dict(prev)
    for m in diff:
        if m.ftype is FileType.CHR and m.mode == 0:  # whiteout
            out.pop(m.path, None)
        else:
            out[m.path] = member_digest(m)
    return out
