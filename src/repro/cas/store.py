"""The content-addressed blob store (CAS).

One sha256-keyed byte store shared by everything that keeps blobs: the
registry's layer storage, the storage drivers' committed diffs, and the
ch-image build cache.  Content addressing is what makes the paper's §4.2
registry economics work ("persistence ... portability, debugging with old
versions, or general future reproducibility"): identical bytes are stored
once no matter how many images, repositories, or builders reference them.

Lifetime model — three independent protections, weakest to strongest:

* **LRU residency**: unprotected blobs live in least-recently-used order
  and are evicted when a ``max_bytes`` bound would be exceeded.  Build-
  cache entries rely on this: losing one is just a future cache miss.
* **refcounts** (:meth:`ContentStore.incref`): durable references held by
  owners with persistence semantics (a registry that accepted a push, a
  storage driver that committed a layer).  Referenced blobs are never
  evicted and never garbage-collected.
* **pins** (:meth:`ContentStore.pin`): temporary holds during multi-step
  operations (e.g. a cache import in flight), immune like refcounts.

:meth:`ContentStore.gc` additionally takes a ``keep`` set so callers with
their own reachability notion (the build cache's Merkle chains) can
protect exactly the blobs their live records still name.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional

from ..errors import ReproError

__all__ = ["CasError", "CasStats", "ContentStore", "blob_digest"]


class CasError(ReproError):
    """Missing blob or inconsistent reference bookkeeping."""


def blob_digest(data: bytes) -> str:
    """The content address of *data* (``sha256:<hex>``)."""
    return "sha256:" + hashlib.sha256(data).hexdigest()


@dataclass
class CasStats:
    """Hit/miss/evict accounting for one store."""

    puts: int = 0            # put() calls
    dedup_hits: int = 0      # put() of already-present bytes
    hits: int = 0            # get() served
    misses: int = 0          # get() of an absent digest
    evictions: int = 0       # blobs dropped by the LRU bound
    bytes_in: int = 0        # bytes offered to put()
    bytes_stored: int = 0    # bytes physically added (post-dedup)
    bytes_evicted: int = 0
    gc_runs: int = 0
    gc_reclaimed: int = 0
    gc_bytes_reclaimed: int = 0

    @property
    def bytes_deduped(self) -> int:
        """Bytes put() accepted without storing (the dedup savings)."""
        return self.bytes_in - self.bytes_stored

    def as_dict(self) -> dict:
        return {
            "puts": self.puts,
            "dedup_hits": self.dedup_hits,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_in": self.bytes_in,
            "bytes_stored": self.bytes_stored,
            "bytes_deduped": self.bytes_deduped,
            "bytes_evicted": self.bytes_evicted,
            "gc_runs": self.gc_runs,
            "gc_reclaimed": self.gc_reclaimed,
            "gc_bytes_reclaimed": self.gc_bytes_reclaimed,
        }


class ContentStore:
    """A refcounted sha256 blob store with size-bounded LRU residency.

    ``max_bytes=None`` (the default) disables eviction entirely — the
    right mode for a registry, which must never silently lose a pushed
    layer.  With a bound, :meth:`put` evicts least-recently-used
    *unprotected* blobs until the new blob fits; if everything resident is
    protected the bound is allowed to overflow rather than lose data.
    """

    def __init__(self, *, max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            raise CasError(f"max_bytes must be positive: {max_bytes}")
        self.max_bytes = max_bytes
        self.stats = CasStats()
        self._blobs: OrderedDict[str, bytes] = OrderedDict()
        self._refs: dict[str, int] = {}
        self._pins: set[str] = set()
        self._size = 0

    # -- introspection -----------------------------------------------------------

    def __contains__(self, digest: str) -> bool:
        return digest in self._blobs

    def has(self, digest: str) -> bool:
        return digest in self._blobs

    @property
    def size_bytes(self) -> int:
        return self._size

    @property
    def blob_count(self) -> int:
        return len(self._blobs)

    def digests(self) -> list[str]:
        """Resident digests, least-recently-used first."""
        return list(self._blobs)

    def size_of(self, digest: str) -> int:
        """Size of a resident blob without touching LRU order or stats."""
        try:
            return len(self._blobs[digest])
        except KeyError:
            raise CasError(f"no blob {digest[:19]}... in store")

    def refcount(self, digest: str) -> int:
        return self._refs.get(digest, 0)

    def pinned(self, digest: str) -> bool:
        return digest in self._pins

    def protected(self, digest: str) -> bool:
        """True if *digest* may be neither evicted nor garbage-collected."""
        return self._refs.get(digest, 0) > 0 or digest in self._pins

    # -- data plane --------------------------------------------------------------

    def put(self, data: bytes) -> str:
        """Store *data*; returns its digest.  Never fails: identical bytes
        dedup to the existing blob, and eviction makes room if bounded."""
        digest = blob_digest(data)
        self.stats.puts += 1
        self.stats.bytes_in += len(data)
        if digest in self._blobs:
            self.stats.dedup_hits += 1
            self._blobs.move_to_end(digest)
            return digest
        self._evict_for(len(data))
        self._blobs[digest] = data
        self._size += len(data)
        self.stats.bytes_stored += len(data)
        return digest

    def get(self, digest: str) -> bytes:
        """Fetch a blob (LRU-touching); raises :class:`CasError` on miss."""
        try:
            data = self._blobs[digest]
        except KeyError:
            self.stats.misses += 1
            raise CasError(f"no blob {digest[:19]}... in store")
        self._blobs.move_to_end(digest)
        self.stats.hits += 1
        return data

    # -- reference plane ----------------------------------------------------------

    def incref(self, digest: str) -> None:
        if digest not in self._blobs:
            raise CasError(f"cannot reference absent blob {digest[:19]}...")
        self._refs[digest] = self._refs.get(digest, 0) + 1

    def decref(self, digest: str) -> None:
        n = self._refs.get(digest, 0)
        if n <= 0:
            raise CasError(f"refcount underflow on {digest[:19]}...")
        if n == 1:
            del self._refs[digest]
        else:
            self._refs[digest] = n - 1

    def pin(self, digest: str) -> None:
        if digest not in self._blobs:
            raise CasError(f"cannot pin absent blob {digest[:19]}...")
        self._pins.add(digest)

    def unpin(self, digest: str) -> None:
        self._pins.discard(digest)

    # -- reclamation --------------------------------------------------------------

    def _evict_for(self, incoming: int) -> None:
        if self.max_bytes is None:
            return
        for digest in list(self._blobs):  # oldest (LRU) first
            if self._size + incoming <= self.max_bytes:
                break
            if self.protected(digest):
                continue
            data = self._blobs.pop(digest)
            self._size -= len(data)
            self.stats.evictions += 1
            self.stats.bytes_evicted += len(data)

    def discard(self, digest: str) -> bool:
        """Drop one specific blob if present and unprotected; returns
        whether it was removed.  The precise tool for owners reclaiming
        their own blobs on a shared store (the build cache's GC)."""
        if digest not in self._blobs or self.protected(digest):
            return False
        data = self._blobs.pop(digest)
        self._size -= len(data)
        self.stats.gc_reclaimed += 1
        self.stats.gc_bytes_reclaimed += len(data)
        return True

    def gc(self, keep: Iterable[str] = ()) -> list[str]:
        """Reclaim every blob that is unreferenced, unpinned, and not in
        *keep*; returns the reclaimed digests (LRU order)."""
        keep = set(keep)
        reclaimed: list[str] = []
        self.stats.gc_runs += 1
        for digest in list(self._blobs):
            if self.protected(digest) or digest in keep:
                continue
            data = self._blobs.pop(digest)
            self._size -= len(data)
            reclaimed.append(digest)
            self.stats.gc_reclaimed += 1
            self.stats.gc_bytes_reclaimed += len(data)
        return reclaimed
