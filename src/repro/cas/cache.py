"""The Merkle-keyed, instruction-level build cache.

``ch-image build-cache``: what the paper lists as missing in §6.1
("Charliecloud lacks a per-instruction build cache ... this caching can
greatly accelerate repetitive builds") and recommends building in §6.2.2,
grown the way real Charliecloud later grew it — except keyed and stored
like BuildKit:

* **Keys are Merkle chains.**  A chain starts from the base-image digest
  combined with the force mode, and each instruction extends it with its
  kind, its text, and (for COPY/ADD) the digest of the copied context.
  Identical prefixes share keys, so two Dockerfiles hit each other's
  caches exactly as far as they agree.
* **Values are layer diffs**, stored as blobs in a
  :class:`~repro.cas.store.ContentStore` — not full-tree snapshots.  A
  hit replays the diff; a record whose blob was LRU-evicted degrades to a
  miss and drops itself.
* **Caches travel.**  :meth:`BuildCache.export_to_registry` pushes every
  diff blob plus a JSON cache manifest (the BuildKit ``cache-to``
  pattern); a fresh builder on another node imports it and gets hits on
  every unchanged instruction.

Garbage collection is mark-and-sweep over the Merkle chains: tagged
images mark their chain reachable; ``gc()`` sweeps unreachable records
and discards exactly the blobs no surviving record names (safe even on a
store shared with registries and storage drivers, which hold refcounts).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..archive import TarArchive
from ..errors import ReproError
from .store import CasError, ContentStore

__all__ = ["BuildCache", "BuildCacheStats", "CacheHandle", "CacheRecord",
           "CACHE_MANIFEST_VERSION"]

CACHE_MANIFEST_VERSION = 1


class CacheManifestError(ReproError):
    """Malformed or incompatible cache manifest."""


@dataclass(frozen=True)
class CacheRecord:
    """One cached instruction result: the diff its execution produced."""

    key: str
    parent: str       # parent chain key ("" at a chain root)
    kind: str         # RUN / COPY / ADD
    text: str         # instruction text (for --tree and debugging)
    diff_digest: str  # CAS blob holding the serialized diff archive


@dataclass
class BuildCacheStats:
    """Instruction-level cache accounting (blob-level lives in the store)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    dropped_records: int = 0  # records whose blob was evicted underneath
    imports: int = 0          # records installed by import
    exports: int = 0          # records shipped by export
    inflight_hits: int = 0    # builds that waited on an in-flight execution

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "dropped_records": self.dropped_records,
            "imports": self.imports,
            "exports": self.exports,
            "inflight_hits": self.inflight_hits,
        }

    def add(self, other: "BuildCacheStats") -> None:
        """Fold *other* into this (per-handle aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.dropped_records += other.dropped_records
        self.imports += other.imports
        self.exports += other.exports
        self.inflight_hits += other.inflight_hits

    def copy(self) -> "BuildCacheStats":
        """An independent snapshot of these counters."""
        return BuildCacheStats(**self.as_dict())

    def delta(self, earlier: "BuildCacheStats") -> "BuildCacheStats":
        """Counter-wise ``self - earlier``: what happened between two
        snapshots of the same counter set (the per-image attribution the
        build farm reports)."""
        mine, theirs = self.as_dict(), earlier.as_dict()
        return BuildCacheStats(**{k: mine[k] - theirs[k] for k in mine})


class BuildCache:
    """One build cache, possibly shared by many builders.

    Passing the same instance to several :class:`~repro.core.ChImage`
    builders shares both records and blobs; passing only the same
    *store* shares blob bytes but not cache entries.
    """

    def __init__(self, *, store: Optional[ContentStore] = None,
                 max_bytes: Optional[int] = None):
        self.store = store if store is not None else \
            ContentStore(max_bytes=max_bytes)
        self.stats = BuildCacheStats()
        self.records: dict[str, CacheRecord] = {}
        self._parents: dict[str, str] = {}   # every chain key, incl. meta-only
        self._labels: dict[str, str] = {}
        self.tags: dict[str, str] = {}       # image tag -> chain key
        self._handles: list["CacheHandle"] = []
        #: single-flight table: key -> waiter tokens parked behind the one
        #: in-flight execution of that key (see :meth:`flight_begin`)
        self._inflight: dict[str, list[Any]] = {}

    # -- per-builder handles -------------------------------------------------------

    def handle(self, name: str = "") -> "CacheHandle":
        """A per-builder view of this cache with its **own** counters.

        Sharing one BuildCache instance across builders used to share the
        stats object by reference too, so concurrent builders double-
        counted each other's hits; every builder now gets a handle and
        :meth:`aggregate_stats` sums them on report."""
        h = CacheHandle(self, name=name)
        self._handles.append(h)
        return h

    def aggregate_stats(self) -> BuildCacheStats:
        """This cache's own counters plus every handle's, summed."""
        total = BuildCacheStats()
        total.add(self.stats)
        for h in self._handles:
            total.add(h.stats)
        return total

    # -- single-flight (BuildKit-style in-flight dedup) ----------------------------

    def flight_begin(self, key: str) -> bool:
        """Claim *key* for execution.  True → caller is the leader and
        must run the work (and later call :meth:`flight_finish`); False →
        the key is already being built, park behind it with
        :meth:`flight_wait`."""
        if key in self._inflight:
            return False
        self._inflight[key] = []
        return True

    def flight_in_progress(self, key: str) -> bool:
        return key in self._inflight

    def flight_wait(self, key: str, token: Any) -> None:
        """Park *token* (scheduler-defined) behind the in-flight *key*."""
        self._inflight[key].append(token)

    def flight_finish(self, key: str) -> list[Any]:
        """The leader is done (success or failure): release the key and
        return the parked waiter tokens, in arrival order."""
        return self._inflight.pop(key, [])

    def note_inflight_hit(self, *,
                          stats: Optional[BuildCacheStats] = None) -> None:
        (stats if stats is not None else self.stats).inflight_hits += 1

    # -- key derivation ------------------------------------------------------------

    def begin(self, base_digest: str, *, force: bool = False,
              force_mode: str = "") -> str:
        """Root key of a chain: base-image digest ⊕ force mode."""
        mode = force_mode if force else ""
        key = hashlib.sha256(
            f"cache:{base_digest}|force={force}|mode={mode}".encode()
        ).hexdigest()
        self._parents.setdefault(key, "")
        self._labels.setdefault(
            key, f"FROM {base_digest[:19]} force={force}"
                 + (f" mode={mode}" if mode else ""))
        return key

    def extend(self, key: str, kind: str, text: str, *,
               context: str = "") -> str:
        """Child key for one instruction.  *context* carries digests of
        build-context inputs (COPY sources) so content changes invalidate
        even when the instruction text does not."""
        child = hashlib.sha256(
            f"{key}|{kind}|{text}|{context}".encode()).hexdigest()
        self._parents.setdefault(child, key)
        self._labels.setdefault(child, f"{kind} {text}".strip()[:72])
        return child

    # -- hit / store ---------------------------------------------------------------

    def lookup(self, key: str, *,
               stats: Optional[BuildCacheStats] = None) -> Optional[TarArchive]:
        """The cached diff for *key*, or None.  A record whose blob was
        evicted self-heals: it is dropped and the lookup is a miss.
        *stats* is the counter sink (a handle's, or this cache's own)."""
        s = stats if stats is not None else self.stats
        rec = self.records.get(key)
        if rec is None:
            s.misses += 1
            return None
        try:
            blob = self.store.get(rec.diff_digest)
        except CasError:
            del self.records[key]
            s.dropped_records += 1
            s.misses += 1
            return None
        s.hits += 1
        return TarArchive.deserialize(blob)

    def store_diff(self, key: str, kind: str, text: str, diff: TarArchive,
                   *, stats: Optional[BuildCacheStats] = None) -> CacheRecord:
        """Record *diff* as the result of the instruction at *key*."""
        digest = self.store.put(diff.serialize())
        rec = CacheRecord(key=key, parent=self._parents.get(key, ""),
                          kind=kind, text=text, diff_digest=digest)
        self.records[key] = rec
        (stats if stats is not None else self.stats).stores += 1
        return rec

    # -- tags & reachability -------------------------------------------------------

    def tag(self, name: str, key: str) -> None:
        self.tags[name] = key

    def untag(self, name: str) -> bool:
        return self.tags.pop(name, None) is not None

    def reachable_keys(self) -> set[str]:
        """Every chain key on a path from a tag back to its chain root."""
        seen: set[str] = set()
        for key in self.tags.values():
            while key and key not in seen:
                seen.add(key)
                key = self._parents.get(key, "")
        return seen

    def gc(self) -> dict:
        """Sweep records unreachable from any tag, then discard the blobs
        no surviving record names.  Refcounted blobs (registry layers,
        driver commits on a shared store) are never touched."""
        reachable = self.reachable_keys()
        dropped = [k for k in self.records if k not in reachable]
        dropped_digests = {self.records[k].diff_digest for k in dropped}
        for k in dropped:
            del self.records[k]
        kept_digests = {r.diff_digest for r in self.records.values()}
        reclaimed = 0
        bytes_reclaimed = 0
        for digest in sorted(dropped_digests - kept_digests):
            if not self.store.has(digest):
                continue
            size = self.store.size_of(digest)
            if self.store.discard(digest):
                reclaimed += 1
                bytes_reclaimed += size
        # prune unreachable bookkeeping so --tree stays readable
        for k in [k for k in self._parents if k not in reachable
                  and k not in self.records]:
            self._parents.pop(k, None)
            self._labels.pop(k, None)
        return {"records_dropped": len(dropped),
                "blobs_reclaimed": reclaimed,
                "bytes_reclaimed": bytes_reclaimed}

    def reset(self) -> dict:
        """``build-cache --reset``: drop every record, tag, and owned blob."""
        digests = {r.diff_digest for r in self.records.values()}
        self.records.clear()
        self.tags.clear()
        self._parents.clear()
        self._labels.clear()
        reclaimed = sum(1 for d in digests if self.store.discard(d))
        return {"records_dropped": len(digests), "blobs_reclaimed": reclaimed}

    # -- introspection -------------------------------------------------------------

    def keys(self) -> list[str]:
        """Sorted record keys (determinism tests compare these)."""
        return sorted(self.records)

    def tree(self) -> str:
        """Render the Merkle chains, git-log style (``--tree``)."""
        children: dict[str, list[str]] = {}
        for key, parent in self._parents.items():
            children.setdefault(parent, []).append(key)
        for kids in children.values():
            kids.sort(key=lambda k: self._labels.get(k, k))
        tags_by_key: dict[str, list[str]] = {}
        for name, key in sorted(self.tags.items()):
            tags_by_key.setdefault(key, []).append(name)
        lines: list[str] = []

        def visit(key: str, depth: int) -> None:
            rec = self.records.get(key)
            mark = "*" if rec is not None else "."
            label = self._labels.get(key, key[:12])
            suffix = ""
            if rec is not None:
                suffix = f"  [{rec.diff_digest[:19]}]"
            if key in tags_by_key:
                suffix += "  (" + ", ".join(tags_by_key[key]) + ")"
            lines.append(f"{'  ' * depth}{mark} {key[:12]} {label}{suffix}")
            for child in children.get(key, []):
                visit(child, depth + 1)

        for root in children.get("", []):
            visit(root, 0)
        if not lines:
            return "build cache is empty"
        return "\n".join(lines)

    def summary(self) -> str:
        s = self.aggregate_stats()
        st = self.store.stats
        lines = [
            f"records:       {len(self.records)}",
            f"tags:          {len(self.tags)}",
            f"blobs:         {self.store.blob_count} "
            f"({self.store.size_bytes} bytes)",
            f"hits/misses:   {s.hits}/{s.misses}",
            f"stores:        {s.stores}",
            f"evictions:     {st.evictions} ({st.bytes_evicted} bytes)",
            f"dedup hits:    {st.dedup_hits} ({st.bytes_deduped} bytes)",
            f"inflight hits: {s.inflight_hits}",
            f"imported:      {s.imports}  exported: {s.exports}",
        ]
        if self._handles:
            lines.append(f"handles:       {len(self._handles)}")
        return "\n".join(lines)

    # -- export / import -----------------------------------------------------------

    def to_manifest(self) -> dict:
        """The JSON-able cache manifest (records + chain topology + tags);
        blob payloads travel separately, content-addressed."""
        return {
            "version": CACHE_MANIFEST_VERSION,
            "records": [
                {"key": r.key, "parent": r.parent, "kind": r.kind,
                 "text": r.text, "diff": r.diff_digest}
                for _, r in sorted(self.records.items())
            ],
            "parents": dict(sorted(self._parents.items())),
            "labels": dict(sorted(self._labels.items())),
            "tags": dict(sorted(self.tags.items())),
        }

    def export_to_registry(self, registry, ref) -> str:
        """Push this cache to *registry* under *ref*: every diff blob plus
        the manifest blob (BuildKit-style registry cache export).
        Returns the manifest digest."""
        manifest = json.dumps(self.to_manifest(), sort_keys=True).encode()
        blobs = [self.store.get(r.diff_digest)
                 for _, r in sorted(self.records.items())]
        self.stats.exports += len(blobs)
        return registry.push_cache(ref, manifest, blobs)

    def import_manifest(self, manifest: dict,
                        fetch: Callable[[str], bytes]) -> int:
        """Install records from a parsed manifest, fetching each diff blob
        with *fetch* into the local store.  Returns records installed."""
        if manifest.get("version") != CACHE_MANIFEST_VERSION:
            raise CacheManifestError(
                f"unsupported cache manifest version "
                f"{manifest.get('version')!r}")
        self._parents.update(manifest.get("parents", {}))
        self._labels.update(manifest.get("labels", {}))
        installed = 0
        for entry in manifest.get("records", ()):
            blob = fetch(entry["diff"])
            digest = self.store.put(blob)
            if digest != entry["diff"]:
                raise CacheManifestError(
                    f"cache blob digest mismatch: manifest says "
                    f"{entry['diff'][:19]}..., bytes hash to "
                    f"{digest[:19]}...")
            self.records[entry["key"]] = CacheRecord(
                key=entry["key"], parent=entry["parent"],
                kind=entry["kind"], text=entry["text"],
                diff_digest=entry["diff"])
            installed += 1
        for name, key in manifest.get("tags", {}).items():
            self.tags.setdefault(name, key)
        self.stats.imports += installed
        return installed

    def import_from_registry(self, registry, ref, *,
                             local_store=None) -> int:
        """Pull a cache manifest pushed by :meth:`export_to_registry` and
        install it; returns records installed.  *local_store* (the node's
        CAS) lets pre-seeded blobs skip the wire transfer."""
        manifest_bytes, fetch = registry.pull_cache(
            ref, local_store=local_store)
        return self.import_manifest(json.loads(manifest_bytes), fetch)


class CacheHandle:
    """One builder's view of a shared :class:`BuildCache`.

    Records, blobs, tags, and the single-flight table are the shared
    cache's; only the **counters** are private, so two builders hammering
    the same cache report their own hit rates instead of double-counting
    each other's (``aggregate_stats()`` on the cache sums them back up).
    Everything not overridden here delegates to the underlying cache.
    """

    def __init__(self, cache: BuildCache, *, name: str = ""):
        self._cache = cache
        self.name = name
        self.stats = BuildCacheStats()

    def __getattr__(self, attr: str):
        return getattr(self._cache, attr)

    def __repr__(self) -> str:
        return f"CacheHandle({self.name or 'anonymous'})"

    # the stats-bearing operations route counters to this handle

    def lookup(self, key: str) -> Optional[TarArchive]:
        return self._cache.lookup(key, stats=self.stats)

    def store_diff(self, key: str, kind: str, text: str,
                   diff: TarArchive) -> CacheRecord:
        return self._cache.store_diff(key, kind, text, diff,
                                      stats=self.stats)

    def note_inflight_hit(self) -> None:
        self._cache.note_inflight_hit(stats=self.stats)
