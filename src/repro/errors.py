"""Shared exception hierarchy for the repro package.

The simulated kernel signals failures the way Linux does: with errno values.
:class:`KernelError` carries an :class:`Errno` and formats like ``strerror(3)``
output, so transcripts produced by the simulated userland match the paper's
(e.g. ``seteuid (22: Invalid argument)`` in Figure 3).
"""

from __future__ import annotations

import enum

__all__ = [
    "Errno",
    "ReproError",
    "KernelError",
    "BuildError",
    "RegistryError",
    "PackageError",
    "SupplyPolicyError",
    "TransientError",
    "TransientRegistryError",
]


class Errno(enum.IntEnum):
    """Linux errno values used by the simulated kernel."""

    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EINTR = 4
    EIO = 5
    ENXIO = 6
    E2BIG = 7
    ENOEXEC = 8
    EBADF = 9
    ECHILD = 10
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EBUSY = 16
    EEXIST = 17
    EXDEV = 18
    ENODEV = 19
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOTTY = 25
    ETXTBSY = 26
    EFBIG = 27
    ENOSPC = 28
    ESPIPE = 29
    EROFS = 30
    EMLINK = 31
    EPIPE = 32
    ERANGE = 34
    ENODATA = 61
    ENAMETOOLONG = 36
    ENOSYS = 38
    ENOTEMPTY = 39
    ELOOP = 40
    EUSERS = 87
    ENOTSUP = 95
    EOPNOTSUPP = 95  # alias, same value as on Linux


#: strerror(3) text for each errno, matching glibc.
_STRERROR: dict[int, str] = {
    Errno.EPERM: "Operation not permitted",
    Errno.ENOENT: "No such file or directory",
    Errno.ESRCH: "No such process",
    Errno.EINTR: "Interrupted system call",
    Errno.EIO: "Input/output error",
    Errno.ENXIO: "No such device or address",
    Errno.E2BIG: "Argument list too long",
    Errno.ENOEXEC: "Exec format error",
    Errno.EBADF: "Bad file descriptor",
    Errno.ECHILD: "No child processes",
    Errno.EAGAIN: "Resource temporarily unavailable",
    Errno.ENOMEM: "Cannot allocate memory",
    Errno.EACCES: "Permission denied",
    Errno.EFAULT: "Bad address",
    Errno.EBUSY: "Device or resource busy",
    Errno.EEXIST: "File exists",
    Errno.EXDEV: "Invalid cross-device link",
    Errno.ENODEV: "No such device",
    Errno.ENOTDIR: "Not a directory",
    Errno.EISDIR: "Is a directory",
    Errno.EINVAL: "Invalid argument",
    Errno.ENFILE: "Too many open files in system",
    Errno.EMFILE: "Too many open files",
    Errno.ENOTTY: "Inappropriate ioctl for device",
    Errno.ETXTBSY: "Text file busy",
    Errno.EFBIG: "File too large",
    Errno.ENOSPC: "No space left on device",
    Errno.ESPIPE: "Illegal seek",
    Errno.EROFS: "Read-only file system",
    Errno.EMLINK: "Too many links",
    Errno.EPIPE: "Broken pipe",
    Errno.ERANGE: "Numerical result out of range",
    Errno.ENODATA: "No data available",
    Errno.ENAMETOOLONG: "File name too long",
    Errno.ENOSYS: "Function not implemented",
    Errno.ENOTEMPTY: "Directory not empty",
    Errno.ELOOP: "Too many levels of symbolic links",
    Errno.EUSERS: "Too many users",
    Errno.ENOTSUP: "Operation not supported",
}


def strerror(err: int) -> str:
    """Return the glibc ``strerror(3)`` text for *err*."""
    return _STRERROR.get(err, f"Unknown error {int(err)}")


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class KernelError(ReproError):
    """A simulated system call failed.

    Attributes
    ----------
    errno:
        The :class:`Errno` describing the failure.
    syscall:
        Name of the failing system call (e.g. ``"chown"``), when known.
    """

    def __init__(self, errno: Errno, msg: str = "", *, syscall: str = ""):
        self.errno = Errno(errno)
        self.syscall = syscall
        self.msg = msg
        detail = f": {msg}" if msg else ""
        prefix = f"{syscall}: " if syscall else ""
        super().__init__(
            f"{prefix}[Errno {int(self.errno)}] {strerror(self.errno)}{detail}"
        )

    @property
    def strerror(self) -> str:
        """glibc-style error text (``"Operation not permitted"`` etc.)."""
        return strerror(self.errno)


class BuildError(ReproError):
    """A container image build failed."""


class RegistryError(ReproError):
    """A container registry operation failed."""


class PackageError(ReproError):
    """A distribution package operation failed."""


class SupplyPolicyError(RegistryError):
    """An image failed the supply-chain policy gate.

    Raised on pull/deploy/gate when an image is unsigned, its signature
    does not verify against the manifest actually served, a required
    attestation (SBOM, provenance) is missing, a scanned advisory meets
    the severity threshold, or a layer exceeds the size budget.  Always
    raised *before* any broadcast traffic is scheduled.

    Attributes
    ----------
    ref:
        The image reference that failed the gate, when known.
    violations:
        The individual policy violations, one human-readable string each
        (the message joins them; tests can assert on the list).
    """

    def __init__(self, msg: str = "", *, ref: str = "",
                 violations: tuple[str, ...] = ()):
        self.ref = str(ref)
        self.violations = tuple(violations)
        super().__init__(msg)


class TransientError(ReproError):
    """An operation failed for a reason expected to clear on its own.

    Attributes
    ----------
    retry_at:
        Earliest virtual time (SimClock seconds) at which retrying can
        possibly succeed — e.g. the end of the link-down or registry-flake
        window that caused the failure.  ``0.0`` when unknown.
    """

    def __init__(self, msg: str = "", *, retry_at: float = 0.0):
        self.retry_at = float(retry_at)
        super().__init__(msg)


class TransientRegistryError(TransientError, RegistryError):
    """A registry request failed transiently (the 5xx of this world)."""
