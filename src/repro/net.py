"""The outside world a machine can reach: package repos and registries.

Attached to a kernel as ``kernel.network``.  ``online=False`` models the
air-gapped / restricted-network scenarios that motivate building directly on
HPC resources (paper §2: "resources available only on specific networks or
systems"), and ``reachable_registries`` models license-server-style
network scoping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .errors import PackageError, RegistryError

if TYPE_CHECKING:  # pragma: no cover
    from .containers.registry import Registry
    from .distro.repository import PackageUniverse

__all__ = ["Network"]


@dataclass
class Network:
    """One machine's connectivity.

    ``blocked_repo_prefixes`` models network scoping: site-internal
    resources (license servers, private repos) that exist in the universe
    but are unreachable from some vantage points — the §3.2 limitation of
    sandboxed build environments ("may not be able to access needed
    resources, such as private code or licenses").
    """

    universe: Optional["PackageUniverse"] = None
    registries: dict[str, "Registry"] = field(default_factory=dict)
    online: bool = True
    blocked_repo_prefixes: tuple[str, ...] = ()

    def _check_reachable(self, repo_id: str) -> None:
        rid = repo_id.removeprefix("repo://")
        for prefix in self.blocked_repo_prefixes:
            if rid.startswith(prefix):
                raise PackageError(
                    f"cannot reach repository {repo_id!r}: host not on "
                    "this network (site-internal resource)")

    def repo(self, repo_id: str):
        if not self.online:
            raise PackageError(f"network unreachable fetching {repo_id!r}")
        if self.universe is None:
            raise PackageError(f"no package universe reachable "
                               f"for {repo_id!r}")
        self._check_reachable(repo_id)
        return self.universe.repo(repo_id)

    def has_repo(self, repo_id: str) -> bool:
        try:
            self._check_reachable(repo_id)
        except PackageError:
            return False
        return (self.online and self.universe is not None
                and self.universe.has_repo(repo_id))

    def registry(self, name: str):
        if not self.online:
            raise RegistryError(f"network unreachable for registry {name!r}")
        try:
            return self.registries[name]
        except KeyError:
            raise RegistryError(f"unknown registry {name!r}")
