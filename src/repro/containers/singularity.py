"""Singularity (paper §3.1): the most popular HPC container implementation.

Properties the paper calls out, all modelled:

* runs as Type I (setuid starter) **or** Type II (branded "fakeroot" — not
  to be confused with fakeroot(1), §5.1 footnote 8);
* images are SIF: a single flattened file, "sufficient and in fact
  advantageous for most HPC applications" (§6.2.5);
* as of 3.7 it can *build* in Type II mode, **but only from Singularity
  definition files** — "building from standard Dockerfiles requires a
  separate builder (e.g., Docker) followed by conversion to Singularity's
  image format, which is a limiting factor for interoperability".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..archive import TarArchive
from ..errors import ReproError
from ..kernel import Process, Syscalls
from ..shell import OutputSink, execute
from .oci import ImageRef
from .runtime import ContainerError, enter_container

__all__ = ["Singularity", "SingularityError", "SifImage", "DefinitionFile"]


class SingularityError(ReproError):
    """Singularity operation failed."""


@dataclass(frozen=True)
class SifImage:
    """A Singularity Image File: one flattened, read-only archive."""

    path: str  # host path of the .sif file
    arch: str

    @property
    def is_flattened(self) -> bool:
        return True  # by construction


@dataclass(frozen=True)
class DefinitionFile:
    """A parsed Singularity definition file.

    Supported headers/sections: ``Bootstrap: docker``, ``From:``, ``%post``,
    ``%environment``, ``%runscript`` — the subset HPC recipes actually use.
    """

    bootstrap: str
    base: str
    post: str = ""
    environment: str = ""
    runscript: str = ""

    @classmethod
    def parse(cls, text: str) -> "DefinitionFile":
        bootstrap = ""
        base = ""
        sections: dict[str, list[str]] = {}
        current: Optional[str] = None
        for line in text.splitlines():
            stripped = line.strip()
            m = re.match(r"^%(\w+)\s*$", stripped)
            if m:
                current = m.group(1).lower()
                sections.setdefault(current, [])
                continue
            if current is None:
                if stripped.lower().startswith("bootstrap:"):
                    bootstrap = stripped.split(":", 1)[1].strip().lower()
                elif stripped.lower().startswith("from:"):
                    base = stripped.split(":", 1)[1].strip()
            else:
                sections[current].append(line)
        if not bootstrap or not base:
            raise SingularityError(
                "definition file needs 'Bootstrap:' and 'From:' headers")
        return cls(
            bootstrap=bootstrap,
            base=base,
            post="\n".join(sections.get("post", [])),
            environment="\n".join(sections.get("environment", [])),
            runscript="\n".join(sections.get("runscript", [])),
        )


class Singularity:
    """One user's Singularity installation on one machine."""

    def __init__(self, machine, user_proc: Process, *,
                 allow_fakeroot: bool = True):
        self.machine = machine
        self.user_proc = user_proc
        self.sys = Syscalls(user_proc)
        self.allow_fakeroot = allow_fakeroot
        user = user_proc.environ.get("USER", "user")
        self.cache_dir = f"/home/{user}/.singularity"
        self.sys.mkdir_p(self.cache_dir)
        self._trees: dict[str, str] = {}  # sif path -> materialized tree

    # -- build ------------------------------------------------------------------

    def build(self, sif_path: str, definition: str) -> SifImage:
        """``singularity build --fakeroot app.sif app.def``.

        Type II via the site's subordinate-ID configuration; the build input
        MUST be a definition file — Dockerfiles are rejected, which is the
        §3.1 interoperability limitation.
        """
        if definition.lstrip().upper().startswith("FROM "):
            raise SingularityError(
                "this looks like a Dockerfile; Singularity builds only from "
                "definition files — build it with another tool and convert "
                "(paper §3.1)")
        spec = DefinitionFile.parse(definition)
        if spec.bootstrap != "docker":
            raise SingularityError(
                f"unsupported bootstrap {spec.bootstrap!r} (only 'docker')")
        if not self.allow_fakeroot:
            raise SingularityError(
                "fakeroot (Type II) builds disabled by the administrator")

        # Pull the base through the registry, materialize a working tree.
        ref = ImageRef.parse(spec.base)
        net = self.machine.kernel.network
        if net is None:
            raise SingularityError("no network")
        config, layers = net.registry(ref.registry or "docker.io").pull(
            ref, arch=self.machine.arch)
        work = f"{self.cache_dir}/build-{sif_path.rsplit('/', 1)[-1]}"
        if self.sys.exists(work):
            self._rm_tree(work)
        self.sys.mkdir_p(work)

        # Type II namespace for the %post script ("fakeroot" brand).
        build_proc = self.user_proc.fork(comm="singularity-build")
        self.machine.shadow.setup_rootless_userns(build_proc)
        bsys = Syscalls(build_proc)
        for layer in layers:
            layer.extract(bsys, work, preserve_owner=True,
                          on_chown_error="ignore")

        if spec.post:
            try:
                ctx = enter_container(
                    self.user_proc, work, "type2",
                    dev_fs=self.machine.dev_fs, shadow=self.machine.shadow,
                    join_userns=build_proc.cred.userns,
                    comm="singularity-post")
            except ContainerError as err:
                raise SingularityError(f"%post setup failed: {err}") from err
            sink = OutputSink()
            status = execute(ctx.child(stdout=sink, stderr=sink),
                             ["/bin/sh", "-c", spec.post])
            if status != 0:
                raise SingularityError(
                    f"%post failed with status {status}:\n{sink.text()}")

        # Flatten into the SIF (single file, ownership squashed like §6.2.5).
        archive = TarArchive.pack(bsys, work, flatten=True)
        if spec.runscript:
            from .oci import ImageConfig  # noqa: F401  (doc cross-ref)
        self.sys.write_file(sif_path, archive.serialize())
        self._trees[sif_path] = work
        return SifImage(path=sif_path, arch=self.machine.arch)

    def build_from_docker_archive(self, sif_path: str,
                                  layers: list[TarArchive]) -> SifImage:
        """The §3.1 conversion path: an image built elsewhere (e.g. Docker)
        converted into SIF."""
        merged = TarArchive([m for layer in layers for m in layer])
        self.sys.write_file(sif_path, TarArchive(
            [m.flattened() for m in merged]).serialize())
        return SifImage(path=sif_path, arch=self.machine.arch)

    # -- run --------------------------------------------------------------------

    def run(self, image: SifImage, argv: list[str],
            env: Optional[dict[str, str]] = None) -> tuple[int, str]:
        """``singularity exec app.sif CMD`` — unprivileged (userns) run."""
        tree = self._materialize(image)
        try:
            ctx = enter_container(self.user_proc, tree, "type3",
                                  dev_fs=self.machine.dev_fs, env=env,
                                  comm="singularity-run")
        except ContainerError as err:
            return 125, f"FATAL: {err}"
        sink = OutputSink()
        status = execute(ctx.child(stdout=sink, stderr=sink), argv)
        return status, sink.text()

    def _materialize(self, image: SifImage) -> str:
        cached = self._trees.get(image.path)
        if cached is not None and self.sys.exists(cached):
            return cached
        blob = self.sys.read_file(image.path)
        archive = TarArchive.deserialize(blob)
        tree = f"{self.cache_dir}/rootfs-{image.path.rsplit('/', 1)[-1]}"
        self.sys.mkdir_p(tree)
        archive.extract(self.sys, tree, preserve_owner=False)
        self._trees[image.path] = tree
        return tree

    def _rm_tree(self, path: str) -> None:
        from ..kernel import FileType
        st = self.sys.lstat(path)
        if st.ftype is FileType.DIR:
            for entry in self.sys.readdir(path):
                self._rm_tree(f"{path}/{entry.name}")
            self.sys.rmdir(path)
        else:
            self.sys.unlink(path)
