"""Container storage drivers: vfs and fuse-overlayfs.

Paper §4.1: "Podman uses the fuse-overlayfs storage driver which provides
unprivileged mount operations using a fuse-backed overlay file-system.
Podman can also use the VFS driver, however this implementation is much
slower and has significant storage overhead."

Functional model: both drivers materialize working trees; they differ in

* **cost**: vfs duplicates the full tree per layer/container (counted in
  ``stats``); overlay stores per-layer diffs and reuses the lower layers;
* **requirements**: fuse-overlayfs keeps its ID bookkeeping in ``user.*``
  xattrs, so it refuses storage on filesystems without them (default
  NFS/Lustre — the §6.1 shared-filesystem clash).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..archive import TarArchive
from ..cas.diff import Snapshot, snapshot_and_diff, snapshot_tree
from ..cas.store import ContentStore
from ..errors import ReproError
from ..kernel import FileType, Syscalls
from ..obs.trace import kernel_span

__all__ = ["DriverStats", "StorageDriver", "VfsDriver", "OverlayDriver",
           "DriverError", "make_driver"]


class DriverError(ReproError):
    """Storage driver failure (e.g. overlay on a no-xattr filesystem)."""


@dataclass
class DriverStats:
    """Cost accounting for the A1 storage-driver ablation."""

    bytes_copied: int = 0  # data physically duplicated
    storage_bytes: int = 0  # bytes at rest attributable to layers
    meta_ops: int = 0  # simulated metadata operations
    commits: int = 0

    def simulated_cost(self, meta_op_cost: float = 1.0,
                       byte_cost: float = 0.001) -> float:
        return self.meta_ops * meta_op_cost + self.bytes_copied * byte_cost


_snapshot = snapshot_tree  # shared with the CAS/build-cache layer


class StorageDriver:
    """Base driver: image trees under ``root_dir`` as seen through ``sys``.

    ``sys`` is the syscall view of whoever owns the storage — for rootless
    Podman that is a process *inside* the user namespace, which is how its
    chown-to-subordinate-ID writes are legal.

    With a *content_store*, every imported layer and committed diff is
    also recorded as a refcounted CAS blob — so two images sharing a base
    (or two builders on the same machine) store those bytes once, and the
    store's ``dedup_hits`` expose the saving.
    """

    name = "base"

    def __init__(self, sys: Syscalls, root_dir: str, *,
                 content_store: Optional[ContentStore] = None):
        self.sys = sys
        self.root_dir = root_dir.rstrip("/")
        self.stats = DriverStats()
        self.content_store = content_store
        sys.mkdir_p(self.root_dir)
        self._check_backing_fs()
        self._snapshots: dict[str, dict[str, str]] = {}

    def _store_blob(self, archive: TarArchive) -> None:
        """Record *archive* in the shared CAS (refcounted: a committed
        layer has registry-grade persistence, never LRU eviction)."""
        if self.content_store is None or not len(archive):
            return
        digest = self.content_store.put(archive.serialize())
        self.content_store.incref(digest)

    def _check_backing_fs(self) -> None:
        pass

    def _span(self, name: str, **meta):
        return kernel_span(self.sys.proc.kernel, name, "layer",
                           driver=self.name, **meta)

    # -- paths ------------------------------------------------------------------

    def image_path(self, name: str) -> str:
        return f"{self.root_dir}/{name.replace('/', '%').replace(':', '+')}"

    def exists(self, name: str) -> bool:
        return self.sys.exists(self.image_path(name))

    def backing_fs(self):
        res = self.sys.mnt_ns.resolve(self.root_dir, self.sys.cred,
                                      cwd=self.sys.getcwd())
        return res.fs

    def simulated_cost(self) -> float:
        """Total simulated cost of this driver's activity so far, using the
        backing filesystem's cost model (shared filesystems have expensive
        metadata; FUSE adds per-op overhead)."""
        from ..kernel.filesystem_params import FS_PARAMS, FsParams
        fs = self.backing_fs()
        params: FsParams = FS_PARAMS.get(fs.fstype,
                                         FS_PARAMS["ext4"])
        cost = self.stats.simulated_cost(params.meta_op_cost,
                                         params.byte_cost)
        return cost * (1.0 + params.fuse_overhead)

    # -- layer import / commit ----------------------------------------------------

    def unpack_image(self, name: str, layers: list[TarArchive], *,
                     preserve_owner: bool,
                     on_chown_error: str = "raise") -> str:
        """Materialize an image from its layer stack."""
        path = self.image_path(name)
        if self.sys.exists(path):
            raise DriverError(f"image {name!r} already in storage")
        with self._span(f"unpack {name}", layers=len(layers)):
            self.sys.mkdir_p(path)
            warnings: list[str] = []
            for layer in layers:
                warnings += layer.extract(self.sys, path,
                                          preserve_owner=preserve_owner,
                                          on_chown_error=on_chown_error)
                self.stats.meta_ops += len(layer)
                self.stats.bytes_copied += layer.total_bytes()
                self._store_blob(layer)
            self._snapshots[path] = _snapshot(self.sys, path)
        return path

    def begin_build(self, base_name: str, build_name: str) -> str:
        """A mutable working tree seeded from *base_name*."""
        raise NotImplementedError

    def commit(self, build_path: str, message: str = "") -> TarArchive:
        """Record a layer commit: returns the *diff* since the previous
        snapshot (manifests are driver-independent); drivers differ in what
        the commit costs (vfs: a full tree copy at rest; overlay: the diff).
        """
        with self._span(f"commit {build_path}") as sp:
            diff, snap = self._diff_since_snapshot(build_path)
            self.stats.commits += 1
            self._charge_commit(diff, snap)
            self._store_blob(diff)
            if sp is not None:
                sp.meta["diff_members"] = len(diff)
        return diff

    def _charge_commit(self, diff: TarArchive, snap: Snapshot) -> None:
        raise NotImplementedError

    def _diff_since_snapshot(self, build_path: str
                             ) -> tuple[TarArchive, Snapshot]:
        prev = self._snapshots.get(build_path, {})
        diff, cur = snapshot_and_diff(self.sys, build_path, prev)
        self._snapshots[build_path] = cur
        return diff, cur

    def export_full(self, path: str, *, flatten: bool = False) -> TarArchive:
        """One archive of the whole tree (single-layer export)."""
        return TarArchive.pack(self.sys, path, flatten=flatten)

    def delete(self, name: str) -> None:
        path = self.image_path(name)
        self._rm_tree(path)
        self._snapshots.pop(path, None)

    def _rm_tree(self, path: str) -> None:
        st = self.sys.lstat(path)
        if st.ftype is FileType.DIR:
            for entry in self.sys.readdir(path):
                self._rm_tree(f"{path}/{entry.name}")
            self.sys.rmdir(path)
        else:
            self.sys.unlink(path)

    def _copy_tree(self, src: str, dst: str) -> None:
        """Driver-level recursive copy preserving ownership (runs inside the
        namespace where those IDs are mapped)."""
        archive = TarArchive.pack(self.sys, src)
        self.sys.mkdir_p(dst)
        archive.extract(self.sys, dst, preserve_owner=True,
                        on_chown_error="ignore")
        self.stats.meta_ops += len(archive)
        self.stats.bytes_copied += archive.total_bytes()


class VfsDriver(StorageDriver):
    """The vfs driver: no mounts needed, but every layer is a full copy."""

    name = "vfs"

    def begin_build(self, base_name: str, build_name: str) -> str:
        with self._span(f"begin-build {build_name}", base=base_name):
            src = self.image_path(base_name)
            dst = self.image_path(build_name)
            if self.sys.exists(dst):
                self._rm_tree(dst)
            self._copy_tree(src, dst)  # full duplication: the vfs tax
            self._snapshots[dst] = _snapshot(self.sys, dst)
        return dst

    def _charge_commit(self, diff: TarArchive, snap: Snapshot) -> None:
        # vfs keeps a complete copy of the tree per layer; the snapshot's
        # size bookkeeping prices it without re-packing the tree
        self.stats.storage_bytes += snap.total_bytes()
        self.stats.bytes_copied += snap.total_bytes()
        self.stats.meta_ops += len(snap)


class OverlayDriver(StorageDriver):
    """fuse-overlayfs: layers are diffs; lower layers shared in place.

    The driver is a FUSE server run by the user, so the merged view is a
    filesystem whose superblock is *owned by the user's namespace* — that
    ownership is what allows in-container privileged metadata (file
    capabilities, foreign-looking IDs) that plain host ext4 refuses.
    """

    name = "overlay"

    def _check_backing_fs(self) -> None:
        fs = self.backing_fs()
        if not fs.features.user_xattrs:
            raise DriverError(
                f"fuse-overlayfs: backing filesystem {fs.label!r} does not "
                "support user xattrs (default-configured NFS/Lustre/GPFS — "
                "paper §6.1); use local disk or the vfs driver")
        # Mount the FUSE view over the storage directory.  The mount is in
        # the namespace of whoever runs the driver, and shared with any
        # process that shares the mount namespace (fork semantics).
        from ..kernel import Filesystem, FsFeatures
        fuse = Filesystem(
            "overlay",
            features=FsFeatures(user_xattrs=True),
            owning_userns=self.sys.cred.userns,
            root_uid=self.sys.cred.euid,
            root_gid=self.sys.cred.egid,
            label=f"fuse-overlayfs:{self.root_dir}",
        )
        self.sys.proc.mnt_ns.add_mount(self.root_dir, fuse,
                                       owning_userns=self.sys.cred.userns)

    def begin_build(self, base_name: str, build_name: str) -> str:
        with self._span(f"begin-build {build_name}", base=base_name):
            src = self.image_path(base_name)
            dst = self.image_path(build_name)
            if self.sys.exists(dst):
                self._rm_tree(dst)
            # A real overlay would mount lowerdir+upperdir; we materialize
            # once per build and charge only the (cheap) mount-like setup.
            self._copy_tree_uncharged(src, dst)
            self.stats.meta_ops += 3  # mount, workdir, upperdir
            self._snapshots[dst] = _snapshot(self.sys, dst)
        return dst

    def _copy_tree_uncharged(self, src: str, dst: str) -> None:
        archive = TarArchive.pack(self.sys, src)
        self.sys.mkdir_p(dst)
        archive.extract(self.sys, dst, preserve_owner=True,
                        on_chown_error="ignore")

    def _charge_commit(self, diff: TarArchive, snap: Snapshot) -> None:
        # overlay stores only the upperdir contents
        self.stats.storage_bytes += diff.total_bytes()
        self.stats.meta_ops += len(diff)


def make_driver(kind: str, sys: Syscalls, root_dir: str, *,
                content_store: Optional[ContentStore] = None
                ) -> StorageDriver:
    if kind == "vfs":
        return VfsDriver(sys, root_dir, content_store=content_store)
    if kind == "overlay":
        return OverlayDriver(sys, root_dir, content_store=content_store)
    raise DriverError(f"unknown storage driver {kind!r}")
