"""Shifter, Sarus, and Enroot (paper §3.1): run-focused HPC implementations.

* **Shifter/Sarus**: Type I examples that "currently focus on distributed
  container launch rather than build" — they *convert* registry images into
  site-local flattened form via a privileged gateway, then run them.
* **Enroot**: "fully unprivileged" with "no setuid binary" (Type III), but
  "as of the current version 3.3, it does not have a build capability,
  relying on conversion of existing images."
"""

from __future__ import annotations


from ..archive import TarArchive
from ..errors import ReproError
from ..kernel import Process, Syscalls
from ..shell import OutputSink, execute
from .oci import ImageRef
from .runtime import ContainerError, enter_container

__all__ = ["ShifterGateway", "Enroot", "HpcRuntimeError"]


class HpcRuntimeError(ReproError):
    """A run-only HPC container tool failed."""


class ShifterGateway:
    """Shifter's image gateway: a privileged site service that pulls from a
    registry and flattens into the site image store; user jobs then run the
    converted image as Type I containers with *user* credentials (never
    root inside)."""

    def __init__(self, machine, *, store_dir: str = "/var/shifter/images"):
        self.machine = machine
        root = machine.kernel.init_process
        if root.cred.euid != 0:
            raise HpcRuntimeError("the Shifter gateway is a root service")
        self.gateway_proc = machine.kernel.spawn(parent=root,
                                                 comm="shifter-gw")
        self.sys = Syscalls(self.gateway_proc)
        self.store_dir = store_dir
        self.sys.mkdir_p(store_dir)
        self._images: dict[str, str] = {}

    def pull(self, ref_text: str) -> str:
        """shifterimg pull: privileged conversion into the site store."""
        ref = ImageRef.parse(ref_text)
        name = str(ref)
        if name in self._images:
            return self._images[name]
        net = self.machine.kernel.network
        if net is None:
            raise HpcRuntimeError("no network")
        _, layers = net.registry(ref.registry or "docker.io").pull(
            ref, arch=self.machine.arch)
        path = f"{self.store_dir}/{ref.flat_name}"
        self.sys.mkdir_p(path)
        for layer in layers:
            # flattened: site policy, ownership dropped to root:root
            TarArchive([m.flattened() for m in layer]).extract(
                self.sys, path, preserve_owner=True, on_chown_error="ignore")
        # world-readable, like Shifter's loop-mounted squashfs images
        self._images[name] = path
        return path

    def run(self, user_proc: Process, image_ref: str, argv: list[str]
            ) -> tuple[int, str]:
        """shifter --image=...: Type I entry (no user namespace), but the
        process keeps the *user's* credentials — no privilege is granted."""
        path = self._images.get(str(ImageRef.parse(image_ref)))
        if path is None:
            raise HpcRuntimeError(f"image {image_ref!r} not pulled; run "
                                  "shifterimg pull first")
        # the gateway (root) sets up the mount namespace, then the job runs
        # with the invoking user's IDs; the image itself is read-only
        # (Shifter loop-mounts a squashfs)
        ctx = enter_container(self.gateway_proc, path, "type1",
                              dev_fs=self.machine.dev_fs, read_only=True,
                              comm="shifter-job")
        ctx.proc.cred = user_proc.cred.copy()
        sink = OutputSink()
        status = execute(ctx.child(stdout=sink, stderr=sink), argv)
        return status, sink.text()

    def build(self, *_args, **_kwargs):
        raise HpcRuntimeError(
            "Shifter/Sarus focus on distributed launch; they have no build "
            "capability (paper §3.1)")


class Enroot:
    """Enroot: Type III run-only.  Imports existing images, cannot build."""

    def __init__(self, machine, user_proc: Process):
        self.machine = machine
        self.user_proc = user_proc
        self.sys = Syscalls(user_proc)
        user = user_proc.environ.get("USER", "user")
        self.data_dir = f"/home/{user}/.local/share/enroot"
        self.sys.mkdir_p(self.data_dir)
        self._images: dict[str, str] = {}

    def import_image(self, ref_text: str) -> str:
        """enroot import docker://...: unprivileged conversion."""
        ref = ImageRef.parse(ref_text)
        name = str(ref)
        if name in self._images:
            return self._images[name]
        net = self.machine.kernel.network
        if net is None:
            raise HpcRuntimeError("no network")
        _, layers = net.registry(ref.registry or "docker.io").pull(
            ref, arch=self.machine.arch)
        path = f"{self.data_dir}/{ref.flat_name}"
        self.sys.mkdir_p(path)
        for layer in layers:
            layer.extract(self.sys, path, preserve_owner=False)
        self._images[name] = path
        return path

    def start(self, ref_text: str, argv: list[str]) -> tuple[int, str]:
        """enroot start: fully unprivileged (no setuid binary anywhere)."""
        path = self._images.get(str(ImageRef.parse(ref_text)))
        if path is None:
            raise HpcRuntimeError(f"image {ref_text!r} not imported")
        try:
            ctx = enter_container(self.user_proc, path, "type3",
                                  dev_fs=self.machine.dev_fs,
                                  comm="enroot")
        except ContainerError as err:
            return 125, f"enroot: {err}"
        sink = OutputSink()
        status = execute(ctx.child(stdout=sink, stderr=sink), argv)
        return status, sink.text()

    def build(self, *_args, **_kwargs):
        raise HpcRuntimeError(
            "enroot 3.3 has no build capability; it relies on conversion "
            "of existing images (paper §3.1)")
