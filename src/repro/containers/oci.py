"""OCI-ish image model: references, configs, manifests."""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import RegistryError

__all__ = ["ImageRef", "ImageConfig", "Manifest"]

_REF_RE = re.compile(
    r"^(?:(?P<registry>[a-z0-9.\-]+(?::\d+)?)/)?"
    r"(?P<repo>[a-z0-9][a-z0-9._\-/]*?)"
    r"(?::(?P<tag>[A-Za-z0-9._\-]+))?$"
)


@dataclass(frozen=True)
class ImageRef:
    """A parsed image reference: ``[registry/]repository[:tag]``."""

    repository: str
    tag: str = "latest"
    registry: Optional[str] = None

    @classmethod
    def parse(cls, text: str) -> "ImageRef":
        m = _REF_RE.match(text.strip())
        if m is None:
            raise RegistryError(f"invalid image reference {text!r}")
        registry = m.group("registry")
        # "centos:7" parses with registry=None; "gitlab.lanl.gov/app:v1"
        # needs the dot heuristic real tools use.
        if registry is not None and "." not in registry and \
                ":" not in registry and registry != "localhost":
            return cls(repository=f"{registry}/{m.group('repo')}",
                       tag=m.group("tag") or "latest")
        return cls(repository=m.group("repo"), tag=m.group("tag") or "latest",
                   registry=registry)

    def __str__(self) -> str:
        prefix = f"{self.registry}/" if self.registry else ""
        return f"{prefix}{self.repository}:{self.tag}"

    @property
    def flat_name(self) -> str:
        """Filesystem-safe name (ch-image storage-directory style)."""
        return str(self).replace("/", "%").replace(":", "+")


@dataclass(frozen=True)
class ImageConfig:
    """Image runtime configuration (the OCI config blob)."""

    arch: str = "x86_64"
    env: tuple[str, ...] = ()
    cmd: tuple[str, ...] = ("/bin/sh",)
    entrypoint: tuple[str, ...] = ()
    workdir: str = "/"
    user: str = ""
    labels: tuple[tuple[str, str], ...] = ()
    history: tuple[str, ...] = ()

    def with_history(self, line: str) -> "ImageConfig":
        return replace(self, history=self.history + (line,))

    def digest(self) -> str:
        body = repr(self).encode()
        return "sha256:" + hashlib.sha256(body).hexdigest()


@dataclass(frozen=True)
class Manifest:
    """Image manifest: config + ordered layer digests."""

    config: ImageConfig
    layers: tuple[str, ...]  # blob digests, base first

    @property
    def layer_count(self) -> int:
        return len(self.layers)

    def digest(self) -> str:
        body = (self.config.digest() + "".join(self.layers)).encode()
        return "sha256:" + hashlib.sha256(body).hexdigest()
