"""Dockerfile parser, shared by every builder.

A deliberate design requirement from the paper (§3.2): "the build recipe
(typically, a Dockerfile) should require no modifications" — so ch-image and
Buildah interpret the *same* parsed instructions and differ only in
execution privilege.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Optional

from ..errors import BuildError

__all__ = ["Instruction", "parse_dockerfile", "split_env_args"]

_KINDS = {"FROM", "RUN", "ENV", "ARG", "COPY", "ADD", "WORKDIR", "CMD",
          "ENTRYPOINT", "LABEL", "USER", "EXPOSE", "VOLUME", "SHELL"}


@dataclass(frozen=True)
class Instruction:
    """One Dockerfile instruction.

    ``exec_form`` is set for RUN/CMD/ENTRYPOINT written as JSON arrays.
    """

    lineno: int
    kind: str
    args: str
    exec_form: Optional[tuple[str, ...]] = None

    def shell_words(self) -> list[str]:
        """The argv this instruction runs: exec form verbatim, shell form
        through ``/bin/sh -c`` (what the Figure transcripts print)."""
        if self.exec_form is not None:
            return list(self.exec_form)
        return ["/bin/sh", "-c", self.args]


def parse_dockerfile(text: str) -> list[Instruction]:
    """Parse Dockerfile text into instructions.

    Handles comments, blank lines, and backslash continuations.  Raises
    :class:`BuildError` on malformed input or unknown instructions.
    """
    # Join continuation lines, preserving line numbers of the first line.
    logical: list[tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), 1):
        stripped = raw.strip()
        if not pending and (not stripped or stripped.startswith("#")):
            continue
        if not pending:
            pending_line = lineno
        if stripped.endswith("\\"):
            pending += stripped[:-1].rstrip() + " "
            continue
        pending += stripped
        logical.append((pending_line, pending))
        pending = ""
    if pending:
        logical.append((pending_line, pending))

    instructions: list[Instruction] = []
    for lineno, line in logical:
        m = re.match(r"^([A-Za-z]+)\s+(.*)$", line)
        if m is None:
            raise BuildError(f"Dockerfile line {lineno}: cannot parse "
                             f"{line!r}")
        kind = m.group(1).upper()
        args = m.group(2).strip()
        if kind not in _KINDS:
            raise BuildError(f"Dockerfile line {lineno}: unknown instruction "
                             f"{kind}")
        exec_form = None
        if kind in ("RUN", "CMD", "ENTRYPOINT") and args.startswith("["):
            try:
                parsed = json.loads(args)
                if (isinstance(parsed, list)
                        and all(isinstance(x, str) for x in parsed)):
                    exec_form = tuple(parsed)
                else:
                    raise ValueError("not a list of strings")
            except ValueError as exc:
                raise BuildError(
                    f"Dockerfile line {lineno}: bad exec form: {exc}"
                ) from exc
        instructions.append(Instruction(lineno, kind, args, exec_form))

    if not instructions or instructions[0].kind != "FROM":
        raise BuildError("Dockerfile must start with FROM")
    return instructions


def split_env_args(args: str) -> list[tuple[str, str]]:
    """Parse ENV/LABEL/ARG argument forms: ``K=V K2="V 2"`` or ``K V``."""
    if "=" not in args.split(None, 1)[0]:
        key, _, value = args.partition(" ")
        return [(key, value.strip())]
    out = []
    for m in re.finditer(r'([A-Za-z_][A-Za-z_0-9.\-]*)=("([^"]*)"|\S*)', args):
        value = m.group(3) if m.group(3) is not None else m.group(2)
        out.append((m.group(1), value))
    return out
