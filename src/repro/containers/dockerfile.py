"""Dockerfile parser, shared by every builder.

A deliberate design requirement from the paper (§3.2): "the build recipe
(typically, a Dockerfile) should require no modifications" — so ch-image and
Buildah interpret the *same* parsed instructions and differ only in
execution privilege.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import BuildError

__all__ = ["Instruction", "Stage", "StageGraph", "parse_dockerfile",
           "parse_stage_graph", "render_dockerfile", "split_env_args",
           "template_preamble_args", "template_variables"]

_KINDS = {"FROM", "RUN", "ENV", "ARG", "COPY", "ADD", "WORKDIR", "CMD",
          "ENTRYPOINT", "LABEL", "USER", "EXPOSE", "VOLUME", "SHELL"}


@dataclass(frozen=True)
class Instruction:
    """One Dockerfile instruction.

    ``exec_form`` is set for RUN/CMD/ENTRYPOINT written as JSON arrays.
    """

    lineno: int
    kind: str
    args: str
    exec_form: Optional[tuple[str, ...]] = None

    def shell_words(self) -> list[str]:
        """The argv this instruction runs: exec form verbatim, shell form
        through ``/bin/sh -c`` (what the Figure transcripts print)."""
        if self.exec_form is not None:
            return list(self.exec_form)
        return ["/bin/sh", "-c", self.args]


def parse_dockerfile(text: str) -> list[Instruction]:
    """Parse Dockerfile text into instructions.

    Handles comments, blank lines, and backslash continuations.  Raises
    :class:`BuildError` on malformed input or unknown instructions.
    """
    # Join continuation lines, preserving line numbers of the first line.
    logical: list[tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), 1):
        stripped = raw.strip()
        if not pending and (not stripped or stripped.startswith("#")):
            continue
        if not pending:
            pending_line = lineno
        if stripped.endswith("\\"):
            pending += stripped[:-1].rstrip() + " "
            continue
        pending += stripped
        logical.append((pending_line, pending))
        pending = ""
    if pending:
        logical.append((pending_line, pending))

    instructions: list[Instruction] = []
    for lineno, line in logical:
        m = re.match(r"^([A-Za-z]+)\s+(.*)$", line)
        if m is None:
            raise BuildError(f"Dockerfile line {lineno}: cannot parse "
                             f"{line!r}")
        kind = m.group(1).upper()
        args = m.group(2).strip()
        if kind not in _KINDS:
            raise BuildError(f"Dockerfile line {lineno}: unknown instruction "
                             f"{kind}")
        exec_form = None
        if kind in ("RUN", "CMD", "ENTRYPOINT") and args.startswith("["):
            try:
                parsed = json.loads(args)
                if (isinstance(parsed, list)
                        and all(isinstance(x, str) for x in parsed)):
                    exec_form = tuple(parsed)
                else:
                    raise ValueError("not a list of strings")
            except ValueError as exc:
                raise BuildError(
                    f"Dockerfile line {lineno}: bad exec form: {exc}"
                ) from exc
        instructions.append(Instruction(lineno, kind, args, exec_form))

    if not instructions or instructions[0].kind != "FROM":
        raise BuildError("Dockerfile must start with FROM")
    return instructions


# -- the stage dependency graph ----------------------------------------------------
#
# Multi-stage Dockerfiles are a DAG, not a list: ``FROM <stage>`` and
# ``COPY --from=<stage>`` are the edges.  The parallel build engine
# (:mod:`repro.core.build_graph`) schedules independent stages
# concurrently, so the graph must be explicit — and strict: unknown
# ``--from`` targets and dependency cycles are parse errors, not
# mid-build surprises.


@dataclass(frozen=True)
class Stage:
    """One build stage: a FROM instruction and everything up to the next.

    ``name`` is the ``AS``-name **normalized to lower case** — Dockerfile
    stage names are case-insensitive.  ``deps`` are indices of earlier
    stages this one reads (its base, plus every ``COPY --from`` source);
    ``first_ordinal`` is the 1-based position of the FROM instruction in
    the whole file, so transcripts number identically however stages are
    scheduled.
    """

    index: int
    name: Optional[str]
    base_ref: str
    base_stage: Optional[int]
    instructions: tuple[Instruction, ...]
    deps: tuple[int, ...]
    first_ordinal: int

    @property
    def label(self) -> str:
        return self.name if self.name is not None else f"stage{self.index}"


@dataclass
class StageGraph:
    """The stage DAG of one Dockerfile."""

    stages: list[Stage] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.stages)

    @property
    def total_instructions(self) -> int:
        return sum(len(s.instructions) for s in self.stages)

    @property
    def final(self) -> Stage:
        return self.stages[-1]

    def stage_named(self, ref: str) -> Optional[Stage]:
        """The stage *ref* names (AS-name, case-insensitive, or index)."""
        low = ref.lower()
        for stage in self.stages:
            if stage.name == low:
                return stage
        if low.isdigit() and int(low) < len(self.stages):
            return self.stages[int(low)]
        return None

    def topo_order(self) -> list[int]:
        """Kahn topological order, deterministic (lowest index first).
        Raises :class:`BuildError` on a dependency cycle — possible only
        in hand-built graphs, but the scheduler trusts this invariant."""
        indegree = {s.index: 0 for s in self.stages}
        dependents: dict[int, list[int]] = {s.index: [] for s in self.stages}
        for stage in self.stages:
            for dep in stage.deps:
                if dep not in indegree:
                    raise BuildError(
                        f"stage {stage.label!r} depends on unknown stage "
                        f"index {dep}")
                indegree[stage.index] += 1
                dependents[dep].append(stage.index)
        import heapq
        ready = [i for i, n in sorted(indegree.items()) if n == 0]
        heapq.heapify(ready)
        order: list[int] = []
        while ready:
            i = heapq.heappop(ready)
            order.append(i)
            for j in dependents[i]:
                indegree[j] -= 1
                if indegree[j] == 0:
                    heapq.heappush(ready, j)
        if len(order) != len(self.stages):
            cyclic = sorted(i for i, n in indegree.items() if n > 0)
            raise BuildError(
                f"stage dependency cycle through stages {cyclic}")
        return order

    def dependency_levels(self) -> list[list[int]]:
        """Stages grouped by dependency depth: level k can start once
        every stage in levels < k is done; stages within a level are
        mutually independent-by-depth (the width of each level bounds
        useful parallelism)."""
        self.topo_order()  # validates acyclicity
        depth: dict[int, int] = {}
        for stage in self.stages:  # deps always point at earlier indices
            depth[stage.index] = (
                1 + max((depth[d] for d in stage.deps), default=-1))
        levels: list[list[int]] = [[] for _ in range(max(depth.values()) + 1)] \
            if depth else []
        for index, d in sorted(depth.items()):
            levels[d].append(index)
        return levels


def _stage_ref(ref: str, names: dict[str, int], current: int
               ) -> Optional[int]:
    """Resolve *ref* against stages defined before *current*: a stage
    name (case-insensitive) or a decimal index.  None = not a stage."""
    low = ref.lower()
    if low in names:
        return names[low]
    if low.isdigit() and int(low) < current:
        return int(low)
    return None


def parse_stage_graph(source: "str | Sequence[Instruction]") -> StageGraph:
    """Parse Dockerfile text (or pre-parsed instructions) into the stage
    DAG.  Raises :class:`BuildError` on duplicate stage names, unknown
    ``COPY --from`` targets (including forward references — a stage may
    only read stages defined above it), and dependency cycles."""
    instructions = (parse_dockerfile(source) if isinstance(source, str)
                    else list(source))
    bounds = [i for i, inst in enumerate(instructions)
              if inst.kind == "FROM"] + [len(instructions)]
    names: dict[str, int] = {}
    stages: list[Stage] = []
    for s, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        instrs = instructions[lo:hi]
        frm = instrs[0]
        parts = frm.args.split()
        if not parts:
            raise BuildError(
                f"Dockerfile line {frm.lineno}: FROM needs an image")
        base_ref = parts[0]
        name: Optional[str] = None
        if len(parts) >= 3 and parts[1].upper() == "AS":
            name = parts[2].lower()
            if name in names:
                raise BuildError(
                    f"Dockerfile line {frm.lineno}: duplicate stage name "
                    f"{parts[2]!r}")
        base_stage = _stage_ref(base_ref, names, s)
        deps = {base_stage} if base_stage is not None else set()
        for inst in instrs[1:]:
            if inst.kind not in ("COPY", "ADD"):
                continue
            words = inst.args.split()
            if words and words[0].startswith("--from="):
                ref = words[0].split("=", 1)[1]
                dep = _stage_ref(ref, names, s)
                if dep is None:
                    raise BuildError(
                        f"Dockerfile line {inst.lineno}: {inst.kind} "
                        f"--from={ref}: no such stage")
                deps.add(dep)
        if name is not None:
            names[name] = s
        stages.append(Stage(
            index=s, name=name, base_ref=base_ref, base_stage=base_stage,
            instructions=tuple(instrs), deps=tuple(sorted(deps)),
            first_ordinal=1 + lo))
    graph = StageGraph(stages)
    graph.topo_order()  # defensive: parse order cannot cycle, but verify
    return graph


# -- template rendering (build-matrix variables) -----------------------------------
#
# A Dockerfile *template* is an ordinary Dockerfile whose FROM references
# and instruction text may use ``${name}`` variables, optionally declared
# with defaults by ``ARG name[=default]`` lines before the first FROM (the
# Docker global-ARG convention).  Rendering is strict and digest-stable:
# the output is the template text with every ``${name}`` replaced and the
# ARG preamble dropped, so two templates that render to the same
# instruction sequence produce byte-identical text — and therefore
# identical Merkle cache chains.  Undefined *and* unused variables are
# parse-time errors, never silent: a matrix axis that does not shape the
# image is a spec bug, not a 64-way duplicate build.

_VAR_RE = re.compile(r"\$\{([A-Za-z_][A-Za-z_0-9]*)\}")
_ARG_LINE_RE = re.compile(
    r"^ARG\s+([A-Za-z_][A-Za-z_0-9]*)(?:=(.*))?\s*$")


def template_variables(text: str) -> set[str]:
    """Every ``${name}`` referenced anywhere in *text*."""
    return {m.group(1) for m in _VAR_RE.finditer(text)}


def template_preamble_args(text: str) -> dict[str, Optional[str]]:
    """The ``ARG name[=default]`` declarations before the first FROM.

    Returns name -> default (None when declared without one).  Raises
    :class:`BuildError` on a duplicate declaration.
    """
    declared: dict[str, Optional[str]] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.split(None, 1)[0].upper() == "FROM":
            break
        m = _ARG_LINE_RE.match(stripped)
        if m is None:
            continue  # parse_dockerfile reports non-ARG preamble lines
        name = m.group(1)
        if name in declared:
            raise BuildError(f"Dockerfile template line {lineno}: "
                             f"duplicate ARG {name!r}")
        declared[name] = m.group(2)
    return declared


def render_dockerfile(template: str, variables=None) -> str:
    """Render a Dockerfile template: substitute ``${name}`` everywhere
    (FROM references and instruction text alike) and drop the ARG
    preamble.

    *variables* (a mapping) overrides preamble defaults.  Raises
    :class:`BuildError` when a referenced variable has no value
    (undefined) and when a supplied or declared variable is never
    referenced (unused) — both are parse-time errors so a build matrix
    fails on the spec, not halfway through 64 image builds.
    """
    supplied = dict(variables) if variables else {}
    declared = template_preamble_args(template)
    values = {**{n: d for n, d in declared.items() if d is not None},
              **supplied}

    used: set[str] = set()
    errors: list[str] = []

    out_lines: list[str] = []
    in_preamble = True
    for lineno, raw in enumerate(template.splitlines(), 1):
        stripped = raw.strip()
        if in_preamble and stripped \
                and not stripped.startswith("#") \
                and stripped.split(None, 1)[0].upper() == "FROM":
            in_preamble = False
        if in_preamble and _ARG_LINE_RE.match(stripped):
            continue  # declaration, consumed

        def sub(m: "re.Match[str]", lineno=lineno) -> str:
            name = m.group(1)
            used.add(name)
            if name not in values:
                errors.append(
                    f"line {lineno}: undefined variable ${{{name}}}")
                return m.group(0)
            return values[name]

        out_lines.append(_VAR_RE.sub(sub, raw))

    unused = sorted((set(supplied) | set(declared)) - used)
    for name in unused:
        errors.append(f"variable {name!r} is never used")
    if errors:
        raise BuildError("Dockerfile template: " + "; ".join(errors))
    return "\n".join(out_lines) + ("\n" if template.endswith("\n") else "")


def split_env_args(args: str) -> list[tuple[str, str]]:
    """Parse ENV/LABEL/ARG argument forms: ``K=V K2="V 2"`` or ``K V``."""
    if "=" not in args.split(None, 1)[0]:
        key, _, value = args.partition(" ")
        return [(key, value.strip())]
    out = []
    for m in re.finditer(r'([A-Za-z_][A-Za-z_0-9.\-]*)=("([^"]*)"|\S*)', args):
        value = m.group(3) if m.group(3) is not None else m.group(2)
        out.append((m.group(1), value))
    return out
