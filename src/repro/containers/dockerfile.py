"""Dockerfile parser, shared by every builder.

A deliberate design requirement from the paper (§3.2): "the build recipe
(typically, a Dockerfile) should require no modifications" — so ch-image and
Buildah interpret the *same* parsed instructions and differ only in
execution privilege.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import BuildError

__all__ = ["Instruction", "Stage", "StageGraph", "parse_dockerfile",
           "parse_stage_graph", "split_env_args"]

_KINDS = {"FROM", "RUN", "ENV", "ARG", "COPY", "ADD", "WORKDIR", "CMD",
          "ENTRYPOINT", "LABEL", "USER", "EXPOSE", "VOLUME", "SHELL"}


@dataclass(frozen=True)
class Instruction:
    """One Dockerfile instruction.

    ``exec_form`` is set for RUN/CMD/ENTRYPOINT written as JSON arrays.
    """

    lineno: int
    kind: str
    args: str
    exec_form: Optional[tuple[str, ...]] = None

    def shell_words(self) -> list[str]:
        """The argv this instruction runs: exec form verbatim, shell form
        through ``/bin/sh -c`` (what the Figure transcripts print)."""
        if self.exec_form is not None:
            return list(self.exec_form)
        return ["/bin/sh", "-c", self.args]


def parse_dockerfile(text: str) -> list[Instruction]:
    """Parse Dockerfile text into instructions.

    Handles comments, blank lines, and backslash continuations.  Raises
    :class:`BuildError` on malformed input or unknown instructions.
    """
    # Join continuation lines, preserving line numbers of the first line.
    logical: list[tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), 1):
        stripped = raw.strip()
        if not pending and (not stripped or stripped.startswith("#")):
            continue
        if not pending:
            pending_line = lineno
        if stripped.endswith("\\"):
            pending += stripped[:-1].rstrip() + " "
            continue
        pending += stripped
        logical.append((pending_line, pending))
        pending = ""
    if pending:
        logical.append((pending_line, pending))

    instructions: list[Instruction] = []
    for lineno, line in logical:
        m = re.match(r"^([A-Za-z]+)\s+(.*)$", line)
        if m is None:
            raise BuildError(f"Dockerfile line {lineno}: cannot parse "
                             f"{line!r}")
        kind = m.group(1).upper()
        args = m.group(2).strip()
        if kind not in _KINDS:
            raise BuildError(f"Dockerfile line {lineno}: unknown instruction "
                             f"{kind}")
        exec_form = None
        if kind in ("RUN", "CMD", "ENTRYPOINT") and args.startswith("["):
            try:
                parsed = json.loads(args)
                if (isinstance(parsed, list)
                        and all(isinstance(x, str) for x in parsed)):
                    exec_form = tuple(parsed)
                else:
                    raise ValueError("not a list of strings")
            except ValueError as exc:
                raise BuildError(
                    f"Dockerfile line {lineno}: bad exec form: {exc}"
                ) from exc
        instructions.append(Instruction(lineno, kind, args, exec_form))

    if not instructions or instructions[0].kind != "FROM":
        raise BuildError("Dockerfile must start with FROM")
    return instructions


# -- the stage dependency graph ----------------------------------------------------
#
# Multi-stage Dockerfiles are a DAG, not a list: ``FROM <stage>`` and
# ``COPY --from=<stage>`` are the edges.  The parallel build engine
# (:mod:`repro.core.build_graph`) schedules independent stages
# concurrently, so the graph must be explicit — and strict: unknown
# ``--from`` targets and dependency cycles are parse errors, not
# mid-build surprises.


@dataclass(frozen=True)
class Stage:
    """One build stage: a FROM instruction and everything up to the next.

    ``name`` is the ``AS``-name **normalized to lower case** — Dockerfile
    stage names are case-insensitive.  ``deps`` are indices of earlier
    stages this one reads (its base, plus every ``COPY --from`` source);
    ``first_ordinal`` is the 1-based position of the FROM instruction in
    the whole file, so transcripts number identically however stages are
    scheduled.
    """

    index: int
    name: Optional[str]
    base_ref: str
    base_stage: Optional[int]
    instructions: tuple[Instruction, ...]
    deps: tuple[int, ...]
    first_ordinal: int

    @property
    def label(self) -> str:
        return self.name if self.name is not None else f"stage{self.index}"


@dataclass
class StageGraph:
    """The stage DAG of one Dockerfile."""

    stages: list[Stage] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.stages)

    @property
    def total_instructions(self) -> int:
        return sum(len(s.instructions) for s in self.stages)

    @property
    def final(self) -> Stage:
        return self.stages[-1]

    def stage_named(self, ref: str) -> Optional[Stage]:
        """The stage *ref* names (AS-name, case-insensitive, or index)."""
        low = ref.lower()
        for stage in self.stages:
            if stage.name == low:
                return stage
        if low.isdigit() and int(low) < len(self.stages):
            return self.stages[int(low)]
        return None

    def topo_order(self) -> list[int]:
        """Kahn topological order, deterministic (lowest index first).
        Raises :class:`BuildError` on a dependency cycle — possible only
        in hand-built graphs, but the scheduler trusts this invariant."""
        indegree = {s.index: 0 for s in self.stages}
        dependents: dict[int, list[int]] = {s.index: [] for s in self.stages}
        for stage in self.stages:
            for dep in stage.deps:
                if dep not in indegree:
                    raise BuildError(
                        f"stage {stage.label!r} depends on unknown stage "
                        f"index {dep}")
                indegree[stage.index] += 1
                dependents[dep].append(stage.index)
        import heapq
        ready = [i for i, n in sorted(indegree.items()) if n == 0]
        heapq.heapify(ready)
        order: list[int] = []
        while ready:
            i = heapq.heappop(ready)
            order.append(i)
            for j in dependents[i]:
                indegree[j] -= 1
                if indegree[j] == 0:
                    heapq.heappush(ready, j)
        if len(order) != len(self.stages):
            cyclic = sorted(i for i, n in indegree.items() if n > 0)
            raise BuildError(
                f"stage dependency cycle through stages {cyclic}")
        return order

    def dependency_levels(self) -> list[list[int]]:
        """Stages grouped by dependency depth: level k can start once
        every stage in levels < k is done; stages within a level are
        mutually independent-by-depth (the width of each level bounds
        useful parallelism)."""
        self.topo_order()  # validates acyclicity
        depth: dict[int, int] = {}
        for stage in self.stages:  # deps always point at earlier indices
            depth[stage.index] = (
                1 + max((depth[d] for d in stage.deps), default=-1))
        levels: list[list[int]] = [[] for _ in range(max(depth.values()) + 1)] \
            if depth else []
        for index, d in sorted(depth.items()):
            levels[d].append(index)
        return levels


def _stage_ref(ref: str, names: dict[str, int], current: int
               ) -> Optional[int]:
    """Resolve *ref* against stages defined before *current*: a stage
    name (case-insensitive) or a decimal index.  None = not a stage."""
    low = ref.lower()
    if low in names:
        return names[low]
    if low.isdigit() and int(low) < current:
        return int(low)
    return None


def parse_stage_graph(source: "str | Sequence[Instruction]") -> StageGraph:
    """Parse Dockerfile text (or pre-parsed instructions) into the stage
    DAG.  Raises :class:`BuildError` on duplicate stage names, unknown
    ``COPY --from`` targets (including forward references — a stage may
    only read stages defined above it), and dependency cycles."""
    instructions = (parse_dockerfile(source) if isinstance(source, str)
                    else list(source))
    bounds = [i for i, inst in enumerate(instructions)
              if inst.kind == "FROM"] + [len(instructions)]
    names: dict[str, int] = {}
    stages: list[Stage] = []
    for s, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        instrs = instructions[lo:hi]
        frm = instrs[0]
        parts = frm.args.split()
        if not parts:
            raise BuildError(
                f"Dockerfile line {frm.lineno}: FROM needs an image")
        base_ref = parts[0]
        name: Optional[str] = None
        if len(parts) >= 3 and parts[1].upper() == "AS":
            name = parts[2].lower()
            if name in names:
                raise BuildError(
                    f"Dockerfile line {frm.lineno}: duplicate stage name "
                    f"{parts[2]!r}")
        base_stage = _stage_ref(base_ref, names, s)
        deps = {base_stage} if base_stage is not None else set()
        for inst in instrs[1:]:
            if inst.kind not in ("COPY", "ADD"):
                continue
            words = inst.args.split()
            if words and words[0].startswith("--from="):
                ref = words[0].split("=", 1)[1]
                dep = _stage_ref(ref, names, s)
                if dep is None:
                    raise BuildError(
                        f"Dockerfile line {inst.lineno}: {inst.kind} "
                        f"--from={ref}: no such stage")
                deps.add(dep)
        if name is not None:
            names[name] = s
        stages.append(Stage(
            index=s, name=name, base_ref=base_ref, base_stage=base_stage,
            instructions=tuple(instrs), deps=tuple(sorted(deps)),
            first_ordinal=1 + lo))
    graph = StageGraph(stages)
    graph.topo_order()  # defensive: parse order cannot cycle, but verify
    return graph


def split_env_args(args: str) -> list[tuple[str, str]]:
    """Parse ENV/LABEL/ARG argument forms: ``K=V K2="V 2"`` or ``K V``."""
    if "=" not in args.split(None, 1)[0]:
        key, _, value = args.partition(" ")
        return [(key, value.strip())]
    out = []
    for m in re.finditer(r'([A-Za-z_][A-Za-z_0-9.\-]*)=("([^"]*)"|\S*)', args):
        value = m.group(3) if m.group(3) is not None else m.group(2)
        out.append((m.group(1), value))
    return out
