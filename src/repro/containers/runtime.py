"""Container entry: the namespace dance each privilege type performs.

This is the common machinery behind runc/crun (Podman), Docker's runtime,
and ch-run — what differs between them is exactly the paper's §2.2 table:

* Type I: mount namespace only; the containerized process keeps host IDs
  (root in the container IS root on the host).
* Type II: privileged user namespace installed by the shadow-utils helpers,
  then a mount namespace.
* Type III: unprivileged user namespace (single-ID maps), then a mount
  namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import KernelError, ReproError
from ..helpers import ShadowUtils
from ..kernel import Process, Syscalls, make_procfs, make_sysfs
from ..shell import ExecContext

__all__ = ["ContainerError", "PRIVILEGE_TYPES", "enter_container",
           "RuncRuntime", "CrunRuntime"]

PRIVILEGE_TYPES = ("type1", "type2", "type3")

_DEFAULT_PATH = "/usr/sbin:/usr/bin:/sbin:/bin"


class ContainerError(ReproError):
    """Container setup or execution failed."""


def enter_container(
    parent: Process,
    image_path: str,
    privilege: str,
    *,
    dev_fs=None,
    shadow: Optional[ShadowUtils] = None,
    env: Optional[dict[str, str]] = None,
    workdir: str = "/",
    mount_proc: bool = True,
    join_userns=None,
    auto_map: bool = False,
    hostname: Optional[str] = None,
    new_pid_ns: bool = False,
    read_only: bool = False,
    comm: str = "container",
) -> ExecContext:
    """Fork from *parent* and enter a container rooted at *image_path*.

    Returns an :class:`ExecContext` whose process lives inside the
    container.  ``dev_fs`` is the host /dev to bind (device nodes cannot be
    created inside user namespaces); ``shadow`` is required for type2.
    ``join_userns`` enters an existing namespace (setns-style) instead of
    creating one — Podman reuses its rootless namespace for storage *and*
    containers, which is what makes its fuse-overlayfs ownership tricks
    legal inside the container.
    """
    if privilege not in PRIVILEGE_TYPES:
        raise ContainerError(f"unknown privilege type {privilege!r}")
    # OCI runtimes give containers a PID namespace (the container process
    # is PID 1); ch-run deliberately does not, so jobs stay plainly visible
    # to the resource manager (§3.1).
    proc = parent.fork(comm=comm, new_pid_ns=new_pid_ns)
    sys = Syscalls(proc)

    if privilege == "type1":
        if proc.cred.euid != 0 or not proc.cred.userns.is_initial:
            raise ContainerError(
                "Type I containers require root on the host (this is "
                "Docker's model — and why unprivileged sites reject it)")
    elif join_userns is not None:
        if join_userns.owner_uid != proc.cred.euid:
            raise ContainerError("cannot join a namespace owned by another "
                                 "user")
        proc.cred.enter_userns(join_userns, full_caps=True)
    elif privilege == "type2":
        if shadow is None:
            raise ContainerError("type2 requires the shadow-utils helpers")
        shadow.setup_rootless_userns(proc)
    else:  # type3
        try:
            if auto_map:
                # §6.2.4 future-kernel mode: full ID range, no helpers
                sys.setup_auto_userns()
            else:
                sys.setup_single_id_userns()
        except KernelError as err:
            raise ContainerError(
                f"cannot create user namespace: {err}") from err

    sys.unshare_mount()
    if hostname is not None:
        # OCI runtimes give containers their own UTS namespace; ch-run
        # keeps the host's (so pass hostname=None for Charliecloud).
        sys.unshare_uts()
        sys.sethostname(hostname)
    try:
        sys.pivot_to(image_path)
    except KernelError as err:
        raise ContainerError(f"cannot enter image {image_path}: {err}") \
            from err
    if read_only:
        # Shifter-style: the image is a read-only loop mount; jobs cannot
        # modify it (writable scratch comes from bind mounts).
        from ..kernel import MountFlags
        root_mount = proc.mnt_ns.mounts["/"]
        proc.mnt_ns.set_root(root_mount.fs, root_mount.root_ino,
                             owning_userns=root_mount.owning_userns,
                             flags=MountFlags(read_only=True))

    # Runtime mounts.  Device nodes can't be made in a user namespace, so
    # /dev is the host's, bind-mounted (what ch-run and runc both do).
    if dev_fs is not None and sys.exists("/dev"):
        proc.mnt_ns.add_mount("/dev", dev_fs,
                              owning_userns=proc.cred.userns)
    if mount_proc and sys.exists("/proc"):
        proc.mnt_ns.add_mount("/proc", make_procfs(proc.kernel, proc),
                              owning_userns=proc.cred.userns)
    if sys.exists("/sys"):
        proc.mnt_ns.add_mount("/sys", make_sysfs(proc.kernel),
                              owning_userns=proc.cred.userns)

    cenv = {"PATH": _DEFAULT_PATH, "HOME": "/root", "TERM": "dumb"}
    cenv.update(env or {})
    proc.environ = dict(cenv)
    if workdir != "/":
        sys.mkdir_p(workdir)
        sys.chdir(workdir)
    return ExecContext(proc, sys, env=cenv)


@dataclass
class RuncRuntime:
    """The default OCI runtime Podman drives (paper §4.1).

    cgroups are left unused in rootless mode: "cgroup operations by default
    are generally root-level actions ... a convenient coincidence for HPC".
    """

    name: str = "runc"
    supports_unprivileged_cgroups: bool = False

    def cgroup_setup(self, cred, hierarchy) -> Optional[object]:
        """Attempt cgroup limits for a container; rootless runc skips them."""
        if cred.euid != 0 or not cred.userns.is_initial:
            return None  # silently unused, as deployed on Astra
        return hierarchy.create(hierarchy.root, "container", cred)


@dataclass
class CrunRuntime:
    """crun with the cgroups-v2 prototype: unprivileged cgroup control via
    delegation (paper §4.1 'prototype work is underway')."""

    name: str = "crun"
    supports_unprivileged_cgroups: bool = True

    def cgroup_setup(self, cred, hierarchy) -> Optional[object]:
        if hierarchy.version != 2:
            return None
        try:
            return hierarchy.create(hierarchy.root, "container", cred)
        except KernelError:
            return None
