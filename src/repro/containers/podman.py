"""Rootless Podman: the Docker-CLI-compatible front end over Buildah.

"Podman in this sense only provides a CLI interface identical to Docker,
whereas Buildah provides more advanced and custom container build features"
(paper §4).  Podman adds the fork-exec *run* path (no daemon), uid-map
introspection (Figures 4/5), and the rootless preflight checks sysadmins
configure via /etc/subuid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from ..kernel import IdMapEntry, Process
from ..shell import OutputSink, execute
from .buildah import Buildah, BuildResult, IgnoreChownSyscalls
from .runtime import ContainerError, RuncRuntime, enter_container

__all__ = ["Podman", "PodmanError", "RunResult"]


class PodmanError(ReproError):
    """Podman-level failure (e.g. no subordinate IDs configured)."""


@dataclass
class RunResult:
    status: int
    output: str


class Podman:
    """One user's rootless Podman on one machine."""

    def __init__(
        self,
        machine,
        user_proc: Process,
        *,
        driver: str = "overlay",
        storage_dir: Optional[str] = None,
        unprivileged: bool = False,
        ignore_chown_errors: bool = False,
        layers_cache: bool = True,
    ):
        self.machine = machine
        self.user_proc = user_proc
        self.unprivileged = unprivileged
        self.runtime = RuncRuntime()
        if not unprivileged:
            self._preflight_subids()
        self.buildah = Buildah(
            machine, user_proc, driver=driver, storage_dir=storage_dir,
            unprivileged=unprivileged,
            ignore_chown_errors=ignore_chown_errors,
            layers_cache=layers_cache,
        )

    def _preflight_subids(self) -> None:
        """Rootless Podman refuses to start without subordinate ID grants —
        "these mappings need to be specified by the administrator upon
        Podman installation" (§4.1)."""
        user = self.user_proc.environ.get("USER", "")
        uid = self.user_proc.cred.euid
        shadow = self.machine.shadow
        if not shadow.subuid().entries_for(user, uid) or \
                not shadow.subgid().entries_for(user, uid):
            raise PodmanError(
                f"cannot set up rootless mode: no subordinate IDs for "
                f"{user or uid} in /etc/subuid//etc/subgid "
                f"(ask your sysadmin to run: usermod --add-subuids ... "
                f"{user})")

    # -- CLI-equivalent operations --------------------------------------------------

    def build(self, dockerfile: str, tag: str) -> BuildResult:
        """``podman build -t TAG`` (delegates to the Buildah codebase)."""
        return self.buildah.build(dockerfile, tag)

    def pull(self, ref: str):
        return self.buildah.pull(ref)

    def push(self, local_name: str, dest: str):
        """``podman push`` — multi-layer OCI push."""
        return self.buildah.push(local_name, dest)

    def run(self, image: str, argv: list[str], *,
            env: Optional[dict[str, str]] = None) -> RunResult:
        """``podman run`` — fork-exec, no daemon (the §4 design goal)."""
        img = self.buildah.images.get(image)
        if img is None:
            img = self.pull(image)
        try:
            ctx = enter_container(
                self.user_proc, img.tree_path,
                "type3" if self.unprivileged else "type2",
                dev_fs=self.machine.dev_fs,
                shadow=self.machine.shadow,
                env={**{k: v for k, v in
                        (kv.split("=", 1) for kv in img.config.env
                         if "=" in kv)}, **(env or {})},
                workdir=img.config.workdir,
                join_userns=self.buildah._storage_proc.cred.userns,
                new_pid_ns=True,
                comm="podman-run",
            )
        except ContainerError as err:
            return RunResult(125, f"Error: {err}")
        if self.unprivileged and self.buildah.ignore_chown_errors:
            ctx = ctx.child(sys=IgnoreChownSyscalls(ctx.sys))
        sink = OutputSink()
        run_ctx = ctx.child(stdout=sink, stderr=sink)
        cmd = list(img.config.entrypoint) + (argv or list(img.config.cmd))
        status = execute(run_ctx, cmd)
        return RunResult(status, sink.text())

    # -- introspection (Figures 4 and 5) ----------------------------------------------

    def uid_map(self) -> list[IdMapEntry]:
        """The map ``podman unshare cat /proc/self/uid_map`` would show."""
        ns = self.buildah._storage_proc.cred.userns
        assert ns.uid_map is not None
        return list(ns.uid_map.entries)

    def uid_map_text(self) -> str:
        lines = [f"{e.inside_start:>10} {e.outside_start:>10} {e.count:>10}"
                 for e in self.uid_map()]
        return "\n".join(lines) + "\n"
