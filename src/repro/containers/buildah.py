"""Buildah: the build engine Podman delegates to (paper §4).

"Podman and Buildah leverage the same codebase for build operations" — so
this class is the single Type II (and experimental unprivileged) build
implementation, and :class:`~repro.containers.podman.Podman` is the
Docker-CLI-compatible front end over it.

Feature notes from the paper it implements:

* rootless operation through the shadow-utils privileged helpers (§4.1);
* storage drivers ``overlay`` (fuse-overlayfs) and ``vfs`` (§4.1);
* a per-instruction build cache ("this caching can greatly accelerate
  repetitive builds", §6.1 — the capability Charliecloud lacks);
* multi-layer OCI images pushed to OCI-compliant registries;
* the experimental ``--ignore-chown-errors`` single-ID mode (§4.1.1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..archive import TarArchive
from ..errors import BuildError, Errno, KernelError, RegistryError
from ..kernel import Process, Syscalls
from ..obs.trace import instrument_syscalls, kernel_span
from ..shell import OutputSink, execute
from .dockerfile import Instruction, parse_dockerfile, split_env_args
from .oci import ImageConfig, ImageRef, Manifest
from .registry import Registry
from .runtime import ContainerError, enter_container
from .storage import StorageDriver, make_driver

__all__ = ["Buildah", "BuildResult", "IgnoreChownSyscalls",
           "DEFAULT_REGISTRY"]

DEFAULT_REGISTRY = "docker.io"


@instrument_syscalls("ignore-chown")
class IgnoreChownSyscalls(Syscalls):
    """The --ignore-chown-errors mode: chown failures are swallowed, so the
    single mapped ID absorbs all ownership (paper §4.1.1)."""

    def __init__(self, inner: Syscalls):
        super().__init__(inner.proc)
        self.inner = inner

    def chown(self, path, uid, gid, *, follow=True):
        try:
            self.inner.chown(path, uid, gid, follow=follow)
        except KernelError as err:
            if err.errno not in (Errno.EPERM, Errno.EINVAL):
                raise


@dataclass
class LocalImage:
    """An image in local storage."""

    name: str
    config: ImageConfig
    layers: list[TarArchive]
    tree_path: str


@dataclass
class BuildResult:
    """Outcome of one build."""

    tag: str
    success: bool
    transcript: list[str] = field(default_factory=list)
    instructions_run: int = 0
    cache_hits: int = 0
    error: str = ""

    @property
    def text(self) -> str:
        return "\n".join(self.transcript)


@dataclass(frozen=True)
class _CacheEntry:
    layer: TarArchive  # the diff this instruction produced
    config: ImageConfig


class Buildah:
    """One user's build environment on one machine."""

    def __init__(
        self,
        machine,
        user_proc: Process,
        *,
        driver: str = "overlay",
        storage_dir: Optional[str] = None,
        unprivileged: bool = False,
        ignore_chown_errors: bool = False,
        layers_cache: bool = True,
    ):
        self.machine = machine
        self.user_proc = user_proc
        self.unprivileged = unprivileged
        self.ignore_chown_errors = ignore_chown_errors
        self.layers_cache = layers_cache
        user = user_proc.environ.get("USER", "user")
        self.storage_dir = storage_dir or \
            f"/home/{user}/.local/share/containers/storage"
        # Storage operations run inside a user namespace, so ownership of
        # image files (subordinate IDs in Type II) is legal to manipulate.
        self._storage_proc = user_proc.fork(comm="buildah-storage")
        ssys = Syscalls(self._storage_proc)
        if unprivileged:
            ssys.setup_single_id_userns()
        else:
            machine.shadow.setup_rootless_userns(self._storage_proc)
        self.driver: StorageDriver = make_driver(
            driver, ssys, self.storage_dir,
            content_store=getattr(machine, "content_store", None))
        self.images: dict[str, LocalImage] = {}
        self._cache: dict[str, _CacheEntry] = {}

    # -- registry access -----------------------------------------------------------

    def _registry_for(self, ref: ImageRef) -> Registry:
        net = self.machine.kernel.network
        if net is None:
            raise RegistryError("machine has no network")
        return net.registry(ref.registry or DEFAULT_REGISTRY)

    def pull(self, ref_text: str) -> LocalImage:
        """Pull an image into local storage."""
        ref = ImageRef.parse(ref_text)
        name = str(ref)
        if name in self.images:
            return self.images[name]
        config, layers = self._registry_for(ref).pull(
            ref, arch=self.machine.arch)
        on_err = "ignore" if self.ignore_chown_errors else "raise"
        try:
            path = self.driver.unpack_image(
                name, layers, preserve_owner=True, on_chown_error=on_err)
        except Exception as exc:
            raise BuildError(f"cannot unpack {name}: {exc}") from exc
        img = LocalImage(name, config, list(layers), path)
        self.images[name] = img
        return img

    # -- building --------------------------------------------------------------------

    def build(self, dockerfile: str, tag: str) -> BuildResult:
        """Build *dockerfile*, tagging the result *tag* in local storage."""
        result = BuildResult(tag=tag, success=False)
        with kernel_span(self.machine.kernel, f"build {tag}", "build",
                         tag=tag, builder="buildah") as sp:
            self._build(dockerfile, tag, result)
            if sp is not None and not result.success:
                sp.fail(result.error or "build failed")
        return result

    def _inst_span(self, lineno: int, kind: str, args: str):
        text = f"{kind} {args}".strip()
        return kernel_span(self.machine.kernel, f"{lineno} {text}"[:80],
                           "instruction", lineno=lineno, inst_kind=kind,
                           text=text)

    def _build(self, dockerfile: str, tag: str,
               result: BuildResult) -> None:
        out = result.transcript.append
        try:
            instructions = parse_dockerfile(dockerfile)
        except BuildError as err:
            result.error = str(err)
            out(f"Error: {err}")
            return

        total = len(instructions)
        base_ref = instructions[0].args.split()[0]
        out(f"STEP 1/{total}: FROM {base_ref}")
        with self._inst_span(1, "FROM", base_ref) as sp:
            try:
                base = self.pull(base_ref)
            except (BuildError, RegistryError, ContainerError) as err:
                result.error = str(err)
                out(f"Error: {err}")
                if sp is not None:
                    sp.fail(result.error)
                return

        build_name = f"build-{tag}"
        tree = self.driver.begin_build(base.name, build_name)
        config = base.config
        layers = list(base.layers)
        chain = hashlib.sha256(
            "".join(l.digest() for l in layers).encode()).hexdigest()

        env: dict[str, str] = dict(
            kv.split("=", 1) for kv in config.env if "=" in kv)
        workdir = config.workdir

        for i, inst in enumerate(instructions[1:], start=2):
            out(f"STEP {i}/{total}: {inst.kind} {inst.args}")
            chain = hashlib.sha256(
                (chain + inst.kind + inst.args).encode()).hexdigest()

            if inst.kind in ("ENV", "LABEL", "ARG"):
                pairs = split_env_args(inst.args)
                if inst.kind in ("ENV", "ARG"):
                    env.update(dict(pairs))
                    config = ImageConfig(
                        arch=config.arch,
                        env=tuple(f"{k}={v}" for k, v in env.items()),
                        cmd=config.cmd, entrypoint=config.entrypoint,
                        workdir=workdir, user=config.user,
                        labels=config.labels, history=config.history)
                else:
                    config = ImageConfig(
                        arch=config.arch, env=config.env, cmd=config.cmd,
                        entrypoint=config.entrypoint, workdir=workdir,
                        user=config.user,
                        labels=config.labels + tuple(pairs),
                        history=config.history)
                continue
            if inst.kind == "WORKDIR":
                workdir = inst.args
                continue
            if inst.kind in ("CMD", "ENTRYPOINT"):
                words = tuple(inst.shell_words())
                if inst.kind == "CMD":
                    config = ImageConfig(
                        arch=config.arch, env=config.env, cmd=words,
                        entrypoint=config.entrypoint, workdir=workdir,
                        user=config.user, labels=config.labels,
                        history=config.history)
                else:
                    config = ImageConfig(
                        arch=config.arch, env=config.env, cmd=config.cmd,
                        entrypoint=words, workdir=workdir, user=config.user,
                        labels=config.labels, history=config.history)
                continue
            if inst.kind in ("EXPOSE", "VOLUME", "USER", "SHELL"):
                continue  # recorded nowhere; harmless for HPC images

            with self._inst_span(i, inst.kind, inst.args) as sp:
                if inst.kind in ("COPY", "ADD"):
                    status = self._do_copy(inst, tree, out)
                elif inst.kind == "RUN":
                    if self.layers_cache and chain in self._cache:
                        out("--> Using cache")
                        result.cache_hits += 1
                        entry = self._cache[chain]
                        # apply the cached diff instead of re-running the
                        # command
                        entry.layer.apply_diff(self.driver.sys, tree)
                        layers.append(entry.layer)
                        continue
                    status = self._do_run(inst, tree, env, workdir, out)
                else:  # pragma: no cover - parser prevents this
                    status = 0

                if status != 0:
                    result.error = (f"building at STEP \"{inst.kind} "
                                    f"{inst.args}\": exit status {status}")
                    out(f"Error: {result.error}")
                    if sp is not None:
                        sp.fail(result.error)
                    return
                result.instructions_run += 1
                layer = self.driver.commit(tree, message=inst.args)
                layers.append(layer)
                if self.layers_cache and inst.kind == "RUN":
                    self._cache[chain] = _CacheEntry(layer=layer,
                                                     config=config)

        config = config.with_history(f"built from {base.name}")
        out(f"COMMIT {tag}")
        self.images[tag] = LocalImage(tag, config, layers, tree)
        result.success = True

    def _do_copy(self, inst: Instruction, tree: str, out) -> int:
        parts = inst.args.split()
        if len(parts) != 2:
            out(f"Error: {inst.kind} needs SRC DST")
            return 1
        src, dst = parts
        user_sys = Syscalls(self.user_proc)
        try:
            data = user_sys.read_file(src)
        except KernelError as err:
            out(f"Error: {inst.kind} {src}: {err.strerror}")
            return 1
        target = dst if not dst.endswith("/") else \
            dst + src.rsplit("/", 1)[-1]
        ssys = self.driver.sys
        ssys.mkdir_p((tree + target).rsplit("/", 1)[0])
        ssys.write_file(tree + target, data)
        return 0

    def _do_run(self, inst: Instruction, tree: str,
                env: dict[str, str], workdir: str, out) -> int:
        try:
            ctx = enter_container(
                self.user_proc, tree,
                "type3" if self.unprivileged else "type2",
                dev_fs=self.machine.dev_fs,
                shadow=self.machine.shadow,
                env=env, workdir=workdir or "/",
                join_userns=self._storage_proc.cred.userns,
                comm="buildah-run",
            )
        except ContainerError as err:
            out(f"Error: {err}")
            return 125
        if self.ignore_chown_errors:
            ctx = ctx.child(sys=IgnoreChownSyscalls(ctx.sys))
        sink = OutputSink()
        run_ctx = ctx.child(stdout=sink, stderr=sink)
        status = execute(run_ctx, inst.shell_words())
        for line in sink.lines():
            out(line)
        return status

    # -- push / export -----------------------------------------------------------------

    def push(self, local_name: str, dest: str) -> Manifest:
        """Push a local image to a registry, as the multi-layer OCI image
        Buildah produces (unchanged layers are deduplicated server-side)."""
        try:
            img = self.images[local_name]
        except KeyError:
            raise BuildError(f"no local image {local_name!r}")
        ref = ImageRef.parse(dest)
        return self._registry_for(ref).push(ref, img.config, img.layers)

    def image_tree(self, name: str) -> str:
        return self.images[name].tree_path
