"""The Podman command-line front end.

§4: "the main design goals of rootless Podman are to have the same
command-line interface (CLI) as Docker ... many users can successfully
utilize Podman by ``alias docker=podman`` and use as expected."

``podman_cli(podman, argv)`` therefore accepts Docker's argument syntax for
the common verbs; ``docker_cli`` is literally the same function bound to a
DockerDaemon-backed adapter, so the alias claim is testable.
"""

from __future__ import annotations


from ..errors import KernelError, ReproError
from ..kernel import Syscalls
from .podman import Podman

__all__ = ["podman_cli"]


def podman_cli(podman: Podman, argv: list[str]) -> tuple[int, str]:
    """Dispatch a Docker-style command line; returns (status, output)."""
    if not argv:
        return 125, "Error: missing command (build|run|pull|push|images)"
    command, *args = argv

    if command == "build":
        tag = ""
        dockerfile_path = "Dockerfile"
        i = 0
        while i < len(args):
            a = args[i]
            if a in ("-t", "--tag"):
                i += 1
                tag = args[i]
            elif a in ("-f", "--file"):
                i += 1
                dockerfile_path = args[i]
            i += 1
        if not tag:
            return 125, "Error: build requires -t TAG"
        user_sys = Syscalls(podman.user_proc)
        try:
            dockerfile = user_sys.read_file(dockerfile_path).decode()
        except KernelError as err:
            return 125, f"Error: {dockerfile_path}: {err.strerror}"
        result = podman.build(dockerfile, tag)
        return (0 if result.success else 125), result.text

    if command == "run":
        i = 0
        while i < len(args) and args[i].startswith("-"):
            if args[i] in ("-v", "--volume", "-e", "--env", "--name"):
                i += 1  # skip the option's value
            i += 1
        if i >= len(args):
            return 125, "Error: run requires an image"
        image, cmd = args[i], list(args[i + 1:])
        out = podman.run(image, cmd)
        return out.status, out.output

    if command == "pull":
        if not args:
            return 125, "Error: pull requires an image reference"
        try:
            img = podman.pull(args[0])
        except ReproError as err:
            return 125, f"Error: {err}"
        return 0, f"Pulled {img.name}"

    if command == "push":
        if len(args) < 2:
            return 125, "Error: push requires IMAGE DESTINATION"
        try:
            manifest = podman.push(args[0], args[1])
        except ReproError as err:
            return 125, f"Error: {err}"
        return 0, (f"Pushed {args[1]} "
                   f"({manifest.layer_count} layers)")

    if command == "images":
        lines = ["REPOSITORY TAG"]
        for name in sorted(podman.buildah.images):
            repo, _, tag = name.rpartition(":")
            lines.append(f"{repo or name} {tag or 'latest'}")
        return 0, "\n".join(lines)

    if command == "unshare":
        # `podman unshare cat /proc/self/uid_map` — the Figure 4 check
        if args[:1] == ["cat"] and args[1:2] == ["/proc/self/uid_map"]:
            return 0, podman.uid_map_text()
        return 125, "Error: only 'unshare cat /proc/self/uid_map' supported"

    return 125, f"Error: unknown command {command!r}"
