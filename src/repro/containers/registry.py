"""An OCI-compliant container registry (blobs + manifests + tags).

"A container registry is important to leverage in this workflow as it
provides persistence to container images which could help in portability,
debugging with old versions, or general future reproducibility" (paper
§4.2) — so the registry keeps every manifest it has ever seen, supports
content-addressed blob dedup, and tracks transfer statistics for the layer
benchmarks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional

from ..archive import TarArchive
from ..errors import RegistryError
from ..obs.trace import maybe_span
from .oci import ImageConfig, ImageRef, Manifest

__all__ = ["Registry", "TransferStats"]


@dataclass
class TransferStats:
    """Bytes and blob counts moved over the wire."""

    blobs_pushed: int = 0
    blobs_push_skipped: int = 0  # dedup hits: layer already present
    bytes_pushed: int = 0
    blobs_pulled: int = 0
    bytes_pulled: int = 0


class Registry:
    """One registry service (e.g. the GitLab Container Registry of §4.2)."""

    def __init__(self, name: str):
        self.name = name
        self._blobs: dict[str, bytes] = {}
        # (repo, tag) -> arch -> Manifest  (a minimal OCI manifest list)
        self._manifests: dict[tuple[str, str], dict[str, Manifest]] = {}
        self._manifest_log: list[tuple[str, str, str]] = []  # persistence
        self._policies: dict[str, bool] = {}  # repo -> require_flattened
        self.stats = TransferStats()
        #: Optional :class:`~repro.obs.SyscallTracer` — registries have no
        #: kernel of their own, so callers attach one explicitly to get
        #: push/pull spans.
        self.tracer = None

    # -- blob plumbing --------------------------------------------------------------

    def has_blob(self, digest: str) -> bool:
        return digest in self._blobs

    def _put_blob(self, blob: bytes) -> str:
        digest = "sha256:" + hashlib.sha256(blob).hexdigest()
        if digest in self._blobs:
            self.stats.blobs_push_skipped += 1
        else:
            self._blobs[digest] = blob
            self.stats.blobs_pushed += 1
            self.stats.bytes_pushed += len(blob)
        return digest

    def _get_blob(self, digest: str) -> bytes:
        try:
            blob = self._blobs[digest]
        except KeyError:
            raise RegistryError(f"{self.name}: no blob {digest[:19]}...")
        self.stats.blobs_pulled += 1
        self.stats.bytes_pulled += len(blob)
        return blob

    # -- ownership policy (§6.2.5 proposed OCI extension) -------------------------------

    def set_repo_policy(self, repository: str, *,
                        require_flattened: bool) -> None:
        """§6.2.5: 'explicit marking of images to disallow, allow, or
        require them to be ownership-flattened' — enforced per repository."""
        self._policies[repository] = require_flattened

    def _check_policy(self, ref: ImageRef,
                      layers: list[TarArchive]) -> None:
        if not self._policies.get(ref.repository, False):
            return
        for layer in layers:
            for m in layer:
                if (m.uid, m.gid) != (0, 0) or m.mode & 0o6000:
                    raise RegistryError(
                        f"{self.name}: repository {ref.repository!r} "
                        f"requires ownership-flattened images; member "
                        f"{m.path!r} is {m.uid}:{m.gid} mode {m.mode:o}")

    # -- push / pull ------------------------------------------------------------------

    def push(self, ref: ImageRef | str, config: ImageConfig,
             layers: Iterable[TarArchive]) -> Manifest:
        """Push an image: layers become content-addressed blobs (already-
        present layers are not re-sent, like real registries)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        layers = list(layers)
        with maybe_span(self.tracer,
                        f"push {ref.repository}:{ref.tag}", "push",
                        registry=self.name, layers=len(layers)):
            self._check_policy(ref, layers)
            digests = tuple(self._put_blob(layer.serialize())
                            for layer in layers)
            if not digests:
                raise RegistryError("cannot push an image with no layers")
            manifest = Manifest(config=config, layers=digests)
            variants = self._manifests.setdefault(
                (ref.repository, ref.tag), {})
            variants[config.arch] = manifest
            self._manifest_log.append((ref.repository, ref.tag,
                                       manifest.digest()))
        return manifest

    def pull(self, ref: ImageRef | str, *, arch: Optional[str] = None
             ) -> tuple[ImageConfig, list[TarArchive]]:
        """Pull an image (optionally a specific architecture variant);
        returns (config, layers base-first)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        with maybe_span(self.tracer,
                        f"pull {ref.repository}:{ref.tag}", "pull",
                        registry=self.name):
            manifest = self.manifest(ref, arch=arch)
            layers = [TarArchive.deserialize(self._get_blob(d))
                      for d in manifest.layers]
        return manifest.config, layers

    def manifest(self, ref: ImageRef | str, *,
                 arch: Optional[str] = None) -> Manifest:
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        try:
            variants = self._manifests[(ref.repository, ref.tag)]
        except KeyError:
            raise RegistryError(
                f"{self.name}: manifest unknown: {ref.repository}:{ref.tag}")
        if arch is not None:
            if arch in variants:
                return variants[arch]
            if len(variants) == 1:
                # single-arch manifest: served regardless of the requested
                # platform (real clients warn and proceed — the mismatch
                # surfaces later as ENOEXEC, the §4.2 laptop trap)
                return next(iter(variants.values()))
            raise RegistryError(
                f"{self.name}: {ref.repository}:{ref.tag} has no "
                f"{arch} variant (available: {sorted(variants)})")
        if len(variants) == 1:
            return next(iter(variants.values()))
        raise RegistryError(
            f"{self.name}: {ref.repository}:{ref.tag} is multi-arch "
            f"({sorted(variants)}); specify an architecture")

    def has(self, ref: ImageRef | str) -> bool:
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        return (ref.repository, ref.tag) in self._manifests

    def tags(self, repository: str) -> list[str]:
        return sorted(t for (r, t) in self._manifests if r == repository)

    def repositories(self) -> list[str]:
        return sorted({r for (r, _) in self._manifests})

    def history(self, repository: str) -> list[str]:
        """All manifest digests ever pushed to *repository* (old versions
        stay reachable — the §4.2 persistence property)."""
        return [d for (r, _, d) in self._manifest_log if r == repository]

    def storage_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())
