"""An OCI-compliant container registry (blobs + manifests + tags).

"A container registry is important to leverage in this workflow as it
provides persistence to container images which could help in portability,
debugging with old versions, or general future reproducibility" (paper
§4.2) — so the registry keeps every manifest it has ever seen, supports
content-addressed blob dedup, and tracks transfer statistics for the layer
benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..archive import TarArchive
from ..cas.store import CasError, ContentStore, blob_digest
from ..errors import RegistryError
from ..obs.trace import maybe_span
from .oci import ImageConfig, ImageRef, Manifest

__all__ = ["Registry", "TransferStats"]


@dataclass
class TransferStats:
    """Bytes and blob counts moved over the wire."""

    blobs_pushed: int = 0
    blobs_push_skipped: int = 0  # dedup hits: layer already present
    bytes_pushed: int = 0
    bytes_push_skipped: int = 0  # bytes the dedup saved on the wire
    blobs_pulled: int = 0
    bytes_pulled: int = 0
    blobs_pull_skipped: int = 0  # puller already held the blob locally
    bytes_pull_skipped: int = 0  # egress bytes the local CAS saved

    def as_dict(self) -> dict:
        return {
            "blobs_pushed": self.blobs_pushed,
            "blobs_push_skipped": self.blobs_push_skipped,
            "bytes_pushed": self.bytes_pushed,
            "bytes_push_skipped": self.bytes_push_skipped,
            "blobs_pulled": self.blobs_pulled,
            "bytes_pulled": self.bytes_pulled,
            "blobs_pull_skipped": self.blobs_pull_skipped,
            "bytes_pull_skipped": self.bytes_pull_skipped,
        }


class Registry:
    """One registry service (e.g. the GitLab Container Registry of §4.2).

    Blob bytes live in a :class:`~repro.cas.ContentStore`; passing a
    shared store to several registries (or to storage drivers) dedups
    identical layers across images, repositories, and services.  Every
    blob this registry accepts is refcounted so a bounded shared store
    can never evict it — registry persistence is the §4.2 property.
    """

    def __init__(self, name: str, *, store: Optional[ContentStore] = None):
        self.name = name
        self.store = store if store is not None else ContentStore()
        self._owned: set[str] = set()  # digests this registry references
        # (repo, tag) -> arch -> Manifest  (a minimal OCI manifest list)
        self._manifests: dict[tuple[str, str], dict[str, Manifest]] = {}
        self._manifest_log: list[tuple[str, str, str]] = []  # persistence
        # (repo, tag) -> cache-manifest blob digest (BuildKit-style)
        self._cache_manifests: dict[tuple[str, str], str] = {}
        self._policies: dict[str, bool] = {}  # repo -> require_flattened
        # (repo, tag) -> detached signatures (one per signed manifest
        # variant; verification matches on the served manifest's digest)
        self._signatures: dict[tuple[str, str], list] = {}
        # (repo, tag) -> attestation kind -> blob digest
        self._attestations: dict[tuple[str, str], dict[str, str]] = {}
        self.stats = TransferStats()
        #: Optional :class:`~repro.supply.Signer` — when set, every push
        #: records a signature over the manifest digest (sign-on-push).
        self.signer = None
        #: Optional :class:`~repro.supply.PolicyGate` — when set, every
        #: pull verifies the served manifest's signature and raises
        #: :class:`~repro.errors.SupplyPolicyError` on failure.
        self.policy_gate = None
        #: Optional :class:`~repro.obs.SyscallTracer` — registries have no
        #: kernel of their own, so callers attach one explicitly to get
        #: push/pull spans.
        self.tracer = None
        #: Optional :class:`~repro.sim.RegistryFaultInjector` — when set,
        #: ``fetch_blob``/``push`` raise ``TransientRegistryError`` inside
        #: the plan's flake windows and callers retry per their policy.
        self.fault_injector = None

    # -- blob plumbing --------------------------------------------------------------

    def has_blob(self, digest: str) -> bool:
        return self.store.has(digest)

    def _put_blob(self, blob: bytes) -> str:
        digest = blob_digest(blob)
        if self.store.has(digest):
            # dedup hit: the bytes are already at rest (possibly pushed to
            # another repo, or another registry on a shared store)
            self.stats.blobs_push_skipped += 1
            self.stats.bytes_push_skipped += len(blob)
        else:
            self.store.put(blob)
            self.stats.blobs_pushed += 1
            self.stats.bytes_pushed += len(blob)
        if digest not in self._owned:
            self._owned.add(digest)
            self.store.incref(digest)
        return digest

    def _get_blob(self, digest: str) -> bytes:
        try:
            blob = self.store.get(digest)
        except CasError:
            raise RegistryError(f"{self.name}: no blob {digest[:19]}...")
        self.stats.blobs_pulled += 1
        self.stats.bytes_pulled += len(blob)
        return blob

    def fetch_blob(self, digest: str, *,
                   local_store: Optional[ContentStore] = None) -> bytes:
        """Pull one blob by digest.  If the caller's node-local
        *local_store* already holds the bytes, they are served from there
        and the wire transfer is skipped (counted as a pull-skip — the
        mirror of push-side dedup).  A freshly pulled blob is dropped into
        *local_store* so the next puller on that node skips too."""
        if local_store is not None and local_store.has(digest):
            blob = local_store.get(digest)
            self.stats.blobs_pull_skipped += 1
            self.stats.bytes_pull_skipped += len(blob)
            return blob
        if self.fault_injector is not None:
            self.fault_injector.check("fetch_blob")
        blob = self._get_blob(digest)
        if local_store is not None:
            local_store.put(blob)
        return blob

    def blob_size(self, digest: str) -> int:
        """Size at rest of one blob (no transfer is counted)."""
        if not self.store.has(digest):
            raise RegistryError(f"{self.name}: no blob {digest[:19]}...")
        return self.store.size_of(digest)

    # -- fleet plumbing: shard-side primitives the RegistryFleet composes ----------------

    def put_blob(self, blob: bytes) -> str:
        """Accept one raw blob (a fleet shard receiving its placement);
        counted like a layer push, dedup included."""
        return self._put_blob(blob)

    def adopt_blob(self, digest: str) -> None:
        """Register an already-resident blob as owned — the peer-to-peer
        replica/rebalance fill path, whose bytes arrive via the broadcast
        fabric and are accounted there, so *no* transfer is counted here
        (the zero-double-counting invariant)."""
        if not self.store.has(digest):
            raise RegistryError(
                f"{self.name}: cannot adopt absent blob {digest[:19]}...")
        if digest not in self._owned:
            self._owned.add(digest)
            self.store.incref(digest)

    def drop_blob(self, digest: str) -> bool:
        """Release ownership of one blob (rebalanced away); the bytes are
        reclaimed unless another owner on a shared store still holds a
        reference.  Returns whether the bytes were removed."""
        if digest not in self._owned:
            return False
        self._owned.discard(digest)
        self.store.decref(digest)
        return self.store.discard(digest)

    def owned_digests(self) -> list[str]:
        """Every blob digest this registry owns (sorted)."""
        return sorted(self._owned)

    def put_manifest(self, ref: ImageRef | str, manifest: Manifest) -> None:
        """Record a manifest whose layer blobs were placed separately
        (fleet metadata mirroring — no blob transfer happens here)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        variants = self._manifests.setdefault((ref.repository, ref.tag), {})
        variants[manifest.config.arch] = manifest
        self._manifest_log.append((ref.repository, ref.tag,
                                   manifest.digest()))

    def manifest_variants(self, ref: ImageRef | str) -> dict[str, Manifest]:
        """All architecture variants recorded for *ref* (may be empty)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        return dict(self._manifests.get((ref.repository, ref.tag), {}))

    def put_cache_manifest(self, ref: ImageRef | str, digest: str) -> None:
        """Record a cache-manifest pointer placed separately (fleet
        metadata mirroring)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        self._cache_manifests[(ref.repository, ref.tag)] = digest

    def cache_manifest_digest(self, ref: ImageRef | str) -> str:
        """The cache-manifest blob digest recorded for *ref*."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        try:
            return self._cache_manifests[(ref.repository, ref.tag)]
        except KeyError:
            raise RegistryError(
                f"{self.name}: cache manifest unknown: "
                f"{ref.repository}:{ref.tag}")

    def mirror_metadata_from(self, other: "Registry") -> None:
        """Copy *other*'s manifest, cache-manifest, signature, and
        attestation tables (a shard joining — or rejoining — the fleet
        mirrors metadata before serving).  Blob bytes are NOT copied —
        placement moves those."""
        for (repo, tag), variants in other._manifests.items():
            mine = self._manifests.setdefault((repo, tag), {})
            mine.update(variants)
        self._manifest_log.extend(
            e for e in other._manifest_log if e not in self._manifest_log)
        self._cache_manifests.update(other._cache_manifests)
        for key, sigs in other._signatures.items():
            mine_sigs = self._signatures.setdefault(key, [])
            mine_sigs.extend(s for s in sigs if s not in mine_sigs)
        for key, kinds in other._attestations.items():
            self._attestations.setdefault(key, {}).update(kinds)

    # -- supply-chain metadata: signatures + attestations --------------------------------

    def record_signature(self, ref: ImageRef | str, signature) -> None:
        """Attach a detached signature to *ref* (fleet metadata
        mirroring, or sign-on-push).  Signatures accumulate — one per
        signed manifest variant; verification matches on payload."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        sigs = self._signatures.setdefault((ref.repository, ref.tag), [])
        if signature not in sigs:
            sigs.append(signature)

    def signatures_of(self, ref: ImageRef | str) -> list:
        """Every signature recorded for *ref* (may be empty)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        return list(self._signatures.get((ref.repository, ref.tag), ()))

    def put_attestations(self, ref: ImageRef | str,
                         blobs: dict[str, bytes]) -> dict[str, str]:
        """Accept attestation blobs (SBOM, provenance) for *ref*: each
        becomes a content-addressed blob, counted like a layer push
        (dedup included); returns kind -> digest."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        digests = {kind: self._put_blob(blob)
                   for kind, blob in sorted(blobs.items())}
        self._attestations.setdefault(
            (ref.repository, ref.tag), {}).update(digests)
        return digests

    def record_attestations(self, ref: ImageRef | str,
                            digests: dict[str, str]) -> None:
        """Record attestation pointers whose blobs were placed separately
        (fleet metadata mirroring — no blob transfer happens here)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        self._attestations.setdefault(
            (ref.repository, ref.tag), {}).update(digests)

    def attestation_digests(self, ref: ImageRef | str) -> dict[str, str]:
        """kind -> blob digest of every attestation on *ref*."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        return dict(self._attestations.get((ref.repository, ref.tag), {}))

    def fetch_attestation(self, ref: ImageRef | str, kind: str) -> bytes:
        """One attestation statement, read at rest (no transfer counted
        — audits run registry-side, not over the wire)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        digests = self._attestations.get((ref.repository, ref.tag), {})
        if kind not in digests:
            raise RegistryError(
                f"{self.name}: no {kind} attestation for "
                f"{ref.repository}:{ref.tag}")
        return self.blob_at_rest(digests[kind])

    def blob_at_rest(self, digest: str) -> bytes:
        """One blob's bytes without counting a transfer (audit-side
        reads; clients fetching over the wire use :meth:`fetch_blob`)."""
        try:
            return self.store.get(digest)
        except CasError:
            raise RegistryError(f"{self.name}: no blob {digest[:19]}...")

    def _count_supply(self, event: str) -> None:
        if self.tracer is not None:
            self.tracer.metrics.count_supply(event)

    def _verify_served(self, ref: ImageRef, manifest: Manifest) -> None:
        """The pull-time supply check: count unsigned pulls, and when a
        policy gate is attached, verify the served manifest's signature
        (raising :class:`~repro.errors.SupplyPolicyError`)."""
        if not self._signatures.get((ref.repository, ref.tag)):
            self._count_supply("unsigned_pull")
        if self.policy_gate is not None:
            self.policy_gate.verify_pull(self, ref, manifest)

    # -- ownership policy (§6.2.5 proposed OCI extension) -------------------------------

    def set_repo_policy(self, repository: str, *,
                        require_flattened: bool) -> None:
        """§6.2.5: 'explicit marking of images to disallow, allow, or
        require them to be ownership-flattened' — enforced per repository."""
        self._policies[repository] = require_flattened

    def _check_policy(self, ref: ImageRef,
                      layers: list[TarArchive]) -> None:
        if not self._policies.get(ref.repository, False):
            return
        for layer in layers:
            for m in layer:
                if (m.uid, m.gid) != (0, 0) or m.mode & 0o6000:
                    raise RegistryError(
                        f"{self.name}: repository {ref.repository!r} "
                        f"requires ownership-flattened images; member "
                        f"{m.path!r} is {m.uid}:{m.gid} mode {m.mode:o}")

    # -- push / pull ------------------------------------------------------------------

    def push(self, ref: ImageRef | str, config: ImageConfig,
             layers: Iterable[TarArchive]) -> Manifest:
        """Push an image: layers become content-addressed blobs (already-
        present layers are not re-sent, like real registries)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        layers = list(layers)
        with maybe_span(self.tracer,
                        f"push {ref.repository}:{ref.tag}", "push",
                        registry=self.name, layers=len(layers)):
            if self.fault_injector is not None:
                self.fault_injector.check("push")
            self._check_policy(ref, layers)
            digests = tuple(self._put_blob(layer.serialize())
                            for layer in layers)
            if not digests:
                raise RegistryError("cannot push an image with no layers")
            manifest = Manifest(config=config, layers=digests)
            variants = self._manifests.setdefault(
                (ref.repository, ref.tag), {})
            variants[config.arch] = manifest
            self._manifest_log.append((ref.repository, ref.tag,
                                       manifest.digest()))
            if self.signer is not None:
                self.record_signature(ref,
                                      self.signer.sign(manifest.digest()))
                self._count_supply("signed")
        return manifest

    def pull(self, ref: ImageRef | str, *, arch: Optional[str] = None,
             local_store: Optional[ContentStore] = None
             ) -> tuple[ImageConfig, list[TarArchive]]:
        """Pull an image (optionally a specific architecture variant);
        returns (config, layers base-first).  With *local_store* (the
        pulling node's CAS), layer blobs already held locally are not
        re-sent over the wire — the pull-side mirror of push dedup."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        with maybe_span(self.tracer,
                        f"pull {ref.repository}:{ref.tag}", "pull",
                        registry=self.name):
            manifest = self.manifest(ref, arch=arch)
            self._verify_served(ref, manifest)
            layers = [TarArchive.deserialize(
                          self.fetch_blob(d, local_store=local_store))
                      for d in manifest.layers]
        return manifest.config, layers

    def image_blob_digests(self, ref: ImageRef | str, *,
                           arch: Optional[str] = None) -> list[str]:
        """The layer blob digests an image pull would transfer, base
        first — what a deploy distributor needs to plan with."""
        return list(self.manifest(ref, arch=arch).layers)

    def manifest(self, ref: ImageRef | str, *,
                 arch: Optional[str] = None) -> Manifest:
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        try:
            variants = self._manifests[(ref.repository, ref.tag)]
        except KeyError:
            raise RegistryError(
                f"{self.name}: manifest unknown: {ref.repository}:{ref.tag}")
        if arch is not None:
            if arch in variants:
                return variants[arch]
            if len(variants) == 1:
                # single-arch manifest: served regardless of the requested
                # platform (real clients warn and proceed — the mismatch
                # surfaces later as ENOEXEC, the §4.2 laptop trap)
                return next(iter(variants.values()))
            raise RegistryError(
                f"{self.name}: {ref.repository}:{ref.tag} has no "
                f"{arch} variant (available: {sorted(variants)})")
        if len(variants) == 1:
            return next(iter(variants.values()))
        raise RegistryError(
            f"{self.name}: {ref.repository}:{ref.tag} is multi-arch "
            f"({sorted(variants)}); specify an architecture")

    # -- build-cache manifests (BuildKit-style cache export) ---------------------------

    def push_cache(self, ref: ImageRef | str, manifest: bytes,
                   blobs: Iterable[bytes]) -> str:
        """Accept a build-cache export: the diff blobs plus the JSON cache
        manifest naming them, tracked under *ref* like an OCI artifact.
        Already-present blobs are deduplicated like layers; returns the
        manifest blob digest."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        blobs = list(blobs)
        with maybe_span(self.tracer,
                        f"push-cache {ref.repository}:{ref.tag}", "push",
                        registry=self.name, blobs=len(blobs)):
            for blob in blobs:
                self._put_blob(blob)
            digest = self._put_blob(manifest)
            self._cache_manifests[(ref.repository, ref.tag)] = digest
        return digest

    def pull_cache(self, ref: ImageRef | str, *,
                   local_store: Optional[ContentStore] = None
                   ) -> tuple[bytes, Callable[[str], bytes]]:
        """Fetch a cache manifest pushed by :meth:`push_cache`; returns
        ``(manifest_bytes, fetch)`` where *fetch* retrieves diff blobs by
        digest (and counts them as pulled, or as pull-skips when
        *local_store* already holds them)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        try:
            digest = self._cache_manifests[(ref.repository, ref.tag)]
        except KeyError:
            raise RegistryError(
                f"{self.name}: cache manifest unknown: "
                f"{ref.repository}:{ref.tag}")
        with maybe_span(self.tracer,
                        f"pull-cache {ref.repository}:{ref.tag}", "pull",
                        registry=self.name):
            manifest = self.fetch_blob(digest, local_store=local_store)

        def fetch(d: str) -> bytes:
            return self.fetch_blob(d, local_store=local_store)

        return manifest, fetch

    def cache_blob_digests(self, ref: ImageRef | str) -> list[str]:
        """Every blob a cache import of *ref* would transfer: the diff
        blobs the manifest names, then the manifest blob itself (no
        transfer is counted — this is planning data for a distributor)."""
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        try:
            digest = self._cache_manifests[(ref.repository, ref.tag)]
        except KeyError:
            raise RegistryError(
                f"{self.name}: cache manifest unknown: "
                f"{ref.repository}:{ref.tag}")
        manifest = json.loads(self.store.get(digest))
        diffs = [entry["diff"] for entry in manifest.get("records", ())]
        # preserve first-seen order, dedup (records may share diffs)
        seen: set[str] = set()
        ordered = [d for d in diffs if not (d in seen or seen.add(d))]
        return ordered + [digest]

    def has_cache(self, ref: ImageRef | str) -> bool:
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        return (ref.repository, ref.tag) in self._cache_manifests

    def has(self, ref: ImageRef | str) -> bool:
        if isinstance(ref, str):
            ref = ImageRef.parse(ref)
        return (ref.repository, ref.tag) in self._manifests

    def tags(self, repository: str) -> list[str]:
        return sorted(t for (r, t) in self._manifests if r == repository)

    def repositories(self) -> list[str]:
        return sorted({r for (r, _) in self._manifests})

    def history(self, repository: str) -> list[str]:
        """All manifest digests ever pushed to *repository* (old versions
        stay reachable — the §4.2 persistence property)."""
        return [d for (r, _, d) in self._manifest_log if r == repository]

    def storage_bytes(self) -> int:
        """Bytes at rest attributable to this registry's blobs.  On a
        shared store the sum over registries can exceed the store's
        physical size — that gap *is* the cross-service dedup saving."""
        return sum(self.store.size_of(d) for d in self._owned
                   if self.store.has(d))
