"""Container implementations and OCI plumbing.

Type I: :class:`~repro.containers.docker.DockerDaemon`.
Type II (and experimental unprivileged): :class:`~repro.containers.podman.Podman`
over :class:`~repro.containers.buildah.Buildah`.
Type III lives in :mod:`repro.core` (Charliecloud).
"""

from .buildah import Buildah, BuildResult, DEFAULT_REGISTRY, IgnoreChownSyscalls
from .docker import DAEMON_STARTUP_TICKS, DockerDaemon, DockerError
from .dockerfile import (
    Instruction,
    Stage,
    StageGraph,
    parse_dockerfile,
    parse_stage_graph,
    render_dockerfile,
    split_env_args,
    template_preamble_args,
    template_variables,
)
from .hpc_runtimes import Enroot, HpcRuntimeError, ShifterGateway
from .singularity import DefinitionFile, SifImage, Singularity, SingularityError
from .oci import ImageConfig, ImageRef, Manifest
from .podman import Podman, PodmanError, RunResult
from .podman_cli import podman_cli
from .registry import Registry, TransferStats
from .runtime import (
    ContainerError,
    CrunRuntime,
    PRIVILEGE_TYPES,
    RuncRuntime,
    enter_container,
)
from .storage import (
    DriverError,
    DriverStats,
    OverlayDriver,
    StorageDriver,
    VfsDriver,
    make_driver,
)

__all__ = [
    "Enroot",
    "HpcRuntimeError",
    "ShifterGateway",
    "DefinitionFile",
    "SifImage",
    "Singularity",
    "SingularityError",
    "Buildah",
    "BuildResult",
    "DEFAULT_REGISTRY",
    "IgnoreChownSyscalls",
    "DAEMON_STARTUP_TICKS",
    "DockerDaemon",
    "DockerError",
    "Instruction",
    "parse_dockerfile",
    "parse_stage_graph",
    "render_dockerfile",
    "Stage",
    "StageGraph",
    "split_env_args",
    "template_preamble_args",
    "template_variables",
    "ImageConfig",
    "ImageRef",
    "Manifest",
    "Podman",
    "PodmanError",
    "RunResult",
    "podman_cli",
    "Registry",
    "TransferStats",
    "ContainerError",
    "CrunRuntime",
    "PRIVILEGE_TYPES",
    "RuncRuntime",
    "enter_container",
    "DriverError",
    "DriverStats",
    "OverlayDriver",
    "StorageDriver",
    "VfsDriver",
    "make_driver",
]
