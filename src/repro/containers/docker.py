"""Docker: the Type I baseline (paper §3.1).

Characteristics the paper calls out, all modelled here:

* client–daemon execution model: containers are children of the daemon,
  not of the invoking shell — "undesirable for HPC because it is another
  service to manage/monitor, breaks process tracking by resource managers,
  and can introduce performance jitter";
* access to the ``docker`` command is equivalent to root "by design":
  any docker-group member can bind-mount / and own the host;
* no user namespace: root in the container is root on the host.
"""

from __future__ import annotations

from typing import Optional

from ..errors import BuildError, ReproError
from ..kernel import Process, Syscalls
from ..shell import OutputSink, execute
from .buildah import BuildResult, DEFAULT_REGISTRY, LocalImage
from .dockerfile import parse_dockerfile
from .oci import ImageRef
from .runtime import ContainerError, enter_container
from .storage import make_driver

__all__ = ["DockerDaemon", "DockerError", "DAEMON_STARTUP_TICKS"]

#: simulated ticks to start dockerd (service management overhead, §3.1)
DAEMON_STARTUP_TICKS = 150

#: simulated ticks for a fork-exec container start (podman/ch-run path)
FORKEXEC_STARTUP_TICKS = 2


class DockerError(ReproError):
    """Docker client/daemon failure."""


class DockerDaemon:
    """dockerd: runs as root, owns all container operations."""

    def __init__(self, machine, *, docker_group: Optional[set[int]] = None):
        self.machine = machine
        root = machine.kernel.init_process
        if root.cred.euid != 0:
            raise DockerError("dockerd must run as root")
        # The daemon is a long-running root service.
        self.daemon_proc = machine.kernel.spawn(parent=root, comm="dockerd")
        self.docker_group: set[int] = set(docker_group or ())
        self.images: dict[str, LocalImage] = {}
        sys0 = Syscalls(self.daemon_proc)
        self.driver = make_driver("overlay", sys0, "/var/lib/docker/overlay2")
        self.startup_ticks = DAEMON_STARTUP_TICKS
        for _ in range(DAEMON_STARTUP_TICKS):
            machine.kernel.now()

    # -- the security boundary (or lack of one) -----------------------------------

    def _authorize(self, caller: Process) -> None:
        """Socket access check: root or docker group only.  Passing it grants
        root-equivalent power (§3.1: 'equivalent to root by design')."""
        if caller.cred.euid == 0:
            return
        if caller.cred.euid in self.docker_group or \
                self.docker_group & set(caller.cred.groups):
            return
        raise DockerError(
            "Got permission denied while trying to connect to the Docker "
            "daemon socket")

    # -- operations (all executed BY THE DAEMON, as root) ---------------------------

    def pull(self, caller: Process, ref_text: str) -> LocalImage:
        self._authorize(caller)
        ref = ImageRef.parse(ref_text)
        name = str(ref)
        if name in self.images:
            return self.images[name]
        net = self.machine.kernel.network
        if net is None:
            raise DockerError("no network")
        config, layers = net.registry(ref.registry or DEFAULT_REGISTRY
                                      ).pull(ref, arch=self.machine.arch)
        path = self.driver.unpack_image(name, layers, preserve_owner=True)
        img = LocalImage(name, config, list(layers), path)
        self.images[name] = img
        return img

    def build(self, caller: Process, dockerfile: str, tag: str
              ) -> BuildResult:
        """``docker build``: every RUN executes as host root (Type I)."""
        self._authorize(caller)
        result = BuildResult(tag=tag, success=False)
        out = result.transcript.append
        try:
            instructions = parse_dockerfile(dockerfile)
        except BuildError as err:
            result.error = str(err)
            out(f"ERROR: {err}")
            return result
        base_ref = instructions[0].args.split()[0]
        out(f"Step 1/{len(instructions)} : FROM {base_ref}")
        base = self.pull(caller, base_ref)
        tree = self.driver.begin_build(base.name, f"build-{tag}")
        layers = list(base.layers)
        config = base.config
        env = dict(kv.split("=", 1) for kv in config.env if "=" in kv)
        for i, inst in enumerate(instructions[1:], start=2):
            out(f"Step {i}/{len(instructions)} : {inst.kind} {inst.args}")
            if inst.kind != "RUN":
                continue
            try:
                ctx = enter_container(self.daemon_proc, tree, "type1",
                                      dev_fs=self.machine.dev_fs, env=env,
                                      new_pid_ns=True, comm="docker-run")
            except ContainerError as err:
                result.error = str(err)
                out(f"ERROR: {err}")
                return result
            sink = OutputSink()
            status = execute(ctx.child(stdout=sink, stderr=sink),
                             inst.shell_words())
            for line in sink.lines():
                out(line)
            if status != 0:
                result.error = (f"The command '{' '.join(inst.shell_words())}'"
                                f" returned a non-zero code: {status}")
                out(f"ERROR: {result.error}")
                return result
            result.instructions_run += 1
            layers.append(self.driver.commit(tree))
        out(f"Successfully tagged {tag}")
        self.images[tag] = LocalImage(tag, config, layers, tree)
        result.success = True
        return result

    def run(self, caller: Process, image: str, argv: list[str], *,
            binds: Optional[list[tuple[str, str]]] = None) -> tuple[int, str]:
        """``docker run [-v host:ctr]``: the container is a child of the
        daemon and runs as host root."""
        self._authorize(caller)
        img = self.images.get(image)
        if img is None:
            img = self.pull(caller, image)
        ctx = enter_container(self.daemon_proc, img.tree_path, "type1",
                              dev_fs=self.machine.dev_fs, new_pid_ns=True,
                              comm="docker-ctr")
        for host_path, ctr_path in binds or ():
            # Bind-mounting host paths with a root runtime: the §3.1 hazard.
            src = self.machine.kernel.init_process.mnt_ns.resolve(
                host_path, self.daemon_proc.cred)
            ctx.proc.mnt_ns.add_mount(ctr_path, src.fs,
                                      root_ino=src.inode.ino)
        sink = OutputSink()
        status = execute(ctx.child(stdout=sink, stderr=sink), argv)
        return status, sink.text()

    def container_parent_pid(self, ctx_proc: Process) -> int:
        """Containers descend from dockerd, not the user's shell (§3.1)."""
        return self.daemon_proc.pid
