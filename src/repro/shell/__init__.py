"""Mini POSIX shell + simulated userland.

``run_shell(ctx, text)`` is the ``/bin/sh -c`` of the simulation; userland
binaries are Python callables looked up through the executable inode's
``exe_impl`` field (see :mod:`repro.shell.registry`).
"""

from . import binaries  # noqa: F401  (registers all binary impls)
from .context import ExecContext, OutputSink
from .executor import execute, find_program
from .interp import Interpreter, ShellExit, render_argv, run_shell
from .lexer import ShellSyntaxError, tokenize
from .parser import parse
from .registry import binary, get_binary, has_binary

__all__ = [
    "ExecContext",
    "OutputSink",
    "execute",
    "find_program",
    "Interpreter",
    "ShellExit",
    "render_argv",
    "run_shell",
    "ShellSyntaxError",
    "tokenize",
    "parse",
    "binary",
    "get_binary",
    "has_binary",
]
