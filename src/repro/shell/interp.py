"""The mini-shell interpreter.

Implements the POSIX-sh subset that distribution tooling and ch-image's
--force initialization steps actually use: ``set -ex`` tracing/errexit,
``if``, ``!``, ``&&``/``||``, pipelines, redirections, globbing, and the
standard special builtins.
"""

from __future__ import annotations

from ..errors import KernelError
from .ast import (
    AndOr,
    Command,
    CommandList,
    IfClause,
    Pipeline,
    SimpleCommand,
)
from .context import ExecContext, OutputSink
from .executor import execute, find_program
from .expand import expand_word, expand_words
from .parser import ShellSyntaxError, parse

__all__ = ["Interpreter", "ShellExit", "run_shell", "render_argv"]


class ShellExit(Exception):
    """Raised by ``exit`` and by ``set -e`` aborts."""

    def __init__(self, status: int):
        self.status = status
        super().__init__(f"exit {status}")


def render_argv(argv: list[str]) -> str:
    """Render a command for ``set -x`` tracing."""
    out = []
    for a in argv:
        if a == "" or any(c in a for c in " \t\n'\"\\$&|;<>*?[]()"):
            out.append("'" + a.replace("'", "'\\''") + "'")
        else:
            out.append(a)
    return " ".join(out)


class Interpreter:
    """One shell invocation (one ``/bin/sh -c`` or one script)."""

    def __init__(self, ctx: ExecContext):
        self.ctx = ctx
        self.opt_errexit = False
        self.opt_xtrace = False
        self.last_status = 0
        self.positional: list[str] = []

    def set_positional(self, argv: list[str]) -> None:
        self.positional = list(argv)

    # -- entry points ----------------------------------------------------------------

    def run(self, text: str) -> int:
        try:
            ast = parse(text)
        except ShellSyntaxError as err:
            self.ctx.stderr.writeline(f"/bin/sh: syntax error: {err}")
            return 2
        try:
            return self.exec_list(ast, safe=False)
        except ShellExit as ex:
            return ex.status

    # -- variable view ------------------------------------------------------------------

    def _env_view(self) -> dict[str, str]:
        view = dict(self.ctx.env)
        view["?"] = str(self.last_status)
        view["#"] = str(max(0, len(self.positional) - 1))
        for i, val in enumerate(self.positional[:10]):
            view[str(i)] = val
        return view

    # -- execution ----------------------------------------------------------------------

    def exec_list(self, lst: CommandList, *, safe: bool) -> int:
        status = 0
        for andor in lst.items:
            status = self.exec_andor(andor, safe=safe)
        return status

    def exec_andor(self, andor: AndOr, *, safe: bool) -> int:
        # Every pipeline except the last is "tested" (immune to set -e).
        status = self.exec_pipeline(
            andor.items[0], safe=safe or bool(andor.ops)
        )
        for i, op in enumerate(andor.ops):
            run_it = (status == 0) if op == "&&" else (status != 0)
            if run_it:
                is_last = i == len(andor.ops) - 1
                status = self.exec_pipeline(
                    andor.items[i + 1], safe=safe or not is_last
                )
        self.last_status = status
        return status

    def exec_pipeline(self, pipe: Pipeline, *, safe: bool) -> int:
        inner_safe = safe or pipe.negated
        if len(pipe.commands) == 1:
            status = self.exec_command(
                pipe.commands[0], stdin=self.ctx.stdin,
                stdout=self.ctx.stdout, safe=inner_safe,
            )
        else:
            data = self.ctx.stdin
            status = 0
            for i, cmd in enumerate(pipe.commands):
                last = i == len(pipe.commands) - 1
                sink = self.ctx.stdout if last else OutputSink()
                status = self.exec_command(cmd, stdin=data, stdout=sink,
                                           safe=True if not last else inner_safe)
                if not last:
                    data = sink.bytes()
        if pipe.negated:
            status = 0 if status != 0 else 1
        self.last_status = status
        if status != 0 and self.opt_errexit and not safe and not pipe.negated:
            raise ShellExit(status)
        return status

    def exec_command(self, cmd: Command, *, stdin: bytes, stdout: OutputSink,
                     safe: bool) -> int:
        if isinstance(cmd, IfClause):
            for cond, body in zip(cmd.conditions, cmd.bodies):
                if self.exec_list(cond, safe=True) == 0:
                    return self.exec_list(body, safe=safe)
            if cmd.else_body is not None:
                return self.exec_list(cmd.else_body, safe=safe)
            return 0
        return self.exec_simple(cmd, stdin=stdin, stdout=stdout)

    # -- simple commands -----------------------------------------------------------------

    def exec_simple(self, cmd: SimpleCommand, *, stdin: bytes,
                    stdout: OutputSink) -> int:
        env_view = self._env_view()
        assignments = {
            name: "".join(expand_word(self.ctx, env_view, w))
            for name, w in cmd.assignments
        }
        argv = expand_words(self.ctx, env_view, cmd.words)

        if not argv:
            self.ctx.env.update(assignments)
            return 0

        if self.opt_xtrace:
            self.ctx.stderr.writeline("+ " + render_argv(argv))

        # Redirections: capture into buffers, flush to files afterwards.
        out_sink = stdout
        err_sink = self.ctx.stderr
        out_redirect: tuple[str, str] | None = None  # (path, mode)
        err_redirect: tuple[str, str] | None = None
        merge_err = False
        for r in cmd.redirects:
            if r.op == "2>&1":
                merge_err = True
                continue
            assert r.target is not None
            target = "".join(expand_word(self.ctx, env_view, r.target))
            if r.op in (">", ">>"):
                out_sink = OutputSink()
                out_redirect = (target, r.op)
            elif r.op in ("2>", "2>>"):
                err_sink = OutputSink()
                err_redirect = (target, r.op)
            elif r.op == "<":
                try:
                    stdin = self.ctx.sys.read_file(target)
                except KernelError as err:
                    self.ctx.stderr.writeline(
                        f"/bin/sh: {target}: {err.strerror}")
                    return 1
        if merge_err:
            err_sink = out_sink

        run_env = dict(self.ctx.env)
        run_env.update(assignments)
        child = self.ctx.child(env=run_env, stdout=out_sink, stderr=err_sink,
                               stdin=stdin)

        name = argv[0]
        if name in _BUILTINS:
            status = _BUILTINS[name](self, child, argv)
        else:
            status = execute(child, argv)

        for sink, redirect in ((out_sink, out_redirect),
                               (err_sink, err_redirect)):
            if redirect is None:
                continue
            path, op = redirect
            try:
                self.ctx.sys.write_file(path, sink.bytes(),
                                        append=(op.endswith(">>")))
            except KernelError as err:
                self.ctx.stderr.writeline(f"/bin/sh: {path}: {err.strerror}")
                status = 1
        self.last_status = status
        return status


# -- builtins -------------------------------------------------------------------------


def _builtin_cd(interp: Interpreter, ctx: ExecContext, argv: list[str]) -> int:
    target = argv[1] if len(argv) > 1 else ctx.env.get("HOME", "/")
    try:
        interp.ctx.sys.chdir(target)
    except KernelError as err:
        ctx.stderr.writeline(f"cd: {target}: {err.strerror}")
        return 1
    interp.ctx.env["PWD"] = interp.ctx.sys.getcwd()
    return 0


def _builtin_set(interp: Interpreter, ctx: ExecContext, argv: list[str]) -> int:
    for arg in argv[1:]:
        if arg.startswith("-") or arg.startswith("+"):
            enable = arg[0] == "-"
            for flag in arg[1:]:
                if flag == "e":
                    interp.opt_errexit = enable
                elif flag == "x":
                    interp.opt_xtrace = enable
                elif flag == "u":
                    pass  # accepted, not enforced
                else:
                    ctx.stderr.writeline(f"set: unknown option -{flag}")
                    return 2
    return 0


def _builtin_export(interp: Interpreter, ctx: ExecContext,
                    argv: list[str]) -> int:
    for arg in argv[1:]:
        name, eq, value = arg.partition("=")
        if eq:
            interp.ctx.env[name] = value
        # names without '=' are already visible: single env table
    return 0


def _builtin_unset(interp: Interpreter, ctx: ExecContext,
                   argv: list[str]) -> int:
    for arg in argv[1:]:
        interp.ctx.env.pop(arg, None)
    return 0


def _builtin_true(interp, ctx, argv) -> int:
    return 0


def _builtin_false(interp, ctx, argv) -> int:
    return 1


def _builtin_exit(interp: Interpreter, ctx: ExecContext,
                  argv: list[str]) -> int:
    status = interp.last_status
    if len(argv) > 1:
        try:
            status = int(argv[1]) & 0xFF
        except ValueError:
            status = 2
    raise ShellExit(status)


def _builtin_umask(interp: Interpreter, ctx: ExecContext,
                   argv: list[str]) -> int:
    if len(argv) == 1:
        ctx.stdout.writeline(f"{interp.ctx.proc.umask:04o}")
        return 0
    try:
        interp.ctx.sys.umask(int(argv[1], 8))
        return 0
    except ValueError:
        ctx.stderr.writeline(f"umask: bad mask {argv[1]!r}")
        return 1


def _builtin_pwd(interp: Interpreter, ctx: ExecContext,
                 argv: list[str]) -> int:
    ctx.stdout.writeline(interp.ctx.sys.getcwd())
    return 0


def _builtin_command(interp: Interpreter, ctx: ExecContext,
                     argv: list[str]) -> int:
    args = argv[1:]
    if args and args[0] == "-v":
        if len(args) < 2:
            return 2
        name = args[1]
        if name in _BUILTINS:
            ctx.stdout.writeline(name)
            return 0
        path = find_program(ctx, name)
        if path is None:
            return 1
        ctx.stdout.writeline(path)
        return 0
    if args:
        if args[0] in _BUILTINS:
            return _BUILTINS[args[0]](interp, ctx, args)
        return execute(ctx, args)
    return 0


def _builtin_echo(interp: Interpreter, ctx: ExecContext,
                  argv: list[str]) -> int:
    args = argv[1:]
    newline = True
    if args and args[0] == "-n":
        newline = False
        args = args[1:]
    ctx.stdout.write(" ".join(args) + ("\n" if newline else ""))
    return 0


def _builtin_test(interp: Interpreter, ctx: ExecContext,
                  argv: list[str]) -> int:
    args = argv[1:]
    if argv[0] == "[":
        if not args or args[-1] != "]":
            ctx.stderr.writeline("[: missing ]")
            return 2
        args = args[:-1]
    try:
        return 0 if _eval_test(interp.ctx, args) else 1
    except ValueError as err:
        ctx.stderr.writeline(f"test: {err}")
        return 2


def _eval_test(ctx: ExecContext, args: list[str]) -> bool:
    if not args:
        return False
    if args[0] == "!":
        return not _eval_test(ctx, args[1:])
    if len(args) == 1:
        return args[0] != ""
    if len(args) == 2:
        op, operand = args
        sys = ctx.sys
        if op == "-n":
            return operand != ""
        if op == "-z":
            return operand == ""
        try:
            if op == "-e":
                return sys.exists(operand)
            if op == "-f":
                st = sys.stat(operand)
                return st.ftype.name == "REG"
            if op == "-d":
                return sys.stat(operand).ftype.name == "DIR"
            if op == "-x":
                return sys.access(operand, execute=True)
            if op == "-r":
                return sys.access(operand, read=True)
            if op == "-w":
                return sys.access(operand, write=True)
            if op == "-s":
                return sys.stat(operand).st_size > 0
        except KernelError:
            return False
        raise ValueError(f"unknown unary operator {op}")
    if len(args) == 3:
        a, op, b = args
        if op == "=":
            return a == b
        if op == "!=":
            return a != b
        int_ops = {"-eq": "==", "-ne": "!=", "-gt": ">", "-lt": "<",
                   "-ge": ">=", "-le": "<="}
        if op in int_ops:
            ia, ib = int(a), int(b)
            return {
                "-eq": ia == ib, "-ne": ia != ib, "-gt": ia > ib,
                "-lt": ia < ib, "-ge": ia >= ib, "-le": ia <= ib,
            }[op]
        raise ValueError(f"unknown binary operator {op}")
    raise ValueError("too many arguments")


_BUILTINS = {
    "cd": _builtin_cd,
    "set": _builtin_set,
    "export": _builtin_export,
    "unset": _builtin_unset,
    "true": _builtin_true,
    "false": _builtin_false,
    ":": _builtin_true,
    "exit": _builtin_exit,
    "umask": _builtin_umask,
    "pwd": _builtin_pwd,
    "command": _builtin_command,
    "echo": _builtin_echo,
    "test": _builtin_test,
    "[": _builtin_test,
}


def run_shell(ctx: ExecContext, text: str) -> int:
    """Run *text* as a shell script in *ctx* (the ``/bin/sh -c`` entry)."""
    return Interpreter(ctx).run(text)
