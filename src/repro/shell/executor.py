"""Program execution: PATH lookup, exec dispatch, the LD_PRELOAD hole.

``execute`` is the simulated ``execvp``: it resolves the program, performs
the kernel-side exec checks (x bit, ISA), then dispatches to the registered
Python implementation or, for ``#!`` scripts, to the shell interpreter.

The fakeroot static-binary limitation lives here: when the current syscall
interface is an LD_PRELOAD-style wrapper and the target binary is statically
linked, the binary runs against the *raw* syscalls — the wrapper simply is
not loaded into it (paper §5.1).
"""

from __future__ import annotations

from ..errors import Errno, KernelError
from ..fakeroot import FakerootSyscalls
from .context import ExecContext
from .registry import get_binary, has_binary

__all__ = ["execute", "find_program", "CommandNotFound"]


class CommandNotFound(Exception):
    """argv[0] not found in PATH."""


def find_program(ctx: ExecContext, name: str) -> str | None:
    """PATH resolution (or direct path if *name* contains a slash)."""
    if "/" in name:
        return name if ctx.sys.exists(name) else None
    for d in ctx.path_dirs():
        candidate = f"{d.rstrip('/')}/{name}"
        try:
            if ctx.sys.exists(candidate):
                return candidate
        except KernelError:
            continue
    return None


def execute(ctx: ExecContext, argv: list[str]) -> int:
    """Run *argv*; returns the exit status.  Writes shell-style diagnostics
    to stderr for the standard failure modes (127/126)."""
    if not argv:
        return 0
    if ctx.depth > ExecContext.MAX_DEPTH:
        ctx.stderr.writeline(f"{argv[0]}: recursion limit exceeded")
        return 126
    path = find_program(ctx, argv[0])
    if path is None:
        ctx.stderr.writeline(f"/bin/sh: {argv[0]}: command not found")
        return 127
    try:
        inode, _res = ctx.sys.prepare_exec(path)
    except KernelError as err:
        if err.errno == Errno.ENOEXEC:
            ctx.stderr.writeline(f"{argv[0]}: cannot execute binary file: "
                                 "Exec format error")
        else:
            ctx.stderr.writeline(f"{argv[0]}: {err.strerror}")
        return 126

    run_ctx = ctx
    if (
        isinstance(ctx.sys, FakerootSyscalls)
        and inode.exe_static
        and not ctx.sys.engine.wraps_static_binaries
    ):
        # LD_PRELOAD cannot enter a static binary: it sees raw syscalls.
        run_ctx = ctx.child(sys=ctx.sys.inner)

    if inode.exe_impl is not None:
        if not has_binary(inode.exe_impl):
            ctx.stderr.writeline(f"{argv[0]}: broken executable "
                                 f"(impl {inode.exe_impl!r} missing)")
            return 126
        impl = get_binary(inode.exe_impl)
        return impl(run_ctx, list(argv))

    data = bytes(inode.data)
    if data.startswith(b"#!"):
        from .interp import Interpreter  # local import to avoid a cycle
        first, _, rest = data.partition(b"\n")
        script = rest.decode(errors="replace")
        interp = Interpreter(run_ctx.child())
        interp.set_positional(argv)
        return interp.run(script)

    ctx.stderr.writeline(f"{argv[0]}: cannot execute binary file")
    return 126
