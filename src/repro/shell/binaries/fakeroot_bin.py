"""The fakeroot(1)/pseudo(1) command-line wrappers.

``fakeroot CMD ARGS...`` re-executes CMD with the syscall interface wrapped
by the engine the installed package provides.  Which engine is decided by
the executable's ``exe_impl`` — i.e. by which package put the binary there,
exactly as on a real system.

pseudo's always-on database (Table 1 "persistency: database") is modelled by
loading/saving the lie DB at ``/var/lib/pseudo/files.db`` around each run,
so lies persist across separate RUN instructions of a build.
"""

from __future__ import annotations

from ...errors import KernelError
from ...fakeroot import (
    FAKEROOT_CLASSIC,
    FAKEROOT_NG,
    PSEUDO,
    EngineSpec,
    FakerootError,
    FakerootSyscalls,
)
from ..context import ExecContext
from ..registry import binary

__all__ = ["PSEUDO_DB_PATH"]

PSEUDO_DB_PATH = "/var/lib/pseudo/files.db"


def _run_wrapped(ctx: ExecContext, argv: list[str], engine: EngineSpec) -> int:
    from ..executor import execute  # deferred import (executor imports us not)

    args = argv[1:]
    save_file: str | None = None
    load_file: str | None = None
    while args and args[0].startswith("-"):
        if args[0] == "-s" and len(args) > 1:
            save_file = args[1]
            args = args[2:]
        elif args[0] == "-i" and len(args) > 1:
            load_file = args[1]
            args = args[2:]
        elif args[0] == "--":
            args = args[1:]
            break
        else:
            ctx.stderr.writeline(f"{engine.name}: unknown option {args[0]}")
            return 2

    if not args:
        ctx.stderr.writeline(f"{engine.name}: no command given")
        return 2

    inner = ctx.sys
    if isinstance(inner, FakerootSyscalls):
        inner = inner.inner  # nested fakeroot: don't stack wrappers

    try:
        wrapped = FakerootSyscalls(inner, engine)
    except FakerootError as err:
        ctx.stderr.writeline(str(err))
        return 1

    if engine is PSEUDO and inner.exists(PSEUDO_DB_PATH):
        try:
            wrapped.load_state(PSEUDO_DB_PATH)
        except (KernelError, Exception):
            ctx.stderr.writeline("pseudo: warning: could not load database")
    if load_file is not None:
        try:
            wrapped.load_state(load_file)
        except KernelError as err:
            ctx.stderr.writeline(f"{engine.name}: {load_file}: {err.strerror}")
            return 1

    status = execute(ctx.child(sys=wrapped), list(args))

    if engine is PSEUDO:
        try:
            inner.mkdir_p("/var/lib/pseudo")
            wrapped.save_state(PSEUDO_DB_PATH)
        except KernelError:
            pass
    if save_file is not None:
        try:
            wrapped.save_state(save_file)
        except KernelError as err:
            ctx.stderr.writeline(f"{engine.name}: {save_file}: {err.strerror}")
    return status


@binary("fakeroot.classic")
def _fakeroot_classic(ctx: ExecContext, argv: list[str]) -> int:
    return _run_wrapped(ctx, argv, FAKEROOT_CLASSIC)


@binary("fakeroot.ng")
def _fakeroot_ng(ctx: ExecContext, argv: list[str]) -> int:
    return _run_wrapped(ctx, argv, FAKEROOT_NG)


@binary("fakeroot.pseudo")
def _fakeroot_pseudo(ctx: ExecContext, argv: list[str]) -> int:
    return _run_wrapped(ctx, argv, PSEUDO)
