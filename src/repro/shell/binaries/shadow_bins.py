"""In-container account tools: useradd, groupadd (what package scriptlets
call to create system users like ``sshd`` or ``_apt``)."""

from __future__ import annotations

from ...errors import KernelError
from ...userdb import GroupEntry, PasswdEntry, UserDb, UserDbError
from ..context import ExecContext
from ..registry import binary

__all__ = []


@binary("shadow.useradd")
def _useradd(ctx: ExecContext, argv: list[str]) -> int:
    args = argv[1:]
    uid: int | None = None
    gid: int | None = None
    home = ""
    system = False
    shell = "/bin/sh"
    name = None
    i = 0
    while i < len(args):
        a = args[i]
        if a == "-u":
            i += 1
            uid = int(args[i])
        elif a == "-g":
            i += 1
            gid = int(args[i]) if args[i].isdigit() else None
            if gid is None:
                db = UserDb.load(ctx.sys)
                grp = db.group_by_name(args[i])
                if grp is None:
                    ctx.stderr.writeline(f"useradd: group '{args[i]}' does "
                                         "not exist")
                    return 6
                gid = grp.gid
        elif a == "-d":
            i += 1
            home = args[i]
        elif a == "-s":
            i += 1
            shell = args[i]
        elif a in ("-r", "--system"):
            system = True
        elif a in ("-M", "-m", "-N"):
            pass
        elif a.startswith("-"):
            ctx.stderr.writeline(f"useradd: unknown option {a}")
            return 2
        else:
            name = a
        i += 1
    if name is None:
        ctx.stderr.writeline("useradd: missing username")
        return 2
    db = UserDb.load(ctx.sys)
    try:
        if uid is None:
            uid = db.next_system_uid() if system else 1000
        if gid is None:
            grp = db.group_by_name(name)
            if grp is None:
                gid = db.next_system_gid() if system else uid
                db.add_group(GroupEntry(name, gid))
            else:
                gid = grp.gid
        db.add_user(PasswdEntry(name, uid, gid, "", home or f"/home/{name}",
                                shell))
        db.store(ctx.sys)
        return 0
    except UserDbError as err:
        ctx.stderr.writeline(f"useradd: {err}")
        return 9
    except KernelError as err:
        ctx.stderr.writeline(f"useradd: {err.strerror}")
        return 1


@binary("shadow.groupadd")
def _groupadd(ctx: ExecContext, argv: list[str]) -> int:
    args = argv[1:]
    gid: int | None = None
    system = False
    name = None
    i = 0
    while i < len(args):
        a = args[i]
        if a == "-g":
            i += 1
            gid = int(args[i])
        elif a in ("-r", "--system"):
            system = True
        elif a == "-f":
            pass
        elif a.startswith("-"):
            ctx.stderr.writeline(f"groupadd: unknown option {a}")
            return 2
        else:
            name = a
        i += 1
    if name is None:
        ctx.stderr.writeline("groupadd: missing group name")
        return 2
    db = UserDb.load(ctx.sys)
    if db.group_by_name(name) is not None:
        return 0  # idempotent like groupadd -f
    try:
        if gid is None:
            gid = db.next_system_gid() if system else 1000
        db.add_group(GroupEntry(name, gid))
        db.store(ctx.sys)
        return 0
    except (UserDbError, KernelError) as err:
        ctx.stderr.writeline(f"groupadd: {err}")
        return 1
