"""tar(1): create/extract archives through the current syscall view.

Run under fakeroot, ``tar -c`` archives the *lies* — which is fakeroot's
raison d'être ("allows users to create archives with files in them with
root permissions/ownership", paper §5.1).
"""

from __future__ import annotations

from ...archive import ArchiveError, TarArchive
from ...errors import KernelError
from ..context import ExecContext
from ..registry import binary

__all__ = []


@binary("tar.tar")
def _tar(ctx: ExecContext, argv: list[str]) -> int:
    create = extract = list_mode = False
    file_arg: str | None = None
    preserve_owner = False
    directory = "."
    paths: list[str] = []
    args = argv[1:]
    i = 0
    while i < len(args):
        a = args[i]
        if a.startswith("--"):
            if a == "--same-owner":
                preserve_owner = True
            elif a.startswith("--directory="):
                directory = a.split("=", 1)[1]
            i += 1
            continue
        if a.startswith("-") or (i == 0 and not a.startswith("-")):
            flags = a.lstrip("-")
            for flag in flags:
                if flag == "c":
                    create = True
                elif flag == "x":
                    extract = True
                elif flag == "t":
                    list_mode = True
                elif flag == "f":
                    i += 1
                    file_arg = args[i]
                elif flag == "C":
                    i += 1
                    directory = args[i]
                elif flag == "p":
                    preserve_owner = True
                elif flag in "vzj":
                    pass  # verbosity/compression accepted and ignored
                else:
                    ctx.stderr.writeline(f"tar: unknown option -{flag}")
                    return 2
            i += 1
            continue
        paths.append(a)
        i += 1

    if sum((create, extract, list_mode)) != 1:
        ctx.stderr.writeline("tar: need exactly one of -c, -x, -t")
        return 2
    if file_arg is None:
        ctx.stderr.writeline("tar: -f FILE required")
        return 2

    try:
        if create:
            src = paths[0] if paths else directory
            archive = TarArchive.pack(ctx.sys, src)
            ctx.sys.write_file(file_arg, archive.serialize())
            return 0
        blob = ctx.sys.read_file(file_arg)
        archive = TarArchive.deserialize(blob)
        if list_mode:
            for m in archive:
                ctx.stdout.writeline(m.path)
            return 0
        # Unprivileged default: ownership becomes the extracting user, like
        # real tar for non-root users (paper §5.2).
        warnings = archive.extract(
            ctx.sys, directory,
            preserve_owner=preserve_owner, on_chown_error="warn")
        for w in warnings:
            ctx.stderr.writeline(w)
        return 0
    except (KernelError, ArchiveError) as err:
        ctx.stderr.writeline(f"tar: {err}")
        return 2
