"""/bin/sh as an executable: dispatches into the interpreter."""

from __future__ import annotations

from ...errors import KernelError
from ..context import ExecContext
from ..registry import binary

__all__ = []


@binary("sh.posix")
def _sh(ctx: ExecContext, argv: list[str]) -> int:
    from ..interp import Interpreter  # deferred: interp imports executor

    args = argv[1:]
    interp = Interpreter(ctx.child())
    while args and args[0].startswith("-") and args[0] != "-c":
        for flag in args[0][1:]:
            if flag == "e":
                interp.opt_errexit = True
            elif flag == "x":
                interp.opt_xtrace = True
        args = args[1:]
    if args and args[0] == "-c":
        if len(args) < 2:
            ctx.stderr.writeline("sh: -c requires an argument")
            return 2
        interp.set_positional(["sh"] + args[2:])
        return interp.run(args[1])
    if args:
        try:
            script = ctx.sys.read_file(args[0]).decode(errors="replace")
        except KernelError as err:
            ctx.stderr.writeline(f"sh: {args[0]}: {err.strerror}")
            return 127
        interp.set_positional(args)
        if script.startswith("#!"):
            script = script.partition("\n")[2]
        return interp.run(script)
    ctx.stderr.writeline("sh: interactive mode not supported")
    return 2
