"""grep / egrep / fgrep.

ch-image's rhel7 init step greps repo files directly "rather than using yum
repolist, because the latter has side effects" (paper §5.3.1) — so grep has
to handle -E, -F, -q, multiple files, and glob-expanded file lists.
"""

from __future__ import annotations

import re

from ...errors import KernelError
from ..context import ExecContext
from ..registry import binary

__all__ = []


def _grep(ctx: ExecContext, argv: list[str], *, default_mode: str) -> int:
    mode = default_mode  # "basic", "extended", "fixed"
    quiet = invert = ignore_case = False
    pattern: str | None = None
    files: list[str] = []
    args = argv[1:]
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--":
            i += 1
            break
        if a.startswith("-") and len(a) > 1:
            for flag in a[1:]:
                if flag == "E":
                    mode = "extended"
                elif flag == "F":
                    mode = "fixed"
                elif flag == "q":
                    quiet = True
                elif flag == "v":
                    invert = True
                elif flag == "i":
                    ignore_case = True
                elif flag == "e":
                    i += 1
                    pattern = args[i]
                else:
                    ctx.stderr.writeline(f"grep: unknown option -{flag}")
                    return 2
            i += 1
            continue
        if pattern is None:
            pattern = a
        else:
            files.append(a)
        i += 1
    files.extend(args[i:])
    if pattern is None:
        ctx.stderr.writeline("usage: grep [-EFqvi] PATTERN [FILE...]")
        return 2

    flags = re.IGNORECASE if ignore_case else 0
    if mode == "fixed":
        rx = re.compile(re.escape(pattern), flags)
    else:
        # "basic" vs "extended" distinction: basic treats +?|(){} literally;
        # close enough for the build scripts we run.
        pat = pattern
        if mode == "basic":
            pat = re.escape(pattern).replace(r"\.\*", ".*").replace(r"\.", ".")
        try:
            rx = re.compile(pat, flags)
        except re.error as err:
            ctx.stderr.writeline(f"grep: bad pattern: {err}")
            return 2

    sources: list[tuple[str, str]] = []
    if files:
        for f in files:
            try:
                sources.append((f, ctx.sys.read_file(f).decode(errors="replace")))
            except KernelError as err:
                ctx.stderr.writeline(f"grep: {f}: {err.strerror}")
    else:
        sources.append(("(standard input)", ctx.stdin.decode(errors="replace")))

    matched = False
    multi_file = len(files) > 1
    for name, text in sources:
        for line in text.splitlines():
            hit = bool(rx.search(line))
            if hit != invert:
                matched = True
                if quiet:
                    return 0
                prefix = f"{name}:" if multi_file else ""
                ctx.stdout.writeline(prefix + line)
    return 0 if matched else 1


@binary("grep.grep")
def _grep_main(ctx: ExecContext, argv: list[str]) -> int:
    return _grep(ctx, argv, default_mode="basic")


@binary("grep.egrep")
def _egrep(ctx: ExecContext, argv: list[str]) -> int:
    return _grep(ctx, argv, default_mode="extended")


@binary("grep.fgrep")
def _fgrep(ctx: ExecContext, argv: list[str]) -> int:
    return _grep(ctx, argv, default_mode="fixed")
