"""Simulated userland binary implementations.

Importing this package registers all impls in the binary registry.
"""

from . import coreutils, fakeroot_bin, grep, sh_bin, shadow_bins, tar_bin  # noqa: F401
