"""Core userland: the commands container builds actually invoke."""

from __future__ import annotations

from ...errors import Errno, KernelError
from ...kernel import FileType, mode_to_string
from ...userdb import UserDb, UserDbError
from ..context import ExecContext
from ..registry import binary

__all__ = []

_MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep",
           "Oct", "Nov", "Dec"]


def _fake_date(ticks: int) -> str:
    """Deterministic ls-style timestamp from the simulated clock."""
    minutes = ticks // 60
    return (f"{_MONTHS[(minutes // 43200) % 12]} "
            f"{(minutes // 1440) % 28 + 1:2d} "
            f"{(minutes // 60) % 24:02d}:{minutes % 60:02d}")


def _err(ctx: ExecContext, prog: str, msg: str) -> int:
    ctx.stderr.writeline(f"{prog}: {msg}")
    return 1


@binary("coreutils.echo")
def _echo(ctx: ExecContext, argv: list[str]) -> int:
    args = argv[1:]
    newline = True
    if args and args[0] == "-n":
        newline, args = False, args[1:]
    ctx.stdout.write(" ".join(args) + ("\n" if newline else ""))
    return 0


@binary("coreutils.cat")
def _cat(ctx: ExecContext, argv: list[str]) -> int:
    files = [a for a in argv[1:] if not a.startswith("-")]
    if not files:
        ctx.stdout.write(ctx.stdin.decode(errors="replace"))
        return 0
    status = 0
    for f in files:
        try:
            ctx.stdout.write(ctx.sys.read_file(f).decode(errors="replace"))
        except KernelError as err:
            status = _err(ctx, "cat", f"{f}: {err.strerror}")
    return status


@binary("coreutils.touch")
def _touch(ctx: ExecContext, argv: list[str]) -> int:
    status = 0
    for f in argv[1:]:
        if f.startswith("-"):
            continue
        try:
            if ctx.sys.exists(f):
                continue
            ctx.sys.write_file(f, b"")
        except KernelError as err:
            status = _err(ctx, "touch", f"{f}: {err.strerror}")
    return status


@binary("coreutils.ls")
def _ls(ctx: ExecContext, argv: list[str]) -> int:
    long_format = False
    paths: list[str] = []
    for a in argv[1:]:
        if a.startswith("-"):
            long_format = long_format or "l" in a
        else:
            paths.append(a)
    if not paths:
        paths = [ctx.sys.getcwd()]
    db = UserDb.load(ctx.sys)
    status = 0

    def show(path: str) -> None:
        st = ctx.sys.lstat(path)
        if not long_format:
            ctx.stdout.writeline(path.rsplit("/", 1)[-1] or path)
            return
        owner = db.username(st.st_uid,
                            default="root" if st.st_uid == 0 else None)
        group = db.groupname(st.st_gid,
                             default="root" if st.st_gid == 0 else None)
        if st.st_uid == 65534 and db.user_by_uid(65534) is None:
            owner = "nobody"
        if st.st_gid == 65534 and db.group_by_gid(65534) is None:
            group = "nogroup"
        size: str
        if st.ftype in (FileType.CHR, FileType.BLK):
            size = f"{st.st_rdev[0]}, {st.st_rdev[1]}"
        else:
            size = str(st.st_size)
        name = path.rsplit("/", 1)[-1] or path
        if st.ftype is FileType.SYMLINK:
            name += " -> " + ctx.sys.readlink(path)
        ctx.stdout.writeline(
            f"{mode_to_string(st.ftype, st.st_mode & 0o7777)} "
            f"{st.st_nlink} {owner} {group} {size:>6} "
            f"{_fake_date(st.st_mtime)} {name}"
        )

    for p in paths:
        try:
            st = ctx.sys.lstat(p)
            if st.ftype is FileType.DIR:
                for entry in ctx.sys.readdir(p):
                    if entry.name.startswith("."):
                        continue
                    show(f"{p.rstrip('/')}/{entry.name}")
            else:
                show(p)
        except KernelError as err:
            status = _err(ctx, "ls",
                          f"cannot access '{p}': {err.strerror}")
    return status


def _chown_common(ctx: ExecContext, argv: list[str], *, group_only: bool
                  ) -> int:
    prog = "chgrp" if group_only else "chown"
    args = [a for a in argv[1:] if not a.startswith("-")]
    follow = "-h" not in argv
    if len(args) < 2:
        return _err(ctx, prog, "missing operand")
    spec, files = args[0], args[1:]
    db = UserDb.load(ctx.sys)
    try:
        if group_only:
            uid, gid = -1, db.resolve_group(spec)
        else:
            owner, _, grp = spec.partition(":")
            if not grp and "." in spec:  # legacy owner.group
                owner, _, grp = spec.partition(".")
            uid = db.resolve_owner(owner) if owner else -1
            gid = db.resolve_group(grp) if grp else -1
    except UserDbError as err:
        return _err(ctx, prog, str(err))
    status = 0
    for f in files:
        try:
            ctx.sys.chown(f, uid, gid, follow=follow)
        except KernelError as err:
            status = _err(ctx, prog,
                          f"changing ownership of '{f}': {err.strerror}")
    return status


@binary("coreutils.chown")
def _chown(ctx: ExecContext, argv: list[str]) -> int:
    return _chown_common(ctx, argv, group_only=False)


@binary("coreutils.chgrp")
def _chgrp(ctx: ExecContext, argv: list[str]) -> int:
    return _chown_common(ctx, argv, group_only=True)


@binary("coreutils.chmod")
def _chmod(ctx: ExecContext, argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("-") or
            a.lstrip("-").isdigit()]
    if len(args) < 2:
        return _err(ctx, "chmod", "missing operand")
    mode_s, files = args[0], args[1:]
    symbolic = {"u+s": 0o4000, "g+s": 0o2000, "+x": 0o111, "a+x": 0o111,
                "+t": 0o1000}
    status = 0
    for f in files:
        try:
            if mode_s in symbolic:
                cur = ctx.sys.stat(f).st_mode & 0o7777
                ctx.sys.chmod(f, cur | symbolic[mode_s])
            else:
                ctx.sys.chmod(f, int(mode_s, 8))
        except ValueError:
            return _err(ctx, "chmod", f"invalid mode: '{mode_s}'")
        except KernelError as err:
            status = _err(ctx, "chmod", f"{f}: {err.strerror}")
    return status


@binary("coreutils.mknod")
def _mknod(ctx: ExecContext, argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("-")]
    if len(args) < 2:
        return _err(ctx, "mknod", "missing operand")
    path, type_c = args[0], args[1]
    types = {"c": FileType.CHR, "b": FileType.BLK, "p": FileType.FIFO}
    if type_c not in types:
        return _err(ctx, "mknod", f"invalid device type '{type_c}'")
    rdev = (0, 0)
    if type_c in ("c", "b"):
        if len(args) < 4:
            return _err(ctx, "mknod", "missing major/minor")
        rdev = (int(args[2]), int(args[3]))
    try:
        ctx.sys.mknod(path, types[type_c], 0o644, rdev=rdev)
        return 0
    except KernelError as err:
        return _err(ctx, "mknod", f"{path}: {err.strerror}")


@binary("coreutils.rm")
def _rm(ctx: ExecContext, argv: list[str]) -> int:
    recursive = any(a.startswith("-") and ("r" in a or "R" in a)
                    for a in argv[1:])
    force = any(a.startswith("-") and "f" in a for a in argv[1:])
    files = [a for a in argv[1:] if not a.startswith("-")]
    status = 0

    def remove(path: str) -> None:
        st = ctx.sys.lstat(path)
        if st.ftype is FileType.DIR:
            if not recursive:
                raise KernelError(Errno.EISDIR, path)
            for entry in ctx.sys.readdir(path):
                remove(f"{path.rstrip('/')}/{entry.name}")
            ctx.sys.rmdir(path)
        else:
            ctx.sys.unlink(path)

    for f in files:
        try:
            remove(f)
        except KernelError as err:
            if not force:
                status = _err(ctx, "rm", f"cannot remove '{f}': {err.strerror}")
    return status


@binary("coreutils.mkdir")
def _mkdir(ctx: ExecContext, argv: list[str]) -> int:
    parents = any(a.startswith("-") and "p" in a for a in argv[1:])
    dirs = [a for a in argv[1:] if not a.startswith("-")]
    status = 0
    for d in dirs:
        try:
            if parents:
                ctx.sys.mkdir_p(d)
            else:
                ctx.sys.mkdir(d)
        except KernelError as err:
            status = _err(ctx, "mkdir",
                          f"cannot create directory '{d}': {err.strerror}")
    return status


@binary("coreutils.mv")
def _mv(ctx: ExecContext, argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("-")]
    if len(args) != 2:
        return _err(ctx, "mv", "expected SRC DST")
    try:
        ctx.sys.rename(args[0], args[1])
        return 0
    except KernelError as err:
        return _err(ctx, "mv", f"{args[0]}: {err.strerror}")


@binary("coreutils.cp")
def _cp(ctx: ExecContext, argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("-")]
    if len(args) != 2:
        return _err(ctx, "cp", "expected SRC DST")
    src, dst = args
    try:
        data = ctx.sys.read_file(src)
        if ctx.sys.exists(dst) and \
                ctx.sys.stat(dst).ftype is FileType.DIR:
            dst = f"{dst.rstrip('/')}/{src.rsplit('/', 1)[-1]}"
        ctx.sys.write_file(dst, data)
        ctx.sys.chmod(dst, ctx.sys.stat(src).st_mode & 0o777)
        return 0
    except KernelError as err:
        return _err(ctx, "cp", f"{src}: {err.strerror}")


@binary("coreutils.ln")
def _ln(ctx: ExecContext, argv: list[str]) -> int:
    symbolic = any(a.startswith("-") and "s" in a for a in argv[1:])
    args = [a for a in argv[1:] if not a.startswith("-")]
    if len(args) != 2:
        return _err(ctx, "ln", "expected TARGET LINK")
    try:
        if symbolic:
            ctx.sys.symlink(args[0], args[1])
        else:
            ctx.sys.link(args[0], args[1])
        return 0
    except KernelError as err:
        return _err(ctx, "ln", f"{args[1]}: {err.strerror}")


@binary("coreutils.id")
def _id(ctx: ExecContext, argv: list[str]) -> int:
    if "-u" in argv:
        ctx.stdout.writeline(str(ctx.sys.geteuid()))
        return 0
    if "-g" in argv:
        ctx.stdout.writeline(str(ctx.sys.getegid()))
        return 0
    db = UserDb.load(ctx.sys)
    uid, gid = ctx.sys.geteuid(), ctx.sys.getegid()
    uname = db.username(uid, default="root" if uid == 0 else None)
    gname = db.groupname(gid, default="root" if gid == 0 else None)
    groups = ",".join(
        f"{g}({db.groupname(g, default='root' if g == 0 else None)})"
        for g in ctx.sys.getgroups())
    ctx.stdout.writeline(
        f"uid={uid}({uname}) gid={gid}({gname}) groups={groups}")
    return 0


@binary("coreutils.whoami")
def _whoami(ctx: ExecContext, argv: list[str]) -> int:
    db = UserDb.load(ctx.sys)
    uid = ctx.sys.geteuid()
    ctx.stdout.writeline(db.username(uid, default="root" if uid == 0 else None))
    return 0


@binary("coreutils.uname")
def _uname(ctx: ExecContext, argv: list[str]) -> int:
    k = ctx.kernel
    if "-m" in argv:
        ctx.stdout.writeline(k.arch)
    elif "-r" in argv:
        ctx.stdout.writeline(f"{k.kernel_version[0]}.{k.kernel_version[1]}.0")
    elif "-a" in argv:
        ctx.stdout.writeline(
            f"Linux {ctx.sys.gethostname()} "
            f"{k.kernel_version[0]}.{k.kernel_version[1]}.0 "
            f"{k.arch} GNU/Linux")
    else:
        ctx.stdout.writeline("Linux")
    return 0


@binary("coreutils.hostname")
def _hostname(ctx: ExecContext, argv: list[str]) -> int:
    ctx.stdout.writeline(ctx.sys.gethostname())
    return 0


@binary("coreutils.sleep")
def _sleep(ctx: ExecContext, argv: list[str]) -> int:
    return 0  # simulated time: instant


@binary("coreutils.env")
def _env(ctx: ExecContext, argv: list[str]) -> int:
    for k, v in sorted(ctx.env.items()):
        ctx.stdout.writeline(f"{k}={v}")
    return 0


@binary("coreutils.date")
def _date(ctx: ExecContext, argv: list[str]) -> int:
    ctx.stdout.writeline(_fake_date(ctx.kernel.now()))
    return 0


@binary("coreutils.true")
def _true(ctx: ExecContext, argv: list[str]) -> int:
    return 0


@binary("coreutils.false")
def _false(ctx: ExecContext, argv: list[str]) -> int:
    return 1


@binary("procps.ps")
def _ps(ctx: ExecContext, argv: list[str]) -> int:
    """ps: list processes in the caller's PID namespace only."""
    mine = ctx.proc.pid_ns
    ctx.stdout.writeline("  PID CMD")
    for p in sorted(ctx.kernel.processes.values(), key=lambda p: p.pid):
        if p.pid_ns is not mine:
            continue
        ctx.stdout.writeline(f"{p.ns_pid:>5} {p.comm}")
    return 0


@binary("coreutils.stat")
def _stat(ctx: ExecContext, argv: list[str]) -> int:
    files = [a for a in argv[1:] if not a.startswith("-")]
    status = 0
    for f in files:
        try:
            st = ctx.sys.lstat(f)
            ctx.stdout.writeline(
                f"  File: {f}\n  Size: {st.st_size}\n"
                f"Access: ({st.st_mode & 0o7777:04o}) "
                f"Uid: ({st.st_uid}) Gid: ({st.st_gid})")
        except KernelError as err:
            status = _err(ctx, "stat", f"{f}: {err.strerror}")
    return status
