"""Tokenizer for the mini shell."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from .ast import Segment, Word

__all__ = ["Token", "ShellSyntaxError", "tokenize"]


class ShellSyntaxError(ReproError):
    """Unparseable shell input."""


@dataclass(frozen=True)
class Token:
    """kind is 'WORD', 'OP' (;, &&, ||, |, !, (, )), 'REDIR'
    (>, >>, <, 2>, 2>>, 2>&1), or 'NEWLINE'."""

    kind: str
    value: str = ""
    word: Word | None = None


_OP_CHARS = set(";&|!()\n<>")


def tokenize(text: str) -> list[Token]:
    """Split shell input into tokens, preserving quoting structure."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    segments: list[Segment] = []
    buf: list[str] = []
    buf_quote = ""

    def flush_buf() -> None:
        nonlocal buf
        if buf:
            segments.append(Segment("".join(buf), buf_quote))
            buf = []

    def flush_word() -> None:
        flush_buf()
        nonlocal segments
        if segments:
            tokens.append(Token("WORD", word=Word(tuple(segments))))
            segments = []

    while i < n:
        c = text[i]
        if c == "#" and not buf and not segments:
            # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c in " \t":
            flush_word()
            i += 1
            continue
        if c == "\n":
            flush_word()
            tokens.append(Token("NEWLINE", "\n"))
            i += 1
            continue
        if c == "\\":
            if i + 1 >= n:
                raise ShellSyntaxError("trailing backslash")
            nxt = text[i + 1]
            if nxt == "\n":  # line continuation
                i += 2
                continue
            # a backslash-escaped character behaves like a single-quoted one
            flush_buf()
            segments.append(Segment(nxt, "'"))
            i += 2
            continue
        if c == "'":
            flush_buf()
            end = text.find("'", i + 1)
            if end == -1:
                raise ShellSyntaxError("unterminated single quote")
            segments.append(Segment(text[i + 1:end], "'"))
            i = end + 1
            continue
        if c == '"':
            flush_buf()
            j = i + 1
            out = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n and text[j + 1] in '"\\$':
                    out.append(text[j + 1])
                    j += 2
                else:
                    out.append(text[j])
                    j += 1
            if j >= n:
                raise ShellSyntaxError("unterminated double quote")
            segments.append(Segment("".join(out), '"'))
            i = j + 1
            continue
        if c in _OP_CHARS:
            # '2>' redirection needs the '2' attached to the current word
            if c in "<>":
                prefix = ""
                if buf == ["2"] and not segments:
                    buf.clear()
                    prefix = "2"
                elif not buf and segments == [Segment("2", "")]:
                    segments.clear()
                    prefix = "2"
                flush_word()
                if c == ">" and text[i:i + 3] == ">&1" and prefix == "2":
                    tokens.append(Token("REDIR", "2>&1"))
                    i += 3
                    continue
                if text[i:i + 2] == ">>":
                    tokens.append(Token("REDIR", prefix + ">>"))
                    i += 2
                    continue
                tokens.append(Token("REDIR", prefix + c))
                i += 1
                continue
            flush_word()
            if text[i:i + 2] in ("&&", "||"):
                tokens.append(Token("OP", text[i:i + 2]))
                i += 2
                continue
            if c == "&":
                raise ShellSyntaxError("background jobs (&) not supported")
            if c == "!":
                # '!' is an operator only as a standalone word
                if i + 1 < n and text[i + 1] not in " \t\n":
                    buf.append(c)
                    i += 1
                    continue
                tokens.append(Token("OP", "!"))
                i += 1
                continue
            tokens.append(Token("OP", c))
            i += 1
            continue
        buf.append(c)
        i += 1

    flush_word()
    return tokens
