"""Recursive-descent parser for the mini shell."""

from __future__ import annotations

import re

from .ast import (
    AndOr,
    Command,
    CommandList,
    IfClause,
    Pipeline,
    Redirect,
    SimpleCommand,
    Word,
)
from .lexer import ShellSyntaxError, Token, tokenize

__all__ = ["parse", "ShellSyntaxError"]

_ASSIGN_RE = re.compile(r"^([A-Za-z_][A-Za-z_0-9]*)=(.*)$", re.S)

_KEYWORDS = {"if", "then", "elif", "else", "fi"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------------

    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise ShellSyntaxError("unexpected end of input")
        self.pos += 1
        return tok

    def at_keyword(self, *names: str) -> bool:
        tok = self.peek()
        return (
            tok is not None
            and tok.kind == "WORD"
            and tok.word is not None
            and tok.word.raw() in names
            and all(s.quote == "" for s in tok.word.segments)
        )

    def eat_keyword(self, name: str) -> None:
        if not self.at_keyword(name):
            got = self.peek()
            raise ShellSyntaxError(
                f"expected {name!r}, got "
                f"{got.word.raw() if got and got.word else got}"
            )
        self.next()

    def skip_separators(self) -> None:
        while True:
            tok = self.peek()
            if tok is None:
                return
            if tok.kind == "NEWLINE" or (tok.kind == "OP" and tok.value == ";"):
                self.next()
                continue
            return

    # -- grammar --------------------------------------------------------------------

    def parse_list(self, stop_keywords: frozenset[str] = frozenset()
                   ) -> CommandList:
        items: list[AndOr] = []
        self.skip_separators()
        while True:
            tok = self.peek()
            if tok is None:
                break
            if stop_keywords and self.at_keyword(*stop_keywords):
                break
            if tok.kind == "OP" and tok.value == ")":
                break
            items.append(self.parse_andor(stop_keywords))
            tok = self.peek()
            if tok is not None and (
                tok.kind == "NEWLINE" or (tok.kind == "OP" and tok.value == ";")
            ):
                self.skip_separators()
                continue
            break
        return CommandList(tuple(items))

    def parse_andor(self, stop_keywords: frozenset[str]) -> AndOr:
        items = [self.parse_pipeline(stop_keywords)]
        ops: list[str] = []
        while True:
            tok = self.peek()
            if tok is not None and tok.kind == "OP" and tok.value in ("&&", "||"):
                ops.append(self.next().value)
                # allow a newline after && / ||
                while (t := self.peek()) is not None and t.kind == "NEWLINE":
                    self.next()
                items.append(self.parse_pipeline(stop_keywords))
            else:
                break
        return AndOr(tuple(items), tuple(ops))

    def parse_pipeline(self, stop_keywords: frozenset[str]) -> Pipeline:
        negated = False
        while self.peek() is not None and self.peek().kind == "OP" \
                and self.peek().value == "!":
            self.next()
            negated = not negated
        cmds = [self.parse_command(stop_keywords)]
        while (tok := self.peek()) is not None and tok.kind == "OP" \
                and tok.value == "|":
            self.next()
            cmds.append(self.parse_command(stop_keywords))
        return Pipeline(tuple(cmds), negated)

    def parse_command(self, stop_keywords: frozenset[str]) -> Command:
        if self.at_keyword("if"):
            return self.parse_if()
        return self.parse_simple(stop_keywords)

    def parse_if(self) -> IfClause:
        self.eat_keyword("if")
        conditions = [self.parse_list(frozenset({"then"}))]
        self.eat_keyword("then")
        bodies = [self.parse_list(frozenset({"elif", "else", "fi"}))]
        else_body = None
        while self.at_keyword("elif"):
            self.next()
            conditions.append(self.parse_list(frozenset({"then"})))
            self.eat_keyword("then")
            bodies.append(self.parse_list(frozenset({"elif", "else", "fi"})))
        if self.at_keyword("else"):
            self.next()
            else_body = self.parse_list(frozenset({"fi"}))
        self.eat_keyword("fi")
        return IfClause(tuple(conditions), tuple(bodies), else_body)

    def parse_simple(self, stop_keywords: frozenset[str]) -> SimpleCommand:
        assignments: list[tuple[str, Word]] = []
        words: list[Word] = []
        redirects: list[Redirect] = []
        while True:
            tok = self.peek()
            if tok is None:
                break
            if tok.kind == "NEWLINE":
                break
            if tok.kind == "OP":
                if tok.value in (";", "&&", "||", "|", "!", ")"):
                    break
                raise ShellSyntaxError(f"unexpected operator {tok.value!r}")
            if tok.kind == "REDIR":
                op = self.next().value
                if op == "2>&1":
                    redirects.append(Redirect(op, None))
                    continue
                target = self.next()
                if target.kind != "WORD":
                    raise ShellSyntaxError(f"redirect {op} needs a target")
                redirects.append(Redirect(op, target.word))
                continue
            # WORD
            if stop_keywords and words == [] and assignments == [] and \
                    self.at_keyword(*stop_keywords):
                break
            if words and self.at_keyword(*_KEYWORDS) and stop_keywords and \
                    self.at_keyword(*stop_keywords):
                break
            self.next()
            assert tok.word is not None
            if not words:
                m = _ASSIGN_RE.match(tok.word.raw())
                if (
                    m
                    and tok.word.segments
                    and tok.word.segments[0].quote == ""
                    and "=" in tok.word.segments[0].text
                ):
                    name = m.group(1)
                    # Value keeps original segments minus the name= prefix.
                    value = _strip_assignment_prefix(tok.word, len(name) + 1)
                    assignments.append((name, value))
                    continue
            words.append(tok.word)
        if not words and not assignments and not redirects:
            raise ShellSyntaxError("empty command")
        return SimpleCommand(tuple(assignments), tuple(words), tuple(redirects))


def _strip_assignment_prefix(word: Word, drop: int) -> Word:
    """Remove the leading ``NAME=`` characters from a word's segments."""
    segs = []
    remaining = drop
    for seg in word.segments:
        if remaining >= len(seg.text):
            remaining -= len(seg.text)
            continue
        if remaining:
            segs.append(type(seg)(seg.text[remaining:], seg.quote))
            remaining = 0
        else:
            segs.append(seg)
    if not segs:
        segs = [type(word.segments[0])("", "'")]
    return Word(tuple(segs))


def parse(text: str) -> CommandList:
    """Parse shell *text* into a CommandList."""
    parser = _Parser(tokenize(text))
    result = parser.parse_list()
    parser.skip_separators()
    if parser.peek() is not None:
        raise ShellSyntaxError(
            f"trailing input at token {parser.peek()!r}"
        )
    return result
