"""Execution context handed to simulated userland binaries."""

from __future__ import annotations

from typing import Callable, Optional

from ..kernel import Process, Syscalls

__all__ = ["OutputSink", "ExecContext"]


class OutputSink:
    """A stream a binary writes to; optionally tees each chunk to a callback
    (how build transcripts are captured)."""

    def __init__(self, echo: Optional[Callable[[str], None]] = None):
        self._chunks: list[str] = []
        self._echo = echo

    def write(self, text: str) -> None:
        if not text:
            return
        self._chunks.append(text)
        if self._echo is not None:
            self._echo(text)

    def writeline(self, text: str) -> None:
        self.write(text + "\n")

    def text(self) -> str:
        return "".join(self._chunks)

    def bytes(self) -> bytes:
        return self.text().encode()

    def lines(self) -> list[str]:
        return self.text().splitlines()


class ExecContext:
    """Everything a simulated binary can touch.

    ``sys`` may be a plain :class:`Syscalls` or a fakeroot wrapper; binaries
    never know the difference — exactly the LD_PRELOAD/ptrace illusion.
    """

    MAX_DEPTH = 64  # recursion guard for scripts invoking scripts

    def __init__(
        self,
        proc: Process,
        sys: Syscalls,
        *,
        env: Optional[dict[str, str]] = None,
        stdout: Optional[OutputSink] = None,
        stderr: Optional[OutputSink] = None,
        stdin: bytes = b"",
        depth: int = 0,
    ):
        self.proc = proc
        self.sys = sys
        self.env: dict[str, str] = dict(env if env is not None else proc.environ)
        self.stdout = stdout if stdout is not None else OutputSink()
        self.stderr = stderr if stderr is not None else OutputSink()
        self.stdin = stdin
        self.depth = depth

    @property
    def kernel(self):
        return self.proc.kernel

    @property
    def network(self):
        """The outside world (package repos, registries); None if air-gapped."""
        return self.proc.kernel.network

    def path_dirs(self) -> list[str]:
        path = self.env.get("PATH", "/usr/sbin:/usr/bin:/sbin:/bin")
        return [d for d in path.split(":") if d]

    def child(
        self,
        *,
        sys: Optional[Syscalls] = None,
        env: Optional[dict[str, str]] = None,
        stdout: Optional[OutputSink] = None,
        stderr: Optional[OutputSink] = None,
        stdin: Optional[bytes] = None,
    ) -> "ExecContext":
        """A derived context (for pipelines, wrappers, and scripts)."""
        return ExecContext(
            self.proc,
            sys if sys is not None else self.sys,
            env=dict(env if env is not None else self.env),
            stdout=stdout if stdout is not None else self.stdout,
            stderr=stderr if stderr is not None else self.stderr,
            stdin=stdin if stdin is not None else self.stdin,
            depth=self.depth + 1,
        )
