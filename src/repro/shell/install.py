"""Helper to install executable files into a simulated filesystem tree."""

from __future__ import annotations

from ..kernel import Syscalls

__all__ = ["install_binary", "install_script"]


def install_binary(
    sys: Syscalls,
    path: str,
    impl: str,
    *,
    arch: str = "noarch",
    static: bool = False,
    mode: int = 0o755,
    content: bytes = b"\x7fELF simulated binary",
) -> None:
    """Create an executable at *path* dispatching to registered impl *impl*."""
    parent = path.rsplit("/", 1)[0] or "/"
    sys.mkdir_p(parent)
    sys.write_file(path, content)
    sys.chmod(path, mode)
    res = sys.mnt_ns.resolve(path, sys.cred, cwd=sys.getcwd())
    res.inode.exe_impl = impl
    res.inode.exe_arch = arch
    res.inode.exe_static = static
    res.fs.touch(res.inode)


def install_script(sys: Syscalls, path: str, body: str, *,
                   mode: int = 0o755) -> None:
    """Create a ``#!/bin/sh`` script at *path*."""
    parent = path.rsplit("/", 1)[0] or "/"
    sys.mkdir_p(parent)
    text = body if body.startswith("#!") else "#!/bin/sh\n" + body
    sys.write_file(path, text.encode())
    sys.chmod(path, mode)
