"""Word expansion: variables and pathname globbing."""

from __future__ import annotations

import fnmatch
import re
from typing import Mapping

from ..errors import KernelError
from .ast import Word
from .context import ExecContext

__all__ = ["expand_word", "expand_words", "expand_string"]

_VAR_RE = re.compile(r"\$(?:\{([A-Za-z_][A-Za-z_0-9]*)\}|([A-Za-z_][A-Za-z_0-9]*)|([?#0-9]))")

_GLOB_CHARS = set("*?[")


def expand_string(text: str, env: Mapping[str, str]) -> str:
    """Expand ``$NAME``/``${NAME}``/``$?`` in *text*."""

    def sub(m: re.Match) -> str:
        name = m.group(1) or m.group(2) or m.group(3)
        return str(env.get(name, ""))

    return _VAR_RE.sub(sub, text)


def _glob_escape(text: str) -> str:
    """Escape glob metacharacters so quoted text matches literally."""
    out = []
    for ch in text:
        out.append(f"[{ch}]" if ch in _GLOB_CHARS else ch)
    return "".join(out)


def expand_word(ctx: ExecContext, env: Mapping[str, str], word: Word
                ) -> list[str]:
    """Expand one word to zero or more argv fields.

    Single-quoted segments are literal; double-quoted get variable expansion;
    bare segments get variable expansion and participate in globbing.  If a
    glob matches nothing, the pattern is kept literally (sh default).
    """
    literal_parts: list[str] = []
    pattern_parts: list[str] = []
    has_glob = False
    for seg in word.segments:
        if seg.quote == "'":
            literal_parts.append(seg.text)
            pattern_parts.append(_glob_escape(seg.text))
        elif seg.quote == '"':
            expanded = expand_string(seg.text, env)
            literal_parts.append(expanded)
            pattern_parts.append(_glob_escape(expanded))
        else:
            expanded = expand_string(seg.text, env)
            literal_parts.append(expanded)
            pattern_parts.append(expanded)
            if _GLOB_CHARS & set(expanded):
                has_glob = True
    literal = "".join(literal_parts)
    if not has_glob:
        return [literal]
    matches = _glob(ctx, "".join(pattern_parts))
    return matches if matches else [literal]


def expand_words(ctx: ExecContext, env: Mapping[str, str], words) -> list[str]:
    out: list[str] = []
    for w in words:
        out.extend(expand_word(ctx, env, w))
    return out


def _glob(ctx: ExecContext, pattern: str) -> list[str]:
    """Pathname expansion against the simulated filesystem."""
    absolute = pattern.startswith("/")
    comps = [c for c in pattern.split("/") if c]
    if not comps:
        return []
    base = "/" if absolute else ctx.sys.getcwd()
    candidates = [base if absolute else ""]
    for comp in comps:
        nxt: list[str] = []
        for cand in candidates:
            prefix = cand if cand else "."
            if _GLOB_CHARS & set(comp):
                try:
                    entries = ctx.sys.readdir(prefix if cand else ctx.sys.getcwd())
                except KernelError:
                    continue
                for e in entries:
                    if e.name.startswith(".") and not comp.startswith("."):
                        continue
                    if fnmatch.fnmatchcase(e.name, comp):
                        nxt.append(_join(cand, e.name))
            else:
                path = _join(cand, comp)
                if ctx.sys.exists(path if absolute or cand else path):
                    nxt.append(path)
        candidates = nxt
    return sorted(c for c in candidates if c)


def _join(prefix: str, name: str) -> str:
    if not prefix:
        return name
    if prefix == "/":
        return "/" + name
    return f"{prefix}/{name}"
