"""Registry of simulated userland binary implementations.

Inodes of executables carry an ``exe_impl`` string; the executor looks the
implementation up here.  Packages install files pointing at these impls, so
"which binaries exist in an image" is decided by the image's filesystem, not
by this table.
"""

from __future__ import annotations

from typing import Callable

from .context import ExecContext

__all__ = ["binary", "get_binary", "has_binary", "BinaryImpl"]

BinaryImpl = Callable[[ExecContext, list[str]], int]

_REGISTRY: dict[str, BinaryImpl] = {}


def binary(name: str) -> Callable[[BinaryImpl], BinaryImpl]:
    """Register a binary implementation under *name*."""

    def deco(fn: BinaryImpl) -> BinaryImpl:
        if name in _REGISTRY:
            raise ValueError(f"binary impl {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return deco


def get_binary(name: str) -> BinaryImpl:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"no binary implementation registered for {name!r}")


def has_binary(name: str) -> bool:
    return name in _REGISTRY
