"""AST node types for the mini POSIX shell.

The grammar covers what container build RUN instructions actually use (see
the paper's Figures 8-11): simple commands with quoting and globs, variable
expansion, ``;`` lists, ``&&``/``||``, ``!``, pipelines, redirections,
``if``/``then``/``elif``/``else``/``fi``, and ``set -ex``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "Segment",
    "Word",
    "Redirect",
    "SimpleCommand",
    "Pipeline",
    "AndOr",
    "CommandList",
    "IfClause",
    "Command",
]


@dataclass(frozen=True)
class Segment:
    """A run of characters with uniform quoting.

    ``quote`` is "'" (no expansion), '"' (variable expansion, no globbing),
    or "" (expansion + globbing).
    """

    text: str
    quote: str = ""


@dataclass(frozen=True)
class Word:
    """One shell word: a concatenation of segments."""

    segments: tuple[Segment, ...]

    @classmethod
    def literal(cls, text: str) -> "Word":
        return cls((Segment(text, "'"),))

    def raw(self) -> str:
        """The word's text with quoting removed (pre-expansion)."""
        return "".join(s.text for s in self.segments)

    def is_literal(self, text: str) -> bool:
        return self.raw() == text


@dataclass(frozen=True)
class Redirect:
    """fd redirection: op in ('>', '>>', '<', '2>', '2>>', '2>&1')."""

    op: str
    target: Optional[Word]  # None for 2>&1


@dataclass(frozen=True)
class SimpleCommand:
    assignments: tuple[tuple[str, Word], ...]
    words: tuple[Word, ...]
    redirects: tuple[Redirect, ...] = ()


@dataclass(frozen=True)
class Pipeline:
    commands: tuple["Command", ...]
    negated: bool = False


@dataclass(frozen=True)
class AndOr:
    """pipeline (('&&'|'||') pipeline)*; ops[i] joins items[i] and items[i+1]."""

    items: tuple[Pipeline, ...]
    ops: tuple[str, ...]


@dataclass(frozen=True)
class CommandList:
    """Statements separated by ';' or newline."""

    items: tuple[AndOr, ...]


@dataclass(frozen=True)
class IfClause:
    """if cond; then body; [elif ...;] [else ...;] fi"""

    conditions: tuple[CommandList, ...]  # one per if/elif
    bodies: tuple[CommandList, ...]  # matching then-bodies
    else_body: Optional[CommandList] = None


Command = Union[SimpleCommand, IfClause]
