"""The declarative build-matrix subsystem.

Sites build container *families* — base distro × MPI flavor × framework
version — not single images.  This package turns a declarative spec
into a deduplicated farm run:

1. :mod:`~repro.matrix.spec` parses and validates the spec (axes,
   excludes/includes, Dockerfile template, tag pattern) — every
   degenerate shape is a loud :class:`MatrixSpecError`;
2. :mod:`~repro.matrix.expand` enumerates the concrete cells;
3. :mod:`~repro.matrix.plan` renders each cell and computes its Merkle
   chain keys, so shared stage builds are known *before* scheduling —
   the predicted **cache amplification** (total ÷ unique stage builds);
4. :mod:`~repro.matrix.orchestrator` runs the cells on the single-flight
   :class:`~repro.cluster.ci.BuildFarm` and pushes results per-tenant
   into the :class:`~repro.cluster.fleet.RegistryFleet`, reporting plan
   vs. measurement in a :class:`MatrixReport`;
5. :mod:`~repro.matrix.cli` is the ``astra-matrix`` front end.
"""

from .expand import Variant, expand
from .orchestrator import CellOutcome, MatrixReport, build_matrix
from .plan import CellPlan, MatrixPlan, plan_matrix
from .spec import Axis, MatrixSpec, MatrixSpecError, parse_spec_text
from .cli import astra_matrix_cli

__all__ = [
    "Axis",
    "CellOutcome",
    "CellPlan",
    "MatrixPlan",
    "MatrixReport",
    "MatrixSpec",
    "MatrixSpecError",
    "Variant",
    "astra_matrix_cli",
    "build_matrix",
    "expand",
    "parse_spec_text",
    "plan_matrix",
]
