"""Cross-product expansion: spec → concrete matrix cells.

Expansion is pure and deterministic: the cross product is enumerated
row-major in axis declaration order (last axis varies fastest), exclude
rules drop matching cells, include rows append extras, and every
surviving cell gets its tag rendered from the spec's tag pattern with
axis values sanitized into legal tag components.

Degenerate results are *errors*, never silent no-ops — a matrix
orchestrator that quietly builds nothing (or builds one thing 64 times)
is how a site ships an empty registry:

* a matrix whose cross product (before exclusion) has exactly one cell
  is a plain build in disguise — use ``ch-image build``;
* exclude rules that eliminate every cell leave nothing to build;
* two cells rendering the same tag would silently overwrite each other
  in storage and in the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..containers.dockerfile import template_variables
from .spec import MatrixSpec, MatrixSpecError, sanitize_tag_component

__all__ = ["Variant", "expand"]

# substitution on the *tag pattern* reuses the template's ${name} syntax
from ..containers.dockerfile import _VAR_RE  # noqa: E402


@dataclass(frozen=True)
class Variant:
    """One concrete matrix cell: an axis assignment and its image tag."""

    index: int
    tag: str
    values: tuple[tuple[str, str], ...]  # (axis, value), declaration order

    def value_map(self) -> dict[str, str]:
        return dict(self.values)

    @property
    def label(self) -> str:
        """Human-readable cell coordinates: ``base=centos:7 mpi=openmpi``."""
        return " ".join(f"{k}={v}" for k, v in self.values)


def render_tag(spec: MatrixSpec, values: dict[str, str]) -> str:
    """The cell's image tag: pattern variables replaced by *sanitized*
    axis values (``centos:7`` → ``centos-7``), so any axis value yields
    a legal ``repo:tag``."""
    return _VAR_RE.sub(
        lambda m: sanitize_tag_component(values[m.group(1)]),
        spec.tag_pattern)


def _matches(values: dict[str, str],
             rule: tuple[tuple[str, str], ...]) -> bool:
    return all(values.get(axis) == value for axis, value in rule)


def expand(spec: MatrixSpec) -> list[Variant]:
    """Expand *spec* into its concrete cells.

    Raises :class:`MatrixSpecError` on a single-cell matrix, an
    all-cells-excluded matrix, and duplicate rendered tags.
    """
    total = spec.cross_product_size
    if total == 1 and not spec.includes:
        only = " ".join(f"{ax.name}={ax.values[0]}" for ax in spec.axes)
        raise MatrixSpecError(
            f"matrix {spec.name!r}: a single cell ({only}) is not a "
            f"matrix — build it directly with ch-image build")

    assignments: list[tuple[tuple[str, str], ...]] = []
    for combo in product(*(ax.values for ax in spec.axes)):
        values = tuple(zip(spec.axis_names, combo))
        if any(_matches(dict(values), rule) for rule in spec.excludes):
            continue
        assignments.append(values)
    if not assignments and not spec.includes:
        raise MatrixSpecError(
            f"matrix {spec.name!r}: exclude rules eliminate all {total} "
            f"cells — nothing would be built")
    for row in spec.includes:
        if row not in assignments:
            assignments.append(row)

    variants: list[Variant] = []
    seen: dict[str, Variant] = {}
    for index, values in enumerate(assignments):
        variant = Variant(index=index,
                          tag=render_tag(spec, dict(values)),
                          values=values)
        clash = seen.get(variant.tag)
        if clash is not None:
            raise MatrixSpecError(
                f"matrix {spec.name!r}: cells [{clash.label}] and "
                f"[{variant.label}] both render tag {variant.tag!r} — "
                f"make the tag pattern distinguish them (it uses "
                f"{sorted(template_variables(spec.tag_pattern))}, the "
                f"matrix varies {list(spec.axis_names)})")
        seen[variant.tag] = variant
        variants.append(variant)
    return variants
