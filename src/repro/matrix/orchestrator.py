"""Run a planned matrix on the farm; push the results per-tenant.

The orchestrator is deliberately thin: all the heavy machinery already
exists.  Cells become :class:`~repro.cluster.ci.BuildFarm` submissions
(one shared Merkle :class:`~repro.cas.BuildCache`, single-flight
whole-image dedup, bounded parallelism on the sim clock, optional
worker-crash :class:`~repro.sim.FaultPlan`); successful images are
pushed into a :class:`~repro.cluster.fleet.RegistryFleet` under the
family's tenant namespace.  What this module adds is the *accounting*:
a :class:`MatrixReport` tying the static plan (predicted amplification)
to the measured run (cache stores, per-cell hit/miss slices, makespan,
queue wait) and exporting both through the obs layer's ``matrix``
counters and a ``matrix <name>`` span.

On a cold shared cache the plan is exact: the farm records one diff
store per *unique* stage build, so ``report.measured_stores ==
report.plan.unique_stage_builds`` — the matrix-smoke CI job and the
scaling benchmark both pin this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..archive import TarArchive
from ..core.push import flatten_archive
from ..obs.trace import kernel_span
from .plan import MatrixPlan, plan_matrix
from .spec import MatrixSpec

__all__ = ["CellOutcome", "MatrixReport", "build_matrix"]


@dataclass
class CellOutcome:
    """One cell's realized build (and push, when a fleet is attached)."""

    tag: str
    label: str                      # axis coordinates, e.g. "base=... mpi=..."
    success: bool
    deduped: bool                   # parked behind an identical in-flight cell
    digest: str = ""
    worker: int = -1
    queue_wait: float = 0.0
    duration: float = 0.0
    cache: dict = field(default_factory=dict)   # per-cell hit/miss slice
    pushed_ref: str = ""
    error: str = ""
    policy: str = ""                # "", "pass", or "reject"
    policy_error: str = ""

    def as_dict(self) -> dict:
        return {
            "tag": self.tag, "cell": self.label,
            "success": self.success, "deduped": self.deduped,
            "digest": self.digest, "worker": self.worker,
            "queue_wait": self.queue_wait, "duration": self.duration,
            "cache": dict(self.cache), "pushed": self.pushed_ref,
            "error": self.error,
            "policy": self.policy, "policy_error": self.policy_error,
        }


@dataclass
class MatrixReport:
    """Plan vs. measurement for one matrix run."""

    spec_name: str
    plan: MatrixPlan
    parallelism: int
    cells: list[CellOutcome] = field(default_factory=list)
    makespan: float = 0.0
    queue_wait_total: float = 0.0
    inflight_hits: int = 0
    measured_stores: int = 0
    measured_hits: int = 0
    worker_crashes: int = 0
    requeues: int = 0
    pushed: int = 0
    policy_rejections: int = 0
    tenant: Optional[str] = None
    fleet_report: Optional[dict] = None
    farm_report: object = None      # the underlying FarmReport

    @property
    def success(self) -> bool:
        return bool(self.cells) and all(c.success for c in self.cells)

    @property
    def policy_ok(self) -> bool:
        """True when no gated cell was rejected by the policy gate."""
        return self.policy_rejections == 0

    @property
    def amplification(self) -> float:
        return self.plan.amplification

    def digests(self) -> dict[str, str]:
        return {c.tag: c.digest for c in self.cells}

    def as_dict(self) -> dict:
        return {
            "spec": self.spec_name,
            "success": self.success,
            "parallelism": self.parallelism,
            "plan": self.plan.as_dict(),
            "amplification": self.amplification,
            "makespan": self.makespan,
            "queue_wait_total": self.queue_wait_total,
            "inflight_hits": self.inflight_hits,
            "measured_stores": self.measured_stores,
            "measured_hits": self.measured_hits,
            "worker_crashes": self.worker_crashes,
            "requeues": self.requeues,
            "pushed": self.pushed,
            "policy_rejections": self.policy_rejections,
            "tenant": self.tenant,
            "fleet": self.fleet_report,
            "cells": [c.as_dict() for c in self.cells],
        }

    def summary(self) -> list[str]:
        """Human-readable run summary (what the CLI prints)."""
        p = self.plan
        lines = [
            f"matrix {self.spec_name}: {p.n_cells} cells -> "
            f"{p.unique_cell_builds} unique images, "
            f"{p.total_stage_builds} stage builds -> "
            f"{p.unique_stage_builds} unique "
            f"(amplification {self.amplification:.2f}x)",
            f"farm: parallelism {self.parallelism}, makespan "
            f"{self.makespan * 1e3:.3f} ms, queue wait "
            f"{self.queue_wait_total * 1e3:.3f} ms, "
            f"{self.inflight_hits} single-flight replays",
            f"cache: {self.measured_stores} stores, "
            f"{self.measured_hits} hits",
        ]
        if self.worker_crashes:
            lines.append(f"faults: {self.worker_crashes} worker crash"
                         f"{'es' if self.worker_crashes != 1 else ''}, "
                         f"{self.requeues} requeues")
        if self.fleet_report is not None:
            lines.append(
                f"pushed {self.pushed} images to "
                f"{self.fleet_report['shards']} shard(s) as tenant "
                f"{self.tenant!r}")
        gated = [c for c in self.cells if c.policy]
        if gated:
            lines.append(
                f"policy gate: {len(gated) - self.policy_rejections} "
                f"pass, {self.policy_rejections} rejected")
            for c in gated:
                if c.policy == "reject":
                    lines.append(f"REJECTED {c.pushed_ref or c.tag} "
                                 f"[{c.label}]: {c.policy_error}")
        failed = [c for c in self.cells if not c.success]
        for c in failed:
            lines.append(f"FAILED {c.tag} [{c.label}]: {c.error}")
        if not failed:
            lines.append(f"ok: {len(self.cells)} cells built")
        return lines


def build_matrix(machine, user_proc, spec: MatrixSpec, *,
                 parallelism: int = 4, force: bool = False,
                 force_mode: str = "seccomp", fleet=None,
                 tenant: Optional[str] = None,
                 token: Optional[str] = None,
                 fault_plan=None, retry_budget: int = 8,
                 engine=None, build_cache=None,
                 attest: bool = False, signer=None,
                 policy_gate=None) -> MatrixReport:
    """Plan *spec*, build every cell on a shared-cache farm, and push
    successes into *fleet* (when given) under *tenant*'s namespace.

    *tenant* defaults to the spec's ``tenant`` field; the tenant is
    registered on the fleet (with *token*) if not already present.
    Raises :class:`~repro.matrix.MatrixSpecError` before any build when
    the spec is degenerate; build failures are per-cell outcomes, not
    exceptions.

    The supply-chain options ride the push: with *attest*, every cell's
    SBOM + provenance bundle is generated from the built tree and pushed
    with the image; with *signer*, the fleet signs each manifest on
    push; with *policy_gate*, every pushed image is audited fleet-side
    right after its push — a rejection is recorded on the cell (and in
    ``report.policy_rejections``) so nothing downstream deploys it.
    """
    from ..cluster.ci import BuildFarm
    from ..errors import SupplyPolicyError
    plan = plan_matrix(spec, force=force, force_mode=force_mode)
    tenant = tenant if tenant is not None else spec.tenant
    kernel = machine.kernel
    tracer = getattr(kernel, "tracer", None)
    if fleet is not None and signer is not None:
        fleet.signer = signer
    if policy_gate is not None and policy_gate.tracer is None:
        policy_gate.tracer = tracer

    with kernel_span(kernel, f"matrix {spec.name}", "matrix",
                     cells=plan.n_cells,
                     unique_stage_builds=plan.unique_stage_builds,
                     parallelism=parallelism) as sp:
        farm = BuildFarm(machine, user_proc, parallelism=parallelism,
                         engine=engine, build_cache=build_cache,
                         force_mode=force_mode, fault_plan=fault_plan,
                         retry_budget=retry_budget)
        for cell in plan.cells:
            farm.submit(tag=cell.tag, dockerfile=cell.dockerfile,
                        force=force)
        farm_report = farm.run()

        report = MatrixReport(spec_name=spec.name, plan=plan,
                              parallelism=parallelism, tenant=tenant,
                              farm_report=farm_report)
        schedule = farm_report.schedule
        report.makespan = schedule.makespan
        report.queue_wait_total = schedule.queue_wait_total
        report.inflight_hits = schedule.inflight_hits
        report.worker_crashes = schedule.worker_crashes
        report.requeues = schedule.requeues
        report.measured_stores = farm_report.cache_stats.stores
        report.measured_hits = farm_report.cache_stats.hits

        storage = farm.builder.storage
        if fleet is not None and tenant is not None \
                and tenant not in fleet.tenants:
            fleet.add_tenant(tenant, token=token)
        for cell, img, task in zip(plan.cells, farm_report.images,
                                   schedule.tasks):
            outcome = CellOutcome(
                tag=cell.tag, label=cell.variant.label,
                success=img.success, deduped=img.deduped,
                worker=task.worker, queue_wait=task.queue_wait,
                duration=task.finish - task.start,
                cache=(img.cache_stats.as_dict()
                       if img.cache_stats is not None else {}),
                error=(img.result.error if img.result is not None
                       and img.result.error else task.error))
            if img.success:
                outcome.digest = storage.digest_of(cell.tag)
                if fleet is not None:
                    ref = f"{tenant}/{cell.tag}" if tenant else cell.tag
                    archive = TarArchive.pack(
                        storage.sys, storage.path_of(cell.tag))
                    attestations = None
                    if attest:
                        from ..supply import build_attestations
                        attestations = build_attestations(
                            farm.builder, cell.tag, cell.dockerfile,
                            force=force, force_mode=force_mode).blobs()
                    fleet.push(ref, storage.config_of(cell.tag),
                               [flatten_archive(archive)], token=token,
                               attestations=attestations)
                    outcome.pushed_ref = ref
                    report.pushed += 1
                    if policy_gate is not None:
                        try:
                            policy_gate.check(fleet, ref)
                            outcome.policy = "pass"
                        except SupplyPolicyError as err:
                            outcome.policy = "reject"
                            outcome.policy_error = "; ".join(
                                err.violations) or str(err)
                            report.policy_rejections += 1
            report.cells.append(outcome)
        if fleet is not None:
            report.fleet_report = fleet.report()

        if tracer is not None:
            m = tracer.metrics
            m.count_matrix("cells", plan.n_cells)
            m.count_matrix("unique_cell_builds", plan.unique_cell_builds)
            m.count_matrix("stage_builds_total", plan.total_stage_builds)
            m.count_matrix("stage_builds_unique",
                           plan.unique_stage_builds)
            m.count_matrix("amplification_x100",
                           int(plan.amplification * 100))
            m.count_matrix("makespan_us", int(report.makespan * 1e6))
            m.count_matrix("pushed", report.pushed)
            if report.policy_rejections:
                m.count_matrix("policy_rejections",
                               report.policy_rejections)
            if not report.success:
                m.count_matrix("failed_cells",
                               sum(1 for c in report.cells
                                   if not c.success))
        if not report.success and sp is not None:
            sp.fail(f"{sum(1 for c in report.cells if not c.success)} "
                    f"of {plan.n_cells} cells failed")
    return report
