"""Build-matrix specs: parse and validate declaratively, fail loudly.

A *matrix spec* names an image family the way HPC sites actually build
them — base distro × MPI flavor × framework version — as a cross product
of axes over one Dockerfile template.  The survey of adaptive
containerization architectures calls this the dominant site workload;
the paper's unprivileged builder only ever sees one cell at a time.
This module is the declarative front door: everything that can be
rejected *before* any build is scheduled is rejected here, as a
:class:`MatrixSpecError` with the offending axis/value/cell named.

Two input shapes, one validator:

* :meth:`MatrixSpec.from_dict` — the programmatic form (tests, CI).
* :func:`parse_spec_text` — a small line-oriented file format (no YAML
  dependency)::

      # image family: base distro x MPI x framework
      name: hpc-apps
      tag: hpc/${base}-${mpi}:${fw}
      axis base: centos:7 | debian:buster
      axis mpi: openmpi | mpich
      axis fw: torch-2.1 | torch-2.2
      exclude: base=debian:buster mpi=mpich
      include: base=centos:7 mpi=openmpi fw=torch-nightly
      template: |
        ARG fw
        FROM ${base}
        RUN echo install ${mpi}
        RUN echo install ${fw}

  ``template: |`` starts an indented block (every following line must be
  blank or indented; it is dedented verbatim).  ``exclude`` rules are
  partial assignments — a cell matching *every* listed pair is dropped.
  ``include`` rows are full assignments appended after exclusion,
  GitHub-Actions style (values outside the declared axis lists are
  allowed there, and only there).

Validation invariants (each violation is a :class:`MatrixSpecError`):
axes must be non-empty and duplicate-free; every axis must be referenced
by the template (an axis that does not shape the image is an N-way
duplicate build, not a matrix); every ``${var}`` in template and tag
pattern must resolve to an axis or an ``ARG`` default; exclude/include
rules may only name declared axes and (for exclude) declared values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..containers.dockerfile import template_preamble_args, template_variables
from ..errors import ReproError

__all__ = ["Axis", "MatrixSpec", "MatrixSpecError", "parse_spec_text"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")
#: characters legal in an image tag/repository component; everything
#: else collapses to ``-`` when an axis value lands in a tag
_TAG_SANITIZE_RE = re.compile(r"[^A-Za-z0-9_.-]+")


class MatrixSpecError(ReproError):
    """A build-matrix spec is malformed or degenerate."""


def sanitize_tag_component(value: str) -> str:
    """An axis value as a tag component: ``centos:7`` → ``centos-7``."""
    return _TAG_SANITIZE_RE.sub("-", value).strip("-")


@dataclass(frozen=True)
class Axis:
    """One matrix dimension: an ordered, duplicate-free value list."""

    name: str
    values: tuple[str, ...]


@dataclass(frozen=True)
class MatrixSpec:
    """A validated build-matrix specification."""

    name: str
    tag_pattern: str
    axes: tuple[Axis, ...]
    template: str
    excludes: tuple[tuple[tuple[str, str], ...], ...] = ()
    includes: tuple[tuple[tuple[str, str], ...], ...] = ()
    tenant: Optional[str] = None

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    def axis(self, name: str) -> Axis:
        for ax in self.axes:
            if ax.name == name:
                return ax
        raise MatrixSpecError(f"matrix {self.name!r}: no axis {name!r}")

    @property
    def cross_product_size(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    @classmethod
    def from_dict(cls, d: Mapping) -> "MatrixSpec":
        """Build and validate a spec from a plain mapping.

        Keys: ``name`` (str), ``tag`` (pattern, str), ``axes`` (mapping
        name → value sequence, in iteration order), ``template`` (str),
        optional ``exclude`` / ``include`` (sequences of mappings) and
        ``tenant`` (str).
        """
        name = d.get("name")
        if not isinstance(name, str) or not name.strip():
            raise MatrixSpecError("matrix spec needs a non-empty 'name'")
        name = name.strip()

        raw_axes = d.get("axes")
        if not isinstance(raw_axes, Mapping) or not raw_axes:
            raise MatrixSpecError(
                f"matrix {name!r}: needs at least one axis")
        axes: list[Axis] = []
        for axis_name, values in raw_axes.items():
            if not _NAME_RE.match(str(axis_name)):
                raise MatrixSpecError(
                    f"matrix {name!r}: bad axis name {axis_name!r} "
                    f"(want an identifier)")
            if isinstance(values, str) or not isinstance(values, Sequence):
                raise MatrixSpecError(
                    f"matrix {name!r}: axis {axis_name!r} needs a value "
                    f"list")
            vals = tuple(str(v).strip() for v in values)
            if not vals or any(not v for v in vals):
                raise MatrixSpecError(
                    f"matrix {name!r}: axis {axis_name!r} is empty — an "
                    f"axis with no values makes the whole matrix empty")
            dupes = sorted({v for v in vals if vals.count(v) > 1})
            if dupes:
                raise MatrixSpecError(
                    f"matrix {name!r}: axis {axis_name!r} repeats "
                    f"value(s) {', '.join(dupes)}")
            axes.append(Axis(str(axis_name), vals))
        axis_names = {ax.name for ax in axes}
        if len(axis_names) != len(axes):
            raise MatrixSpecError(f"matrix {name!r}: duplicate axis names")

        template = d.get("template")
        if not isinstance(template, str) or not template.strip():
            raise MatrixSpecError(
                f"matrix {name!r}: needs a Dockerfile 'template'")
        tag_pattern = d.get("tag")
        if not isinstance(tag_pattern, str) or not tag_pattern.strip():
            raise MatrixSpecError(
                f"matrix {name!r}: needs a 'tag' pattern")
        tag_pattern = tag_pattern.strip()

        # every ${var} must resolve to an axis or an ARG default; every
        # axis must shape the image (be referenced by the template)
        defaults = {n for n, v in template_preamble_args(template).items()
                    if v is not None}
        tpl_vars = template_variables(template)
        for var in sorted(template_variables(tag_pattern) - axis_names):
            raise MatrixSpecError(
                f"matrix {name!r}: tag pattern references ${{{var}}} "
                f"which is not an axis")
        for var in sorted(tpl_vars - axis_names - defaults):
            raise MatrixSpecError(
                f"matrix {name!r}: template references ${{{var}}} which "
                f"is neither an axis nor an ARG with a default")
        for ax in axes:
            if ax.name not in tpl_vars:
                raise MatrixSpecError(
                    f"matrix {name!r}: axis {ax.name!r} is never used by "
                    f"the template — every cell along it would be the "
                    f"same image built {len(ax.values)} times over")

        by_name = {ax.name: ax for ax in axes}
        excludes = tuple(
            cls._rule(name, "exclude", rule, by_name, full=False)
            for rule in d.get("exclude", ()))
        includes = tuple(
            cls._rule(name, "include", rule, by_name, full=True)
            for rule in d.get("include", ()))

        tenant = d.get("tenant")
        if tenant is not None:
            tenant = str(tenant).strip()
            if "/" in tenant or not tenant:
                raise MatrixSpecError(
                    f"matrix {name!r}: tenant must be a single non-empty "
                    f"path segment, got {tenant!r}")

        return cls(name=name, tag_pattern=tag_pattern, axes=tuple(axes),
                   template=template, excludes=excludes,
                   includes=includes, tenant=tenant)

    @staticmethod
    def _rule(name: str, kind: str, rule: Mapping, axes: Mapping[str, Axis],
              *, full: bool) -> tuple[tuple[str, str], ...]:
        if not isinstance(rule, Mapping) or not rule:
            raise MatrixSpecError(
                f"matrix {name!r}: {kind} rules are non-empty "
                f"axis=value mappings, got {rule!r}")
        for axis_name, value in rule.items():
            if axis_name not in axes:
                raise MatrixSpecError(
                    f"matrix {name!r}: {kind} rule names unknown axis "
                    f"{axis_name!r}")
            if not full and str(value) not in axes[axis_name].values:
                raise MatrixSpecError(
                    f"matrix {name!r}: {kind} rule names unknown value "
                    f"{value!r} for axis {axis_name!r}")
        if full:
            missing = sorted(set(axes) - set(rule))
            if missing:
                raise MatrixSpecError(
                    f"matrix {name!r}: {kind} rows are full assignments; "
                    f"missing axis(es) {', '.join(missing)}")
        # canonical order: axis declaration order, so identical rules
        # written in different orders compare equal
        return tuple((ax, str(rule[ax])) for ax in axes if ax in rule)


# -- the text format ----------------------------------------------------------------

_AXIS_LINE_RE = re.compile(r"^axis\s+([A-Za-z_][A-Za-z_0-9]*)\s*:\s*(.*)$")
_PAIR_RE = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)=(\S+)")


def _parse_pairs(name: str, kind: str, body: str, lineno: int) -> dict:
    pairs = dict(_PAIR_RE.findall(body))
    leftover = _PAIR_RE.sub("", body).strip()
    if not pairs or leftover:
        raise MatrixSpecError(
            f"matrix spec line {lineno}: {kind} wants space-separated "
            f"axis=value pairs, got {body!r}")
    return pairs


def parse_spec_text(text: str) -> MatrixSpec:
    """Parse the line-oriented spec format into a validated
    :class:`MatrixSpec` (see the module docstring for the grammar)."""
    d: dict = {"axes": {}, "exclude": [], "include": []}
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        raw = lines[i]
        i += 1
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        lineno = i  # 1-based: i was already advanced
        m = _AXIS_LINE_RE.match(stripped)
        if m:
            axis_name = m.group(1)
            if axis_name in d["axes"]:
                raise MatrixSpecError(
                    f"matrix spec line {lineno}: duplicate axis "
                    f"{axis_name!r}")
            d["axes"][axis_name] = [v.strip()
                                    for v in m.group(2).split("|")]
            continue
        key, sep, body = stripped.partition(":")
        if not sep:
            raise MatrixSpecError(
                f"matrix spec line {lineno}: cannot parse {stripped!r}")
        key, body = key.strip(), body.strip()
        if key == "template":
            if body != "|":
                raise MatrixSpecError(
                    f"matrix spec line {lineno}: template starts an "
                    f"indented block — write 'template: |'")
            block: list[str] = []
            while i < len(lines):
                line = lines[i]
                if line.strip() and not line[:1].isspace():
                    break
                block.append(line)
                i += 1
            while block and not block[-1].strip():
                block.pop()
            if not block:
                raise MatrixSpecError(
                    f"matrix spec line {lineno}: empty template block")
            indent = min(len(ln) - len(ln.lstrip())
                         for ln in block if ln.strip())
            d["template"] = "\n".join(ln[indent:] for ln in block) + "\n"
        elif key == "exclude":
            d["exclude"].append(_parse_pairs("", "exclude", body, lineno))
        elif key == "include":
            d["include"].append(_parse_pairs("", "include", body, lineno))
        elif key in ("name", "tag", "tenant"):
            d[key] = body
        else:
            raise MatrixSpecError(
                f"matrix spec line {lineno}: unknown key {key!r}")
    return MatrixSpec.from_dict(d)
