"""Matrix planning: recognize shared work *before* scheduling any of it.

For every expanded cell the planner renders the Dockerfile template and
computes its instruction-level Merkle chain keys
(:func:`~repro.core.build_graph.instruction_chain_keys`) — the same keys
the shared :class:`~repro.cas.BuildCache` will derive at build time.  A
**stage build** is one executable work unit at the cache's granularity:
a RUN/COPY/ADD instruction, identified by its chain key (its full
Merkle prefix).  Cells that agree on a prefix — same base, same early
RUNs — share those keys, so the plan knows exactly which builds the
cache and the single-flight farm will collapse:

* ``total_stage_builds`` — what N independent builders would execute;
* ``unique_stage_builds`` — distinct chain keys: what one shared-cache
  farm executes (and, on a cold cache, exactly the diff ``stores`` it
  records — the orchestrator asserts this);
* **cache amplification** = total ÷ unique, the headline metric: how
  many cells' worth of work each unique stage build serves.

``unique_cell_builds`` counts distinct rendered Dockerfiles (the
whole-image plan keys the farm single-flights); identical cells park
behind one leader and replay warm.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..containers.dockerfile import parse_stage_graph, render_dockerfile
from ..core.build_graph import instruction_chain_keys, plan_flight_key
from ..errors import BuildError
from .expand import Variant, expand
from .spec import MatrixSpec, MatrixSpecError

__all__ = ["CellPlan", "MatrixPlan", "plan_matrix"]

#: instruction kinds that execute work and store a layer diff — the
#: build cache's unit of deduplication, and therefore the planner's
EXECUTABLE_KINDS = ("RUN", "COPY", "ADD")


@dataclass(frozen=True)
class CellPlan:
    """One cell, rendered and keyed."""

    variant: Variant
    dockerfile: str
    flight_key: str                 # whole-image single-flight key
    unit_keys: tuple[str, ...]      # chain keys of executable instructions

    @property
    def tag(self) -> str:
        return self.variant.tag


@dataclass
class MatrixPlan:
    """The deduplicated work a matrix implies, known before building."""

    spec_name: str
    force: bool
    force_mode: str
    cells: list[CellPlan] = field(default_factory=list)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def unique_cell_builds(self) -> int:
        return len({c.flight_key for c in self.cells})

    @property
    def total_stage_builds(self) -> int:
        return sum(len(c.unit_keys) for c in self.cells)

    @property
    def unique_stage_builds(self) -> int:
        return len({k for c in self.cells for k in c.unit_keys})

    @property
    def amplification(self) -> float:
        """total ÷ unique stage builds (1.0 when nothing executes)."""
        unique = self.unique_stage_builds
        return self.total_stage_builds / unique if unique else 1.0

    def sharing_histogram(self) -> dict[int, int]:
        """How wide the sharing is: {cells-sharing → unique stages
        shared that widely}.  ``{1: 64, 3: 6}`` reads "64 stages are
        cell-private, 6 are shared by 3 cells each"."""
        per_key: Counter[str] = Counter()
        for cell in self.cells:
            for key in set(cell.unit_keys):
                per_key[key] += 1
        hist: Counter[int] = Counter(per_key.values())
        return dict(sorted(hist.items()))

    def as_dict(self) -> dict:
        return {
            "spec": self.spec_name,
            "cells": self.n_cells,
            "unique_cell_builds": self.unique_cell_builds,
            "total_stage_builds": self.total_stage_builds,
            "unique_stage_builds": self.unique_stage_builds,
            "amplification": self.amplification,
            "sharing_histogram": {
                str(k): v for k, v in self.sharing_histogram().items()},
        }


def plan_matrix(spec: MatrixSpec, *, force: bool = False,
                force_mode: str = "") -> MatrixPlan:
    """Expand, render, and key every cell of *spec*.

    Template rendering and Dockerfile parse errors surface as
    :class:`MatrixSpecError` naming the offending cell — the whole
    matrix is validated before a single build is scheduled.
    """
    plan = MatrixPlan(spec_name=spec.name, force=force,
                      force_mode=force_mode if force else "")
    for variant in expand(spec):
        try:
            dockerfile = render_dockerfile(spec.template,
                                           variant.value_map())
            graph = parse_stage_graph(dockerfile)
        except BuildError as err:
            raise MatrixSpecError(
                f"matrix {spec.name!r}: cell [{variant.label}]: "
                f"{err}") from err
        chains = instruction_chain_keys(graph, force=force,
                                        force_mode=force_mode)
        unit_keys = tuple(
            key for chain in chains for inst, key in chain[1:]
            if inst.kind in EXECUTABLE_KINDS)
        plan.cells.append(CellPlan(
            variant=variant, dockerfile=dockerfile,
            flight_key=plan_flight_key(dockerfile, force=force,
                                       force_mode=force_mode if force
                                       else ""),
            unit_keys=unit_keys))
    return plan
