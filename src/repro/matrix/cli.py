"""The ``astra-matrix`` front end: one spec file in, a family out.

::

    astra-matrix [--parallelism N] [--registry-shards N] [--replicas R]
                 [--tenant NAME] [--token T] [--force]
                 [--fault-plan SPEC] [--retries N]
                 [--policy [--policy-threshold SEV] [--signing-key NAME]]
                 -f SPECFILE USER

Reads the matrix spec from SPECFILE (the :func:`~repro.matrix.spec.
parse_spec_text` format), builds every cell on the login node's build
farm, and — when ``--registry-shards`` ≥ 1 — deploys the site registry
as a :class:`~repro.cluster.fleet.RegistryFleet` of that size and
pushes the family under the tenant namespace.  ``--fault-plan`` takes
the same :meth:`repro.sim.FaultPlan.parse` spec as ``astra-deploy``
(worker crashes hit the farm; builds requeue and single-flight waiters
are promoted).  ``--policy`` turns the supply chain on for the run:
every cell is attested (SBOM + provenance), signed on push (seeded key
``--signing-key``, default ``site-ci``), and audited by a
:class:`~repro.supply.PolicyGate` with the seeded advisory feed; any
rejection fails the run.  Returns ``(exit_status, output_text)`` like
every other CLI shim here.
"""

from __future__ import annotations

from ..errors import KernelError, ReproError
from ..kernel import Syscalls
from ..sim import FaultPlan, FaultPlanError
from .orchestrator import build_matrix
from .spec import MatrixSpecError, parse_spec_text

__all__ = ["astra_matrix_cli"]

_USAGE = ("usage: astra-matrix [--parallelism N] [--registry-shards N] "
          "[--replicas R] [--tenant NAME] [--token T] [--force] "
          "[--fault-plan SPEC] [--retries N] [--policy "
          "[--policy-threshold SEV] [--signing-key NAME]] "
          "-f SPECFILE USER")


def _int_opt(argv: list[str], i: int, a: str, name: str, *, minimum: int
             ) -> tuple[int, int, str]:
    """Parse ``--opt N`` / ``--opt=N``; returns (value, new_i, error)."""
    if a == name:
        i += 1
        value = argv[i] if i < len(argv) else ""
    else:
        value = a.split("=", 1)[1]
    try:
        n = int(value)
    except ValueError:
        n = minimum - 1
    if n < minimum:
        return 0, i, f"astra-matrix: bad {name} value {value!r}"
    return n, i, ""


def astra_matrix_cli(cluster, argv: list[str]) -> tuple[int, str]:
    parallelism = 4
    registry_shards = 0
    replicas = 1
    tenant: str | None = None
    token: str | None = None
    force = False
    fault_spec: str | None = None
    retries = 8
    policy = False
    policy_threshold = "high"
    signing_key = "site-ci"
    spec_path = ""
    user = ""
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--parallelism" or a.startswith("--parallelism="):
            parallelism, i, err = _int_opt(argv, i, a, "--parallelism",
                                           minimum=1)
            if err:
                return 1, err
        elif a == "--registry-shards" \
                or a.startswith("--registry-shards="):
            registry_shards, i, err = _int_opt(
                argv, i, a, "--registry-shards", minimum=0)
            if err:
                return 1, err
        elif a == "--replicas" or a.startswith("--replicas="):
            replicas, i, err = _int_opt(argv, i, a, "--replicas",
                                        minimum=1)
            if err:
                return 1, err
        elif a == "--retries" or a.startswith("--retries="):
            retries, i, err = _int_opt(argv, i, a, "--retries", minimum=0)
            if err:
                return 1, err
        elif a == "--tenant":
            i += 1
            tenant = argv[i] if i < len(argv) else None
        elif a == "--token":
            i += 1
            token = argv[i] if i < len(argv) else None
        elif a == "--force":
            force = True
        elif a == "--policy":
            policy = True
        elif a == "--policy-threshold" \
                or a.startswith("--policy-threshold="):
            if a == "--policy-threshold":
                i += 1
                policy_threshold = argv[i] if i < len(argv) else ""
            else:
                policy_threshold = a.split("=", 1)[1]
        elif a == "--signing-key" or a.startswith("--signing-key="):
            if a == "--signing-key":
                i += 1
                signing_key = argv[i] if i < len(argv) else ""
            else:
                signing_key = a.split("=", 1)[1]
        elif a == "--fault-plan" or a.startswith("--fault-plan="):
            if a == "--fault-plan":
                i += 1
                if i >= len(argv):
                    return 1, "astra-matrix: --fault-plan needs a value"
                fault_spec = argv[i]
            else:
                fault_spec = a.split("=", 1)[1]
        elif a == "-f":
            i += 1
            spec_path = argv[i] if i < len(argv) else ""
        elif a.startswith("-"):
            return 1, f"astra-matrix: unknown option {a!r}\n{_USAGE}"
        else:
            user = a
        i += 1
    if not (spec_path and user):
        return 1, _USAGE
    if replicas > max(registry_shards, 1):
        return 1, (f"astra-matrix: --replicas {replicas} exceeds "
                   f"--registry-shards {registry_shards}")
    if user not in cluster.login.users:
        return 1, f"astra-matrix: no account {user!r} on the login node"

    fault_plan = None
    if fault_spec is not None:
        try:
            fault_plan = FaultPlan.parse(fault_spec)
        except FaultPlanError as err:
            return 1, f"astra-matrix: {err}"

    login_proc = cluster.login.login(user)
    try:
        text = Syscalls(login_proc).read_file(spec_path).decode()
    except KernelError as err:
        return 1, f"astra-matrix: can't read {spec_path}: {err.strerror}"
    try:
        spec = parse_spec_text(text)
    except MatrixSpecError as err:
        return 1, f"astra-matrix: {err}"

    fleet = None
    if registry_shards >= 1:
        from ..cluster.fleet import deploy_fleet
        fleet = deploy_fleet(cluster.world, n_shards=registry_shards,
                             replicas=replicas)

    signer = None
    gate = None
    if policy:
        if fleet is None:
            return 1, ("astra-matrix: --policy needs a fleet "
                       "(--registry-shards >= 1)")
        from ..supply import (KeyRegistry, PolicyGate, SupplyPolicy,
                              make_advisory_db, severity_rank)
        try:
            severity_rank(policy_threshold)
        except ValueError as err:
            return 1, f"astra-matrix: {err}"
        keys = KeyRegistry(seed=0)
        signer = keys.signer(signing_key)
        gate = PolicyGate(
            SupplyPolicy(severity_threshold=policy_threshold,
                         trusted_keys=(signing_key,)),
            keys=keys, advisories=make_advisory_db(seed=0))

    try:
        report = build_matrix(cluster.login, login_proc, spec,
                              parallelism=parallelism, force=force,
                              fleet=fleet, tenant=tenant, token=token,
                              fault_plan=fault_plan,
                              retry_budget=retries,
                              attest=policy, signer=signer,
                              policy_gate=gate)
    except ReproError as err:
        return 1, f"astra-matrix: {err}"
    ok = report.success and (not policy or report.policy_ok)
    return (0 if ok else 1), "\n".join(report.summary())
