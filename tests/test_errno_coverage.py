"""Every errno the simulation can raise must be exercised by a test.

The test scans ``src/repro`` for ``KernelError(Errno.X, ...)`` raise sites,
then replays one trigger scenario per errno under the syscall tracer and
checks the tracer's per-errno counters.  A new raise site without a
matching trigger fails with the list of unexercised errnos — keeping the
errno surface (the paper's primary failure evidence: EPERM 1, EINVAL 22,
...) fully covered as the simulation grows.
"""

import re
from pathlib import Path

import pytest

from repro.errors import Errno, KernelError
from repro.kernel import (
    Kernel,
    MountFlags,
    Syscalls,
    make_ext4,
    make_nfs,
    make_tmpfs,
)
from repro.obs import attach_tracer

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: matches the raise convention, including multi-line raises
RAISE_RE = re.compile(r"KernelError\(\s*Errno\.(\w+)")


def declared_errnos() -> set[str]:
    names: set[str] = set()
    for py in SRC.rglob("*.py"):
        names |= set(RAISE_RE.findall(py.read_text()))
    return names


def test_scan_finds_the_known_raise_sites():
    """Guard against the regex silently rotting."""
    declared = declared_errnos()
    assert {"EPERM", "EINVAL", "EACCES", "ENOENT", "EROFS",
            "ENOEXEC", "EUSERS", "ELOOP", "EIO"} <= declared


def expect(errno: Errno, fn, *args, **kwargs):
    with pytest.raises(KernelError) as exc:
        fn(*args, **kwargs)
    assert exc.value.errno == errno, exc.value


def test_every_raised_errno_is_exercised():
    k = Kernel(make_ext4(), hostname="cov")
    tracer = attach_tracer(k)
    root = Syscalls(k.init_process)
    root.mkdir("/etc", 0o755)
    root.mkdir("/bin", 0o755)
    root.mkdir("/tmp", 0o777)
    root.mkdir("/home", 0o755)
    root.mkdir("/home/alice", 0o755)
    root.chown("/home/alice", 1000, 1000)
    alice = k.login(1000, 1000, user="alice", home="/home/alice")
    asys = Syscalls(alice)

    # ENOENT: nothing there
    expect(Errno.ENOENT, root.stat, "/nope")
    # EACCES: alice cannot create under root-owned /etc
    expect(Errno.EACCES, asys.write_file, "/etc/x", b"")
    # EPERM: alice cannot give her file away (classic paper failure)
    asys.write_file("/home/alice/f", b"hi")
    expect(Errno.EPERM, asys.chown, "/home/alice/f", 0, 0)
    # EINVAL: unmapped ID inside a single-ID namespace (Fig. 3 seteuid 100)
    type3 = Syscalls(alice.fork(comm="type3"))
    type3.setup_single_id_userns()
    expect(Errno.EINVAL, type3.seteuid, 100)
    # ENOTDIR: path component is a regular file
    root.write_file("/tmp/f", b"x")
    expect(Errno.ENOTDIR, root.stat, "/tmp/f/sub")
    # EISDIR: truncate a directory
    expect(Errno.EISDIR, root.truncate, "/tmp", 0)
    # EEXIST: mkdir over an existing entry
    expect(Errno.EEXIST, root.mkdir, "/tmp", 0o777)
    # ENOTEMPTY: rmdir a populated directory
    expect(Errno.ENOTEMPTY, root.rmdir, "/tmp")
    # EXDEV: rename across filesystems
    root.mkdir("/ram", 0o755)
    root.mount_fs(make_tmpfs(), "/ram")
    expect(Errno.EXDEV, root.rename, "/tmp/f", "/ram/f")
    # EROFS: write through a read-only mount
    root.mkdir("/ro", 0o755)
    root.mount_fs(make_ext4("rofs"), "/ro", MountFlags(read_only=True))
    expect(Errno.EROFS, root.write_file, "/ro/x", b"")
    # EBUSY: unmounting the root filesystem
    expect(Errno.EBUSY, root.umount, "/")
    # ELOOP: symlink cycle
    root.symlink("/tmp/b", "/tmp/a")
    root.symlink("/tmp/a", "/tmp/b")
    expect(Errno.ELOOP, root.stat, "/tmp/a")
    # ENODATA: absent xattr
    expect(Errno.ENODATA, root.getxattr, "/tmp/f", "user.missing")
    # ENOTSUP: user.* xattrs on an NFS mount without xattr support (§6.2.1)
    root.mkdir("/nfs", 0o777)
    root.mount_fs(make_nfs(), "/nfs")
    root.write_file("/nfs/f", b"x")
    expect(Errno.ENOTSUP, root.setxattr, "/nfs/f", "user.k", b"v")
    # EUSERS: user namespace nesting beyond the kernel's 32 levels
    nester = Syscalls(alice.fork(comm="nester"))
    with pytest.raises(KernelError) as exc:
        for _ in range(40):
            nester.unshare_user()
    assert exc.value.errno == Errno.EUSERS
    # ENOSPC: the max_user_namespaces sysctl
    k.sysctl["user.max_user_namespaces"] = k.userns_count
    expect(Errno.ENOSPC, Syscalls(alice.fork(comm="nope")).unshare_user)
    del k.sysctl["user.max_user_namespaces"]  # restore default behaviour
    k.sysctl.setdefault("user.max_user_namespaces", 1 << 20)
    # ENOEXEC: binary built for a foreign ISA (the §4.2 laptop trap)
    root.write_file("/bin/prog", b"\x7fELF", mode=0o755)
    root._resolve("/bin/prog").inode.exe_arch = "aarch64"
    expect(Errno.ENOEXEC, root.prepare_exec, "/bin/prog")
    # EIO: directory entry pointing at a vanished inode
    root.write_file("/tmp/stale", b"x")
    res = root._resolve("/tmp/stale")
    del res.fs._inodes[res.inode.ino]
    expect(Errno.EIO, root.stat, "/tmp/stale")

    covered = set(tracer.metrics.errnos)
    missing = sorted(declared_errnos() - covered)
    assert not missing, (
        f"errnos raised somewhere in src/repro but never exercised through "
        f"a traced syscall: {missing} — add a trigger scenario here")
