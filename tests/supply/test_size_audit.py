"""Unit tests for the per-layer size audit."""

from repro.archive import TarArchive, TarMember
from repro.kernel import FileType
from repro.supply import audit_layers, layers_as_dict


def member(path, data):
    return TarMember(path, FileType.REG, 0o644, 0, 0, data=data)


def layer(*members):
    return TarArchive(list(members))


class TestAuditLayers:
    def test_single_layer_accounting(self):
        audits = audit_layers([layer(member("/a", b"x" * 10),
                                     member("/b", b"y" * 4))])
        (a,) = audits
        assert (a.members, a.total_bytes) == (2, 14)
        assert a.unique_bytes == 14 and a.duplicate_bytes == 0
        assert [m.path for m in a.largest] == ["/a", "/b"]

    def test_duplicates_are_cumulative_across_layers(self):
        """A byte run counts as unique exactly once image-wide; later
        copies are the bloat number the audit attributes."""
        audits = audit_layers([
            layer(member("/bin/tool", b"elf" * 100)),
            layer(member("/opt/copy", b"elf" * 100),
                  member("/opt/new", b"fresh")),
        ])
        assert audits[0].duplicate_bytes == 0
        assert audits[1].duplicate_bytes == 300
        assert audits[1].unique_bytes == 5
        dup = [m for m in audits[1].largest if m.duplicate]
        assert [m.path for m in dup] == ["/opt/copy"]

    def test_duplicate_within_one_layer(self):
        (a,) = audit_layers([layer(member("/a", b"same"),
                                   member("/b", b"same"))])
        assert a.unique_bytes == 4 and a.duplicate_bytes == 4

    def test_largest_is_size_then_path(self):
        (a,) = audit_layers([layer(member("/z", b"xx"), member("/a", b"yy"),
                                   member("/big", b"x" * 9))],
                            top=2)
        assert [m.path for m in a.largest] == ["/big", "/a"]

    def test_empty_members_do_not_dedup(self):
        (a,) = audit_layers([layer(member("/d1", b""), member("/d2", b""))])
        assert a.duplicate_bytes == 0 and a.total_bytes == 0

    def test_rollup_sums(self):
        audits = audit_layers([
            layer(member("/a", b"x" * 10)),
            layer(member("/b", b"x" * 10), member("/c", b"z" * 3)),
        ])
        d = layers_as_dict(audits)
        assert d["total_bytes"] == 23
        assert d["unique_bytes"] == 13
        assert d["duplicate_bytes"] == 10
        assert len(d["layers"]) == 2
        assert d["layers"][1]["largest"][0]["path"] == "/b"
