"""Unit tests for the seeded signing model.

The properties the policy gate leans on: determinism (same seed, same
keys, same signatures — golden transcripts depend on it), payload
binding (a signature over digest A says nothing about digest B), and
keyring freshness (a re-generated key invalidates old signatures).
"""

import pytest

from repro.supply import KeyRegistry, Signature, canonical_json


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) \
            == canonical_json({"a": [2, 3], "b": 1})

    def test_no_whitespace(self):
        assert b" " not in canonical_json({"a": 1, "b": {"c": 2}})


class TestKeyRegistry:
    def test_same_seed_mints_identical_keys(self):
        a, b = KeyRegistry(seed=7), KeyRegistry(seed=7)
        assert a.generate("ci") == b.generate("ci")
        assert a.signer("ci").sign("sha256:d") \
            == b.signer("ci").sign("sha256:d")

    def test_different_seeds_differ(self):
        assert KeyRegistry(seed=0).generate("ci") \
            != KeyRegistry(seed=1).generate("ci")

    def test_signer_autogenerates(self):
        keys = KeyRegistry()
        assert not keys.has("ci")
        keys.signer("ci")
        assert keys.has("ci") and keys.names() == ["ci"]

    def test_empty_key_name_rejected(self):
        with pytest.raises(ValueError):
            KeyRegistry().generate("")

    def test_public_key_of_unknown_name_raises(self):
        with pytest.raises(KeyError):
            KeyRegistry().public_key("nobody")


class TestVerification:
    def sig(self, keys, payload="sha256:abc"):
        return keys.signer("ci").sign(payload)

    def test_good_signature_verifies(self):
        keys = KeyRegistry()
        sig = self.sig(keys)
        assert keys.verify(sig, "sha256:abc")

    def test_payload_mismatch_fails(self):
        keys = KeyRegistry()
        sig = self.sig(keys)
        assert not keys.verify(sig, "sha256:other")

    def test_forged_value_fails(self):
        keys = KeyRegistry()
        sig = self.sig(keys)
        forged = Signature(key=sig.key, public_key=sig.public_key,
                           payload=sig.payload, value="0" * 64)
        assert not keys.verify(forged, sig.payload)

    def test_unknown_key_fails(self):
        keys = KeyRegistry()
        sig = self.sig(keys)
        assert not KeyRegistry().verify(sig, sig.payload)

    def test_regenerated_key_invalidates_old_signatures(self):
        keys = KeyRegistry()
        sig = self.sig(keys)
        keys2 = KeyRegistry(seed=1)
        keys2.generate("ci")
        # splice the other generation's secret in under the same name
        keys._secrets["ci"] = keys2._secrets["ci"]
        assert not keys.verify(sig, sig.payload)

    def test_roundtrip_through_dict(self):
        keys = KeyRegistry()
        sig = self.sig(keys)
        again = Signature.from_dict(sig.as_dict())
        assert again == sig and keys.verify(again, sig.payload)
