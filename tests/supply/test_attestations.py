"""SBOM and provenance statements: content and parallelism-invariance.

The acceptance property from the issue: attestation blob digests are a
pure function of the build *inputs* (Dockerfile text, installed set,
resolved bases), so two fresh worlds building the same family at
``--parallelism 1`` and ``--parallelism 8`` emit byte-identical
statements.
"""

import json

from repro.cluster import make_machine, make_world
from repro.core import ChImage
from repro.supply import (
    PROVENANCE_FORMAT,
    SBOM_FORMAT,
    build_attestations,
    packages_of,
    provenance_statement,
    sbom_statement,
)

FIG2_DOCKERFILE = """\
FROM centos:7
RUN echo hello
RUN yum install -y openssh
"""

DIAMOND = """\
FROM centos:7 AS base
RUN echo base > /base.txt

FROM base AS left
RUN yum install -y gcc
RUN echo left > /left.txt

FROM base AS right
RUN yum install -y openssh
RUN echo right > /right.txt

FROM base
COPY --from=left /left.txt /l
COPY --from=right /right.txt /r
RUN echo done
"""


def fresh_builder():
    world = make_world(arches=("x86_64",))
    login = make_machine("login1", network=world.network)
    return ChImage(login, login.login("alice"), force_mode="seccomp")


class TestSbom:
    def test_fig2_sbom_lists_the_install(self):
        ch = fresh_builder()
        assert ch.build(tag="app", dockerfile=FIG2_DOCKERFILE,
                        force=True).success
        sbom = sbom_statement(ch.sys, ch.storage.path_of("app"),
                              image="app")
        assert sbom["format"] == SBOM_FORMAT
        pkgs = packages_of(sbom)
        assert pkgs["openssh"] == "7.4p1"
        assert sbom["package_count"] == len(pkgs) > 1  # base set too
        # canonical: sorted by (origin, name)
        keys = [(p["origin"], p["name"]) for p in sbom["packages"]]
        assert keys == sorted(keys)

    def test_imageless_tree_has_empty_sbom(self):
        ch = fresh_builder()
        ch.sys.mkdir_p("/tmp/empty")
        sbom = sbom_statement(ch.sys, "/tmp/empty")
        assert sbom["package_count"] == 0 and sbom["packages"] == []


class TestProvenance:
    def test_statement_carries_the_chain(self):
        stmt = provenance_statement(DIAMOND, image="app",
                                    subject="chain:xyz")
        assert stmt["format"] == PROVENANCE_FORMAT
        assert stmt["subject"] == "chain:xyz"
        assert len(stmt["stages"]) == 4
        assert stmt["stages"][1]["base"] == "stage:0"
        for stage in stmt["stages"]:
            for ins in stage["instructions"]:
                assert len(ins["chain_key"]) == 64
                int(ins["chain_key"], 16)  # hex chain key
        assert "centos:7" in stmt["bases"]

    def test_unresolvable_base_falls_back_to_placeholder(self):
        def resolve(ref):
            raise KeyError(ref)
        stmt = provenance_statement("FROM centos:7\nRUN echo hi\n",
                                    resolve_base=resolve)
        assert stmt["bases"]["centos:7"] == "image:centos:7"

    def test_force_mode_changes_the_statement(self):
        plain = provenance_statement(FIG2_DOCKERFILE)
        forced = provenance_statement(FIG2_DOCKERFILE, force=True,
                                      force_mode="seccomp")
        assert plain != forced
        assert forced["builder"]["force_mode"] == "seccomp"


class TestParallelismInvariance:
    def test_attestation_digests_identical_across_parallelism(self):
        """Fresh worlds at --parallelism 1 and 8 attest byte-identically
        — scheduling changes when stages run, never what is recorded."""
        digests = []
        for parallelism in (1, 8):
            ch = fresh_builder()
            r = ch.build(tag="app", dockerfile=DIAMOND, force=True,
                         parallel=parallelism)
            assert r.success, r.text
            bundle = build_attestations(ch, "app", DIAMOND, force=True,
                                        force_mode="seccomp")
            # both statements must also be parseable canonical JSON
            assert json.loads(bundle.sbom)["format"] == SBOM_FORMAT
            assert json.loads(bundle.provenance)["format"] \
                == PROVENANCE_FORMAT
            digests.append(bundle.digests())
        assert digests[0] == digests[1]
        assert set(digests[0]) == {"sbom", "provenance"}
