"""End-to-end policy gate: sign-on-push, verify-on-pull, audit, reject.

The issue's acceptance scenarios, each asserted *before* any broadcast
traffic: a signed clean image deploys; a tampered manifest, a missing
signature, and a CVE above threshold are each rejected with the right
error class, the right obs counters, and zero front-door pull bytes.
"""

import pytest

from repro.archive import TarArchive
from repro.cluster import make_machine, make_world
from repro.cluster.ci import CiPipeline, policy_gate_stage
from repro.cluster.fleet import RegistryFleet
from repro.containers import Manifest
from repro.core import ChImage, ch_image_cli
from repro.core.push import flatten_archive
from repro.errors import SupplyPolicyError
from repro.obs import attach_tracer
from repro.supply import (
    KeyRegistry,
    PolicyGate,
    SupplyPolicy,
    build_attestations,
    make_advisory_db,
)

FIG2_DOCKERFILE = """\
FROM centos:7
RUN echo hello
RUN yum install -y openssh
"""

CLEAN_DOCKERFILE = """\
FROM centos:7
RUN echo hello > /hi
"""


class World:
    """One builder, one traced fleet, one gate — shared per test."""

    def __init__(self):
        world = make_world(arches=("x86_64",))
        self.login = make_machine("login1", network=world.network)
        self.tracer = attach_tracer(self.login.kernel)
        self.ch = ChImage(self.login, self.login.login("alice"),
                          force_mode="seccomp")
        self.keys = KeyRegistry(seed=0)
        self.fleet = RegistryFleet("site", n_shards=2, replicas=2,
                                   tracer=self.tracer)
        self.gate = PolicyGate(
            SupplyPolicy(severity_threshold="high",
                         trusted_keys=("site-ci",)),
            keys=self.keys, advisories=make_advisory_db(seed=0),
            tracer=self.tracer)
        self.fleet.signer = self.keys.signer("site-ci")
        self.fleet.policy_gate = self.gate

    def build(self, tag, dockerfile):
        result = self.ch.build(tag=tag, dockerfile=dockerfile, force=True)
        assert result.success, result.text
        return result

    def push(self, tag, dockerfile, *, attest=True, sign=True):
        self.build(tag, dockerfile)
        archive = TarArchive.pack(self.ch.storage.sys,
                                  self.ch.storage.path_of(tag))
        att = (build_attestations(self.ch, tag, dockerfile, force=True,
                                  force_mode="seccomp").blobs()
               if attest else None)
        saved, self.fleet.signer = self.fleet.signer, \
            (self.fleet.signer if sign else None)
        try:
            manifest = self.fleet.push(
                f"hpc/{tag}", self.ch.storage.config_of(tag),
                [flatten_archive(archive)], attestations=att)
        finally:
            self.fleet.signer = saved
        return manifest

    def supply_counters(self):
        return self.tracer.metrics.snapshot().get("supply", {})


@pytest.fixture
def w():
    return World()


class TestSignedDeploy:
    def test_signed_clean_image_passes_and_pulls(self, w):
        w.push("clean", CLEAN_DOCKERFILE)
        report = w.gate.check(w.fleet, "hpc/clean")
        assert report.ok and report.signed
        assert report.signature_key == "site-ci"
        assert set(report.attestations) == {"sbom", "provenance"}
        assert report.package_count > 0 and report.findings == []
        assert report.size["total_bytes"] > 0
        # verify-on-pull: the gated fleet serves it
        config, layers = w.fleet.pull("hpc/clean")
        assert len(layers) == 1
        counters = w.supply_counters()
        assert counters["signed"] == 1 and counters["attested"] == 1
        assert counters["gate_pass"] == 1
        assert counters["verify_ok"] == 1
        assert "unsigned_pull" not in counters

    def test_audit_reads_are_at_rest(self, w):
        """The gate runs registry-side: a full audit moves zero bytes
        through the front door (nothing to broadcast yet)."""
        w.push("clean", CLEAN_DOCKERFILE)
        w.gate.check(w.fleet, "hpc/clean")
        assert w.fleet.stats.bytes_pulled == 0
        assert w.fleet.stats.blobs_pulled == 0


class TestTamperedLayer:
    def tamper(self, w):
        """Re-serve hpc/app with a layer swapped post-signing."""
        m_clean = w.push("clean", CLEAN_DOCKERFILE)
        w.push("app", FIG2_DOCKERFILE)
        forged = Manifest(config=m_clean.config, layers=m_clean.layers)
        for shard in w.fleet.shards:
            shard.registry.put_manifest("hpc/app", forged)

    def test_rejected_by_gate_before_broadcast(self, w):
        self.tamper(w)
        with pytest.raises(SupplyPolicyError) as err:
            w.gate.check(w.fleet, "hpc/app")
        assert any("does not match the served manifest" in v
                   for v in err.value.violations)
        assert w.fleet.stats.bytes_pulled == 0
        assert w.supply_counters()["gate_reject"] == 1

    def test_rejected_on_pull(self, w):
        self.tamper(w)
        with pytest.raises(SupplyPolicyError):
            w.fleet.pull("hpc/app")
        assert w.fleet.stats.bytes_pulled == 0
        assert w.supply_counters()["verify_fail"] == 1


class TestMissingSignature:
    def test_unsigned_push_is_rejected(self, w):
        w.push("app", CLEAN_DOCKERFILE, sign=False)
        with pytest.raises(SupplyPolicyError) as err:
            w.gate.check(w.fleet, "hpc/app")
        assert "no signature recorded" in err.value.violations
        assert w.fleet.stats.bytes_pulled == 0

    def test_unsigned_pulls_are_counted(self, w):
        w.fleet.policy_gate = None        # ungated fleet still observes
        w.push("app", CLEAN_DOCKERFILE, sign=False)
        w.fleet.pull("hpc/app")
        assert w.supply_counters()["unsigned_pull"] == 1

    def test_untrusted_key_is_rejected(self, w):
        w.fleet.signer = w.keys.signer("rogue")
        w.push("app", CLEAN_DOCKERFILE)
        with pytest.raises(SupplyPolicyError) as err:
            w.gate.check(w.fleet, "hpc/app")
        assert "no trusted key validates the recorded signature" \
            in err.value.violations

    def test_missing_attestations_are_violations(self, w):
        w.push("app", CLEAN_DOCKERFILE, attest=False)
        with pytest.raises(SupplyPolicyError) as err:
            w.gate.check(w.fleet, "hpc/app")
        assert "missing sbom attestation" in err.value.violations
        assert "missing provenance attestation" in err.value.violations


class TestCveThreshold:
    def test_fig2_openssh_rejected_at_high(self, w):
        w.push("app", FIG2_DOCKERFILE)
        with pytest.raises(SupplyPolicyError) as err:
            w.gate.check(w.fleet, "hpc/app")
        assert any("at or above high" in v for v in err.value.violations)
        assert w.fleet.stats.bytes_pulled == 0
        assert w.supply_counters()["gate_reject"] == 1

    def test_critical_threshold_lets_it_through(self, w):
        w.push("app", FIG2_DOCKERFILE)
        lax = PolicyGate(
            SupplyPolicy(severity_threshold="critical",
                         trusted_keys=("site-ci",)),
            keys=w.keys, advisories=make_advisory_db(seed=0))
        report = lax.check(w.fleet, "hpc/app")
        assert report.ok
        assert report.worst_severity == "high"   # reported, not fatal

    def test_layer_size_cap(self, w):
        w.push("app", CLEAN_DOCKERFILE)
        capped = PolicyGate(
            SupplyPolicy(severity_threshold="high",
                         trusted_keys=("site-ci",), max_layer_bytes=100),
            keys=w.keys, advisories=make_advisory_db(seed=0))
        with pytest.raises(SupplyPolicyError) as err:
            capped.check(w.fleet, "hpc/app")
        assert any("cap 100" in v for v in err.value.violations)

    def test_bad_threshold_fails_at_construction(self, w):
        with pytest.raises(ValueError):
            PolicyGate(SupplyPolicy(severity_threshold="scary"))


class TestGoldenAudit:
    def test_fig2_audit_report_is_pinned(self, w, golden_check):
        """The full audit of the Figure 2 image — manifest digest,
        attestation digests, findings, size audit, verdict — is
        deterministic enough to golden-pin byte-for-byte."""
        w.push("app", FIG2_DOCKERFILE)
        report = w.gate.audit(w.fleet, "hpc/app")
        golden_check("supply_audit_fig2", report.as_dict())

    def test_render_matches_the_report(self, w):
        w.push("app", FIG2_DOCKERFILE)
        text = w.gate.audit(w.fleet, "hpc/app").render()
        assert text.startswith("supply audit: hpc/app")
        assert "signature: ok (key site-ci)" in text
        assert "ADV-" in text and "openssh 7.4p1 < 8.0" in text
        assert "verdict: REJECT (" in text


class TestCiIntegration:
    def test_policy_gate_stage_names_the_failure(self, w):
        w.push("clean", CLEAN_DOCKERFILE)
        w.push("app", FIG2_DOCKERFILE)
        pipe = CiPipeline("supply")
        policy_gate_stage(pipe, w.gate, w.fleet,
                          ["hpc/clean", "hpc/app"])
        result = pipe.run()
        assert not result.passed
        jobs = {j.name: j for j in pipe.stages[0].jobs}
        assert jobs["audit hpc/clean"].status == 0
        assert "pass (signed by site-ci" in jobs["audit hpc/clean"].output
        assert jobs["audit hpc/app"].status == 1
        assert "REJECTED" in jobs["audit hpc/app"].output
        assert "at or above high" in jobs["audit hpc/app"].output


class TestChImageAudit:
    def test_local_audit_of_fig2(self, w):
        w.build("app", FIG2_DOCKERFILE)
        status, out = ch_image_cli(w.ch, ["audit", "app"])
        assert status == 0
        assert out.splitlines()[0] == "image audit: app"
        assert "findings: 1 (worst: high)" in out
        assert "openssh 7.4p1 < 8.0" in out

    def test_json_mode_is_machine_shaped(self, w):
        import json
        w.build("app", FIG2_DOCKERFILE)
        status, out = ch_image_cli(w.ch, ["audit", "--json", "app"])
        assert status == 0
        d = json.loads(out)
        assert d["image"] == "app"
        assert d["findings"][0]["package"] == "openssh"
        assert d["size"]["total_bytes"] > 0

    def test_unknown_image_errors(self, w):
        status, out = ch_image_cli(w.ch, ["audit", "nope"])
        assert status == 1 and "no image 'nope'" in out

    def test_missing_name_errors(self, w):
        status, out = ch_image_cli(w.ch, ["audit"])
        assert status == 1 and "need an image name" in out
