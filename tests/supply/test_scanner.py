"""Unit tests for version comparison and the advisory scanner."""

import pytest

from repro.supply import (
    SEVERITIES,
    Advisory,
    AdvisoryDb,
    compare_versions,
    make_advisory_db,
    severity_rank,
)


class TestCompareVersions:
    @pytest.mark.parametrize("older,newer", [
        ("7.4p1", "8.0"),                      # the Figure 2 openssh
        ("1:7.9p1-10+deb10u2", "1:8.0p1-1"),   # the Debian epoch form
        ("1.0a", "1.0.1"),                     # rpm: alpha < numeric
        ("1.8.12", "1.10.0"),                  # numeric, not lexical
        ("3.1.6", "4.0.0"),
        ("1.0", "1:0.1"),                      # epoch trumps body
        ("20190515", "20200821"),              # date-style versions
    ])
    def test_ordering(self, older, newer):
        assert compare_versions(older, newer) == -1
        assert compare_versions(newer, older) == 1

    @pytest.mark.parametrize("a,b", [
        ("1.0", "1.0"), ("0:1.0", "1.0"), ("1.0-1", "1.0.1")])
    def test_equal(self, a, b):
        assert compare_versions(a, b) == 0


class TestAdvisory:
    def test_affects_below_fixed_in(self):
        adv = Advisory("A-1", "openssh", "8.0", "high")
        assert adv.affects("7.4p1")
        assert not adv.affects("8.0")
        assert not adv.affects("8.1p1")

    def test_no_fix_affects_everything(self):
        adv = Advisory("A-2", "fakeroot", "", "negligible")
        assert adv.affects("1.0") and adv.affects("999")

    def test_bad_severity_rejected_at_feed_time(self):
        with pytest.raises(ValueError):
            AdvisoryDb().add(Advisory("A-3", "x", "1.0", "scary"))

    def test_severity_rank_is_the_ladder(self):
        ranks = [severity_rank(s) for s in SEVERITIES]
        assert ranks == sorted(ranks)
        with pytest.raises(ValueError):
            severity_rank("unknown")


class TestScan:
    def db(self):
        db = AdvisoryDb()
        db.add(Advisory("A-hi", "ssh", "8.0", "high"))
        db.add(Advisory("A-lo", "gcc", "5.0", "low"))
        db.add(Advisory("A-med", "mpi", "4.0", "medium"))
        return db

    def test_findings_sorted_most_severe_first(self):
        findings = self.db().scan(
            {"gcc": "4.8.5", "ssh": "7.4", "mpi": "3.1"})
        assert [f.advisory.ident for f in findings] \
            == ["A-hi", "A-med", "A-lo"]
        assert self.db().worst({"gcc": "4.8.5", "ssh": "7.4"}) == "high"

    def test_fixed_versions_are_clean(self):
        assert self.db().scan({"ssh": "8.0", "gcc": "9.1"}) == []
        assert self.db().worst({}) == ""


class TestSeededFeed:
    def test_same_seed_same_feed(self):
        a, b = make_advisory_db(seed=0), make_advisory_db(seed=0)
        assert len(a) == len(b) > 0
        for name in ("openssh", "openssh-client", "gcc"):
            assert [adv.ident for adv in a.for_package(name)] \
                == [adv.ident for adv in b.for_package(name)]

    def test_different_seed_different_idents(self):
        a, b = make_advisory_db(seed=0), make_advisory_db(seed=1)
        assert [adv.ident for adv in a.for_package("openssh")] \
            != [adv.ident for adv in b.for_package("openssh")]

    def test_catalog_openssh_trips_high(self):
        """The paper's Figure 2 image installs openssh 7.4p1 — the feed
        must flag it at exactly ``high`` (the default gate threshold)."""
        db = make_advisory_db(seed=0)
        assert db.worst({"openssh": "7.4p1"}) == "high"

    def test_catalog_atse_stack_stays_below_high(self):
        """The ATSE stack (gcc/openmpi/hdf5 catalog versions) maxes out
        at medium, so it passes the default threshold."""
        db = make_advisory_db(seed=0)
        worst = db.worst({"gcc": "4.8.5", "openmpi": "3.1.6",
                          "hdf5": "1.8.12", "atse": "1.2.5"})
        assert worst == "medium"
