"""Tests for /etc/passwd//etc/group parsing and the host/container name
divergence the paper's footnote 4 describes."""

import pytest

from repro.kernel import Kernel, Syscalls, make_ext4
from repro.userdb import GroupEntry, PasswdEntry, UserDb, UserDbError

PASSWD = """\
root:x:0:0:root:/root:/bin/sh
_apt:x:100:65534::/nonexistent:/usr/sbin/nologin
nobody:x:65534:65534:nobody:/:/sbin/nologin
"""

GROUP = """\
root:x:0:
adm:x:4:alice,bob
ssh_keys:x:998:
"""


class TestParsing:
    def test_passwd(self):
        entries = UserDb.parse_passwd(PASSWD)
        assert entries[1].name == "_apt"
        assert entries[1].uid == 100
        assert entries[1].gid == 65534

    def test_group(self):
        groups = UserDb.parse_group(GROUP)
        assert groups[1].members == ("alice", "bob")
        assert groups[2].gid == 998

    def test_bad_passwd(self):
        with pytest.raises(UserDbError):
            UserDb.parse_passwd("root:x:0\n")
        with pytest.raises(UserDbError):
            UserDb.parse_passwd("root:x:zero:0:::\n")

    def test_comments_and_blanks_skipped(self):
        assert UserDb.parse_passwd("# comment\n\n") == []

    def test_format_roundtrip(self):
        db = UserDb(UserDb.parse_passwd(PASSWD), UserDb.parse_group(GROUP))
        again = UserDb(
            UserDb.parse_passwd(
                "".join(e.format() + "\n" for e in db.passwd)),
            UserDb.parse_group(
                "".join(g.format() + "\n" for g in db.groups)))
        assert again.user_by_name("_apt").uid == 100
        assert again.group_by_name("adm").members == ("alice", "bob")


class TestQueries:
    @pytest.fixture
    def db(self):
        return UserDb(UserDb.parse_passwd(PASSWD), UserDb.parse_group(GROUP))

    def test_lookups(self, db):
        assert db.user_by_uid(100).name == "_apt"
        assert db.group_by_gid(998).name == "ssh_keys"
        assert db.user_by_name("nope") is None

    def test_name_rendering_with_defaults(self, db):
        assert db.username(0) == "root"
        assert db.username(4242) == "4242"
        assert db.username(4242, default="nobody") == "nobody"

    def test_resolve(self, db):
        assert db.resolve_owner("root") == 0
        assert db.resolve_owner("100") == 100
        assert db.resolve_group("ssh_keys") == 998
        with pytest.raises(UserDbError):
            db.resolve_owner("wizard")

    def test_system_id_allocation(self, db):
        uid = db.next_system_uid()
        assert 200 <= uid <= 999
        db.add_user(PasswdEntry("svc", uid, uid))
        assert db.next_system_uid() != uid

    def test_add_duplicate_rejected(self, db):
        with pytest.raises(UserDbError):
            db.add_user(PasswdEntry("root", 5, 5))
        with pytest.raises(UserDbError):
            db.add_group(GroupEntry("adm", 44))


class TestLoadStore:
    def test_load_missing_files_empty(self):
        k = Kernel(make_ext4())
        db = UserDb.load(Syscalls(k.init_process))
        assert db.passwd == [] and db.groups == []

    def test_store_and_load(self):
        k = Kernel(make_ext4())
        sys0 = Syscalls(k.init_process)
        sys0.mkdir_p("/etc")
        db = UserDb([PasswdEntry("root", 0, 0)], [GroupEntry("root", 0)])
        db.store(sys0)
        again = UserDb.load(sys0)
        assert again.user_by_name("root").uid == 0

    def test_per_tree_views_differ(self):
        """Footnote 4: the same ID renders differently per tree."""
        k = Kernel(make_ext4())
        sys0 = Syscalls(k.init_process)
        sys0.mkdir_p("/etc")
        sys0.mkdir_p("/image/etc")
        UserDb([PasswdEntry("alice", 1000, 1000)], []).store(sys0)
        UserDb([PasswdEntry("builder", 1000, 1000)], []).store(sys0, "/image")
        host = UserDb.load(sys0)
        image = UserDb.load(sys0, "/image")
        assert host.username(1000) == "alice"
        assert image.username(1000) == "builder"
