"""Unit tests for the observability layer (repro.obs).

The integration-level guarantees (figure digests, errno coverage) live in
test_golden_transcripts.py and test_errno_coverage.py; here we pin the
tracer mechanics themselves: the disabled fast path, event/layer/nesting
semantics, ring-buffer accounting, span bookkeeping, exports, and the
``ch-image trace`` CLI.
"""

import json

import pytest

from repro.errors import Errno, KernelError
from repro.fakeroot import FakerootSyscalls
from repro.fakeroot.registry import engine_by_name
from repro.kernel import Kernel, Syscalls, make_ext4
from repro.obs import (
    RingBuffer,
    attach_tracer,
    events_to_jsonl,
    golden_summary,
    kernel_span,
    maybe_span,
    privilege_audit,
    render_span_tree,
    render_summary,
    trace_to_dict,
)


@pytest.fixture(autouse=True)
def _no_ambient_tracing(monkeypatch):
    """These tests pin tracer mechanics; a REPRO_TRACE=1 environment would
    pre-attach tracers and change what attach_tracer/enable_tracing do."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)


@pytest.fixture
def traced():
    """(kernel, tracer, root Syscalls) with /tmp ready."""
    k = Kernel(make_ext4(), hostname="obs")
    tracer = attach_tracer(k)
    root = Syscalls(k.init_process)
    root.mkdir("/tmp", 0o777)
    root.chmod("/tmp", 0o1777)
    tracer.clear()
    return k, tracer, root


class TestDisabledFastPath:
    def test_no_tracer_by_default(self):
        k = Kernel(make_ext4(), hostname="plain")
        assert k.tracer is None

    def test_syscalls_unaffected_without_tracer(self):
        k = Kernel(make_ext4(), hostname="plain")
        root = Syscalls(k.init_process)
        root.mkdir("/tmp", 0o777)
        root.write_file("/tmp/f", b"x")
        assert root.read_file("/tmp/f") == b"x"

    def test_repro_trace_env_attaches(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        k = Kernel(make_ext4(), hostname="env")
        assert k.tracer is not None

    def test_kernel_span_is_noop_without_tracer(self):
        k = Kernel(make_ext4(), hostname="plain")
        with kernel_span(k, "phase") as sp:
            assert sp is None
        with maybe_span(None, "phase") as sp:
            assert sp is None


class TestEvents:
    def test_event_fields(self, traced):
        k, tracer, root = traced
        root.write_file("/tmp/f", b"hello")
        ev = [e for e in tracer.events if e.name == "write_file"][-1]
        assert ev.layer == "kernel"
        assert ev.pid == k.init_process.pid
        assert ev.euid == 0 and ev.ns_level == 0
        assert "/tmp/f" in ev.args
        assert ev.ok and not ev.errno

    def test_errno_recorded(self, traced):
        k, tracer, root = traced
        with pytest.raises(KernelError):
            root.stat("/nope")
        ev = list(tracer.events)[-1]
        assert ev.name == "stat"
        assert ev.errno == "ENOENT"
        assert ev.errno_code == int(Errno.ENOENT)
        assert not ev.ok

    def test_fakeroot_nesting_and_layers(self, traced):
        k, tracer, root = traced
        root.write_file("/tmp/f", b"x")
        tracer.clear()
        fr = FakerootSyscalls(root, engine_by_name("fakeroot"))
        fr.chown("/tmp/f", 0, 0)
        top = [e for e in tracer.events if e.depth == 0]
        assert top[-1].name == "chown" and top[-1].layer == "fakeroot"
        # the wrapper consulted the kernel underneath (lstat/stat for the
        # inode key) — those appear as nested children, layer "kernel"
        nested = [e for e in tracer.events if e.depth > 0]
        assert nested and all(e.layer == "kernel" for e in nested)
        assert all(e.parent_seq == top[-1].seq for e in nested)

    def test_metrics_count_top_level_only(self, traced):
        k, tracer, root = traced
        root.write_file("/tmp/f", b"x")
        fr = FakerootSyscalls(root, engine_by_name("fakeroot"))
        tracer.clear()
        fr.chown("/tmp/f", 0, 0)
        assert tracer.metrics.syscalls["chown"] == 1
        # nested kernel work is not double-counted as top-level calls
        assert sum(tracer.metrics.syscalls.values()) == 1


class TestRingBuffer:
    def test_overflow_drops_oldest(self):
        rb = RingBuffer(maxlen=4)
        for i in range(10):
            rb.append(i)
        assert list(rb) == [6, 7, 8, 9]
        assert rb.dropped == 6 and rb.total_seen == 10

    def test_tracer_ring_size(self):
        k = Kernel(make_ext4(), hostname="tiny")
        tracer = attach_tracer(k, ring_size=8)
        root = Syscalls(k.init_process)
        root.mkdir("/tmp", 0o777)
        for i in range(20):
            root.write_file(f"/tmp/f{i}", b"")
        assert len(tracer.events) == 8
        assert tracer.dropped_events > 0
        # counters keep the full totals even after the ring wrapped
        assert tracer.metrics.syscalls["write_file"] == 20


class TestSpans:
    def test_span_counts_and_nesting(self, traced):
        k, tracer, root = traced
        with tracer.span("outer", "phase") as outer:
            root.write_file("/tmp/a", b"")
            with tracer.span("inner", "phase") as inner:
                root.write_file("/tmp/b", b"")
        assert outer.syscalls["write_file"] == 1      # direct only
        assert outer.total_syscalls()["write_file"] == 2
        assert inner.parent_seq == outer.seq
        assert tracer.roots[-1] is outer

    def test_span_failure_from_kernel_error(self, traced):
        k, tracer, root = traced
        with pytest.raises(KernelError):
            with tracer.span("doomed", "phase"):
                root.stat("/nope")
        sp = tracer.roots[-1]
        assert sp.status == "error"
        assert "ENOENT" in sp.error or "No such" in sp.error
        assert sp.errnos["ENOENT"] == 1

    def test_explicit_fail(self, traced):
        k, tracer, root = traced
        with tracer.span("build", "build") as sp:
            sp.fail("exit status 1")
        assert sp.status == "error" and sp.error == "exit status 1"


class TestExports:
    def test_jsonl_round_trips(self, traced):
        k, tracer, root = traced
        root.write_file("/tmp/f", b"x")
        with pytest.raises(KernelError):
            root.stat("/nope")
        lines = events_to_jsonl(tracer).splitlines()
        assert len(lines) == len(tracer.events)
        parsed = [json.loads(l) for l in lines]
        assert parsed[-1]["errno"] == "ENOENT"

    def test_trace_to_dict_shape(self, traced):
        k, tracer, root = traced
        with tracer.span("phase", "phase"):
            root.write_file("/tmp/f", b"x")
        d = trace_to_dict(tracer)
        assert set(d) == {"metrics", "events_kept", "events_dropped",
                          "spans"}
        assert d["spans"][-1]["syscalls"]["write_file"] == 1

    def test_golden_summary_excludes_timing(self, traced):
        k, tracer, root = traced
        with tracer.span("build x", "build"):
            root.write_file("/tmp/f", b"x")
        digest = golden_summary(tracer)
        text = json.dumps(digest)
        assert "tick" not in text and "pid" not in text


class TestReports:
    def test_audit_classifies_absorbed_with_kernel_denial(self, traced):
        """The paper's absorbed-vs-failed distinction, at unit level."""
        k, tracer, root = traced
        alice = k.login(1000, 1000, user="alice", home="/tmp")
        asys = Syscalls(alice)
        asys.write_file("/tmp/mine", b"")
        # truly failed: alice chowns to root with no wrapper
        with pytest.raises(KernelError):
            asys.chown("/tmp/mine", 0, 0)
        # absorbed: the same operation under fakeroot
        fr = FakerootSyscalls(asys, engine_by_name("fakeroot"))
        fr.chown("/tmp/mine", 0, 0)
        audit = privilege_audit(tracer)
        assert any(e.syscall == "chown" and e.errno == "EPERM"
                   for e in audit.failed)
        assert any(e.syscall == "chown" and e.layer == "fakeroot"
                   for e in audit.absorbed)
        text = audit.render()
        assert "absorbed" in text and "failed" in text

    def test_render_tree_and_summary(self, traced):
        k, tracer, root = traced
        with tracer.span("build t", "build"):
            with tracer.span("1 RUN x", "instruction"):
                root.write_file("/tmp/f", b"x")
        tree = render_span_tree(tracer)
        assert "build t [build]" in tree
        assert "1 RUN x [instruction]" in tree
        assert "write_file" in render_summary(tracer)


class TestCli:
    def test_trace_needs_tracing_enabled(self, login, alice):
        from repro.core import ChImage
        from repro.core.cli import ch_image_cli
        status, out = ch_image_cli(ChImage(login, alice), ["trace"])
        assert status == 1
        assert "not enabled" in out

    def test_trace_outputs(self, login, alice):
        from repro.core import ChImage
        from repro.core.cli import ch_image_cli
        ch = ChImage(login, alice)
        status, out = ch_image_cli(
            ch, ["build", "--trace", "-t", "t", "-f", "/x", "."])
        assert status == 1  # no Dockerfile at /x, but tracing is now on
        status, out = ch_image_cli(ch, ["trace", "--json"])
        assert status == 0
        json.loads(out)
