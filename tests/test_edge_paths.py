"""Edge-path tests across modules: executor limits, config plumbing,
error branches not covered elsewhere."""

import pytest

from repro.containers import Podman
from repro.errors import Errno, KernelError
from repro.kernel import FileType, Syscalls
from repro.shell import ExecContext, OutputSink, execute
from repro.shell.install import install_binary, install_script


class TestExecutor:
    def _ctx(self, login, alice):
        return ExecContext(alice, Syscalls(alice),
                           env={"PATH": "/usr/bin:/bin"})

    def test_recursion_limit(self, login, alice):
        root = login.root_sys()
        install_script(root, "/usr/bin/loop.sh", "loop.sh\n")
        install_binary(root, "/usr/bin/sh", "sh.posix")
        ctx = self._ctx(login, alice)
        sink = OutputSink()
        status = execute(ctx.child(stdout=sink, stderr=sink), ["loop.sh"])
        assert status == 126
        assert "recursion limit" in sink.text()

    def test_broken_impl_reference(self, login, alice):
        root = login.root_sys()
        install_binary(root, "/usr/bin/ghost", "no.such.impl")
        ctx = self._ctx(login, alice)
        sink = OutputSink()
        status = execute(ctx.child(stdout=sink, stderr=sink), ["ghost"])
        assert status == 126
        assert "broken executable" in sink.text()

    def test_raw_binary_without_impl(self, login, alice):
        root = login.root_sys()
        root.write_file("/usr/bin/blob", b"\x7fELF raw")
        root.chmod("/usr/bin/blob", 0o755)
        ctx = self._ctx(login, alice)
        sink = OutputSink()
        status = execute(ctx.child(stdout=sink, stderr=sink), ["blob"])
        assert status == 126
        assert "cannot execute binary file" in sink.text()

    def test_empty_argv(self, login, alice):
        ctx = self._ctx(login, alice)
        assert execute(ctx, []) == 0


class TestBuildahConfig:
    def test_cmd_entrypoint_and_run(self, login, alice):
        podman = Podman(login, alice)
        df = ('FROM centos:7\n'
              'ENV APP_MODE=fast\n'
              'LABEL maintainer=alice\n'
              'WORKDIR /srv\n'
              'ENTRYPOINT ["echo", "entry:"]\n'
              'CMD ["default"]\n')
        res = podman.build(df, "cfg")
        assert res.success, res.text
        img = podman.buildah.images["cfg"]
        assert img.config.entrypoint == ("echo", "entry:")
        assert img.config.cmd == ("default",)
        assert ("maintainer", "alice") in img.config.labels
        assert "APP_MODE=fast" in img.config.env
        out = podman.run("cfg", [])
        assert out.status == 0
        assert out.output.strip() == "entry: default"
        out = podman.run("cfg", ["override"])
        assert out.output.strip() == "entry: override"

    def test_exec_form_run(self, login, alice):
        podman = Podman(login, alice)
        df = 'FROM centos:7\nRUN ["/usr/bin/echo", "exec form"]\n'
        res = podman.build(df, "ef")
        assert res.success
        assert "exec form" in res.text


class TestMknodValidation:
    def test_invalid_type_einval(self, login, alice):
        sys = Syscalls(alice)
        with pytest.raises(KernelError) as exc:
            sys.mknod("/home/alice/x", FileType.DIR)
        assert exc.value.errno == Errno.EINVAL


class TestFakerootStateErrors:
    def test_save_to_unwritable_location(self, login, alice):
        from repro.fakeroot import FAKEROOT_CLASSIC, FakerootSyscalls
        fr = FakerootSyscalls(Syscalls(alice), FAKEROOT_CLASSIC)
        with pytest.raises(KernelError):
            fr.save_state("/etc/state")  # not writable by alice

    def test_load_missing_file(self, login, alice):
        from repro.fakeroot import FAKEROOT_CLASSIC, FakerootSyscalls
        fr = FakerootSyscalls(Syscalls(alice), FAKEROOT_CLASSIC)
        with pytest.raises(KernelError):
            fr.load_state("/home/alice/nope")


class TestArchiveSymlinkDiff:
    def test_diff_carries_symlink_changes(self, login):
        from repro.containers.storage import VfsDriver
        sys0 = login.root_sys()
        sys0.mkdir_p("/w")
        driver = VfsDriver(sys0, "/st")
        driver._snapshots["/w"] = {}
        driver._diff_since_snapshot("/w")
        sys0.symlink("/target", "/w/lnk")
        diff, _ = driver._diff_since_snapshot("/w")
        assert [m.path for m in diff] == ["lnk"]
        sys0.mkdir_p("/w2")
        diff.apply_diff(sys0, "/w2")
        assert sys0.readlink("/w2/lnk") == "/target"

    def test_apply_diff_replaces_symlink(self, login):
        from repro.archive import TarArchive, TarMember
        sys0 = login.root_sys()
        sys0.mkdir_p("/y")
        sys0.symlink("/old", "/y/l")
        diff = TarArchive([TarMember("l", FileType.SYMLINK, 0o777, 0, 0,
                                     target="/new")])
        diff.apply_diff(sys0, "/y")
        assert sys0.readlink("/y/l") == "/new"
