"""ch-image --force=seccomp: the §6.2.2(3) 'move fakeroot into the
container implementation' recommendation, as real Charliecloud later
shipped it."""

import pytest

from repro.core import ChImage, SeccompSyscalls, push_image
from repro.kernel import FileType, Syscalls
from tests.conftest import FIG2_DOCKERFILE, FIG3_DOCKERFILE


@pytest.fixture
def ch(login, alice):
    return ChImage(login, alice, force_mode="seccomp")


class TestSeccompBuilds:
    def test_centos_builds(self, ch):
        r = ch.build(tag="c", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r.success, r.text
        assert "will use --force: seccomp" in r.text
        assert r.modified_runs == 2  # every RUN is covered

    def test_debian_builds_without_sandbox_config(self, ch):
        """Unlike fakeroot(1), the runtime filter fakes set*id too, so the
        APT sandbox drop 'succeeds' — no apt.conf change needed at all."""
        r = ch.build(tag="d", dockerfile=FIG3_DOCKERFILE, force=True)
        assert r.success, r.text
        path = ch.storage.path_of("d")
        assert not ch.sys.exists(f"{path}/etc/apt/apt.conf.d/no-sandbox")

    def test_no_image_modification(self, ch):
        """The §6.1 complication removed: fakeroot is NOT installed into
        the image; no EPEL, no pseudo."""
        r = ch.build(tag="c", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r.success
        path = ch.storage.path_of("c")
        assert not ch.sys.exists(f"{path}/usr/bin/fakeroot")
        assert not ch.sys.exists(f"{path}/etc/yum.repos.d/epel.repo")

    def test_without_force_still_fails(self, ch):
        r = ch.build(tag="c", dockerfile=FIG2_DOCKERFILE, force=False)
        assert not r.success

    def test_covers_file_capabilities(self, ch):
        """The filter intercepts xattrs, so iputils installs (the A6 gap of
        classic fakeroot closed by the runtime approach)."""
        df = "FROM centos:7\nRUN yum install -y iputils\n"
        r = ch.build(tag="ip", dockerfile=df, force=True)
        assert r.success, r.text

    def test_covers_static_binaries(self, ch):
        """Process-level interception wraps static helpers too (the other
        LD_PRELOAD blind spot)."""
        df = "FROM centos:7\nRUN yum install -y sash\n"
        r = ch.build(tag="sash", dockerfile=df, force=True)
        assert r.success, r.text

    def test_invalid_mode_rejected(self, login, alice):
        with pytest.raises(ValueError):
            ChImage(login, alice, force_mode="ebpf")


class TestHostSideLieDatabase:
    def test_lies_persist_across_runs(self, ch):
        """The DB lives in the builder (host side), so later RUNs see the
        ownership earlier RUNs faked — pseudo-style persistence for free."""
        df = ("FROM centos:7\n"
              "RUN yum install -y openssh\n"
              "RUN ls -lh /usr/libexec/openssh/ssh-keysign\n")
        r = ch.build(tag="c", dockerfile=df, force=True)
        assert r.success, r.text
        assert "root ssh_keys" in r.text  # the faked group, seen later

    def test_ownership_preserving_push_from_seccomp_db(self, ch, world):
        """§6.2.2(2)+(3) combined: the runtime's database feeds the push."""
        r = ch.build(tag="c", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r.success
        push_image(ch.storage, "c", "gitlab.example.gov/alice/keep:v1",
                   fakeroot_db=ch.seccomp_db)
        _, layers = world.site_registry.pull("alice/keep:v1")
        member = layers[0].member("usr/libexec/openssh/ssh-keysign")
        assert member.gid not in (0, 1000)  # the packaged group id, kept


class TestSeccompSyscalls:
    def test_setid_family_faked(self, login, alice):
        sys = SeccompSyscalls(Syscalls(alice))
        sys.setgroups([65534])  # would be EPERM raw
        sys.seteuid(100)  # would be EINVAL/EPERM raw
        sys.setresgid(100, 100, 100)
        assert alice.cred.euid == 1000  # nothing actually changed

    def test_inherited_across_fork(self, login, alice):
        parent = SeccompSyscalls(Syscalls(alice))
        child_proc = alice.fork()
        child = parent.clone_for(child_proc)
        assert isinstance(child, SeccompSyscalls)
        assert child.db is parent.db  # shared lie database

    def test_wraps_static_binaries(self):
        from repro.core import SECCOMP_ENGINE
        assert SECCOMP_ENGINE.wraps_static_binaries

    def test_mknod_and_chown_lies(self, login, alice):
        sys = SeccompSyscalls(Syscalls(alice))
        sys.write_file("/home/alice/f", b"")
        sys.chown("/home/alice/f", 12, 13)
        sys.mknod("/home/alice/dev", FileType.BLK, rdev=(8, 0))
        assert sys.stat("/home/alice/f").st_uid == 12
        assert sys.stat("/home/alice/dev").ftype is FileType.BLK
        raw = Syscalls(alice)
        assert raw.stat("/home/alice/f").kuid == 1000
        assert raw.stat("/home/alice/dev").ftype is FileType.REG
