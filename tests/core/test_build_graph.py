"""The build-graph scheduler: deterministic DAG execution on the sim clock.

Costs here use a fake tick counter with ``tick_seconds=1.0`` so the
virtual-time arithmetic is exact and readable.
"""

import pytest

from repro.cas import BuildCache
from repro.core import BuildGraphError, BuildGraphScheduler


class FakeTicks:
    """A controllable kernel-tick counter."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def costing(ticks: FakeTicks, cost: int, value=True):
    """A task fn that burns *cost* fake ticks and returns *value*."""
    def fn():
        ticks.now += cost
        return value
    return fn


def diamond(scheduler, ticks, costs=(10, 30, 20, 5)):
    """base -> (left, right) -> final, with the given tick costs."""
    base = scheduler.add_task("base", costing(ticks, costs[0]))
    left = scheduler.add_task("left", costing(ticks, costs[1]), deps=[base])
    right = scheduler.add_task("right", costing(ticks, costs[2]),
                               deps=[base])
    scheduler.add_task("final", costing(ticks, costs[3]),
                       deps=[left, right])
    return scheduler.run()


class TestScheduling:
    def test_parallel_overlaps_independent_stages(self):
        ticks = FakeTicks()
        report = diamond(BuildGraphScheduler(parallelism=2, tick_seconds=1.0,
                                             ticks=ticks), ticks)
        # left (30) and right (20) overlap: 10 + max(30, 20) + 5
        assert report.success
        assert report.makespan == 45.0
        assert report.critical_path == 45.0
        assert report.critical_path_tasks == ["base", "left", "final"]
        assert report.serial_time == 65.0

    def test_sequential_is_the_serial_sum(self):
        ticks = FakeTicks()
        report = diamond(BuildGraphScheduler(parallelism=1, tick_seconds=1.0,
                                             ticks=ticks), ticks)
        assert report.makespan == 65.0
        assert report.critical_path == 45.0  # the floor parallelism hits
        assert report.speedup == 1.0

    def test_queue_wait_accounting(self):
        """With one worker, right waits while left holds the worker."""
        ticks = FakeTicks()
        report = diamond(BuildGraphScheduler(parallelism=1, tick_seconds=1.0,
                                             ticks=ticks), ticks)
        by_name = {t.name: t for t in report.tasks}
        assert by_name["right"].queue_wait == 30.0  # parked 10..40
        assert by_name["left"].queue_wait == 0.0
        assert report.queue_wait_total == 30.0

    def test_fifo_ties_are_deterministic(self):
        """Equal ready times dispatch in priority (insertion) order."""
        for _ in range(3):
            ticks = FakeTicks()
            sched = BuildGraphScheduler(parallelism=1, tick_seconds=1.0,
                                        ticks=ticks)
            for name in ("a", "b", "c"):
                sched.add_task(name, costing(ticks, 10))
            report = sched.run()
            starts = [(t.name, t.start) for t in report.tasks]
            assert starts == [("a", 0.0), ("b", 10.0), ("c", 20.0)]

    def test_priority_overrides_insertion_order(self):
        ticks = FakeTicks()
        sched = BuildGraphScheduler(parallelism=1, tick_seconds=1.0,
                                    ticks=ticks)
        sched.add_task("a", costing(ticks, 10), priority=2)
        sched.add_task("b", costing(ticks, 10), priority=1)
        report = sched.run()
        by_name = {t.name: t for t in report.tasks}
        assert by_name["b"].start < by_name["a"].start

    def test_zero_cost_tasks_complete(self):
        ticks = FakeTicks()
        sched = BuildGraphScheduler(parallelism=2, tick_seconds=1.0,
                                    ticks=ticks)
        sched.add_task("noop", costing(ticks, 0))
        report = sched.run()
        assert report.success and report.makespan == 0.0


class TestFailures:
    def test_failure_skips_dependents(self):
        ticks = FakeTicks()
        sched = BuildGraphScheduler(parallelism=2, tick_seconds=1.0,
                                    ticks=ticks)
        bad = sched.add_task("bad", costing(ticks, 10, value=False),
                             ok=bool)
        sched.add_task("child", costing(ticks, 10), deps=[bad])
        report = sched.run()
        assert not report.success
        by_name = {t.name: t for t in report.tasks}
        assert by_name["bad"].state == "failed"
        assert by_name["child"].state == "skipped"

    def test_exception_is_a_failure_not_a_crash(self):
        ticks = FakeTicks()
        sched = BuildGraphScheduler(parallelism=1, tick_seconds=1.0,
                                    ticks=ticks)

        def boom():
            raise RuntimeError("kaboom")

        sched.add_task("boom", boom)
        report = sched.run()
        assert not report.success
        assert "kaboom" in report.tasks[0].error

    def test_no_fail_fast_keeps_independents_running(self):
        ticks = FakeTicks()
        sched = BuildGraphScheduler(parallelism=1, tick_seconds=1.0,
                                    ticks=ticks, fail_fast=False)
        sched.add_task("bad", costing(ticks, 10, value=False), ok=bool)
        sched.add_task("good", costing(ticks, 10))
        report = sched.run()
        by_name = {t.name: t for t in report.tasks}
        assert by_name["bad"].state == "failed"
        assert by_name["good"].state == "done"


class TestApiErrors:
    def test_bad_parallelism(self):
        with pytest.raises(BuildGraphError, match="parallelism"):
            BuildGraphScheduler(parallelism=0)

    def test_forward_dependency_rejected(self):
        sched = BuildGraphScheduler(parallelism=1)
        with pytest.raises(BuildGraphError, match="topological"):
            sched.add_task("x", lambda: True, deps=[0])

    def test_one_shot(self):
        sched = BuildGraphScheduler(parallelism=1)
        sched.add_task("x", lambda: True)
        sched.run()
        with pytest.raises(BuildGraphError, match="already ran"):
            sched.run()


class TestSingleFlight:
    def test_identical_keys_dedupe(self):
        """The follower parks behind the leader, then replays warm."""
        ticks = FakeTicks()
        cache = BuildCache()
        sched = BuildGraphScheduler(parallelism=2, tick_seconds=1.0,
                                    ticks=ticks, cache=cache)
        sched.add_task("leader", costing(ticks, 10), flight_key="k")
        sched.add_task("follower", costing(ticks, 1), flight_key="k")
        report = sched.run()
        assert report.success
        by_name = {t.name: t for t in report.tasks}
        assert not by_name["leader"].deduped
        assert by_name["follower"].deduped
        # the follower only starts once the leader's flight lands
        assert by_name["follower"].start == by_name["leader"].finish
        assert report.inflight_hits == 1
        assert cache.aggregate_stats().inflight_hits == 1

    def test_follower_frees_its_worker(self):
        """Parking must not hold a worker slot hostage."""
        ticks = FakeTicks()
        cache = BuildCache()
        sched = BuildGraphScheduler(parallelism=2, tick_seconds=1.0,
                                    ticks=ticks, cache=cache)
        sched.add_task("leader", costing(ticks, 10), flight_key="k")
        sched.add_task("follower", costing(ticks, 1), flight_key="k")
        sched.add_task("other", costing(ticks, 10))
        report = sched.run()
        by_name = {t.name: t for t in report.tasks}
        # "other" runs beside the leader instead of behind the parked twin
        assert by_name["other"].start == 0.0
        assert report.makespan == 11.0

    def test_distinct_keys_do_not_dedupe(self):
        ticks = FakeTicks()
        cache = BuildCache()
        sched = BuildGraphScheduler(parallelism=2, tick_seconds=1.0,
                                    ticks=ticks, cache=cache)
        sched.add_task("a", costing(ticks, 10), flight_key="ka")
        sched.add_task("b", costing(ticks, 10), flight_key="kb")
        report = sched.run()
        assert report.inflight_hits == 0

    def test_no_cache_no_dedup(self):
        ticks = FakeTicks()
        sched = BuildGraphScheduler(parallelism=2, tick_seconds=1.0,
                                    ticks=ticks)
        sched.add_task("a", costing(ticks, 10), flight_key="k")
        sched.add_task("b", costing(ticks, 10), flight_key="k")
        report = sched.run()
        assert report.inflight_hits == 0


class TestReport:
    def test_as_dict_round_trips(self):
        ticks = FakeTicks()
        report = diamond(BuildGraphScheduler(parallelism=2, tick_seconds=1.0,
                                             ticks=ticks), ticks)
        d = report.as_dict()
        assert d["parallelism"] == 2
        assert d["makespan"] == 45.0
        assert len(d["tasks"]) == 4
        assert d["speedup"] == pytest.approx(65.0 / 45.0)
